//! The paper's motivating example (Figure 1): an *occasionally colliding*
//! pointer loop. `x[ptr]++` collides with an earlier iteration exactly
//! when two pointers in the stream are equal — a dependence that is
//! neither always present nor always absent, so a history predictor can
//! never be confident.
//!
//! Watch how each machine treats the load:
//! * the baseline forwards through its store queue,
//! * NoSQ *delays* it until the predicted store commits,
//! * DMDP *predicates* it (CMP + 2×CMOV) and executes immediately.
//!
//! ```text
//! cargo run --release -p dmdp-core --example occasional_collision
//! ```

use dmdp_core::{CommModel, Simulator};
use dmdp_isa::asm;
use dmdp_stats::LoadSource;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ptrs has repeated values at irregular gaps (0, 4, 4, 12, ...): the
    // histogram increment collides with itself occasionally, at drifting
    // store distances (paper Fig. 1 / Fig. 13).
    let program = asm::assemble_named(
        "occasional-collision",
        r#"
            .data
    ptrs:   .word 0, 4, 4, 12, 8, 12, 12, 0, 16, 4, 20, 12, 8, 8, 24, 0
    x:      .space 32
            .text
            lui  $8, %hi(ptrs)
            ori  $8, $8, %lo(ptrs)
            lui  $9, %hi(x)
            ori  $9, $9, %lo(x)
            li   $4, 0
            li   $5, 3000
    loop:
            andi $6, $4, 15
            sll  $6, $6, 2
            add  $6, $6, $8
            lw   $7, 0($6)          # ptr = ptrs[i % 16]
            add  $7, $7, $9
            lw   $10, 0($7)         # x[ptr]      <- the OC load
            addi $10, $10, 1
            sw   $10, 0($7)         # x[ptr]++    <- the OC store
            addi $4, $4, 1
            bne  $4, $5, loop
            halt
        "#,
    )?;

    println!(
        "{:10} {:>8} {:>7} {:>8} {:>8} {:>9} {:>7} {:>7}",
        "model", "IPC", "direct", "bypass", "delayed", "predicate", "delay-c", "mpki"
    );
    for model in CommModel::ALL {
        let r = Simulator::new(model).run(&program)?;
        let ll = &r.stats.load_latency;
        println!(
            "{:10} {:>8.3} {:>7} {:>8} {:>8} {:>9} {:>7.1} {:>7.2}",
            model.name(),
            r.ipc(),
            ll.count(LoadSource::Direct),
            ll.count(LoadSource::Bypassed),
            ll.count(LoadSource::Delayed),
            ll.count(LoadSource::Predicated),
            ll.mean_latency(LoadSource::Delayed),
            r.stats.mem_dep_mpki(),
        );
    }
    println!("\nNoSQ parks the unconfident load until the predicted store commits");
    println!("(the 'delayed' column); DMDP converts it into a predication group");
    println!("and executes it as soon as both addresses are known.");
    Ok(())
}
