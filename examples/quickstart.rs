//! Quickstart: assemble a small program and run it under all four
//! store-load communication models.
//!
//! ```text
//! cargo run --release -p dmdp-core --example quickstart
//! ```

use dmdp_core::{CommModel, Simulator};
use dmdp_isa::{asm, Emulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A read-modify-write loop over a small table: stores and loads to
    // the same cells collide while in flight, which is exactly the
    // traffic the paper's mechanisms arbitrate.
    let program = asm::assemble_named(
        "quickstart",
        r#"
            .data
    table:  .word 0, 0, 0, 0, 0, 0, 0, 0
            .text
            lui  $8, %hi(table)
            ori  $8, $8, %lo(table)
            li   $4, 0
            li   $5, 4000
    loop:
            andi $6, $4, 7          # slot = i % 8
            sll  $6, $6, 2
            add  $6, $6, $8
            lw   $7, 0($6)          # read the slot
            add  $7, $7, $4
            sw   $7, 0($6)          # write it back (collides 8 stores later)
            addi $4, $4, 1
            bne  $4, $5, loop
            halt
        "#,
    )?;

    // The functional emulator is the architectural reference.
    let mut emu = Emulator::new(&program);
    let functional = emu.run(1_000_000)?;
    println!(
        "functional reference: {} instructions, {} loads, {} stores",
        functional.retired, functional.loads, functional.stores
    );

    println!("\n{:10} {:>8} {:>8} {:>10} {:>12}", "model", "cycles", "IPC", "recoveries", "pred-uops");
    for model in CommModel::ALL {
        let report = Simulator::new(model).run(&program)?;
        println!(
            "{:10} {:>8} {:>8.3} {:>10} {:>12}",
            model.name(),
            report.stats.cycles,
            report.ipc(),
            report.stats.recoveries,
            report.stats.predication_uops
        );
    }
    println!("\nEvery model retires the same architectural instruction stream; they");
    println!("differ only in how in-flight stores reach dependent loads.");
    Ok(())
}
