//! §IV-F / §VI-g: how the memory consistency model interacts with the
//! store-queue-free designs. Under TSO the store buffer commits strictly
//! in order, so one store miss blocks everything behind it; RMO lets the
//! writes overlap. NoSQ's delayed loads wait on store *commit*, so they
//! feel this directly — DMDP's predicated loads do not.
//!
//! ```text
//! cargo run --release -p dmdp-core --example consistency_models
//! ```

use dmdp_core::{CommModel, CoreConfig, Simulator};
use dmdp_isa::asm;
use dmdp_mem::Consistency;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stores scattered over a large footprint (cache misses at commit)
    // followed by an occasionally-colliding reload: the commit backlog is
    // what delayed loads must wait behind.
    let program = asm::assemble_named(
        "consistency",
        r#"
            .data
    big:    .space 65536
    hot:    .space 32
            .text
            lui  $8, %hi(big)
            ori  $8, $8, %lo(big)
            lui  $9, %hi(hot)
            ori  $9, $9, %lo(hot)
            li   $4, 0
            li   $5, 2000
    loop:
            muli $6, $4, 509        # scatter store (commit misses)
            andi $6, $6, 16383
            sll  $6, $6, 2
            add  $6, $6, $8
            sw   $4, 0($6)
            andi $7, $4, 7          # hot cell read-modify-write
            sll  $7, $7, 2
            add  $7, $7, $9
            lw   $10, 0($7)
            addi $10, $10, 1
            sw   $10, 0($7)
            addi $4, $4, 1
            bne  $4, $5, loop
            halt
        "#,
    )?;

    println!(
        "{:10} {:6} {:>8} {:>8} {:>12} {:>14}",
        "model", "order", "cycles", "IPC", "sb-stalls", "reexec-stalls"
    );
    for model in [CommModel::NoSq, CommModel::Dmdp] {
        for consistency in [Consistency::Tso, Consistency::Rmo] {
            let cfg = CoreConfig { consistency, ..CoreConfig::new(model) };
            let r = Simulator::with_config(cfg).run(&program)?;
            println!(
                "{:10} {:6} {:>8} {:>8.3} {:>12} {:>14}",
                model.name(),
                match consistency {
                    Consistency::Tso => "tso",
                    Consistency::Rmo => "rmo",
                },
                r.stats.cycles,
                r.ipc(),
                r.stats.sb_full_stall_cycles,
                r.stats.reexec_stall_cycles,
            );
        }
    }
    println!("\nRMO drains the store buffer faster (overlapped commits), which");
    println!("shrinks both the full-buffer stalls and the drain time every load");
    println!("re-execution must wait out.");
    Ok(())
}
