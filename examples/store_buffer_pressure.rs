//! §VI-e: store buffer sizing. Because loads never search the store
//! buffer in a store-queue-free machine, it can be made large cheaply —
//! and a larger buffer hides more store misses. This example sweeps the
//! buffer size on an lbm-like store-dominated kernel (the paper's
//! biggest winner, Figure 14).
//!
//! ```text
//! cargo run --release -p dmdp-core --example store_buffer_pressure
//! ```

use dmdp_core::{CommModel, CoreConfig, Simulator};
use dmdp_isa::asm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Bursts of stores separated by compute-only stretches: a larger
    // buffer absorbs each burst so retirement never blocks, while a
    // small one fills and stalls the retire stage mid-burst. The
    // footprint is L1-resident so the drain rate can keep up on average.
    let mut body = String::from(
        "        .data\ncells:  .space 8192\n        .text\n\
         lui  $8, %hi(cells)\nori  $8, $8, %lo(cells)\n\
         li   $4, 0\nli   $5, 1500\nloop:\n\
         andi $6, $4, 63\nsll  $6, $6, 7\nadd  $6, $6, $8\n",
    );
    for k in 0..24 {
        body.push_str(&format!("sw   $4, {}($6)\n", 4 * k));
    }
    body.push_str(
        // A serial multiply chain: long enough for any reasonably sized
        // buffer to drain the burst before the next one arrives.
        "li   $7, 40\ncalc:\nmuli $11, $11, 3\nxor  $11, $11, $7\n\
         addi $7, $7, -1\nbgtz $7, calc\naddi $4, $4, 1\n\
         bne  $4, $5, loop\nhalt\n",
    );
    let program = asm::assemble_named("sb-pressure", &body)?;

    println!("{:>8} {:>10} {:>8} {:>16} {:>10}", "sb-size", "cycles", "IPC", "sb-full-stalls", "vs-16");
    let mut base_ipc = None;
    for sb in [8usize, 16, 32, 64, 128] {
        let cfg = CoreConfig { store_buffer_entries: sb, ..CoreConfig::new(CommModel::Dmdp) };
        let r = Simulator::with_config(cfg).run(&program)?;
        if sb == 16 {
            base_ipc = Some(r.ipc());
        }
        let rel = base_ipc.map(|b| format!("{:+.1}%", 100.0 * (r.ipc() / b - 1.0)));
        println!(
            "{:>8} {:>10} {:>8.3} {:>16} {:>10}",
            sb,
            r.stats.cycles,
            r.ipc(),
            r.stats.sb_full_stall_cycles,
            rel.unwrap_or_else(|| "-".to_string()),
        );
    }
    println!("\npaper: a 64-entry buffer beats 16 entries by 2.77% (Int) / 5.01% (FP),");
    println!("with lbm improving the most; the full-buffer stall counts shrink from");
    println!("503.1 to 75.0 cycles per kilo-instruction.");
    Ok(())
}
