//! Workspace-level integration: every SPEC-analogue workload runs under
//! every store-load communication model, checked instruction-by-
//! instruction against the functional emulator.

use dmdp_core::{CommModel, Simulator};
use dmdp_stats::LoadSource;
use dmdp_workloads::{all, Scale, Suite};

#[test]
fn every_workload_under_every_model_is_architecturally_exact() {
    for w in all(Scale::Test) {
        for m in CommModel::ALL {
            let r = Simulator::new(m)
                .run_checked(&w.program)
                .unwrap_or_else(|e| panic!("{} under {:?}: {e}", w.name, m));
            assert!(r.stats.retired_insns > 500, "{} too small under {:?}", w.name, m);
        }
    }
}

#[test]
fn instruction_counts_agree_across_models() {
    for w in all(Scale::Test) {
        let counts: Vec<u64> = CommModel::ALL
            .iter()
            .map(|&m| Simulator::new(m).run(&w.program).unwrap().stats.retired_insns)
            .collect();
        assert!(
            counts.windows(2).all(|c| c[0] == c[1]),
            "{}: models disagree on instruction count: {counts:?}",
            w.name
        );
    }
}

#[test]
fn dmdp_uses_predication_where_nosq_delays() {
    // Across the whole suite: NoSQ must produce delayed loads, DMDP must
    // produce predicated loads, and neither uses the other's mechanism.
    let mut nosq_delayed = 0;
    let mut dmdp_predicated = 0;
    for w in all(Scale::Test) {
        let nosq = Simulator::new(CommModel::NoSq).run(&w.program).unwrap();
        let dmdp = Simulator::new(CommModel::Dmdp).run(&w.program).unwrap();
        nosq_delayed += nosq.stats.load_latency.count(LoadSource::Delayed);
        dmdp_predicated += dmdp.stats.load_latency.count(LoadSource::Predicated);
        assert_eq!(nosq.stats.load_latency.count(LoadSource::Predicated), 0, "{}", w.name);
        assert_eq!(dmdp.stats.load_latency.count(LoadSource::Delayed), 0, "{}", w.name);
        assert_eq!(nosq.stats.predication_uops, 0, "{}", w.name);
    }
    assert!(nosq_delayed > 0, "the suite must exercise NoSQ's delayed loads");
    assert!(dmdp_predicated > 0, "the suite must exercise DMDP's predication");
}

#[test]
fn suite_split_matches_paper() {
    let ws = all(Scale::Test);
    let int: Vec<&str> =
        ws.iter().filter(|w| w.suite == Suite::Int).map(|w| w.name).collect();
    let fp: Vec<&str> = ws.iter().filter(|w| w.suite == Suite::Fp).map(|w| w.name).collect();
    assert_eq!(
        int,
        ["perl", "bzip2", "gcc", "mcf", "gobmk", "hmmer", "sjeng", "lib", "h264ref", "astar"]
    );
    assert_eq!(
        fp,
        [
            "bwaves", "milc", "zeusmp", "gromacs", "leslie3d", "namd", "Gems", "tonto", "lbm",
            "wrf", "sphinx3"
        ]
    );
}

#[test]
fn perfect_upper_bounds_the_suite() {
    // The Perfect model is a limit study: it must dominate DMDP in
    // aggregate, and per workload up to small timing artifacts (cloaking
    // is a zero-µop bypass while the oracle forward is a µop, and store
    // commit times shift between models).
    let mut ratios = Vec::new();
    for w in all(Scale::Test) {
        let dmdp = Simulator::new(CommModel::Dmdp).run(&w.program).unwrap();
        let perfect = Simulator::new(CommModel::Perfect).run(&w.program).unwrap();
        assert!(
            perfect.ipc() >= dmdp.ipc() * 0.80,
            "{}: perfect {} far below dmdp {}",
            w.name,
            perfect.ipc(),
            dmdp.ipc()
        );
        ratios.push(perfect.ipc() / dmdp.ipc());
    }
    let geo = dmdp_stats::geomean(ratios);
    assert!(geo >= 1.0, "perfect must dominate dmdp in geomean, got {geo}");
}
