#![warn(missing_docs)]
//! # dmdp-mem
//!
//! The timed memory subsystem for the DMDP reproduction: a two-level
//! write-back cache hierarchy over a bank/row DRAM model, a TLB, and the
//! retired-store buffer with TSO and RMO commit policies (paper §IV-F).
//!
//! The hierarchy is a *timing* model: it answers "how many cycles does
//! this access take at this point in time" and keeps tag/row state, while
//! architectural data lives in the core's [`dmdp_isa::SparseMem`]. This
//! mirrors the paper's structure, where loads always read architecturally
//! committed state (stores update the cache only at commit) and the
//! interesting dynamics are purely about *when* values become available.
//!
//! # Example
//!
//! ```
//! use dmdp_mem::{MemConfig, MemHierarchy};
//! let mut mem = MemHierarchy::new(MemConfig::default());
//! let cold = mem.read(0x1_0000, 0);
//! let warm = mem.read(0x1_0000, cold as u64);
//! assert!(cold > warm);                      // miss vs hit
//! assert_eq!(warm, mem.config().l1d.latency); // L1 hit time (4 cycles)
//! ```

mod cache;
mod config;
mod dram;
mod hierarchy;
mod store_buffer;
mod tlb;

pub use cache::{Cache, CacheAccess, CacheGeometry};
pub use config::{DramConfig, MemConfig, TlbConfig};
pub use dram::Dram;
pub use hierarchy::{MemHierarchy, MemStats};
pub use store_buffer::{Consistency, SbEntry, StoreBuffer};
pub use tlb::Tlb;
