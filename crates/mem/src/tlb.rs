use dmdp_isa::Addr;

use crate::config::TlbConfig;

/// A fully-associative, LRU data TLB.
///
/// In the paper's machine the `AGI` µop performs address translation so
/// that physical addresses are available in the register file at
/// retire/commit (§IV-A e). Translation here is identity (the workloads
/// run in a flat space); what matters is the *timing* — a miss charges the
/// page-walk penalty to the `AGI`.
///
/// # Example
///
/// ```
/// use dmdp_mem::{Tlb, TlbConfig};
/// let mut tlb = Tlb::new(TlbConfig::default());
/// assert_eq!(tlb.translate(0x1234), 20); // cold miss pays the walk
/// assert_eq!(tlb.translate(0x1FFF), 0);  // same page now hits
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    entries: Vec<(u32, u64)>, // (vpn, lru stamp)
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics unless the page size is a power of two and `entries > 0`.
    pub fn new(cfg: TlbConfig) -> Tlb {
        assert!(cfg.page_bytes.is_power_of_two(), "page size must be a power of two");
        assert!(cfg.entries > 0, "TLB needs at least one entry");
        Tlb { entries: Vec::with_capacity(cfg.entries), cfg, stamp: 0, hits: 0, misses: 0 }
    }

    /// Translates `addr`, returning the extra latency in cycles (0 on a
    /// hit, the walk penalty on a miss).
    pub fn translate(&mut self, addr: Addr) -> u64 {
        self.stamp += 1;
        let vpn = addr / self.cfg.page_bytes;
        if let Some(e) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = self.stamp;
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        if self.entries.len() == self.cfg.entries {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("nonempty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, self.stamp));
        self.cfg.miss_penalty
    }

    /// Installs `addr`'s page, updating recency but neither hit nor
    /// miss counts — checkpoint-seeded warming, alongside
    /// [`crate::MemHierarchy::warm`].
    pub fn warm(&mut self, addr: Addr) {
        let (hits, misses) = (self.hits, self.misses);
        let _ = self.translate(addr);
        self.hits = hits;
        self.misses = misses;
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tlb {
        Tlb::new(TlbConfig { entries: 2, page_bytes: 4096, miss_penalty: 20 })
    }

    #[test]
    fn miss_then_hit() {
        let mut t = small();
        assert_eq!(t.translate(0), 20);
        assert_eq!(t.translate(4095), 0);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = small();
        t.translate(0x0000); // page 0
        t.translate(0x1000); // page 1
        t.translate(0x0000); // touch page 0
        t.translate(0x2000); // evicts page 1
        assert_eq!(t.translate(0x0000), 0);
        assert_eq!(t.translate(0x1000), 20); // was evicted
    }

    #[test]
    fn capacity_respected() {
        let mut t = small();
        for p in 0..10u32 {
            t.translate(p * 4096);
        }
        assert!(t.entries.len() <= 2);
    }
}
