use std::collections::VecDeque;

use dmdp_isa::bab::{bab, place_in_word, word_addr};
use dmdp_isa::{Addr, MemWidth, SparseMem, Word};

use crate::hierarchy::MemHierarchy;

/// Memory consistency model governing store-buffer commit order (§IV-F).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Consistency {
    /// Total Store Order: stores write the cache strictly in program
    /// order; a store's write begins only after the previous one
    /// completes.
    #[default]
    Tso,
    /// Relaxed Memory Order: store writes may overlap (one issues per
    /// cycle); `SSN_commit` still tracks the oldest store remaining in the
    /// buffer, as the paper specifies.
    Rmo,
}

/// A retired store waiting in the store buffer, canonicalized to its
/// aligned word plus Byte Access Bits.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SbEntry {
    /// Store sequence number.
    pub ssn: u32,
    /// Aligned word address.
    pub word_addr: Addr,
    /// Which bytes of the word this store writes.
    pub bab: u8,
    /// The store's bytes positioned within the word.
    pub word_value: Word,
}

impl SbEntry {
    /// Canonicalizes a store.
    ///
    /// # Panics
    ///
    /// Panics on an unaligned access.
    pub fn new(ssn: u32, addr: Addr, width: MemWidth, value: Word) -> SbEntry {
        SbEntry {
            ssn,
            word_addr: word_addr(addr),
            bab: bab(addr, width),
            word_value: place_in_word(addr, width, value),
        }
    }

    /// Applies the store's bytes to the architectural memory image.
    pub fn apply(&self, data: &mut SparseMem) {
        for i in 0..4 {
            if self.bab & (1 << i) != 0 {
                data.write_byte(self.word_addr + i, (self.word_value >> (8 * i)) as u8);
            }
        }
    }

    /// Attempts to absorb a younger store into this entry (store
    /// coalescing, §V): succeeds when both target the same word. The
    /// younger store's bytes win.
    pub fn coalesce(&mut self, younger: &SbEntry) -> bool {
        if self.word_addr != younger.word_addr {
            return false;
        }
        let mut merged = self.word_value;
        for i in 0..4 {
            if younger.bab & (1 << i) != 0 {
                let mask = 0xFFu32 << (8 * i);
                merged = (merged & !mask) | (younger.word_value & mask);
            }
        }
        self.word_value = merged;
        self.bab |= younger.bab;
        self.ssn = younger.ssn;
        true
    }
}

#[derive(Copy, Clone, Debug)]
struct InFlight {
    ssn: u32,
    done_at: u64,
}

/// The post-retirement store buffer (paper §I, §IV-F): holds retired
/// stores until they update the cache. Loads never search it — that is
/// the entire point of the store-queue-free design.
///
/// Occupancy counts both queued and in-flight stores; [`StoreBuffer::push`]
/// fails when full, which makes the core stall retirement (§VI-e measures
/// exactly these stalls).
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    capacity: usize,
    consistency: Consistency,
    queue: VecDeque<SbEntry>,
    in_flight: VecDeque<InFlight>,
    next_issue_at: u64,
    coalesced: u64,
    pushes: u64,
}

impl StoreBuffer {
    /// Creates an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, consistency: Consistency) -> StoreBuffer {
        assert!(capacity > 0, "store buffer needs at least one entry");
        StoreBuffer {
            capacity,
            consistency,
            queue: VecDeque::new(),
            in_flight: VecDeque::new(),
            next_issue_at: 0,
            coalesced: 0,
            pushes: 0,
        }
    }

    /// Current occupancy (queued + in flight).
    pub fn occupancy(&self) -> usize {
        self.queue.len() + self.in_flight.len()
    }

    /// Whether a retiring store would have to stall.
    pub fn is_full(&self) -> bool {
        self.occupancy() >= self.capacity
    }

    /// Whether every store has committed.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The consistency model in force.
    pub fn consistency(&self) -> Consistency {
        self.consistency
    }

    /// Number of stores absorbed by coalescing.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Iterates over queued (not yet issued to the cache) entries,
    /// oldest first. The baseline machine's loads search these; the
    /// store-queue-free machines never do.
    pub fn queued(&self) -> impl Iterator<Item = &SbEntry> {
        self.queue.iter()
    }

    /// Number of queued (not yet issued) entries — distinct from
    /// [`StoreBuffer::occupancy`], which also counts in-flight writes.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// The earliest future cycle at which [`StoreBuffer::tick`] can do
    /// anything — issue a queued store or complete an in-flight one —
    /// assuming no new pushes. `None` when the buffer is empty (nothing
    /// will ever happen). Exact by construction of `tick`: TSO gates
    /// issue on the in-flight write completing, RMO issues whenever the
    /// write port (`next_issue_at`) is free.
    pub fn next_event_cycle(&self, cycle: u64) -> Option<u64> {
        let complete = self.in_flight.front().map(|f| f.done_at);
        let issue = if self.queue.is_empty() {
            None
        } else {
            match self.consistency {
                // TSO: the next issue happens the tick after the
                // in-flight store completes; `complete` already bounds it.
                Consistency::Tso if !self.in_flight.is_empty() => None,
                _ => Some(self.next_issue_at.max(cycle)),
            }
        };
        match (issue, complete) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Inserts a retired store; returns `false` (and does nothing) when
    /// the buffer is full. When `coalesce` is set and the youngest queued
    /// store targets the same word, the entry is merged instead of
    /// occupying a new slot (only *consecutive* stores coalesce, as TSO
    /// requires — §V).
    pub fn push(&mut self, entry: SbEntry, coalesce: bool) -> bool {
        self.pushes += 1;
        if coalesce {
            if let Some(last) = self.queue.back_mut() {
                if last.coalesce(&entry) {
                    self.coalesced += 1;
                    return true;
                }
            }
        }
        if self.is_full() {
            self.pushes -= 1;
            return false;
        }
        self.queue.push_back(entry);
        true
    }

    /// Advances the buffer by one cycle: issues cache writes according to
    /// the consistency model and appends the SSNs of stores that finished
    /// committing this cycle to `committed`, oldest first. `SSN_commit`
    /// may be advanced to the last appended value.
    ///
    /// Takes the output buffer from the caller so the per-cycle commit
    /// path never allocates — the core reuses one scratch `Vec` for the
    /// whole run.
    ///
    /// Architectural bytes are applied to `data` at issue (in SSN order),
    /// so same-address ordering is preserved even under RMO's overlapped
    /// completion.
    pub fn tick(
        &mut self,
        cycle: u64,
        mem: &mut MemHierarchy,
        data: &mut SparseMem,
        committed: &mut Vec<u32>,
    ) {
        // Issue phase.
        let can_issue = match self.consistency {
            Consistency::Tso => self.in_flight.is_empty(),
            Consistency::Rmo => true,
        };
        if can_issue && cycle >= self.next_issue_at {
            if let Some(entry) = self.queue.pop_front() {
                entry.apply(data);
                let latency = mem.write(entry.word_addr, cycle).max(1);
                self.in_flight.push_back(InFlight { ssn: entry.ssn, done_at: cycle + latency });
                // One write port: next issue no earlier than next cycle.
                self.next_issue_at = cycle + 1;
            }
        }
        // Completion phase: pop the prefix of finished stores so that
        // SSN_commit stays "one preceding the oldest store in the buffer".
        while let Some(front) = self.in_flight.front() {
            if front.done_at <= cycle {
                committed.push(front.ssn);
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfig;

    fn env() -> (MemHierarchy, SparseMem) {
        (MemHierarchy::new(MemConfig::default()), SparseMem::new())
    }

    fn drain(sb: &mut StoreBuffer, mem: &mut MemHierarchy, data: &mut SparseMem) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        let mut batch = Vec::new();
        let mut cycle = 0;
        while !sb.is_empty() {
            sb.tick(cycle, mem, data, &mut batch);
            for ssn in batch.drain(..) {
                out.push((cycle, ssn));
            }
            cycle += 1;
            assert!(cycle < 100_000, "store buffer failed to drain");
        }
        out
    }

    #[test]
    fn entry_canonicalization_and_apply() {
        let mut data = SparseMem::new();
        let e = SbEntry::new(1, 0x102, MemWidth::Half, 0xBEEF);
        assert_eq!(e.word_addr, 0x100);
        assert_eq!(e.bab, 0b1100);
        e.apply(&mut data);
        assert_eq!(data.read_word(0x100), 0xBEEF_0000);
    }

    #[test]
    fn coalesce_same_word() {
        let mut a = SbEntry::new(1, 0x100, MemWidth::Word, 0x1111_1111);
        let b = SbEntry::new(2, 0x102, MemWidth::Half, 0x2222);
        assert!(a.coalesce(&b));
        assert_eq!(a.word_value, 0x2222_1111);
        assert_eq!(a.ssn, 2);
        let c = SbEntry::new(3, 0x104, MemWidth::Word, 0);
        assert!(!a.coalesce(&c));
    }

    #[test]
    fn tso_commits_in_order_serialized() {
        let (mut mem, mut data) = env();
        let mut sb = StoreBuffer::new(4, Consistency::Tso);
        for ssn in 1..=3u32 {
            assert!(sb.push(SbEntry::new(ssn, 0x1000 * ssn, MemWidth::Word, ssn), false));
        }
        let events = drain(&mut sb, &mut mem, &mut data);
        let ssns: Vec<u32> = events.iter().map(|&(_, s)| s).collect();
        assert_eq!(ssns, vec![1, 2, 3]);
        // Serialized: each completion strictly after the previous.
        assert!(events.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(data.read_word(0x1000), 1);
        assert_eq!(data.read_word(0x3000), 3);
    }

    #[test]
    fn rmo_overlaps_commits() {
        // Same stores, one per bank: RMO should finish much earlier than TSO.
        let run = |consistency| {
            let (mut mem, mut data) = env();
            let mut sb = StoreBuffer::new(8, consistency);
            for ssn in 1..=6u32 {
                sb.push(SbEntry::new(ssn, 0x10000 + 0x800 * ssn, MemWidth::Word, ssn), false);
            }
            drain(&mut sb, &mut mem, &mut data).last().unwrap().0
        };
        let tso_done = run(Consistency::Tso);
        let rmo_done = run(Consistency::Rmo);
        assert!(rmo_done < tso_done, "rmo {rmo_done} should beat tso {tso_done}");
    }

    #[test]
    fn rmo_same_address_order_preserved() {
        let (mut mem, mut data) = env();
        let mut sb = StoreBuffer::new(8, Consistency::Rmo);
        sb.push(SbEntry::new(1, 0x100, MemWidth::Word, 0xAAAA), false);
        sb.push(SbEntry::new(2, 0x100, MemWidth::Word, 0xBBBB), false);
        drain(&mut sb, &mut mem, &mut data);
        assert_eq!(data.read_word(0x100), 0xBBBB);
    }

    #[test]
    fn full_buffer_rejects_push() {
        let mut sb = StoreBuffer::new(2, Consistency::Tso);
        assert!(sb.push(SbEntry::new(1, 0x0, MemWidth::Word, 0), false));
        assert!(sb.push(SbEntry::new(2, 0x4, MemWidth::Word, 0), false));
        assert!(sb.is_full());
        assert!(!sb.push(SbEntry::new(3, 0x8, MemWidth::Word, 0), false));
    }

    #[test]
    fn coalescing_saves_slots() {
        let mut sb = StoreBuffer::new(2, Consistency::Tso);
        assert!(sb.push(SbEntry::new(1, 0x100, MemWidth::Byte, 1), true));
        assert!(sb.push(SbEntry::new(2, 0x101, MemWidth::Byte, 2), true));
        assert!(sb.push(SbEntry::new(3, 0x102, MemWidth::Byte, 3), true));
        assert_eq!(sb.occupancy(), 1);
        assert_eq!(sb.coalesced(), 2);
        let (mut mem, mut data) = env();
        drain(&mut sb, &mut mem, &mut data);
        assert_eq!(data.read_word(0x100), 0x0003_0201);
    }

    #[test]
    fn next_event_cycle_tracks_tick_exactly() {
        let (mut mem, mut data) = env();
        for consistency in [Consistency::Tso, Consistency::Rmo] {
            let mut sb = StoreBuffer::new(8, consistency);
            assert_eq!(sb.next_event_cycle(0), None, "empty buffer has no events");
            for ssn in 1..=4u32 {
                sb.push(SbEntry::new(ssn, 0x1000 * ssn, MemWidth::Word, ssn), false);
            }
            // Exactness: between consecutive predicted events, tick must
            // be a no-op (no completions, no occupancy change).
            let mut cycle = 0u64;
            let mut batch = Vec::new();
            while let Some(event) = sb.next_event_cycle(cycle) {
                assert!(event >= cycle, "event {event} in the past of {cycle}");
                for quiet in cycle..event {
                    let before = (sb.queued_len(), sb.occupancy());
                    sb.tick(quiet, &mut mem, &mut data, &mut batch);
                    assert!(batch.is_empty(), "completion before predicted event");
                    assert_eq!(
                        (sb.queued_len(), sb.occupancy()),
                        before,
                        "{consistency:?}: tick at {quiet} (event {event}) was not quiet"
                    );
                }
                let before = (sb.queued_len(), sb.occupancy(), batch.len());
                sb.tick(event, &mut mem, &mut data, &mut batch);
                let after = (sb.queued_len(), sb.occupancy(), batch.len());
                assert_ne!(before, after, "{consistency:?}: predicted event at {event} did nothing");
                batch.clear();
                cycle = event + 1;
                assert!(cycle < 100_000, "store buffer failed to drain");
            }
            assert!(sb.is_empty());
        }
    }

    #[test]
    fn commit_prefix_rule_under_rmo() {
        // Two stores to the same DRAM bank: the second queues behind the
        // first in the bank even under RMO, and commits strictly after.
        let (mut mem, mut data) = env();
        let mut sb = StoreBuffer::new(8, Consistency::Rmo);
        sb.push(SbEntry::new(1, 0x0, MemWidth::Word, 1), false);
        sb.push(SbEntry::new(2, 0x40, MemWidth::Word, 2), false);
        let events = drain(&mut sb, &mut mem, &mut data);
        assert_eq!(events.iter().map(|&(_, s)| s).collect::<Vec<_>>(), vec![1, 2]);
    }
}
