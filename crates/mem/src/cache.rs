use dmdp_isa::Addr;

/// Geometry and access time of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Access latency in cycles (hit time).
    pub latency: u64,
}

impl CacheGeometry {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * self.line_bytes as usize
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// Address of a dirty line evicted by this access (must be written
    /// back to the next level), if any.
    pub writeback: Option<Addr>,
}

#[derive(Clone, Copy, Default)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    /// LRU stamp; larger = more recently used.
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache with LRU
/// replacement. Purely a tag store: data lives in the architectural
/// memory image.
///
/// # Example
///
/// ```
/// use dmdp_mem::{Cache, CacheGeometry};
/// let mut c = Cache::new(CacheGeometry { sets: 2, ways: 1, line_bytes: 64, latency: 4 });
/// assert!(!c.access(0x000, false).hit); // cold miss
/// assert!(c.access(0x004, false).hit);  // same line
/// ```
#[derive(Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    lines: Vec<Line>,
    stamp: u64,
    set_shift: u32,
    set_mask: u32,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` and `line_bytes` are powers of two and `ways`
    /// is nonzero.
    pub fn new(geometry: CacheGeometry) -> Cache {
        assert!(geometry.sets.is_power_of_two(), "sets must be a power of two");
        assert!(geometry.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(geometry.ways > 0, "associativity must be nonzero");
        Cache {
            lines: vec![Line::default(); geometry.sets * geometry.ways],
            stamp: 0,
            set_shift: geometry.line_bytes.trailing_zeros(),
            set_mask: geometry.sets as u32 - 1,
            geometry,
        }
    }

    /// The configured geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    #[inline]
    fn index(&self, addr: Addr) -> (usize, u32) {
        let block = addr >> self.set_shift;
        ((block & self.set_mask) as usize, block >> self.geometry.sets.trailing_zeros())
    }

    /// Performs an access, allocating the line on a miss and evicting LRU.
    /// `is_write` marks the line dirty.
    pub fn access(&mut self, addr: Addr, is_write: bool) -> CacheAccess {
        self.stamp += 1;
        let (set, tag) = self.index(addr);
        let ways = self.geometry.ways;
        let base = set * ways;
        let set_lines = &mut self.lines[base..base + ways];
        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.stamp;
            line.dirty |= is_write;
            return CacheAccess { hit: true, writeback: None };
        }
        // Miss: pick invalid way, else LRU.
        let victim = match set_lines.iter_mut().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                let mut min = 0;
                for (i, l) in set_lines.iter().enumerate() {
                    if l.lru < set_lines[min].lru {
                        min = i;
                    }
                }
                min
            }
        };
        let old = set_lines[victim];
        set_lines[victim] = Line { tag, valid: true, dirty: is_write, lru: self.stamp };
        let writeback = (old.valid && old.dirty).then(|| self.rebuild_addr(set, old.tag));
        CacheAccess { hit: false, writeback }
    }

    /// Whether the line containing `addr` is resident (no state change).
    pub fn probe(&self, addr: Addr) -> bool {
        let (set, tag) = self.index(addr);
        let base = set * self.geometry.ways;
        self.lines[base..base + self.geometry.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the line containing `addr` (coherence traffic from
    /// another core, §IV-F); returns whether it was present and dirty.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        let (set, tag) = self.index(addr);
        let base = set * self.geometry.ways;
        for l in &mut self.lines[base..base + self.geometry.ways] {
            if l.valid && l.tag == tag {
                let dirty = l.dirty;
                *l = Line::default();
                return dirty;
            }
        }
        false
    }

    fn rebuild_addr(&self, set: usize, tag: u32) -> Addr {
        let block = (tag << self.geometry.sets.trailing_zeros()) | set as u32;
        block << self.set_shift
    }
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache").field("geometry", &self.geometry).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheGeometry { sets: 2, ways: 2, line_bytes: 16, latency: 1 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x10F, false).hit); // same 16B line
        assert!(!c.access(0x110, false).hit); // next line, other set
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines with (addr >> 4) even.
        c.access(0x000, false);
        c.access(0x020, false);
        c.access(0x000, false); // touch line 0 -> line 0x020 is LRU
        let r = c.access(0x040, false); // evicts 0x020 (clean)
        assert!(!r.hit);
        assert_eq!(r.writeback, None);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x020));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x020, false);
        let r = c.access(0x040, false); // evicts dirty 0x000
        assert_eq!(r.writeback, Some(0x000));
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, true); // now dirty
        c.access(0x020, false);
        let r = c.access(0x040, false);
        assert_eq!(r.writeback, Some(0x000));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(0x000, true);
        assert!(c.invalidate(0x000));
        assert!(!c.probe(0x000));
        assert!(!c.invalidate(0x000));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x020, false);
        // Probing 0x000 must not make it MRU.
        assert!(c.probe(0x000));
        let r = c.access(0x040, false);
        assert!(!r.hit);
        assert!(!c.probe(0x000)); // 0x000 was still LRU and got evicted
    }

    #[test]
    fn capacity() {
        assert_eq!(tiny().geometry().capacity(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheGeometry { sets: 3, ways: 1, line_bytes: 16, latency: 1 });
    }
}
