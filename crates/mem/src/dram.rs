use dmdp_isa::Addr;

use crate::config::DramConfig;

#[derive(Clone, Copy, Default)]
struct Bank {
    open_row: Option<u32>,
    busy_until: u64,
}

/// A compact DRAM timing model: per-bank open-row tracking plus bank
/// occupancy, in the spirit of DRAMSim2 but reduced to what the paper's
/// experiments exercise (row hit / miss / conflict latency and the
/// serialization of accesses to a busy bank).
///
/// # Example
///
/// ```
/// use dmdp_mem::{Dram, DramConfig};
/// let cfg = DramConfig::default();
/// let mut d = Dram::new(cfg);
/// let first = d.access(0x0, 0);               // row miss (cold)
/// let second = d.access(0x40, first);          // same row, open
/// assert_eq!(second, cfg.row_hit_latency);
/// assert!(first > second);
/// ```
#[derive(Clone)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    accesses: u64,
    row_hits: u64,
}

impl Dram {
    /// Creates a DRAM model with all banks precharged.
    ///
    /// # Panics
    ///
    /// Panics unless `banks` and `row_bytes` are powers of two.
    pub fn new(cfg: DramConfig) -> Dram {
        assert!(cfg.banks.is_power_of_two(), "banks must be a power of two");
        assert!(cfg.row_bytes.is_power_of_two(), "row size must be a power of two");
        Dram { banks: vec![Bank::default(); cfg.banks as usize], cfg, accesses: 0, row_hits: 0 }
    }

    /// Performs one access beginning no earlier than `cycle`; returns the
    /// total latency from `cycle` until data is available (including any
    /// queueing for a busy bank).
    pub fn access(&mut self, addr: Addr, cycle: u64) -> u64 {
        self.accesses += 1;
        let row = addr / self.cfg.row_bytes;
        let bank_idx = (row & (self.cfg.banks - 1)) as usize;
        let row_id = row / self.cfg.banks;
        let bank = &mut self.banks[bank_idx];

        let start = cycle.max(bank.busy_until);
        let queue = start - cycle;
        let service = match bank.open_row {
            Some(open) if open == row_id => {
                self.row_hits += 1;
                self.cfg.row_hit_latency
            }
            Some(_) => self.cfg.row_hit_latency + self.cfg.row_conflict_penalty,
            None => self.cfg.row_hit_latency + self.cfg.row_miss_penalty,
        };
        bank.open_row = Some(row_id);
        bank.busy_until = start + self.cfg.bank_busy;
        queue + service
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that hit an open row.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }
}

impl std::fmt::Debug for Dram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dram")
            .field("banks", &self.banks.len())
            .field("accesses", &self.accesses)
            .field("row_hits", &self.row_hits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::default()
    }

    #[test]
    fn cold_access_is_row_miss() {
        let mut d = Dram::new(cfg());
        let lat = d.access(0, 0);
        assert_eq!(lat, cfg().row_hit_latency + cfg().row_miss_penalty);
        assert_eq!(d.row_hits(), 0);
    }

    #[test]
    fn open_row_hit() {
        let mut d = Dram::new(cfg());
        let c = cfg();
        let t = d.access(0, 0);
        let lat = d.access(64, t + 100); // same row, bank idle again
        assert_eq!(lat, c.row_hit_latency);
        assert_eq!(d.row_hits(), 1);
    }

    #[test]
    fn row_conflict_costs_more() {
        let mut d = Dram::new(cfg());
        let c = cfg();
        d.access(0, 0);
        // Same bank, different row: banks stride by row_bytes, so the next
        // row in the same bank is banks * row_bytes away.
        let conflict_addr = c.banks * c.row_bytes;
        let lat = d.access(conflict_addr, 10_000);
        assert_eq!(lat, c.row_hit_latency + c.row_conflict_penalty);
    }

    #[test]
    fn busy_bank_queues() {
        let mut d = Dram::new(cfg());
        let c = cfg();
        d.access(0, 0); // bank 0 busy until bank_busy
        let lat = d.access(64, 1); // back-to-back same bank
        assert_eq!(lat, (c.bank_busy - 1) + c.row_hit_latency);
    }

    #[test]
    fn different_banks_in_parallel() {
        let mut d = Dram::new(cfg());
        let c = cfg();
        d.access(0, 0);
        let lat = d.access(c.row_bytes, 1); // next bank
        assert_eq!(lat, c.row_hit_latency + c.row_miss_penalty); // no queueing
    }
}
