use dmdp_isa::Addr;

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::dram::Dram;

/// Aggregate memory-system statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1D accesses.
    pub l1_accesses: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
    /// Dirty-line writebacks between levels.
    pub writebacks: u64,
}

/// The two-level data cache hierarchy over DRAM.
///
/// A timing model: [`MemHierarchy::read`] and [`MemHierarchy::write`]
/// return the access latency (in cycles, starting at the supplied current
/// cycle) while updating tag and row-buffer state. Values come from the
/// architectural memory image held by the core.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    cfg: MemConfig,
    l1d: Cache,
    l2: Cache,
    dram: Dram,
    stats: MemStats,
}

impl MemHierarchy {
    /// Creates a cold hierarchy.
    pub fn new(cfg: MemConfig) -> MemHierarchy {
        MemHierarchy {
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            dram: Dram::new(cfg.dram),
            cfg,
            stats: MemStats::default(),
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    fn access(&mut self, addr: Addr, cycle: u64, is_write: bool) -> u64 {
        self.stats.l1_accesses += 1;
        let l1 = self.l1d.access(addr, is_write);
        if l1.hit {
            return self.cfg.l1d.latency;
        }
        self.stats.l1_misses += 1;
        let mut latency = self.cfg.l1d.latency;
        if let Some(wb) = l1.writeback {
            self.stats.writebacks += 1;
            // Dirty L1 victim is absorbed by the L2 (not on the critical
            // path of this access, but it updates L2 state).
            let _ = self.l2.access(wb, true);
        }
        self.stats.l2_accesses += 1;
        let l2 = self.l2.access(addr, false);
        latency += self.cfg.l2.latency;
        if l2.hit {
            return latency;
        }
        self.stats.l2_misses += 1;
        if let Some(wb) = l2.writeback {
            self.stats.writebacks += 1;
            let _ = self.dram.access(wb, cycle + latency);
        }
        latency + self.dram.access(addr, cycle + latency)
    }

    /// A demand read (load or load re-execution) at `cycle`; returns the
    /// latency until the value is available.
    pub fn read(&mut self, addr: Addr, cycle: u64) -> u64 {
        self.access(addr, cycle, false)
    }

    /// A committing store's cache write at `cycle`; returns the latency
    /// until the write completes (write-allocate, so a miss fetches the
    /// line first).
    pub fn write(&mut self, addr: Addr, cycle: u64) -> u64 {
        self.access(addr, cycle, true)
    }

    /// Pre-fills the line containing `addr` into both levels, clean,
    /// updating recency but **no statistics and no DRAM state** —
    /// checkpoint-seeded cache warming. Architectural checkpoints carry
    /// the lines resident around the boundary in LRU→MRU order; replay
    /// them in that order so the final recency state approximates the
    /// uncheckpointed machine's.
    pub fn warm(&mut self, addr: Addr) {
        let _ = self.l1d.access(addr, false);
        let _ = self.l2.access(addr, false);
    }

    /// Whether `addr` currently hits in the L1D (no state disturbance).
    pub fn probe_l1(&self, addr: Addr) -> bool {
        self.l1d.probe(addr)
    }

    /// Invalidates a line in both levels (external coherence, §IV-F).
    pub fn invalidate(&mut self, addr: Addr) {
        self.l1d.invalidate(addr);
        self.l2.invalidate(addr);
    }

    /// Read access to the DRAM model (for tests and reporting).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemHierarchy {
        MemHierarchy::new(MemConfig::default())
    }

    #[test]
    fn hit_latency_is_l1_time() {
        let mut m = mem();
        let cold = m.read(0x4000, 0);
        assert!(cold > m.cfg.l1d.latency + m.cfg.l2.latency);
        let warm = m.read(0x4000, cold);
        assert_eq!(warm, m.cfg.l1d.latency);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = mem();
        m.read(0x4000, 0);
        // Evict 0x4000 from L1 by filling its set (same L1 set every
        // 64 sets * 64 B = 4 KiB stride), L2 keeps it (bigger).
        for i in 1..=8u32 {
            m.read(0x4000 + i * 4096, 0);
        }
        let lat = m.read(0x4000, 100_000);
        assert_eq!(lat, m.cfg.l1d.latency + m.cfg.l2.latency);
    }

    #[test]
    fn stats_track_misses() {
        let mut m = mem();
        m.read(0x0, 0);
        m.read(0x0, 50);
        let s = m.stats();
        assert_eq!(s.l1_accesses, 2);
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.l2_misses, 1);
    }

    #[test]
    fn writes_allocate_and_dirty() {
        let mut m = mem();
        m.write(0x8000, 0);
        assert!(m.probe_l1(0x8000));
        let s = m.stats();
        assert_eq!(s.l1_misses, 1);
    }

    #[test]
    fn invalidate_forces_remiss() {
        let mut m = mem();
        m.read(0x4000, 0);
        m.invalidate(0x4000);
        assert!(!m.probe_l1(0x4000));
        let lat = m.read(0x4000, 1000);
        assert!(lat > m.cfg.l1d.latency);
    }
}
