use crate::cache::CacheGeometry;

/// DRAM timing parameters (a compact DRAMSim2-style bank/row model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks (power of two).
    pub banks: u32,
    /// Cycles for an access that hits the open row.
    pub row_hit_latency: u64,
    /// Extra cycles to activate a row in a precharged bank.
    pub row_miss_penalty: u64,
    /// Extra cycles to precharge + activate when a different row is open.
    pub row_conflict_penalty: u64,
    /// Cycles a bank stays busy per access (occupancy; queueing delay).
    pub bank_busy: u64,
    /// Row size in bytes (power of two).
    pub row_bytes: u32,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig {
            banks: 8,
            row_hit_latency: 180,
            row_miss_penalty: 40,
            row_conflict_penalty: 80,
            bank_busy: 24,
            row_bytes: 2048,
        }
    }
}

/// TLB parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u32,
    /// Page-walk penalty on a miss, in cycles.
    pub miss_penalty: u64,
}

impl Default for TlbConfig {
    fn default() -> TlbConfig {
        TlbConfig { entries: 64, page_bytes: 4096, miss_penalty: 20 }
    }
}

/// Full memory-system configuration.
///
/// The defaults reproduce the simulation parameters used throughout the
/// evaluation (4-cycle L1D access as stated in §VI-b; see DESIGN.md for
/// the full table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// First-level data cache (VIPT in the paper; translation latency is
    /// hidden for loads).
    pub l1d: CacheGeometry,
    /// Unified second-level cache.
    pub l2: CacheGeometry,
    /// DRAM behind the L2.
    pub dram: DramConfig,
    /// Data TLB consulted by `AGI` µops.
    pub tlb: TlbConfig,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig {
            l1d: CacheGeometry { sets: 64, ways: 8, line_bytes: 64, latency: 4 },
            l2: CacheGeometry { sets: 1024, ways: 16, line_bytes: 64, latency: 12 },
            dram: DramConfig::default(),
            tlb: TlbConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_l1_is_32k_4cycle() {
        let c = MemConfig::default();
        assert_eq!(c.l1d.sets * c.l1d.ways * c.l1d.line_bytes as usize, 32 * 1024);
        assert_eq!(c.l1d.latency, 4);
    }

    #[test]
    fn default_l2_is_1m() {
        let c = MemConfig::default();
        assert_eq!(c.l2.sets * c.l2.ways * c.l2.line_bytes as usize, 1024 * 1024);
    }

    #[test]
    fn dram_penalties_ordered() {
        let d = DramConfig::default();
        assert!(d.row_conflict_penalty > d.row_miss_penalty);
    }
}
