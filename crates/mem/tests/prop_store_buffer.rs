//! Property tests for the store buffer: under both consistency models,
//! draining any store sequence leaves memory exactly as applying the
//! stores in program order would, commits report SSNs in order, and
//! occupancy never exceeds capacity.
//!
//! Random store sequences come from the deterministic
//! [`dmdp_prng::Prng`] stream; the (consistency × coalescing) space is
//! enumerated exhaustively for every sequence.

use dmdp_isa::{MemWidth, SparseMem};
use dmdp_mem::{Consistency, MemConfig, MemHierarchy, SbEntry, StoreBuffer};
use dmdp_prng::Prng;

#[derive(Debug, Clone)]
struct St {
    addr: u32,
    width: MemWidth,
    value: u32,
}

fn arb_store(r: &mut Prng) -> St {
    let width = match r.below(3) {
        0 => MemWidth::Byte,
        1 => MemWidth::Half,
        _ => MemWidth::Word,
    };
    St { addr: 0x1_0000 + r.below(64) * 4, width, value: r.next_u32() }
}

fn drain_all(
    sb: &mut StoreBuffer,
    mem: &mut MemHierarchy,
    data: &mut SparseMem,
    start: u64,
) -> Vec<u32> {
    let mut committed = Vec::new();
    let mut cycle = start;
    while !sb.is_empty() {
        sb.tick(cycle, mem, data, &mut committed);
        cycle += 1;
        assert!(cycle < start + 1_000_000, "drain must terminate");
    }
    committed
}

fn run_model(stores: &[St], consistency: Consistency, coalesce: bool) -> (SparseMem, Vec<u32>) {
    let mut mem = MemHierarchy::new(MemConfig::default());
    let mut data = SparseMem::new();
    let mut sb = StoreBuffer::new(8, consistency);
    let mut committed = Vec::new();
    let mut cycle = 0u64;
    for (i, s) in stores.iter().enumerate() {
        let entry = SbEntry::new(i as u32 + 1, s.addr, s.width, s.value);
        while !sb.push(entry, coalesce) {
            sb.tick(cycle, &mut mem, &mut data, &mut committed);
            cycle += 1;
            assert!(cycle < 1_000_000, "a full buffer must drain");
        }
        assert!(sb.occupancy() <= sb.capacity());
    }
    committed.extend(drain_all(&mut sb, &mut mem, &mut data, cycle));
    (data, committed)
}

fn reference(stores: &[St]) -> SparseMem {
    let mut m = SparseMem::new();
    for s in stores {
        m.write(s.addr, s.width, s.value);
    }
    m
}

#[test]
fn drained_memory_matches_program_order() {
    let mut r = Prng::new(0x5B_0001);
    for _ in 0..128 {
        let n = 1 + r.index(39);
        let stores: Vec<St> = (0..n).map(|_| arb_store(&mut r)).collect();
        for consistency in [Consistency::Tso, Consistency::Rmo] {
            for coalesce in [false, true] {
                let (got, committed) = run_model(&stores, consistency, coalesce);
                let want = reference(&stores);
                for slot in 0..64u32 {
                    let a = 0x1_0000 + slot * 4;
                    assert_eq!(
                        got.read_word(a),
                        want.read_word(a),
                        "word at {a:#x} ({consistency:?}, coalesce={coalesce})"
                    );
                }
                // Commit SSNs strictly increase (prefix rule / TSO order),
                // even when coalescing skips absorbed SSNs.
                assert!(committed.windows(2).all(|w| w[0] < w[1]), "{committed:?}");
                assert_eq!(*committed.last().unwrap() as usize, stores.len());
            }
        }
    }
}
