//! Persistence tests for the content-addressed result store: round
//! trips across reopen, crash-leftover sweeping, concurrent writers of
//! one digest, and LRU size-cap eviction.

use std::path::PathBuf;
use std::sync::Arc;

use dmdp_core::{CommModel, CoreConfig};
use dmdp_harness::{JobResult, JobSpec, PlannedImage};
use dmdp_server::Store;
use dmdp_workloads::Scale;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmdp-store-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Executes one real job so the stored document is the genuine article.
fn result_for(kernel: &str, model: CommModel) -> JobResult {
    let w = dmdp_workloads::by_name(kernel, Scale::Test).unwrap();
    let image = PlannedImage::new(Arc::new(w.program));
    JobSpec::new(kernel, w.suite, model, Scale::Test, "main", CoreConfig::new(model), &image)
        .execute()
        .unwrap()
}

#[test]
fn round_trips_across_reopen() {
    let dir = tmp_dir("roundtrip");
    let fresh = result_for("lib", CommModel::Dmdp);

    let store = Store::open(&dir, None).unwrap();
    assert!(store.is_empty());
    assert!(store.get(&fresh.digest).is_none(), "miss before put");
    assert!(store.put(&fresh).unwrap(), "first put writes");
    assert!(!store.put(&fresh).unwrap(), "second put is a no-op");
    let hit = store.get(&fresh.digest).expect("hit after put");
    assert!(hit.cached, "store rows come back marked cached");
    assert!(hit.stats.is_none(), "artifacts keep only the summary");
    assert_eq!(hit.digest, fresh.digest);
    assert_eq!(hit.cycles, fresh.cycles);
    assert_eq!(hit.ipc, fresh.ipc);
    drop(store);

    // A new process (simulated by reopening) rebuilds the index by
    // scanning the tree — the result survives.
    let reopened = Store::open(&dir, None).unwrap();
    assert_eq!(reopened.len(), 1);
    assert!(reopened.contains(&fresh.digest));
    let hit = reopened.get(&fresh.digest).expect("hit across reopen");
    assert_eq!(hit.cycles, fresh.cycles);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn startup_scan_sweeps_crash_leftovers() {
    let dir = tmp_dir("crash");
    let fresh = result_for("mcf", CommModel::Baseline);
    {
        let store = Store::open(&dir, None).unwrap();
        store.put(&fresh).unwrap();
    }
    // Simulate a writer that died mid-put: a temporary next to the real
    // entry, plus stray files that are not store entries at all.
    let shard = dir.join(&fresh.digest[..2]);
    let tmp = shard.join(format!("{}.json.tmp.7", fresh.digest));
    std::fs::write(&tmp, "{\"half\": writ").unwrap();
    std::fs::write(shard.join("README"), "not an entry").unwrap();
    std::fs::write(shard.join("UPPERCASE0DIGEST.json"), "{}").unwrap();

    let store = Store::open(&dir, None).unwrap();
    assert!(!tmp.exists(), "crash leftovers are swept on startup");
    assert_eq!(store.len(), 1, "only the real entry is indexed");
    assert!(store.get(&fresh.digest).is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_writers_of_one_digest_agree() {
    let dir = tmp_dir("racers");
    let fresh = result_for("hmmer", CommModel::Dmdp);
    let store = Store::open(&dir, None).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| store.put(&fresh).expect("concurrent put must not error"));
        }
    });
    assert_eq!(store.len(), 1, "eight writers, one entry");
    let hit = store.get(&fresh.digest).expect("entry parses after the race");
    assert_eq!(hit.cycles, fresh.cycles);
    let stats = store.stats();
    assert_eq!(stats.entries, 1);
    assert!(stats.writes >= 1);
    // Byte accounting survived any double-insert: the index total equals
    // the one file's size.
    let on_disk = std::fs::metadata(store.path_of(&fresh.digest)).unwrap().len();
    assert_eq!(stats.bytes, on_disk);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn blobs_ride_the_tree_without_joining_the_index() {
    let dir = tmp_dir("blobs");
    let store = Store::open(&dir, None).unwrap();
    let digest = "00c0ffee00c0ffee";
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    assert!(store.get_blob(digest).is_none(), "miss before put");
    assert!(store.put_blob(digest, &payload).unwrap(), "first put writes");
    assert!(!store.put_blob(digest, &payload).unwrap(), "second put is a no-op");
    assert_eq!(store.get_blob(digest).unwrap(), payload);
    assert!(store.put_blob("not a digest!!", &payload).is_err());
    assert!(store.get_blob("not a digest!!").is_none());
    // Blobs are invisible to the result index and its byte accounting.
    assert!(store.is_empty(), "blobs are not index entries");
    assert_eq!(store.stats().bytes, 0, "blob bytes never count against the LRU cap");
    drop(store);

    // Blobs survive a reopen (still outside the index), and a crashed
    // blob writer's temporary is swept by the same startup pass that
    // cleans result temporaries.
    let tmp = dir.join(&digest[..2]).join(format!("{digest}.ckpt.tmp.3"));
    std::fs::write(&tmp, b"half a blob").unwrap();
    let reopened = Store::open(&dir, None).unwrap();
    assert!(!tmp.exists(), "blob temporaries are swept on startup");
    assert_eq!(reopened.len(), 0);
    assert_eq!(reopened.get_blob(digest).unwrap(), payload);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn size_cap_evicts_least_recently_used() {
    let dir = tmp_dir("lru");
    let results: Vec<JobResult> = [
        ("lib", CommModel::Baseline),
        ("lib", CommModel::Dmdp),
        ("mcf", CommModel::Baseline),
        ("mcf", CommModel::Dmdp),
    ]
    .into_iter()
    .map(|(k, m)| result_for(k, m))
    .collect();
    let entry_bytes = results[0].to_json().pretty().len() as u64;
    // Room for two entries and change — never four.
    let cap = entry_bytes * 5 / 2;

    let store = Store::open(&dir, Some(cap)).unwrap();
    for r in &results {
        store.put(r).unwrap();
    }
    assert!(store.len() <= 2, "cap holds at most two entries");
    assert!(
        store.contains(&results[3].digest),
        "the most recently written entry is never the victim"
    );
    assert!(!store.contains(&results[0].digest), "the oldest entry was evicted");
    assert!(
        !store.path_of(&results[0].digest).exists(),
        "eviction deletes the file, not just the index entry"
    );
    assert!(store.stats().evictions >= 2);

    // Touching an entry protects it from the next eviction round.
    let keep = &results[2];
    if store.contains(&keep.digest) {
        store.get(&keep.digest).unwrap();
        store.put(&result_for("hmmer", CommModel::Dmdp)).unwrap();
        assert!(store.contains(&keep.digest), "recently-read entry survives");
    }

    // Reopening under the same cap keeps the tree within it.
    drop(store);
    let reopened = Store::open(&dir, Some(cap)).unwrap();
    assert!(reopened.stats().bytes <= cap);
    std::fs::remove_dir_all(&dir).ok();
}
