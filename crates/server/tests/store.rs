//! Persistence tests for the content-addressed result store: round
//! trips across reopen, crash-leftover sweeping, concurrent writers of
//! one digest, LRU size-cap eviction, and two handles sharing one
//! directory the way a sharded daemon's coordinator and workers do.

use std::path::PathBuf;
use std::sync::Arc;

use dmdp_core::{CommModel, CoreConfig};
use dmdp_harness::{JobResult, JobSpec, PlannedImage};
use dmdp_server::Store;
use dmdp_workloads::Scale;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmdp-store-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Executes one real job so the stored document is the genuine article.
fn result_for(kernel: &str, model: CommModel) -> JobResult {
    let w = dmdp_workloads::by_name(kernel, Scale::Test).unwrap();
    let image = PlannedImage::new(Arc::new(w.program));
    JobSpec::new(kernel, w.suite, model, Scale::Test, "main", CoreConfig::new(model), &image)
        .execute()
        .unwrap()
}

#[test]
fn round_trips_across_reopen() {
    let dir = tmp_dir("roundtrip");
    let fresh = result_for("lib", CommModel::Dmdp);

    let store = Store::open(&dir, None).unwrap();
    assert!(store.is_empty());
    assert!(store.get(&fresh.digest).is_none(), "miss before put");
    assert!(store.put(&fresh).unwrap(), "first put writes");
    assert!(!store.put(&fresh).unwrap(), "second put is a no-op");
    let hit = store.get(&fresh.digest).expect("hit after put");
    assert!(hit.cached, "store rows come back marked cached");
    assert!(hit.stats.is_none(), "artifacts keep only the summary");
    assert_eq!(hit.digest, fresh.digest);
    assert_eq!(hit.cycles, fresh.cycles);
    assert_eq!(hit.ipc, fresh.ipc);
    drop(store);

    // A new process (simulated by reopening) rebuilds the index by
    // scanning the tree — the result survives.
    let reopened = Store::open(&dir, None).unwrap();
    assert_eq!(reopened.len(), 1);
    assert!(reopened.contains(&fresh.digest));
    let hit = reopened.get(&fresh.digest).expect("hit across reopen");
    assert_eq!(hit.cycles, fresh.cycles);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn startup_scan_sweeps_crash_leftovers() {
    let dir = tmp_dir("crash");
    let fresh = result_for("mcf", CommModel::Baseline);
    {
        let store = Store::open(&dir, None).unwrap();
        store.put(&fresh).unwrap();
    }
    // Simulate a writer that died mid-put: a temporary next to the real
    // entry, plus stray files that are not store entries at all.
    let shard = dir.join(&fresh.digest[..2]);
    let tmp = shard.join(format!("{}.json.tmp.7", fresh.digest));
    std::fs::write(&tmp, "{\"half\": writ").unwrap();
    std::fs::write(shard.join("README"), "not an entry").unwrap();
    std::fs::write(shard.join("UPPERCASE0DIGEST.json"), "{}").unwrap();

    let store = Store::open(&dir, None).unwrap();
    assert!(!tmp.exists(), "crash leftovers are swept on startup");
    assert_eq!(store.len(), 1, "only the real entry is indexed");
    assert!(store.get(&fresh.digest).is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_writers_of_one_digest_agree() {
    let dir = tmp_dir("racers");
    let fresh = result_for("hmmer", CommModel::Dmdp);
    let store = Store::open(&dir, None).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| store.put(&fresh).expect("concurrent put must not error"));
        }
    });
    assert_eq!(store.len(), 1, "eight writers, one entry");
    let hit = store.get(&fresh.digest).expect("entry parses after the race");
    assert_eq!(hit.cycles, fresh.cycles);
    let stats = store.stats();
    assert_eq!(stats.entries, 1);
    assert!(stats.writes >= 1);
    // Byte accounting survived any double-insert: the index total equals
    // the one file's size.
    let on_disk = std::fs::metadata(store.path_of(&fresh.digest)).unwrap().len();
    assert_eq!(stats.bytes, on_disk);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn blobs_ride_the_tree_without_joining_the_index() {
    let dir = tmp_dir("blobs");
    let store = Store::open(&dir, None).unwrap();
    let digest = "00c0ffee00c0ffee";
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    assert!(store.get_blob(digest).is_none(), "miss before put");
    assert!(store.put_blob(digest, &payload).unwrap(), "first put writes");
    assert!(!store.put_blob(digest, &payload).unwrap(), "second put is a no-op");
    assert_eq!(store.get_blob(digest).unwrap(), payload);
    assert!(store.put_blob("not a digest!!", &payload).is_err());
    assert!(store.get_blob("not a digest!!").is_none());
    // Blobs are invisible to the result index and its byte accounting.
    assert!(store.is_empty(), "blobs are not index entries");
    assert_eq!(store.stats().bytes, 0, "blob bytes never count against the LRU cap");
    drop(store);

    // Blobs survive a reopen (still outside the index), and a crashed
    // blob writer's temporary is swept by the same startup pass that
    // cleans result temporaries.
    let tmp = dir.join(&digest[..2]).join(format!("{digest}.ckpt.tmp.3"));
    std::fs::write(&tmp, b"half a blob").unwrap();
    let reopened = Store::open(&dir, None).unwrap();
    assert!(!tmp.exists(), "blob temporaries are swept on startup");
    assert_eq!(reopened.len(), 0);
    assert_eq!(reopened.get_blob(digest).unwrap(), payload);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn size_cap_evicts_least_recently_used() {
    let dir = tmp_dir("lru");
    let results: Vec<JobResult> = [
        ("lib", CommModel::Baseline),
        ("lib", CommModel::Dmdp),
        ("mcf", CommModel::Baseline),
        ("mcf", CommModel::Dmdp),
    ]
    .into_iter()
    .map(|(k, m)| result_for(k, m))
    .collect();
    let entry_bytes = results[0].to_json().pretty().len() as u64;
    // Room for two entries and change — never four.
    let cap = entry_bytes * 5 / 2;

    let store = Store::open(&dir, Some(cap)).unwrap();
    for r in &results {
        store.put(r).unwrap();
    }
    assert!(store.len() <= 2, "cap holds at most two entries");
    assert!(
        store.contains(&results[3].digest),
        "the most recently written entry is never the victim"
    );
    assert!(!store.contains(&results[0].digest), "the oldest entry was evicted");
    assert!(
        !store.path_of(&results[0].digest).exists(),
        "eviction deletes the file, not just the index entry"
    );
    assert!(store.stats().evictions >= 2);

    // Touching an entry protects it from the next eviction round.
    let keep = &results[2];
    if store.contains(&keep.digest) {
        store.get(&keep.digest).unwrap();
        store.put(&result_for("hmmer", CommModel::Dmdp)).unwrap();
        assert!(store.contains(&keep.digest), "recently-read entry survives");
    }

    // Reopening under the same cap keeps the tree within it.
    drop(store);
    let reopened = Store::open(&dir, Some(cap)).unwrap();
    assert!(reopened.stats().bytes <= cap);
    std::fs::remove_dir_all(&dir).ok();
}

/// Two handles on one directory — the sharded-daemon arrangement, where
/// the coordinator and every worker each hold their own `Store` over the
/// same tree. Results land once and every handle sees them.
#[test]
fn two_handles_adopt_each_others_results() {
    let dir = tmp_dir("twohandle");
    let a = Store::open(&dir, None).unwrap();
    let b = Store::open(&dir, None).unwrap();
    let from_a = result_for("lib", CommModel::Dmdp);
    let from_b = result_for("mcf", CommModel::Baseline);

    assert!(a.put(&from_a).unwrap(), "first writer writes");
    assert!(b.get(&from_a.digest).is_some(), "sibling's write is adopted on get");
    assert!(!b.put(&from_a).unwrap(), "re-putting a sibling's entry adopts, never rewrites");

    assert!(b.put(&from_b).unwrap());
    assert!(a.get(&from_b.digest).is_some(), "adoption works in both directions");
    assert_eq!(a.len(), 2);
    assert_eq!(b.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// A capped handle racing a sibling's eviction: the victim's file is
/// already gone. ENOENT is the outcome eviction wanted, not an error.
#[test]
fn eviction_tolerates_a_sibling_unlinking_the_victim_first() {
    let dir = tmp_dir("enoent");
    let results: Vec<JobResult> = [
        ("lib", CommModel::Baseline),
        ("lib", CommModel::Dmdp),
        ("mcf", CommModel::Baseline),
        ("mcf", CommModel::Dmdp),
    ]
    .into_iter()
    .map(|(k, m)| result_for(k, m))
    .collect();
    let entry_bytes = results[0].to_json().pretty().len() as u64;
    let store = Store::open(&dir, Some(entry_bytes * 5 / 2)).unwrap();
    store.put(&results[0]).unwrap();
    store.put(&results[1]).unwrap();
    // A sibling process evicts the LRU entry out from under this index.
    std::fs::remove_file(store.path_of(&results[0].digest)).unwrap();
    // Overflow the cap: results[0] is the LRU victim, its file is gone.
    store.put(&results[2]).unwrap();
    store.put(&results[3]).unwrap();
    assert!(!store.contains(&results[0].digest), "the gone victim left the index");
    assert!(store.contains(&results[3].digest), "later puts landed normally");
    std::fs::remove_dir_all(&dir).ok();
}

/// A victim whose file a sibling re-landed after this handle last saw
/// it (mtime newer than the index's knowledge, within the grace window)
/// is spared — the next-oldest entry is evicted instead. Checkpoint
/// blobs share the tree but are structurally exempt from the cap.
#[test]
fn eviction_spares_freshly_relanded_entries_and_ckpt_blobs() {
    let dir = tmp_dir("grace");
    let results: Vec<JobResult> = [
        ("lib", CommModel::Baseline),
        ("lib", CommModel::Dmdp),
        ("mcf", CommModel::Baseline),
        ("mcf", CommModel::Dmdp),
    ]
    .into_iter()
    .map(|(k, m)| result_for(k, m))
    .collect();
    let entry_bytes = results[0].to_json().pretty().len() as u64;
    let store = Store::open(&dir, Some(entry_bytes * 5 / 2)).unwrap();
    let blob_digest = "feedfacefeedface";
    store.put_blob(blob_digest, &[7u8; 2048]).unwrap();
    store.put(&results[0]).unwrap();
    store.put(&results[1]).unwrap();
    // A sibling re-lands the LRU entry (same digest, same bytes) after
    // our index last saw it; the file's mtime moves past `seen`.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let text = std::fs::read_to_string(store.path_of(&results[0].digest)).unwrap();
    std::fs::write(store.path_of(&results[0].digest), text).unwrap();
    // Overflow the cap. results[0] is the LRU candidate but was just
    // re-landed, so the eviction passes over it.
    store.put(&results[2]).unwrap();
    store.put(&results[3]).unwrap();
    assert!(
        store.contains(&results[0].digest),
        "an entry a sibling just re-landed is never the victim"
    );
    assert!(store.path_of(&results[0].digest).exists());
    assert!(
        !store.contains(&results[1].digest),
        "the next-oldest unprotected entry was evicted instead"
    );
    assert_eq!(
        store.get_blob(blob_digest).unwrap(),
        vec![7u8; 2048],
        "checkpoint blobs never count against the cap and are never evicted"
    );
    std::fs::remove_dir_all(&dir).ok();
}
