//! End-to-end daemon tests: an in-process [`serve`] on a temp-dir unix
//! socket, talked to through the real [`Client`] — store reuse across
//! submits, in-flight dedup across concurrent clients, graceful drain on
//! shutdown, and protocol-error isolation.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use dmdp_core::CommModel;
use dmdp_harness::{CfgPatch, Json, Sampling};
use dmdp_server::{serve, Client, DaemonReport, ServeOptions, SubmitRequest};
use dmdp_workloads::Scale;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmdp-daemon-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn serve_opts(dir: &Path) -> ServeOptions {
    ServeOptions {
        socket: dir.join("dmdp.sock"),
        tcp: None,
        store_dir: dir.join("store"),
        jobs: 2,
        store_cap_bytes: None,
        quiet: true,
        log: Some(dir.join("events.jsonl")),
        log_level: dmdp_obs::log::Level::Debug,
        slow_job_ms: None,
        workers: 0,
        accept_workers: false,
        worker_exe: None,
    }
}

/// Connects to the daemon, waiting for it to finish binding.
fn connect(socket: &Path) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut client) = Client::connect_unix(socket) {
            if client.ping().is_ok() {
                return client;
            }
        }
        assert!(Instant::now() < deadline, "daemon never came up on {}", socket.display());
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn small_request(name: &str) -> SubmitRequest {
    SubmitRequest {
        kernels: Some(vec!["lib".into(), "hmmer".into()]),
        models: vec![CommModel::Baseline, CommModel::Dmdp],
        watch: true,
        ..SubmitRequest::new(name, Scale::Test)
    }
}

#[test]
fn second_submit_is_satisfied_entirely_from_the_store() {
    let dir = tmp_dir("resubmit");
    let opts = serve_opts(&dir);
    let daemon = std::thread::spawn({
        let opts = opts.clone();
        move || serve(&opts).unwrap()
    });
    let mut client = connect(&opts.socket);

    let mut events: Vec<String> = Vec::new();
    let cold = client
        .submit(&small_request("cold"), |ev| {
            if ev.get("type").and_then(Json::as_str) == Some("finished") {
                events.push(
                    ev.get("source").and_then(Json::as_str).unwrap_or("?").to_string(),
                );
            }
        })
        .unwrap();
    assert_eq!(cold.jobs.len(), 4);
    assert_eq!(cold.executed, 4);
    assert_eq!(cold.cached, 0);
    assert_eq!(events, ["executed"; 4], "cold jobs are all freshly executed");
    assert!(cold.jobs.iter().all(|j| !j.cached));

    events.clear();
    let warm = client
        .submit(&small_request("warm"), |ev| {
            if ev.get("type").and_then(Json::as_str) == Some("finished") {
                events.push(
                    ev.get("source").and_then(Json::as_str).unwrap_or("?").to_string(),
                );
            }
        })
        .unwrap();
    assert_eq!(warm.executed, 0, "second identical submit executes nothing");
    assert_eq!(warm.cached, 4);
    assert_eq!(events, ["store"; 4], "every job came from the persistent store");
    assert!(warm.jobs.iter().all(|j| j.cached));
    for (a, b) in cold.jobs.iter().zip(&warm.jobs) {
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.ipc, b.ipc);
    }

    client.shutdown().unwrap();
    let report = daemon.join().unwrap();
    assert_eq!(report, DaemonReport {
        requests: report.requests,
        submits: 2,
        executed: 4,
        store_hits: 4,
        dedup_hits: 0,
    });
    assert!(!opts.socket.exists(), "socket file is removed on exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn results_survive_a_daemon_restart() {
    let dir = tmp_dir("restart");
    let opts = serve_opts(&dir);
    let daemon = std::thread::spawn({
        let opts = opts.clone();
        move || serve(&opts).unwrap()
    });
    let mut client = connect(&opts.socket);
    let cold = client.submit(&small_request("gen1"), |_| {}).unwrap();
    client.shutdown().unwrap();
    daemon.join().unwrap();

    // A brand-new daemon over the same store directory rebuilds its
    // index from disk — the warm submit still executes nothing.
    let daemon = std::thread::spawn({
        let opts = opts.clone();
        move || serve(&opts).unwrap()
    });
    let mut client = connect(&opts.socket);
    let warm = client.submit(&small_request("gen2"), |_| {}).unwrap();
    assert_eq!(warm.executed, 0);
    assert_eq!(warm.cached, cold.jobs.len());
    client.shutdown().unwrap();
    let report = daemon.join().unwrap();
    assert_eq!(report.executed, 0);
    assert_eq!(report.store_hits, 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_clients_simulate_each_digest_at_most_once() {
    let dir = tmp_dir("dedup");
    let opts = serve_opts(&dir);
    let daemon = std::thread::spawn({
        let opts = opts.clone();
        move || serve(&opts).unwrap()
    });
    connect(&opts.socket);

    // Four clients race identical overlapping sweeps (4 distinct
    // digests). Whatever the interleaving — in-flight waits or store
    // hits — each digest is simulated at most once.
    let socket = opts.socket.clone();
    std::thread::scope(|scope| {
        for i in 0..4 {
            let socket = socket.clone();
            scope.spawn(move || {
                let mut client = connect(&socket);
                let campaign =
                    client.submit(&small_request(&format!("racer-{i}")), |_| {}).unwrap();
                assert_eq!(campaign.jobs.len(), 4);
                assert_eq!(campaign.executed + campaign.cached, 4);
            });
        }
    });

    let mut client = connect(&opts.socket);
    let stats = client.stats().unwrap();
    let counter = |k: &str| stats.get(k).and_then(Json::as_u64).unwrap_or_else(|| panic!("{k}"));
    assert_eq!(counter("executed"), 4, "4 distinct digests, 4 simulations total");
    assert_eq!(counter("submits"), 4);
    assert_eq!(
        counter("store_hits") + counter("dedup_hits"),
        12,
        "the other 12 job slots were shared, not re-simulated"
    );
    client.shutdown().unwrap();
    let report = daemon.join().unwrap();
    assert_eq!(report.executed, 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_drains_a_running_submit() {
    let dir = tmp_dir("drain");
    let opts = serve_opts(&dir);
    let daemon = std::thread::spawn({
        let opts = opts.clone();
        move || serve(&opts).unwrap()
    });
    connect(&opts.socket);

    // Client A submits the full 21-kernel campaign and signals as soon
    // as the first job event arrives — the submit is then provably in
    // flight when client B asks the daemon to shut down.
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    let socket = opts.socket.clone();
    let submitter = std::thread::spawn(move || {
        let mut client = connect(&socket);
        let req = SubmitRequest {
            models: vec![CommModel::Dmdp],
            watch: true,
            ..SubmitRequest::new("draining", Scale::Test)
        };
        let mut signalled = false;
        client.submit(&req, |_| {
            if !signalled {
                signalled = true;
                tx.send(()).unwrap();
            }
        })
    });
    rx.recv_timeout(Duration::from_secs(30)).expect("submit started");

    let mut client = connect(&opts.socket);
    client.shutdown().expect("shutdown acknowledges after the drain");

    let campaign = submitter
        .join()
        .unwrap()
        .expect("the in-flight submit still completes with its full artifact");
    assert_eq!(campaign.jobs.len(), 21, "drain delivered every job");
    let report = daemon.join().unwrap();
    assert_eq!(report.submits, 1);
    assert!(!opts.socket.exists());

    // The daemon is really gone: connecting fails.
    assert!(Client::connect_unix(&opts.socket).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_garbage_gets_an_error_and_spares_the_daemon() {
    let dir = tmp_dir("garbage");
    let opts = serve_opts(&dir);
    let daemon = std::thread::spawn({
        let opts = opts.clone();
        move || serve(&opts).unwrap()
    });
    connect(&opts.socket);

    // A raw connection speaking nonsense gets a structured error reply.
    let mut raw = UnixStream::connect(&opts.socket).unwrap();
    raw.write_all(b"this is not json\n").unwrap();
    raw.flush().unwrap();
    let mut line = String::new();
    BufReader::new(raw.try_clone().unwrap()).read_line(&mut line).unwrap();
    let reply = Json::parse(line.trim_end()).unwrap();
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));
    drop(raw);

    // An unparseable-but-valid-JSON request also errors, with detail.
    let mut raw = UnixStream::connect(&opts.socket).unwrap();
    raw.write_all(b"{\"type\": \"launch\"}\n").unwrap();
    raw.flush().unwrap();
    let mut line = String::new();
    BufReader::new(raw.try_clone().unwrap()).read_line(&mut line).unwrap();
    let reply = Json::parse(line.trim_end()).unwrap();
    assert!(
        reply.get("message").and_then(Json::as_str).unwrap().contains("launch"),
        "{line}"
    );
    drop(raw);

    // The daemon survived both and still serves well-formed clients.
    let mut client = connect(&opts.socket);
    assert!(client.ping().is_ok());
    client.shutdown().unwrap();
    daemon.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The value of one Prometheus sample line (`name{labels} value`), or
/// 0 when the series has not been registered yet — the registry is
/// process-wide, so tests assert deltas, never absolutes.
fn prom_value(text: &str, series: &str) -> f64 {
    text.lines()
        .find_map(|l| {
            let (name, val) = l.rsplit_once(' ')?;
            (name == series).then(|| val.parse::<f64>().ok())?
        })
        .unwrap_or(0.0)
}

#[test]
fn metrics_are_exposed_over_http_and_protocol_during_a_live_sweep() {
    let dir = tmp_dir("metrics");
    let mut opts = serve_opts(&dir);
    opts.tcp = Some("127.0.0.1:0".into());
    let daemon = std::thread::spawn({
        let opts = opts.clone();
        move || serve(&opts).unwrap()
    });
    let mut client = connect(&opts.socket);

    // The ephemeral TCP port is announced in the `listening` event.
    let log_path = dir.join("events.jsonl");
    let addr = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let found = std::fs::read_to_string(&log_path).ok().and_then(|text| {
                text.lines().find_map(|l| {
                    let v = Json::parse(l).ok()?;
                    if v.get("event").and_then(Json::as_str) != Some("listening") {
                        return None;
                    }
                    v.get("tcp").and_then(Json::as_str).map(str::to_string)
                })
            });
            if let Some(addr) = found {
                break addr;
            }
            assert!(
                Instant::now() < deadline,
                "no listening event in {}",
                log_path.display()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    let baseline = dmdp_server::scrape_metrics_tcp(&addr).unwrap();

    // A multi-variant sweep, so the daemon runs batched lockstep units.
    let req = SubmitRequest {
        kernels: Some(vec!["lib".into(), "hmmer".into()]),
        models: vec![CommModel::Baseline, CommModel::Dmdp],
        variants: vec![
            ("main".into(), CfgPatch::default()),
            ("rob48".into(), CfgPatch { rob: Some(48), ..CfgPatch::default() }),
            ("w2".into(), CfgPatch { width: Some(2), ..CfgPatch::default() }),
        ],
        watch: true,
        ..SubmitRequest::new("metrics-sweep", Scale::Test)
    };
    let mut live_scrape = None;
    let campaign = client
        .submit(&req, |ev| {
            if live_scrape.is_none()
                && ev.get("type").and_then(Json::as_str) == Some("started")
            {
                live_scrape = Some(dmdp_server::scrape_metrics_tcp(&addr).unwrap());
            }
        })
        .unwrap();
    assert_eq!(campaign.jobs.len(), 12);
    let live = live_scrape.expect("scraped mid-sweep");

    // Well-formed exposition: one # TYPE per family, every sample line
    // resolves to a declared family.
    let mut families = std::collections::HashSet::new();
    for l in live.lines().filter(|l| l.starts_with("# TYPE ")) {
        let name = l.split_whitespace().nth(2).unwrap();
        assert!(families.insert(name.to_string()), "duplicate # TYPE for {name}:\n{live}");
    }
    assert!(families.contains("dmdp_requests_total"), "{live}");
    assert!(families.contains("dmdp_queue_wait_us"), "{live}");
    for l in live.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let metric = l.split([' ', '{']).next().unwrap();
        let family = metric
            .strip_suffix("_bucket")
            .or_else(|| metric.strip_suffix("_sum"))
            .or_else(|| metric.strip_suffix("_count"))
            .unwrap_or(metric);
        assert!(
            families.contains(family) || families.contains(metric),
            "sample {metric} has no # TYPE family:\n{live}"
        );
    }

    // Counters advanced across the sweep (deltas only: the registry is
    // process-wide, so other tests in this binary also write to it).
    let after = dmdp_server::scrape_metrics_tcp(&addr).unwrap();
    assert!(
        prom_value(&after, "dmdp_jobs_total{source=\"executed\"}")
            >= prom_value(&baseline, "dmdp_jobs_total{source=\"executed\"}") + 12.0,
        "12 fresh jobs executed:\n{after}"
    );
    assert!(
        prom_value(&after, "dmdp_batch_units_total")
            > prom_value(&baseline, "dmdp_batch_units_total"),
        "multi-variant sweep ran batched units:\n{after}"
    );
    assert!(
        prom_value(&after, "dmdp_sim_exec_us_count")
            >= prom_value(&baseline, "dmdp_sim_exec_us_count") + 12.0,
        "per-lane exec latency observed:\n{after}"
    );
    assert!(
        prom_value(&after, "dmdp_queue_wait_us_count")
            > prom_value(&baseline, "dmdp_queue_wait_us_count"),
        "queue-wait observed per pool unit:\n{after}"
    );
    assert!(
        prom_value(&after, "dmdp_requests_total{type=\"submit\"}") >= 1.0,
        "{after}"
    );

    // The same snapshot over the NDJSON protocol.
    let msg = client.metrics().unwrap();
    let entries = msg.get("metrics").and_then(Json::as_arr).unwrap();
    assert!(
        entries
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("dmdp_requests_total")),
        "protocol snapshot lists request counters"
    );
    let hist = entries
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("dmdp_queue_wait_us"))
        .expect("queue-wait histogram in protocol snapshot");
    assert!(hist.get("count").and_then(Json::as_u64).unwrap() > 0);
    assert!(!hist.get("buckets").and_then(Json::as_arr).unwrap().is_empty());

    // The artifact's trace id greps straight back to the daemon events.
    let trace = campaign.trace_id.clone().expect("daemon artifacts carry a trace id");
    let events = std::fs::read_to_string(&log_path).unwrap();
    assert!(
        events.lines().any(|l| l.contains("submit_done") && l.contains(&trace)),
        "trace {trace} not found in {}",
        log_path.display()
    );
    assert!(
        dmdp_harness::render_campaign(&campaign).contains(&trace),
        "report names the daemon trace"
    );

    // Non-/metrics HTTP paths 404 without killing the daemon.
    assert!(dmdp_server::scrape_metrics_tcp(&addr).is_ok());
    client.shutdown().unwrap();
    daemon.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sampled_submits_share_one_bundle_through_the_store() {
    let dir = tmp_dir("sampled");
    let opts = serve_opts(&dir);
    let daemon = std::thread::spawn({
        let opts = opts.clone();
        move || serve(&opts).unwrap()
    });
    let mut client = connect(&opts.socket);

    let sampling = Sampling { interval_insns: 1000, warmup_intervals: 2 };
    let sampled_req = |name: &str| SubmitRequest {
        kernels: Some(vec!["lib".into()]),
        models: vec![CommModel::Baseline, CommModel::Dmdp],
        sampling: Some(sampling),
        ..SubmitRequest::new(name, Scale::Test)
    };
    let cold = client.submit(&sampled_req("sampled-cold"), |_| {}).unwrap();
    assert_eq!(cold.jobs.len(), 2);
    assert_eq!(cold.executed, 2);
    assert_eq!(cold.sampling, Some(sampling), "artifact carries the sampling knobs");
    assert!(cold.jobs.iter().all(|j| j.sampled && j.intervals_simulated > 0));

    // One workload, two models — the bundle is profiled once and both
    // models simulate from the same persisted checkpoints.
    let ckpt_blobs = || {
        let mut n = 0;
        for dir in std::fs::read_dir(&opts.store_dir).unwrap().flatten() {
            if let Ok(files) = std::fs::read_dir(dir.path()) {
                n += files
                    .flatten()
                    .filter(|f| f.path().extension().is_some_and(|e| e == "ckpt"))
                    .count();
            }
        }
        n
    };
    assert_eq!(ckpt_blobs(), 1, "exactly one checkpoint bundle persisted");

    // A second identical sampled submit is pure store hits.
    let warm = client.submit(&sampled_req("sampled-warm"), |_| {}).unwrap();
    assert_eq!(warm.executed, 0);
    assert_eq!(warm.cached, 2);

    // The full (unsampled) submit of the same kernels has disjoint
    // digests — sampled results never shadow full results.
    let full = client
        .submit(
            &SubmitRequest {
                kernels: Some(vec!["lib".into()]),
                models: vec![CommModel::Baseline, CommModel::Dmdp],
                ..SubmitRequest::new("full", Scale::Test)
            },
            |_| {},
        )
        .unwrap();
    assert_eq!(full.executed, 2, "full runs are not satisfied by sampled results");
    for (s, f) in cold.jobs.iter().zip(&full.jobs) {
        assert_ne!(s.digest, f.digest);
        assert!(!f.sampled);
    }
    client.shutdown().unwrap();
    daemon.join().unwrap();

    // A restarted daemon reuses the persisted bundle: a new variant
    // forces fresh job digests, but the profile/checkpoint pass is a
    // blob hit, not a rebuild.
    let daemon = std::thread::spawn({
        let opts = opts.clone();
        move || serve(&opts).unwrap()
    });
    let mut client = connect(&opts.socket);
    let rerun = client
        .submit(
            &SubmitRequest {
                variants: vec![("rob48".into(), CfgPatch { rob: Some(48), ..CfgPatch::default() })],
                ..sampled_req("sampled-variant")
            },
            |_| {},
        )
        .unwrap();
    assert_eq!(rerun.executed, 2);
    assert_eq!(ckpt_blobs(), 1, "restart reused the persisted bundle");
    client.shutdown().unwrap();
    daemon.join().unwrap();

    let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    let count = |ev: &str| events.lines().filter(|l| l.contains(ev)).count();
    assert_eq!(count("bundle_built"), 1, "one fresh bundle build across both daemons");
    assert!(count("bundle_hit") >= 1, "the restarted daemon hit the blob store");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn submit_with_unknown_kernel_is_a_request_error_not_a_hangup() {
    let dir = tmp_dir("badkernel");
    let opts = serve_opts(&dir);
    let daemon = std::thread::spawn({
        let opts = opts.clone();
        move || serve(&opts).unwrap()
    });
    let mut client = connect(&opts.socket);

    let bad = SubmitRequest {
        kernels: Some(vec!["nope".into()]),
        ..SubmitRequest::new("bad", Scale::Test)
    };
    let err = client.submit(&bad, |_| {}).unwrap_err();
    assert!(err.contains("nope"), "{err}");
    assert!(err.contains("valid kernels"), "{err}");

    // Same connection keeps working after a request-level error.
    let ok = client.submit(&small_request("after-error"), |_| {}).unwrap();
    assert_eq!(ok.jobs.len(), 4);
    client.shutdown().unwrap();
    daemon.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Waits for the daemon's `listening` event and returns its TCP address.
fn tcp_addr_of(log_path: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let found = std::fs::read_to_string(log_path).ok().and_then(|text| {
            text.lines().find_map(|l| {
                let v = Json::parse(l).ok()?;
                if v.get("event").and_then(Json::as_str) != Some("listening") {
                    return None;
                }
                v.get("tcp").and_then(Json::as_str).map(str::to_string)
            })
        });
        if let Some(addr) = found {
            return addr;
        }
        assert!(Instant::now() < deadline, "no listening event in {}", log_path.display());
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A real in-process worker (the exact `dmdp worker` code path) against
/// an accepting coordinator: jobs flow out as dispatched groups, results
/// flow back, the drain order stops the worker cleanly.
#[test]
fn registered_worker_executes_the_dispatched_groups() {
    let dir = tmp_dir("realworker");
    let mut opts = serve_opts(&dir);
    opts.tcp = Some("127.0.0.1:0".into());
    opts.accept_workers = true;
    let daemon = std::thread::spawn({
        let opts = opts.clone();
        move || serve(&opts).unwrap()
    });
    let mut client = connect(&opts.socket);
    let addr = tcp_addr_of(&dir.join("events.jsonl"));

    let worker = std::thread::spawn({
        let worker_opts = dmdp_server::WorkerOptions {
            connect: addr,
            store_dir: opts.store_dir.clone(),
            jobs: 2,
            cores: Vec::new(),
            name: "test-worker".into(),
            connect_retries: 5,
            quiet: true,
        };
        move || dmdp_server::run_worker(&worker_opts).unwrap()
    });

    // Give the registration a moment; dispatch only needs it to be in
    // the worker table by the time `execute_unit` picks a placement, and
    // the submit below busy-waits on that through the stats document.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().unwrap();
        if stats.get("workers").and_then(Json::as_u64) == Some(1) {
            break;
        }
        assert!(Instant::now() < deadline, "worker never registered");
        std::thread::sleep(Duration::from_millis(10));
    }

    let campaign = client.submit(&small_request("sharded"), |_| {}).unwrap();
    assert_eq!(campaign.jobs.len(), 4);
    assert_eq!(campaign.executed, 4);
    assert!(campaign.jobs.iter().all(|j| !j.cached));

    // A second submit is pure store hits — the worker's writes landed in
    // the shared store under the same digests.
    let warm = client.submit(&small_request("sharded-warm"), |_| {}).unwrap();
    assert_eq!(warm.executed, 0);
    assert_eq!(warm.cached, 4);

    client.shutdown().unwrap();
    let report = daemon.join().unwrap();
    let worker_report = worker.join().unwrap();
    assert_eq!(report.executed, 4, "coordinator counted the worker's executions");
    assert!(worker_report.groups >= 1, "the worker saw at least one group");
    assert_eq!(worker_report.executed, 4, "every execution happened on the worker");

    let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    for ev in ["worker_registered", "dispatch", "worker_gone"] {
        assert!(events.lines().any(|l| l.contains(ev)), "no {ev} event:\n{events}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A worker that dies holding a dispatched group: the coordinator
/// requeues the orphaned digests and the submit still completes — here
/// by falling back in-process, since no other worker is registered.
#[test]
fn dead_workers_groups_are_requeued() {
    use dmdp_server::protocol::{register_msg, WorkerHello, PROTOCOL_VERSION};
    let dir = tmp_dir("deadworker");
    let mut opts = serve_opts(&dir);
    opts.accept_workers = true;
    let daemon = std::thread::spawn({
        let opts = opts.clone();
        move || serve(&opts).unwrap()
    });
    connect(&opts.socket);

    // A hand-rolled worker over a raw socket: registers correctly, reads
    // its first group dispatch, then drops dead without answering.
    let mut raw = UnixStream::connect(&opts.socket).unwrap();
    let hello = WorkerHello {
        protocol: PROTOCOL_VERSION,
        sim_version: dmdp_core::SIM_VERSION.to_string(),
        name: "doomed".into(),
        jobs: 2,
        cores: Vec::new(),
    };
    raw.write_all((register_msg(&hello).compact() + "\n").as_bytes()).unwrap();
    raw.flush().unwrap();
    let mut lines = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    lines.read_line(&mut line).unwrap();
    let reply = Json::parse(line.trim_end()).unwrap();
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("registered"));

    let submitter = std::thread::spawn({
        let socket = opts.socket.clone();
        move || {
            let mut client = connect(&socket);
            client.submit(&small_request("survives"), |_| {}).unwrap()
        }
    });

    // Wait for a group to land on the doomed worker, then kill it.
    line.clear();
    lines.read_line(&mut line).unwrap();
    let group = Json::parse(line.trim_end()).unwrap();
    assert_eq!(group.get("type").and_then(Json::as_str), Some("group"));
    drop(lines);
    drop(raw);

    let campaign = submitter.join().unwrap();
    assert_eq!(campaign.jobs.len(), 4, "the submit completed despite the dead worker");
    assert_eq!(campaign.executed, 4);

    let mut client = connect(&opts.socket);
    client.shutdown().unwrap();
    daemon.join().unwrap();
    let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    assert!(events.lines().any(|l| l.contains("worker_lost")), "{events}");
    assert!(events.lines().any(|l| l.contains("requeue")), "{events}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Version-skewed or unexpected registrations are refused with a
/// structured error — a mismatched worker must never receive work, or
/// digests would silently disagree.
#[test]
fn mismatched_worker_registrations_are_refused() {
    use dmdp_server::protocol::{register_msg, WorkerHello, PROTOCOL_VERSION};
    let try_register = |socket: &Path, hello: &WorkerHello| -> String {
        let mut raw = UnixStream::connect(socket).unwrap();
        raw.write_all((register_msg(hello).compact() + "\n").as_bytes()).unwrap();
        raw.flush().unwrap();
        let mut line = String::new();
        BufReader::new(raw).read_line(&mut line).unwrap();
        let reply = Json::parse(line.trim_end()).unwrap();
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"), "{line}");
        reply.get("message").and_then(Json::as_str).unwrap().to_string()
    };
    let good = WorkerHello {
        protocol: PROTOCOL_VERSION,
        sim_version: dmdp_core::SIM_VERSION.to_string(),
        name: "w".into(),
        jobs: 1,
        cores: Vec::new(),
    };

    // A daemon not started with --workers/--accept-workers refuses even
    // a well-formed registration.
    let dir = tmp_dir("noworkers");
    let opts = serve_opts(&dir);
    let daemon = std::thread::spawn({
        let opts = opts.clone();
        move || serve(&opts).unwrap()
    });
    let mut client = connect(&opts.socket);
    let msg = try_register(&opts.socket, &good);
    assert!(msg.contains("not accepting"), "{msg}");
    client.shutdown().unwrap();
    daemon.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // An accepting daemon still refuses version skew, on either axis.
    let dir = tmp_dir("skew");
    let mut opts = serve_opts(&dir);
    opts.accept_workers = true;
    let daemon = std::thread::spawn({
        let opts = opts.clone();
        move || serve(&opts).unwrap()
    });
    let mut client = connect(&opts.socket);
    let msg = try_register(
        &opts.socket,
        &WorkerHello { protocol: PROTOCOL_VERSION + 1, ..good.clone() },
    );
    assert!(msg.contains("protocol"), "{msg}");
    let msg = try_register(
        &opts.socket,
        &WorkerHello { sim_version: "sim-0.0-bogus".into(), ..good.clone() },
    );
    assert!(msg.contains("sim"), "{msg}");

    // The daemon shrugged all of it off and still serves clients.
    assert!(client.ping().is_ok());
    client.shutdown().unwrap();
    daemon.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
