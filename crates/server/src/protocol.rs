//! The newline-delimited JSON wire protocol between `dmdp submit` and
//! `dmdp serve`.
//!
//! Framing is one JSON document per line ([`Json::compact`] never emits
//! an embedded newline), read back with a [`LineReader`] that survives
//! socket read timeouts without losing partial lines. Everything rides
//! on `harness::json` — no new dependencies, and the documents are the
//! same shapes the campaign artifacts already use.
//!
//! Requests (client → daemon): `submit`, `stats`, `metrics`,
//! `shutdown`, `ping`. Responses (daemon → client): `started`/`finished`
//! job events (when the submit asked to watch), a final `artifact`
//! carrying the complete assembled campaign, `stats`, `metrics`, `ok`,
//! `pong`, or `error`.
//!
//! Protocol 2 adds the coordinator ↔ worker dialect for the sharded
//! service: a worker opens an ordinary connection and sends `register`
//! (carrying its protocol and [`dmdp_core::SIM_VERSION`] — the
//! handshake; a mismatch on either is answered with `error` and the
//! connection closes), the coordinator replies `registered` and then
//! streams `group` dispatches ([`GroupSpec`] — one batch unit or
//! singleton job group, keyed by a dispatch id). The worker answers
//! each with `group_done` (per-job rows: full [`JobResult`] plus its
//! source tag) or `group_failed`, and sends `heartbeat` lines while
//! idle so the coordinator can declare it dead and requeue.

use std::io::{Read, Write};

use dmdp_core::CommModel;
use dmdp_harness::json::obj;
use dmdp_harness::{CfgPatch, JobResult, Json, Sampling};
use dmdp_workloads::Scale;

/// Bumped when the wire format changes incompatibly. The daemon answers
/// `ping` with its version so clients can refuse to talk across a gap;
/// workers send theirs in `register` and are refused on a mismatch.
/// 2 = sharded-service worker dialect (PR 10).
pub const PROTOCOL_VERSION: u64 = 2;

/// A line longer than this is a protocol violation, not a message —
/// the largest legitimate document (a full-campaign artifact) is well
/// under a megabyte.
pub const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// A campaign submission: the declarative spec fields of
/// [`dmdp_harness::CampaignSpec`], plus whether the client wants per-job
/// progress events streamed back before the artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Campaign name (also the client's default artifact stem).
    pub name: String,
    /// Workload scale for every job.
    pub scale: Scale,
    /// Communication models to sweep.
    pub models: Vec<CommModel>,
    /// Workload-name filter; `None` means all 21 kernels.
    pub kernels: Option<Vec<String>>,
    /// Configuration variants as `(label, patch)`.
    pub variants: Vec<(String, CfgPatch)>,
    /// Stream `started`/`finished` events before the artifact.
    pub watch: bool,
    /// Run each (workload, model)'s variants as one batched lockstep
    /// simulation instead of independent jobs (per-variant results and
    /// digests are identical either way). Defaults to `true`; absent on
    /// the wire means `true`, so old clients get batching for free.
    pub batch_variants: bool,
    /// Run every job sampled (interval clustering + checkpoint
    /// fast-forward). Absent on the wire means full simulation, so old
    /// clients are unaffected.
    pub sampling: Option<Sampling>,
}

impl SubmitRequest {
    /// A request over all kernels, all models, the main variant.
    pub fn new(name: &str, scale: Scale) -> SubmitRequest {
        SubmitRequest {
            name: name.to_string(),
            scale,
            models: CommModel::ALL.to_vec(),
            kernels: None,
            variants: vec![("main".to_string(), CfgPatch::default())],
            watch: false,
            batch_variants: true,
            sampling: None,
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or fetch) a campaign.
    Submit(SubmitRequest),
    /// Report daemon statistics.
    Stats,
    /// Report the full metrics registry snapshot.
    Metrics,
    /// Drain running jobs, then exit.
    Shutdown,
    /// Liveness / version check.
    Ping,
}

fn patch_json(patch: &CfgPatch) -> Json {
    let mut members = Vec::new();
    let mut push = |k: &str, v: Option<usize>| {
        if let Some(n) = v {
            members.push((k.to_string(), Json::Num(n as f64)));
        }
    };
    push("width", patch.width);
    push("rob", patch.rob);
    push("prf", patch.prf);
    push("sb", patch.sb);
    if patch.rmo {
        members.push(("rmo".to_string(), Json::Bool(true)));
    }
    Json::Obj(members)
}

fn patch_from_json(v: &Json) -> Result<CfgPatch, String> {
    let dim = |k: &str| -> Result<Option<usize>, String> {
        match v.get(k) {
            None => Ok(None),
            Some(n) => n
                .as_u64()
                .map(|n| Some(n as usize))
                .ok_or_else(|| format!("patch: `{k}` must be a non-negative integer")),
        }
    };
    Ok(CfgPatch {
        width: dim("width")?,
        rob: dim("rob")?,
        prf: dim("prf")?,
        sb: dim("sb")?,
        rmo: v.get("rmo").and_then(Json::as_bool).unwrap_or(false),
    })
}

impl Request {
    /// Serializes the request to one wire document.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Stats => obj([("type", Json::Str("stats".into()))]),
            Request::Metrics => obj([("type", Json::Str("metrics".into()))]),
            Request::Shutdown => obj([("type", Json::Str("shutdown".into()))]),
            Request::Ping => obj([
                ("type", Json::Str("ping".into())),
                ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
            ]),
            Request::Submit(req) => {
                let mut members = vec![
                    ("type".to_string(), Json::Str("submit".into())),
                    ("name".to_string(), Json::Str(req.name.clone())),
                    ("scale".to_string(), Json::Str(req.scale.name().to_string())),
                    (
                        "models".to_string(),
                        Json::Arr(
                            req.models.iter().map(|m| Json::Str(m.name().to_string())).collect(),
                        ),
                    ),
                    (
                        "variants".to_string(),
                        Json::Arr(
                            req.variants
                                .iter()
                                .map(|(label, patch)| {
                                    obj([
                                        ("label", Json::Str(label.clone())),
                                        ("patch", patch_json(patch)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("watch".to_string(), Json::Bool(req.watch)),
                    ("batch_variants".to_string(), Json::Bool(req.batch_variants)),
                ];
                if let Some(kernels) = &req.kernels {
                    members.push((
                        "kernels".to_string(),
                        Json::Arr(kernels.iter().map(|k| Json::Str(k.clone())).collect()),
                    ));
                }
                if let Some(s) = req.sampling {
                    members.push((
                        "sampling".to_string(),
                        obj([
                            ("interval_insns", Json::Num(s.interval_insns as f64)),
                            ("warmup_intervals", Json::Num(s.warmup_intervals as f64)),
                        ]),
                    ));
                }
                Json::Obj(members)
            }
        }
    }

    /// Parses one wire document into a request.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        match v.get("type").and_then(Json::as_str) {
            Some("stats") => Ok(Request::Stats),
            Some("metrics") => Ok(Request::Metrics),
            Some("shutdown") => Ok(Request::Shutdown),
            Some("ping") => Ok(Request::Ping),
            Some("submit") => {
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("submit: missing `name`")?
                    .to_string();
                let scale_name =
                    v.get("scale").and_then(Json::as_str).ok_or("submit: missing `scale`")?;
                let scale = Scale::from_name(scale_name)
                    .ok_or_else(|| format!("submit: unknown scale `{scale_name}`"))?;
                let models = v
                    .get("models")
                    .and_then(Json::as_arr)
                    .ok_or("submit: missing `models` array")?
                    .iter()
                    .map(|m| {
                        let name = m.as_str().ok_or("submit: model names must be strings")?;
                        CommModel::from_name(name)
                            .ok_or_else(|| format!("submit: unknown model `{name}`"))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                if models.is_empty() {
                    return Err("submit: empty `models` array".to_string());
                }
                let kernels = match v.get("kernels") {
                    None => None,
                    Some(arr) => Some(
                        arr.as_arr()
                            .ok_or("submit: `kernels` must be an array")?
                            .iter()
                            .map(|k| {
                                k.as_str()
                                    .map(str::to_string)
                                    .ok_or_else(|| "submit: kernel names must be strings".to_string())
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                    ),
                };
                let variants = match v.get("variants") {
                    None => vec![("main".to_string(), CfgPatch::default())],
                    Some(arr) => arr
                        .as_arr()
                        .ok_or("submit: `variants` must be an array")?
                        .iter()
                        .map(|entry| {
                            let label = entry
                                .get("label")
                                .and_then(Json::as_str)
                                .ok_or("submit: variant missing `label`")?
                                .to_string();
                            let patch = match entry.get("patch") {
                                Some(p) => patch_from_json(p)?,
                                None => CfgPatch::default(),
                            };
                            Ok((label, patch))
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                };
                if variants.is_empty() {
                    return Err("submit: empty `variants` array".to_string());
                }
                // Duplicate labels would collide silently in artifacts
                // and reports — refuse the submission outright.
                for (i, (label, _)) in variants.iter().enumerate() {
                    if variants[..i].iter().any(|(prior, _)| prior == label) {
                        return Err(format!(
                            "submit: duplicate variant label `{label}`: variant labels \
                             must be unique"
                        ));
                    }
                }
                let sampling = match v.get("sampling") {
                    None => None,
                    Some(s) => {
                        let interval_insns = s
                            .get("interval_insns")
                            .and_then(Json::as_u64)
                            .filter(|&n| n > 0)
                            .ok_or("submit: `sampling.interval_insns` must be positive")?;
                        let warmup_intervals = s
                            .get("warmup_intervals")
                            .and_then(Json::as_u64)
                            .ok_or("submit: `sampling.warmup_intervals` must be a count")?
                            as u32;
                        Some(Sampling { interval_insns, warmup_intervals })
                    }
                };
                Ok(Request::Submit(SubmitRequest {
                    name,
                    scale,
                    models,
                    kernels,
                    variants,
                    watch: v.get("watch").and_then(Json::as_bool).unwrap_or(false),
                    batch_variants: v
                        .get("batch_variants")
                        .and_then(Json::as_bool)
                        .unwrap_or(true),
                    sampling,
                }))
            }
            Some(other) => Err(format!("unknown request type `{other}`")),
            None => Err("request has no `type`".to_string()),
        }
    }
}

/// `started` event: a worker claimed the job.
pub fn started_msg(index: usize, workload: &str, model: CommModel, variant: &str) -> Json {
    obj([
        ("type", Json::Str("started".into())),
        ("index", Json::Num(index as f64)),
        ("workload", Json::Str(workload.to_string())),
        ("model", Json::Str(model.name().to_string())),
        ("variant", Json::Str(variant.to_string())),
    ])
}

/// `finished` event: the job's result is in. `source` says how it was
/// satisfied: `"executed"`, `"store"`, or `"dedup"` (another client's
/// identical in-flight job).
pub fn finished_msg(index: usize, result: &JobResult, source: &str) -> Json {
    obj([
        ("type", Json::Str("finished".into())),
        ("index", Json::Num(index as f64)),
        ("workload", Json::Str(result.workload.clone())),
        ("model", Json::Str(result.model.name().to_string())),
        ("variant", Json::Str(result.variant.clone())),
        ("digest", Json::Str(result.digest.clone())),
        ("ipc", Json::Num(result.ipc)),
        ("wall_s", Json::Num(result.wall_s)),
        ("source", Json::Str(source.to_string())),
    ])
}

/// Final submit response: the complete assembled campaign artifact.
pub fn artifact_msg(campaign: Json) -> Json {
    obj([("type", Json::Str("artifact".into())), ("campaign", campaign)])
}

/// `metrics` response: the full registry snapshot as one wire document.
/// Counters and gauges carry a scalar `value`; histograms carry `count`,
/// `sum`, and the non-empty log₂ `buckets` as `[le, cumulative_count]`
/// pairs (`le` of -1 encodes the +Inf overflow bucket).
pub fn metrics_msg(snapshot: &dmdp_obs::Snapshot) -> Json {
    use dmdp_obs::{LogHistogram, SnapshotValue, HISTOGRAM_BUCKETS};
    let entries = snapshot
        .entries
        .iter()
        .map(|e| {
            let mut members = vec![
                ("name".to_string(), Json::Str(e.name.clone())),
                ("kind".to_string(), Json::Str(e.value.kind().to_string())),
            ];
            if !e.labels.is_empty() {
                members.push((
                    "labels".to_string(),
                    Json::Obj(
                        e.labels
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                            .collect(),
                    ),
                ));
            }
            match &e.value {
                SnapshotValue::Counter(v) => {
                    members.push(("value".to_string(), Json::Num(*v as f64)));
                }
                SnapshotValue::Gauge(v) => {
                    members.push(("value".to_string(), Json::Num(*v as f64)));
                }
                SnapshotValue::Histogram(h) => {
                    members.push(("count".to_string(), Json::Num(h.count as f64)));
                    members.push(("sum".to_string(), Json::Num(h.sum as f64)));
                    let mut cum = 0u64;
                    let mut buckets = Vec::new();
                    for (i, &b) in h.buckets.iter().enumerate() {
                        cum = cum.saturating_add(b);
                        if b == 0 {
                            continue;
                        }
                        let le = if i >= HISTOGRAM_BUCKETS - 1 {
                            -1.0
                        } else {
                            LogHistogram::bucket_bound(i) as f64
                        };
                        buckets.push(Json::Arr(vec![
                            Json::Num(le),
                            Json::Num(cum as f64),
                        ]));
                    }
                    members.push(("buckets".to_string(), Json::Arr(buckets)));
                }
            }
            Json::Obj(members)
        })
        .collect();
    obj([
        ("type", Json::Str("metrics".into())),
        ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
        ("metrics", Json::Arr(entries)),
    ])
}

/// One dispatchable job group: a batch unit (consecutive config
/// variants of one (workload, model) — PR 7) or a singleton, as carved
/// by [`dmdp_harness::partition_units`]. The worker rebuilds the same
/// [`dmdp_harness::JobSpec`]s from its own resident images; digests are
/// content-derived, so both sides agree on every row's identity without
/// shipping program bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSpec {
    /// Workload name (resolved against the worker's resident images).
    pub workload: String,
    /// Workload scale.
    pub scale: Scale,
    /// Communication model every member runs under.
    pub model: CommModel,
    /// Member variants in campaign order as `(label, patch)`.
    pub variants: Vec<(String, CfgPatch)>,
    /// Execute the members as one batched lockstep simulation
    /// ([`dmdp_harness::JobSpec::execute_batch`]) rather than
    /// independently. Results are identical either way.
    pub batch: bool,
    /// Sampled execution (checkpoint fast-forward); the worker resolves
    /// the bundle from its own store view or rebuilds it. Sampled
    /// groups are always singletons.
    pub sampling: Option<Sampling>,
}

impl GroupSpec {
    /// Serializes the group body (embedded in a `group` dispatch).
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("workload".to_string(), Json::Str(self.workload.clone())),
            ("scale".to_string(), Json::Str(self.scale.name().to_string())),
            ("model".to_string(), Json::Str(self.model.name().to_string())),
            (
                "variants".to_string(),
                Json::Arr(
                    self.variants
                        .iter()
                        .map(|(label, patch)| {
                            obj([("label", Json::Str(label.clone())), ("patch", patch_json(patch))])
                        })
                        .collect(),
                ),
            ),
            ("batch".to_string(), Json::Bool(self.batch)),
        ];
        if let Some(s) = self.sampling {
            members.push((
                "sampling".to_string(),
                obj([
                    ("interval_insns", Json::Num(s.interval_insns as f64)),
                    ("warmup_intervals", Json::Num(s.warmup_intervals as f64)),
                ]),
            ));
        }
        Json::Obj(members)
    }

    /// Parses a group body.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<GroupSpec, String> {
        let workload = v
            .get("workload")
            .and_then(Json::as_str)
            .ok_or("group: missing `workload`")?
            .to_string();
        let scale_name = v.get("scale").and_then(Json::as_str).ok_or("group: missing `scale`")?;
        let scale = Scale::from_name(scale_name)
            .ok_or_else(|| format!("group: unknown scale `{scale_name}`"))?;
        let model_name = v.get("model").and_then(Json::as_str).ok_or("group: missing `model`")?;
        let model = CommModel::from_name(model_name)
            .ok_or_else(|| format!("group: unknown model `{model_name}`"))?;
        let variants = v
            .get("variants")
            .and_then(Json::as_arr)
            .ok_or("group: missing `variants` array")?
            .iter()
            .map(|entry| {
                let label = entry
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or("group: variant missing `label`")?
                    .to_string();
                let patch = match entry.get("patch") {
                    Some(p) => patch_from_json(p)?,
                    None => CfgPatch::default(),
                };
                Ok((label, patch))
            })
            .collect::<Result<Vec<_>, String>>()?;
        if variants.is_empty() {
            return Err("group: empty `variants` array".to_string());
        }
        let sampling = match v.get("sampling") {
            None => None,
            Some(s) => Some(Sampling {
                interval_insns: s
                    .get("interval_insns")
                    .and_then(Json::as_u64)
                    .filter(|&n| n > 0)
                    .ok_or("group: `sampling.interval_insns` must be positive")?,
                warmup_intervals: s
                    .get("warmup_intervals")
                    .and_then(Json::as_u64)
                    .ok_or("group: `sampling.warmup_intervals` must be a count")?
                    as u32,
            }),
        };
        Ok(GroupSpec {
            workload,
            scale,
            model,
            variants,
            batch: v.get("batch").and_then(Json::as_bool).unwrap_or(false),
            sampling,
        })
    }
}

/// A worker's opening handshake.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerHello {
    /// The worker's [`PROTOCOL_VERSION`]; must equal the coordinator's.
    pub protocol: u64,
    /// The worker's [`dmdp_core::SIM_VERSION`]; must equal the
    /// coordinator's, or digests would silently disagree.
    pub sim_version: String,
    /// Display name (unique per worker; labels its metrics).
    pub name: String,
    /// Pool width — the coordinator's capacity unit for placement.
    pub jobs: usize,
    /// Core-affinity hint the worker pinned itself to (informational).
    pub cores: Vec<usize>,
}

/// `register`: worker → coordinator handshake.
pub fn register_msg(hello: &WorkerHello) -> Json {
    obj([
        ("type", Json::Str("register".into())),
        ("protocol", Json::Num(hello.protocol as f64)),
        ("sim_version", Json::Str(hello.sim_version.clone())),
        ("name", Json::Str(hello.name.clone())),
        ("jobs", Json::Num(hello.jobs as f64)),
        ("cores", Json::Arr(hello.cores.iter().map(|&c| Json::Num(c as f64)).collect())),
    ])
}

/// `registered`: coordinator → worker handshake acknowledgement.
pub fn registered_msg(worker_id: u64) -> Json {
    obj([
        ("type", Json::Str("registered".into())),
        ("worker", Json::Num(worker_id as f64)),
        ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
    ])
}

/// `group`: coordinator → worker job-group dispatch.
pub fn group_msg(id: u64, spec: &GroupSpec) -> Json {
    obj([
        ("type", Json::Str("group".into())),
        ("id", Json::Num(id as f64)),
        ("group", spec.to_json()),
    ])
}

/// `group_done`: worker → coordinator, all members finished. Each row
/// carries the full result plus how the worker satisfied it
/// (`"executed"` or `"store"` — its own store view may already hold a
/// row another worker published).
pub fn group_done_msg(id: u64, rows: &[(JobResult, String)]) -> Json {
    obj([
        ("type", Json::Str("group_done".into())),
        ("id", Json::Num(id as f64)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|(r, source)| {
                        obj([("source", Json::Str(source.clone())), ("result", r.to_json())])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// `group_failed`: worker → coordinator, the group errored as a whole.
pub fn group_failed_msg(id: u64, error: &str) -> Json {
    obj([
        ("type", Json::Str("group_failed".into())),
        ("id", Json::Num(id as f64)),
        ("error", Json::Str(error.to_string())),
    ])
}

/// `heartbeat`: worker → coordinator liveness while idle.
pub fn heartbeat_msg() -> Json {
    obj([("type", Json::Str("heartbeat".into()))])
}

/// A parsed worker → coordinator message (after `register`).
#[derive(Debug, Clone)]
pub enum WorkerMsg {
    /// The opening handshake.
    Register(WorkerHello),
    /// Idle liveness.
    Heartbeat,
    /// A dispatched group completed; rows are `(result, source)`.
    GroupDone {
        /// The dispatch id from the `group` message.
        id: u64,
        /// One row per member, in dispatch order.
        rows: Vec<(JobResult, String)>,
    },
    /// A dispatched group failed as a whole.
    GroupFailed {
        /// The dispatch id from the `group` message.
        id: u64,
        /// The worker's error message.
        error: String,
    },
}

impl WorkerMsg {
    /// Parses one wire document from a worker connection.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<WorkerMsg, String> {
        match v.get("type").and_then(Json::as_str) {
            Some("register") => {
                let protocol = v
                    .get("protocol")
                    .and_then(Json::as_u64)
                    .ok_or("register: missing `protocol`")?;
                let sim_version = v
                    .get("sim_version")
                    .and_then(Json::as_str)
                    .ok_or("register: missing `sim_version`")?
                    .to_string();
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("register: missing `name`")?
                    .to_string();
                let jobs = v.get("jobs").and_then(Json::as_u64).unwrap_or(1).max(1) as usize;
                let cores = v
                    .get("cores")
                    .and_then(Json::as_arr)
                    .map(|arr| arr.iter().filter_map(Json::as_u64).map(|c| c as usize).collect())
                    .unwrap_or_default();
                Ok(WorkerMsg::Register(WorkerHello { protocol, sim_version, name, jobs, cores }))
            }
            Some("heartbeat") => Ok(WorkerMsg::Heartbeat),
            Some("group_done") => {
                let id = v.get("id").and_then(Json::as_u64).ok_or("group_done: missing `id`")?;
                let rows = v
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or("group_done: missing `rows` array")?
                    .iter()
                    .map(|row| {
                        let source = row
                            .get("source")
                            .and_then(Json::as_str)
                            .ok_or("group_done: row missing `source`")?
                            .to_string();
                        let result = JobResult::from_json(
                            row.get("result").ok_or("group_done: row missing `result`")?,
                        )?;
                        Ok((result, source))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(WorkerMsg::GroupDone { id, rows })
            }
            Some("group_failed") => Ok(WorkerMsg::GroupFailed {
                id: v.get("id").and_then(Json::as_u64).ok_or("group_failed: missing `id`")?,
                error: v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("worker reported an unnamed failure")
                    .to_string(),
            }),
            Some(other) => Err(format!("unknown worker message type `{other}`")),
            None => Err("worker message has no `type`".to_string()),
        }
    }
}

/// A parsed coordinator → worker message (after `register`).
#[derive(Debug, Clone, PartialEq)]
pub enum CoordMsg {
    /// Registration accepted.
    Registered {
        /// The id the coordinator assigned this worker.
        worker: u64,
    },
    /// A job-group dispatch.
    Group {
        /// Dispatch id to echo in `group_done`/`group_failed`.
        id: u64,
        /// The group to execute.
        spec: GroupSpec,
    },
    /// Drain and exit.
    Shutdown,
    /// Protocol-level refusal (handshake mismatch); connection closes.
    Error(String),
}

impl CoordMsg {
    /// Parses one wire document from the coordinator connection.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<CoordMsg, String> {
        match v.get("type").and_then(Json::as_str) {
            Some("registered") => Ok(CoordMsg::Registered {
                worker: v.get("worker").and_then(Json::as_u64).ok_or("registered: missing `worker`")?,
            }),
            Some("group") => Ok(CoordMsg::Group {
                id: v.get("id").and_then(Json::as_u64).ok_or("group: missing `id`")?,
                spec: GroupSpec::from_json(v.get("group").ok_or("group: missing `group` body")?)?,
            }),
            Some("shutdown") => Ok(CoordMsg::Shutdown),
            Some("error") => Ok(CoordMsg::Error(
                v.get("message").and_then(Json::as_str).unwrap_or("unnamed error").to_string(),
            )),
            Some(other) => Err(format!("unknown coordinator message type `{other}`")),
            None => Err("coordinator message has no `type`".to_string()),
        }
    }
}

/// `shutdown`: coordinator → worker drain order (same shape as the
/// client request — the worker-side parser maps it to
/// [`CoordMsg::Shutdown`]).
pub fn worker_shutdown_msg() -> Json {
    obj([("type", Json::Str("shutdown".into()))])
}

/// Error response. The connection may close after a protocol-level error.
pub fn error_msg(message: &str) -> Json {
    obj([("type", Json::Str("error".into())), ("message", Json::Str(message.to_string()))])
}

/// Bare acknowledgement.
pub fn ok_msg() -> Json {
    obj([("type", Json::Str("ok".into()))])
}

/// `ping` response with the daemon's protocol version.
pub fn pong_msg() -> Json {
    obj([
        ("type", Json::Str("pong".into())),
        ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
    ])
}

/// Writes one message as a single line and flushes it onto the wire.
///
/// # Errors
///
/// Propagates I/O errors, stringified.
pub fn write_msg<W: Write>(w: &mut W, msg: &Json) -> Result<(), String> {
    let mut line = msg.compact();
    line.push('\n');
    w.write_all(line.as_bytes()).and_then(|()| w.flush()).map_err(|e| format!("write: {e}"))
}

/// What one [`LineReader::read_line`] call produced.
#[derive(Debug)]
pub enum LineEvent {
    /// A complete line (without its newline).
    Line(String),
    /// The peer closed the connection at a line boundary.
    Eof,
    /// A read timeout expired with no complete line yet; any partial
    /// line is retained for the next call. Lets the daemon poll its
    /// shutdown flag without losing buffered bytes.
    Idle,
}

/// A newline-framed reader that tolerates read timeouts: bytes received
/// before a timeout stay buffered, so a message split across TCP
/// segments (or delivered slowly) is reassembled correctly.
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> LineReader<R> {
    /// Wraps a raw byte stream.
    pub fn new(inner: R) -> LineReader<R> {
        LineReader { inner, buf: Vec::new() }
    }

    /// Reads until a newline, EOF, or a socket timeout.
    ///
    /// # Errors
    ///
    /// Mid-line EOF (truncated message), a line over [`MAX_LINE_BYTES`],
    /// invalid UTF-8, or any other I/O error.
    pub fn read_line(&mut self) -> Result<LineEvent, String> {
        loop {
            if let Some(at) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(at + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                let text = String::from_utf8(line)
                    .map_err(|_| "protocol: invalid UTF-8 on the wire".to_string())?;
                return Ok(LineEvent::Line(text));
            }
            if self.buf.len() > MAX_LINE_BYTES {
                return Err(format!("protocol: line exceeds {MAX_LINE_BYTES} bytes"));
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(LineEvent::Eof)
                    } else {
                        Err("protocol: connection closed mid-message".to_string())
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(LineEvent::Idle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(format!("read: {e}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::Ping,
            Request::Submit(SubmitRequest::new("full", Scale::Test)),
            Request::Submit(SubmitRequest {
                name: "sweep".into(),
                scale: Scale::Small,
                models: vec![CommModel::NoSq, CommModel::Dmdp],
                kernels: Some(vec!["lib".into(), "mcf".into()]),
                variants: vec![
                    ("main".into(), CfgPatch::default()),
                    ("rob128".into(), CfgPatch { rob: Some(128), ..CfgPatch::default() }),
                    ("rmo".into(), CfgPatch { rmo: true, ..CfgPatch::default() }),
                ],
                watch: true,
                batch_variants: false,
                sampling: None,
            }),
            Request::Submit(SubmitRequest {
                sampling: Some(Sampling { interval_insns: 10_000, warmup_intervals: 2 }),
                ..SubmitRequest::new("sampled", Scale::Full)
            }),
        ];
        for req in reqs {
            let wire = req.to_json().compact();
            let back = Request::from_json(&Json::parse(&wire).unwrap()).unwrap();
            assert_eq!(back, req, "{wire}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "{}",
            r#"{"type": "launch"}"#,
            r#"{"type": "submit"}"#,
            r#"{"type": "submit", "name": "x", "scale": "galactic", "models": ["dmdp"]}"#,
            r#"{"type": "submit", "name": "x", "scale": "test", "models": []}"#,
            r#"{"type": "submit", "name": "x", "scale": "test", "models": ["warp"]}"#,
            r#"{"type": "submit", "name": "x", "scale": "test", "models": ["dmdp"], "variants": []}"#,
            r#"{"type": "submit", "name": "x", "scale": "test", "models": ["dmdp"], "kernels": [7]}"#,
            r#"{"type": "submit", "name": "x", "scale": "test", "models": ["dmdp"], "sampling": {"interval_insns": 0, "warmup_intervals": 1}}"#,
            r#"{"type": "submit", "name": "x", "scale": "test", "models": ["dmdp"], "sampling": {"warmup_intervals": 1}}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(Request::from_json(&v).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn duplicate_variant_labels_are_rejected() {
        let wire = r#"{"type": "submit", "name": "x", "scale": "test", "models": ["dmdp"],
            "variants": [{"label": "a", "patch": {"rob": 64}},
                         {"label": "b"},
                         {"label": "a", "patch": {"rob": 128}}]}"#;
        let err = Request::from_json(&Json::parse(wire).unwrap()).unwrap_err();
        assert!(err.contains("duplicate variant label `a`"), "{err}");
    }

    #[test]
    fn batch_variants_defaults_to_true_on_the_wire() {
        let wire = r#"{"type": "submit", "name": "x", "scale": "test", "models": ["dmdp"]}"#;
        let Ok(Request::Submit(req)) = Request::from_json(&Json::parse(wire).unwrap()) else {
            panic!("submit should parse");
        };
        assert!(req.batch_variants, "absent field means batching on");
        assert!(req.sampling.is_none(), "absent field means full simulation");
    }

    #[test]
    fn metrics_msg_carries_every_kind() {
        let r = dmdp_obs::Registry::default();
        r.counter_with("proto_test_total", &[("type", "x")], "h").add(7);
        r.gauge("proto_test_level", "h").set(-3);
        let h = r.histogram("proto_test_us", "h");
        h.observe(0);
        h.observe(9);
        let msg = metrics_msg(&r.snapshot());
        let wire = msg.compact();
        let back = Json::parse(&wire).unwrap();
        assert_eq!(back.get("type").and_then(Json::as_str), Some("metrics"));
        let entries = back.get("metrics").and_then(Json::as_arr).unwrap();
        assert_eq!(entries.len(), 3);
        let by_name = |n: &str| {
            entries
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(n))
                .unwrap()
        };
        let c = by_name("proto_test_total");
        assert_eq!(c.get("value").and_then(Json::as_u64), Some(7));
        assert_eq!(
            c.get("labels").and_then(|l| l.get("type")).and_then(Json::as_str),
            Some("x")
        );
        let g = by_name("proto_test_level");
        assert_eq!(g.get("value").and_then(Json::as_f64), Some(-3.0));
        let hist = by_name("proto_test_us");
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(hist.get("sum").and_then(Json::as_u64), Some(9));
        assert_eq!(hist.get("buckets").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn group_specs_round_trip() {
        let specs = [
            GroupSpec {
                workload: "mcf".into(),
                scale: Scale::Test,
                model: CommModel::Dmdp,
                variants: vec![
                    ("main".into(), CfgPatch::default()),
                    ("rob32".into(), CfgPatch { rob: Some(32), ..CfgPatch::default() }),
                ],
                batch: true,
                sampling: None,
            },
            GroupSpec {
                workload: "lib".into(),
                scale: Scale::Full,
                model: CommModel::NoSq,
                variants: vec![("main".into(), CfgPatch::default())],
                batch: false,
                sampling: Some(Sampling { interval_insns: 1000, warmup_intervals: 2 }),
            },
        ];
        for spec in specs {
            let wire = group_msg(42, &spec).compact();
            let back = CoordMsg::from_json(&Json::parse(&wire).unwrap()).unwrap();
            assert_eq!(back, CoordMsg::Group { id: 42, spec: spec.clone() }, "{wire}");
        }
        for bad in [
            "{}",
            r#"{"workload": "lib", "scale": "test", "model": "dmdp", "variants": []}"#,
            r#"{"workload": "lib", "scale": "test", "model": "warp", "variants": [{"label": "main"}]}"#,
        ] {
            assert!(GroupSpec::from_json(&Json::parse(bad).unwrap()).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn worker_messages_round_trip() {
        let hello = WorkerHello {
            protocol: PROTOCOL_VERSION,
            sim_version: dmdp_core::SIM_VERSION.to_string(),
            name: "w0".into(),
            jobs: 4,
            cores: vec![0, 1],
        };
        let wire = register_msg(&hello).compact();
        let WorkerMsg::Register(back) = WorkerMsg::from_json(&Json::parse(&wire).unwrap()).unwrap()
        else {
            panic!("register should parse");
        };
        assert_eq!(back, hello);

        let wire = heartbeat_msg().compact();
        assert!(matches!(
            WorkerMsg::from_json(&Json::parse(&wire).unwrap()).unwrap(),
            WorkerMsg::Heartbeat
        ));

        // A group_done row carries the full summary result; parse it
        // back and check identity fields survive the wire.
        let w = dmdp_workloads::by_name("lib", Scale::Test).unwrap();
        let image = dmdp_harness::PlannedImage::new(std::sync::Arc::new(w.program));
        let result = dmdp_harness::JobSpec::new(
            "lib",
            w.suite,
            CommModel::Dmdp,
            Scale::Test,
            "main",
            dmdp_core::CoreConfig::new(CommModel::Dmdp),
            &image,
        )
        .execute()
        .unwrap();
        let wire = group_done_msg(7, &[(result.clone(), "executed".to_string())]).compact();
        let WorkerMsg::GroupDone { id, rows } =
            WorkerMsg::from_json(&Json::parse(&wire).unwrap()).unwrap()
        else {
            panic!("group_done should parse");
        };
        assert_eq!(id, 7);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, "executed");
        assert_eq!(rows[0].0.digest, result.digest);
        assert_eq!(rows[0].0.cycles, result.cycles);
        assert_eq!(rows[0].0.ipc, result.ipc);

        let wire = group_failed_msg(9, "cycle limit").compact();
        let WorkerMsg::GroupFailed { id, error } =
            WorkerMsg::from_json(&Json::parse(&wire).unwrap()).unwrap()
        else {
            panic!("group_failed should parse");
        };
        assert_eq!((id, error.as_str()), (9, "cycle limit"));
    }

    #[test]
    fn coordinator_messages_round_trip() {
        let wire = registered_msg(3).compact();
        assert_eq!(
            CoordMsg::from_json(&Json::parse(&wire).unwrap()).unwrap(),
            CoordMsg::Registered { worker: 3 }
        );
        let wire = worker_shutdown_msg().compact();
        assert_eq!(
            CoordMsg::from_json(&Json::parse(&wire).unwrap()).unwrap(),
            CoordMsg::Shutdown
        );
        let wire = error_msg("sim_version mismatch").compact();
        assert_eq!(
            CoordMsg::from_json(&Json::parse(&wire).unwrap()).unwrap(),
            CoordMsg::Error("sim_version mismatch".into())
        );
        assert!(CoordMsg::from_json(&Json::parse(r#"{"type": "warp"}"#).unwrap()).is_err());
    }

    #[test]
    fn line_reader_reassembles_split_messages() {
        // A reader whose source yields one byte at a time still frames
        // whole lines.
        struct Trickle(Vec<u8>, usize);
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut r = LineReader::new(Trickle(b"{\"a\":1}\r\n{\"b\":2}\n".to_vec(), 0));
        let Ok(LineEvent::Line(a)) = r.read_line() else { panic!() };
        assert_eq!(a, "{\"a\":1}");
        let Ok(LineEvent::Line(b)) = r.read_line() else { panic!() };
        assert_eq!(b, "{\"b\":2}");
        assert!(matches!(r.read_line(), Ok(LineEvent::Eof)));
    }

    #[test]
    fn mid_line_eof_is_an_error() {
        let mut r = LineReader::new(std::io::Cursor::new(b"{\"a\": 1".to_vec()));
        assert!(r.read_line().is_err());
    }
}
