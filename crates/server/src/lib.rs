#![warn(missing_docs)]
//! # dmdp-server
//!
//! The `dmdp serve` campaign daemon and its `dmdp submit` client: a
//! long-running process that keeps workload images and µop plan caches
//! resident across requests, persists every job result in a
//! content-addressed on-disk [`Store`], and dedups identical in-flight
//! jobs across concurrent clients — so a fleet of sweeps shares one
//! simulation per distinct job digest, forever.
//!
//! The wire is hand-rolled newline-delimited JSON over a unix socket
//! (optionally TCP), built entirely on `dmdp_harness::json` — no new
//! dependencies. Artifacts fetched through [`Client::submit`] are
//! byte-compatible with `dmdp campaign` output, so `dmdp report` works
//! on them unchanged.
//!
//! The daemon also scales out: `dmdp worker` processes ([`run_worker`])
//! register over the same protocol and the daemon becomes a coordinator,
//! placing job groups on the least-loaded worker and requeueing the
//! work of any worker that dies mid-group. The store directory is the
//! only shared state, so sharded artifacts stay bit-identical to
//! single-process ones.

pub mod client;
pub mod daemon;
pub mod protocol;
pub mod store;
pub mod worker;

pub use client::{retry_transient, scrape_metrics_tcp, scrape_metrics_unix, Client};
pub use daemon::{serve, DaemonReport, ServeOptions};
pub use protocol::{Request, SubmitRequest, PROTOCOL_VERSION};
pub use store::{Store, StoreStats};
pub use worker::{run_worker, WorkerOptions, WorkerReport};
