//! The `dmdp serve` campaign daemon.
//!
//! A long-running process that listens on a unix socket (and optionally
//! a TCP port), accepts newline-delimited JSON campaign requests, and
//! executes them on the harness's work-stealing pool. What makes it more
//! than `dmdp campaign` in a loop:
//!
//! * **Resident images** — each workload's [`PlannedImage`] (assembled
//!   program + static µop plan cache) is built once per scale and kept
//!   `Arc`-shared across every request that needs it, so repeat sweeps
//!   never pay generation or decode again.
//! * **Persistent results** — every completed job lands in the
//!   content-addressed [`Store`]; any later request for the same digest
//!   (this client or another, before or after a restart) is a disk read.
//! * **In-flight dedup** — concurrent clients submitting overlapping
//!   sweeps race on a digest-keyed in-flight table: the first request
//!   executes a job, everyone else blocks on it and shares the result,
//!   so each digest is simulated at most once.
//! * **Graceful shutdown** — a `shutdown` request stops new submissions
//!   and drains running ones; every connected client still receives its
//!   complete artifact (or an explicit error) before the daemon exits.
//! * **Observability** — every request path updates the process-wide
//!   [`dmdp_obs`] registry (request/jobs counters, queue-wait and parse
//!   latency histograms, connection/in-flight gauges), exposed over the
//!   `metrics` protocol request and a minimal `GET /metrics` Prometheus
//!   endpoint on the same listeners. Diagnostics go to a leveled JSONL
//!   [`EventLog`]; each request gets a trace id that threads through
//!   job events into the artifact, so a slow sweep's campaign report
//!   can be grepped straight back to its daemon-side events.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use dmdp_core::{CoreConfig, SIM_VERSION};
use dmdp_harness::json::obj;
use dmdp_harness::{
    pool, Campaign, CfgPatch, JobResult, JobSpec, Json, PlannedImage, Sampling, SamplingSpec,
    StageWall,
};
use dmdp_sample::SampledBundle;
use dmdp_obs::log::{next_trace_id, EventLog, Level, Value};
use dmdp_obs::{Counter, Gauge, LogHistogram};
use dmdp_workloads::{Scale, Suite};

use crate::protocol::{
    self, LineEvent, LineReader, Request, SubmitRequest, WorkerMsg, PROTOCOL_VERSION,
};
use crate::store::Store;

/// Configuration of one [`serve`] invocation.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Optional additional TCP listen address (e.g. `127.0.0.1:7199`).
    /// Port 0 binds an ephemeral port; the resolved address is reported
    /// in the `listening` event.
    pub tcp: Option<String>,
    /// Root directory of the content-addressed result store.
    pub store_dir: PathBuf,
    /// Worker threads per submit request.
    pub jobs: usize,
    /// LRU byte cap for the store (`None` = unbounded).
    pub store_cap_bytes: Option<u64>,
    /// Suppress per-request log lines.
    pub quiet: bool,
    /// JSONL event log destination (`None` = stderr).
    pub log: Option<PathBuf>,
    /// Minimum event level written to the log.
    pub log_level: Level,
    /// Warn (as a `slow_job` event) about executed jobs whose simulation
    /// wall clock meets this many milliseconds. `None` disables.
    pub slow_job_ms: Option<u64>,
    /// Worker processes to spawn (`dmdp worker --connect <tcp>`), each
    /// pinned to a disjoint core slice. Requires a TCP listener.
    /// Spawning any workers implies accepting registrations.
    pub workers: usize,
    /// Accept `register` handshakes from externally-launched workers.
    pub accept_workers: bool,
    /// Executable to spawn workers from (`None` = this binary).
    pub worker_exe: Option<PathBuf>,
}

/// Final counters, returned when the daemon drains and exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonReport {
    /// Protocol requests handled (all types).
    pub requests: u64,
    /// Submit requests completed.
    pub submits: u64,
    /// Jobs actually simulated.
    pub executed: u64,
    /// Jobs satisfied from the persistent store.
    pub store_hits: u64,
    /// Jobs satisfied by waiting on another request's identical
    /// in-flight job.
    pub dedup_hits: u64,
}

/// The daemon's registered metric handles, resolved once per process.
struct DaemonMetrics {
    req_submit: &'static Counter,
    req_stats: &'static Counter,
    req_metrics: &'static Counter,
    req_ping: &'static Counter,
    req_shutdown: &'static Counter,
    req_invalid: &'static Counter,
    http_requests: &'static Counter,
    connections_total: &'static Counter,
    connections: &'static Gauge,
    err_protocol: &'static Counter,
    err_request: &'static Counter,
    err_store: &'static Counter,
    jobs_executed: &'static Counter,
    jobs_store: &'static Counter,
    jobs_dedup: &'static Counter,
    active_submits: &'static Gauge,
    inflight: &'static Gauge,
    resident_images: &'static Gauge,
    pool_workers: &'static Gauge,
    store_entries: &'static Gauge,
    store_bytes: &'static Gauge,
    parse_us: &'static LogHistogram,
    queue_wait_us: &'static LogHistogram,
    submit_wall_us: &'static LogHistogram,
    workers: &'static Gauge,
    registrations: &'static Counter,
    heartbeats: &'static Counter,
    worker_deaths: &'static Counter,
    requeues: &'static Counter,
    placement_us: &'static LogHistogram,
}

fn daemon_metrics() -> &'static DaemonMetrics {
    static METRICS: OnceLock<DaemonMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = dmdp_obs::registry();
        let req = |t: &str| {
            r.counter_with("dmdp_requests_total", &[("type", t)], "protocol requests by type")
        };
        let err = |k: &str| {
            r.counter_with("dmdp_errors_total", &[("kind", k)], "failures by kind")
        };
        let jobs = |s: &str| {
            r.counter_with("dmdp_jobs_total", &[("source", s)], "jobs satisfied, by source")
        };
        DaemonMetrics {
            req_submit: req("submit"),
            req_stats: req("stats"),
            req_metrics: req("metrics"),
            req_ping: req("ping"),
            req_shutdown: req("shutdown"),
            req_invalid: req("invalid"),
            http_requests: r
                .counter("dmdp_http_requests_total", "HTTP requests (metrics scrapes)"),
            connections_total: r
                .counter("dmdp_connections_total", "client connections accepted"),
            connections: r.gauge("dmdp_connections", "client connections currently open"),
            err_protocol: err("protocol"),
            err_request: err("request"),
            err_store: err("store"),
            jobs_executed: jobs("executed"),
            jobs_store: jobs("store"),
            jobs_dedup: jobs("dedup"),
            active_submits: r.gauge("dmdp_active_submits", "submit requests in progress"),
            inflight: r.gauge("dmdp_inflight_jobs", "distinct job digests being simulated"),
            resident_images: r
                .gauge("dmdp_resident_images", "workload images resident across scales"),
            pool_workers: r.gauge("dmdp_pool_workers", "worker threads per submit request"),
            store_entries: r.gauge("dmdp_store_entries", "results indexed by the store"),
            store_bytes: r.gauge("dmdp_store_bytes", "bytes indexed by the store"),
            parse_us: r
                .histogram("dmdp_parse_us", "request line parse latency in microseconds"),
            queue_wait_us: r.histogram(
                "dmdp_queue_wait_us",
                "pool-unit wait between submit start and worker claim, microseconds",
            ),
            submit_wall_us: r
                .histogram("dmdp_submit_wall_us", "submit wall clock in microseconds"),
            workers: r.gauge("dmdp_workers", "worker processes currently registered"),
            registrations: r
                .counter("dmdp_worker_registrations_total", "worker register handshakes accepted"),
            heartbeats: r.counter("dmdp_worker_heartbeats_total", "worker heartbeat lines"),
            worker_deaths: r.counter(
                "dmdp_worker_deaths_total",
                "workers lost with groups still in flight",
            ),
            requeues: r.counter(
                "dmdp_requeue_total",
                "job groups requeued after their worker died",
            ),
            placement_us: r.histogram(
                "dmdp_placement_us",
                "job-group placement latency (pick + dispatch write), microseconds",
            ),
        }
    })
}

/// Reconciles the point-in-time gauges immediately before exposition, so
/// a scrape always sees current store/in-flight occupancy without the
/// hot paths having to maintain them.
fn sync_gauges(shared: &Shared) {
    let m = shared.metrics;
    let store = shared.store.stats();
    m.store_entries.set(store.entries as i64);
    m.store_bytes.set(store.bytes as i64);
    m.inflight.set(shared.inflight.lock().unwrap().len() as i64);
    m.active_submits.set(shared.active_submits.load(Ordering::SeqCst) as i64);
    let resident: usize = shared.images.lock().unwrap().values().map(|v| v.len()).sum();
    m.resident_images.set(resident as i64);
    m.workers.set(shared.workers.lock().unwrap().len() as i64);
}

fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// One digest's in-flight slot: the owner executes, everyone else waits
/// on the condvar until the (summary) result is published.
#[derive(Default)]
struct Inflight {
    slot: Mutex<Option<Result<JobResult, String>>>,
    cv: Condvar,
}

struct ResidentImage {
    name: String,
    suite: Suite,
    image: PlannedImage,
}

/// Why a dispatched group came back without rows.
enum GroupFail {
    /// The worker died; the members should be placed again.
    Requeue,
    /// The worker reported a simulation failure.
    Error(String),
}

/// What lands in a [`GroupSlot`]: the group's rows in dispatch order
/// (each with its source tag), or the reason there are none.
type GroupOutcome = Result<Vec<(JobResult, &'static str)>, GroupFail>;

/// A dispatched group's result slot: the worker-connection thread
/// publishes, the submitting thread waits.
#[derive(Default)]
struct GroupSlot {
    slot: Mutex<Option<GroupOutcome>>,
    cv: Condvar,
}

/// A group a worker owes us: its result slot plus the member digests in
/// dispatch order, so returned rows are verified against what was sent.
struct PendingGroup {
    slot: Arc<GroupSlot>,
    digests: Vec<String>,
}

/// One registered worker process, shared between its connection thread
/// (reads completions, detects death) and submitting threads (dispatch).
struct WorkerHandle {
    id: u64,
    name: String,
    /// The worker's pool width — the capacity unit for placement.
    capacity: usize,
    writer: Mutex<Box<dyn Write + Send>>,
    pending: Mutex<HashMap<u64, PendingGroup>>,
    inflight_groups: AtomicUsize,
    alive: AtomicBool,
    last_seen: Mutex<Instant>,
    inflight_gauge: &'static Gauge,
    dispatch_counter: &'static Counter,
}

/// A worker that stops heartbeating (and completing) for this long is
/// declared dead and its pending groups are requeued. Workers heartbeat
/// every ~2s while connected, even mid-group.
const WORKER_TIMEOUT: Duration = Duration::from_secs(10);

struct Shared {
    store: Store,
    jobs: usize,
    quiet: bool,
    log: EventLog,
    slow_job_ms: Option<u64>,
    metrics: &'static DaemonMetrics,
    /// Workload images resident per scale, in the paper's reporting
    /// order — the same order `CampaignSpec::jobs` produces, so daemon
    /// artifacts are row-for-row comparable with local campaigns.
    images: Mutex<HashMap<&'static str, Arc<Vec<ResidentImage>>>>,
    inflight: Mutex<HashMap<String, Arc<Inflight>>>,
    workers: Mutex<HashMap<u64, Arc<WorkerHandle>>>,
    accept_workers: bool,
    next_worker_id: AtomicU64,
    next_group_id: AtomicU64,
    shutdown: AtomicBool,
    active_submits: AtomicUsize,
    requests: AtomicU64,
    submits: AtomicU64,
    executed: AtomicU64,
    store_hits: AtomicU64,
    dedup_hits: AtomicU64,
}

/// Runs the daemon until a client asks it to shut down. Binds the unix
/// socket (replacing a stale socket file from a dead daemon), opens the
/// store, then serves connections — each on its own thread — until a
/// `shutdown` request drains the running submits.
///
/// # Errors
///
/// Socket/store setup failures, or another live daemon on the socket.
pub fn serve(opts: &ServeOptions) -> Result<DaemonReport, String> {
    if opts.workers > 0 && opts.tcp.is_none() {
        return Err(
            "serve: spawning workers needs a TCP listener (pass --tcp, e.g. 127.0.0.1:0)"
                .to_string(),
        );
    }
    let store = Store::open(&opts.store_dir, opts.store_cap_bytes)?;
    if opts.socket.exists() {
        if UnixStream::connect(&opts.socket).is_ok() {
            return Err(format!(
                "{}: a daemon is already listening there",
                opts.socket.display()
            ));
        }
        // Dead daemon's leftover — safe to replace.
        std::fs::remove_file(&opts.socket)
            .map_err(|e| format!("{}: {e}", opts.socket.display()))?;
    }
    if let Some(dir) = opts.socket.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    let listener = UnixListener::bind(&opts.socket)
        .map_err(|e| format!("{}: {e}", opts.socket.display()))?;
    listener.set_nonblocking(true).map_err(|e| format!("socket: {e}"))?;
    let tcp = match &opts.tcp {
        Some(addr) => {
            let l = std::net::TcpListener::bind(addr).map_err(|e| format!("{addr}: {e}"))?;
            l.set_nonblocking(true).map_err(|e| format!("{addr}: {e}"))?;
            Some(l)
        }
        None => None,
    };
    // The resolved address matters when the request was port 0.
    let tcp_addr = tcp.as_ref().and_then(|l| l.local_addr().ok()).map(|a| a.to_string());
    let log = match &opts.log {
        Some(path) => EventLog::file(path, opts.log_level)?,
        None => EventLog::stderr(opts.log_level),
    };
    let shared = Shared {
        store,
        jobs: if opts.jobs == 0 { pool::default_workers() } else { opts.jobs },
        quiet: opts.quiet,
        log,
        slow_job_ms: opts.slow_job_ms,
        metrics: daemon_metrics(),
        images: Mutex::new(HashMap::new()),
        inflight: Mutex::new(HashMap::new()),
        workers: Mutex::new(HashMap::new()),
        accept_workers: opts.accept_workers || opts.workers > 0,
        next_worker_id: AtomicU64::new(0),
        next_group_id: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        active_submits: AtomicUsize::new(0),
        requests: AtomicU64::new(0),
        submits: AtomicU64::new(0),
        executed: AtomicU64::new(0),
        store_hits: AtomicU64::new(0),
        dedup_hits: AtomicU64::new(0),
    };
    shared.metrics.pool_workers.set(shared.jobs as i64);
    let mut fields: Vec<(&str, Value)> = vec![
        ("socket", opts.socket.display().to_string().into()),
        ("store", opts.store_dir.display().to_string().into()),
        ("store_entries", shared.store.len().into()),
        ("workers", shared.jobs.into()),
        ("pid", std::process::id().into()),
    ];
    if let Some(addr) = &tcp_addr {
        fields.push(("tcp", addr.into()));
    }
    shared.log.info("listening", &fields);
    if !opts.quiet {
        let tcp_note = tcp_addr.as_deref().map(|a| format!(" and tcp {a}")).unwrap_or_default();
        println!(
            "dmdp serve: listening on {}{tcp_note}  (store {}: {} results, {} workers)",
            opts.socket.display(),
            opts.store_dir.display(),
            shared.store.len(),
            shared.jobs
        );
    }
    let mut children = match spawn_workers(opts, &shared, tcp_addr.as_deref()) {
        Ok(children) => children,
        Err(e) => {
            std::fs::remove_file(&opts.socket).ok();
            return Err(e);
        }
    };
    std::thread::scope(|scope| {
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let mut accepted = false;
            match listener.accept() {
                Ok((stream, _)) => {
                    accepted = true;
                    let shared = &shared;
                    scope.spawn(move || handle_unix(shared, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(_) => {}
            }
            if let Some(tcp) = &tcp {
                match tcp.accept() {
                    Ok((stream, _)) => {
                        accepted = true;
                        let shared = &shared;
                        scope.spawn(move || handle_tcp(shared, stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(_) => {}
                }
            }
            if !accepted {
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    });
    std::fs::remove_file(&opts.socket).ok();
    // Spawned workers were told to drain by their connection threads;
    // give each a grace period to exit, then make sure of it.
    for child in &mut children {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
            }
        }
    }
    let report = DaemonReport {
        requests: shared.requests.load(Ordering::Relaxed),
        submits: shared.submits.load(Ordering::Relaxed),
        executed: shared.executed.load(Ordering::Relaxed),
        store_hits: shared.store_hits.load(Ordering::Relaxed),
        dedup_hits: shared.dedup_hits.load(Ordering::Relaxed),
    };
    shared.log.info(
        "stopped",
        &[
            ("requests", report.requests.into()),
            ("submits", report.submits.into()),
            ("executed", report.executed.into()),
            ("store_hits", report.store_hits.into()),
            ("dedup_hits", report.dedup_hits.into()),
        ],
    );
    if !opts.quiet {
        println!(
            "dmdp serve: drained and stopped  ({} submits: {} executed, {} store hits, {} in-flight dedups)",
            report.submits, report.executed, report.store_hits, report.dedup_hits
        );
    }
    Ok(report)
}

/// Spawns `opts.workers` child `dmdp worker` processes pointed at the
/// TCP listener, each pinned to a disjoint core slice (when the host
/// has at least one core per worker) with a matching pool width. The
/// children register over the ordinary protocol like any external
/// worker would.
fn spawn_workers(
    opts: &ServeOptions,
    shared: &Shared,
    tcp_addr: Option<&str>,
) -> Result<Vec<std::process::Child>, String> {
    let mut children = Vec::new();
    if opts.workers == 0 {
        return Ok(children);
    }
    let addr = tcp_addr.ok_or("serve: workers need a TCP listener")?;
    let exe = match &opts.worker_exe {
        Some(p) => p.clone(),
        None => std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?,
    };
    let ncores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for i in 0..opts.workers {
        // Disjoint slices when the host is wide enough; round-robin
        // single cores otherwise (workers then share, best-effort).
        let cores: Vec<usize> = if ncores >= opts.workers {
            (i * ncores / opts.workers..(i + 1) * ncores / opts.workers).collect()
        } else {
            vec![i % ncores]
        };
        let cores_csv =
            cores.iter().map(ToString::to_string).collect::<Vec<_>>().join(",");
        let name = format!("w{i}");
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("worker")
            .arg("--connect")
            .arg(addr)
            .arg("--store")
            .arg(&opts.store_dir)
            .arg("--jobs")
            .arg(cores.len().max(1).to_string())
            .arg("--cores")
            .arg(&cores_csv)
            .arg("--name")
            .arg(&name)
            .arg("--connect-retries")
            .arg("10")
            .arg("--quiet");
        match cmd.spawn() {
            Ok(child) => {
                shared.log.info(
                    "worker_spawned",
                    &[
                        ("name", (&name).into()),
                        ("pid", child.id().into()),
                        ("cores", (&cores_csv).into()),
                    ],
                );
                children.push(child);
            }
            Err(e) => {
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(format!("spawn worker {name}: {e}"));
            }
        }
    }
    Ok(children)
}

fn handle_unix(shared: &Shared, stream: UnixStream) {
    // The accepted socket must block with a timeout: the read loop polls
    // the shutdown flag between timeouts instead of hanging forever on
    // an idle client.
    stream.set_nonblocking(false).ok();
    stream.set_read_timeout(Some(Duration::from_millis(100))).ok();
    let Ok(writer) = stream.try_clone() else { return };
    handle(shared, stream, writer);
}

fn handle_tcp(shared: &Shared, stream: std::net::TcpStream) {
    stream.set_nonblocking(false).ok();
    stream.set_read_timeout(Some(Duration::from_millis(100))).ok();
    let Ok(writer) = stream.try_clone() else { return };
    handle(shared, stream, writer);
}

fn write_locked<W: Write>(writer: &Mutex<W>, msg: &Json) -> Result<(), String> {
    protocol::write_msg(&mut *writer.lock().unwrap(), msg)
}

/// Decrements the open-connection gauge when the connection thread
/// unwinds, whatever the exit path.
struct ConnGuard(&'static Gauge);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// `Some(path)` when a protocol line is actually an HTTP request line —
/// a Prometheus scraper talking to the NDJSON listener.
fn http_request_path(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("GET ")?;
    let (path, proto) = rest.split_once(' ')?;
    proto.starts_with("HTTP/").then_some(path)
}

/// Answers one HTTP exchange (the connection's first line already
/// identified it): drains request headers, serves `/metrics` as
/// Prometheus text 0.0.4, everything else as 404, then closes.
fn handle_http<R: Read, W: Write>(
    shared: &Shared,
    reader: &mut LineReader<R>,
    writer: &Mutex<W>,
    path: &str,
) {
    let mut idle = 0;
    loop {
        match reader.read_line() {
            Ok(LineEvent::Line(l)) if l.is_empty() => break,
            Ok(LineEvent::Line(_)) => {}
            Ok(LineEvent::Eof) | Err(_) => return,
            Ok(LineEvent::Idle) => {
                // A scraper that never finishes its headers gets ~10s.
                idle += 1;
                if idle > 100 {
                    return;
                }
            }
        }
    }
    shared.metrics.http_requests.inc();
    let (status, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        sync_gauges(shared);
        ("200 OK", dmdp_obs::registry().snapshot().to_prometheus())
    } else {
        ("404 Not Found", format!("no such endpoint {path}\n"))
    };
    shared.log.debug("http_scrape", &[("path", path.into()), ("status", status.into())]);
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut w = writer.lock().unwrap();
    let _ = w.write_all(response.as_bytes());
    let _ = w.flush();
}

/// Serves one connection: a sequence of requests, each answered in
/// order. Protocol-level failures (unparseable line, truncated message)
/// get an `error` reply and close the connection; request-level failures
/// (unknown kernel, aborted job) get an `error` reply and the
/// conversation continues. A connection whose first line is an HTTP
/// request line is handed to [`handle_http`] instead, and one whose
/// first message is a worker `register` handshake becomes a worker
/// connection ([`handle_worker`]) for its remaining lifetime.
fn handle<R: Read, W: Write + Send + 'static>(shared: &Shared, reader: R, writer: W) {
    let m = shared.metrics;
    m.connections_total.inc();
    m.connections.inc();
    let _guard = ConnGuard(m.connections);
    let mut reader = LineReader::new(reader);
    let writer = Mutex::new(writer);
    loop {
        match reader.read_line() {
            Ok(LineEvent::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    let _ = write_locked(&writer, &protocol::error_msg("daemon is shutting down"));
                    return;
                }
            }
            Ok(LineEvent::Eof) => return,
            Err(e) => {
                m.err_protocol.inc();
                shared.log.warn("bad_line", &[("error", (&e).into())]);
                let _ = write_locked(&writer, &protocol::error_msg(&e));
                return;
            }
            Ok(LineEvent::Line(text)) => {
                if let Some(path) = http_request_path(&text) {
                    // One response per HTTP connection, then close.
                    let path = path.to_string();
                    handle_http(shared, &mut reader, &writer, &path);
                    return;
                }
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let parse_start = Instant::now();
                let parsed = Json::parse(&text);
                if let Ok(v) = &parsed {
                    if v.get("type").and_then(Json::as_str) == Some("register") {
                        // The connection switches dialects: it is a
                        // worker from here on (or gets refused).
                        m.parse_us.observe(elapsed_us(parse_start));
                        return handle_register(shared, reader, writer, v);
                    }
                }
                let request = parsed.and_then(|v| Request::from_json(&v));
                m.parse_us.observe(elapsed_us(parse_start));
                let trace = next_trace_id();
                match request {
                    Err(e) => {
                        m.req_invalid.inc();
                        m.err_protocol.inc();
                        shared.log.warn(
                            "bad_request",
                            &[("trace", (&trace).into()), ("error", (&e).into())],
                        );
                        let _ = write_locked(&writer, &protocol::error_msg(&e));
                        return;
                    }
                    Ok(Request::Ping) => {
                        m.req_ping.inc();
                        if write_locked(&writer, &protocol::pong_msg()).is_err() {
                            return;
                        }
                    }
                    Ok(Request::Stats) => {
                        m.req_stats.inc();
                        if write_locked(&writer, &stats_msg(shared)).is_err() {
                            return;
                        }
                    }
                    Ok(Request::Metrics) => {
                        m.req_metrics.inc();
                        sync_gauges(shared);
                        let msg = protocol::metrics_msg(&dmdp_obs::registry().snapshot());
                        if write_locked(&writer, &msg).is_err() {
                            return;
                        }
                    }
                    Ok(Request::Shutdown) => {
                        m.req_shutdown.inc();
                        shared.log.info("shutdown_requested", &[("trace", (&trace).into())]);
                        shared.shutdown.store(true, Ordering::SeqCst);
                        while shared.active_submits.load(Ordering::SeqCst) > 0 {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        let _ = write_locked(&writer, &protocol::ok_msg());
                        return;
                    }
                    Ok(Request::Submit(req)) => {
                        m.req_submit.inc();
                        if shared.shutdown.load(Ordering::SeqCst) {
                            let _ = write_locked(
                                &writer,
                                &protocol::error_msg("daemon is shutting down"),
                            );
                            continue;
                        }
                        shared.log.info(
                            "submit",
                            &[
                                ("trace", (&trace).into()),
                                ("name", (&req.name).into()),
                                ("scale", req.scale.name().into()),
                                ("models", req.models.len().into()),
                                ("variants", req.variants.len().into()),
                                ("watch", req.watch.into()),
                                ("batch_variants", req.batch_variants.into()),
                                ("sampled", req.sampling.is_some().into()),
                            ],
                        );
                        if let Err(e) = run_submit(shared, &req, &writer, &trace) {
                            m.err_request.inc();
                            shared.log.warn(
                                "submit_failed",
                                &[
                                    ("trace", (&trace).into()),
                                    ("name", (&req.name).into()),
                                    ("error", (&e).into()),
                                ],
                            );
                            let _ = write_locked(&writer, &protocol::error_msg(&e));
                        }
                    }
                }
            }
        }
    }
}

/// Validates a worker's `register` handshake and, when it checks out,
/// runs the connection as a worker link until the worker dies or the
/// daemon drains. Refusals (`error` reply, then close): registrations
/// disabled, a protocol-version gap, or a [`SIM_VERSION`] gap — the
/// latter two would silently disagree on digests, the one thing the
/// sharded service must never do.
fn handle_register<R: Read, W: Write + Send + 'static>(
    shared: &Shared,
    reader: LineReader<R>,
    writer: Mutex<W>,
    v: &Json,
) {
    let refuse = |why: &str| {
        shared.metrics.err_protocol.inc();
        shared.log.warn("register_refused", &[("error", why.into())]);
        let _ = write_locked(&writer, &protocol::error_msg(why));
    };
    let hello = match WorkerMsg::from_json(v) {
        Ok(WorkerMsg::Register(hello)) => hello,
        Ok(_) => unreachable!("caller matched type == register"),
        Err(e) => return refuse(&e),
    };
    if !shared.accept_workers {
        return refuse("daemon is not accepting worker registrations");
    }
    if hello.protocol != PROTOCOL_VERSION {
        return refuse(&format!(
            "protocol mismatch: worker speaks {}, coordinator speaks {PROTOCOL_VERSION}",
            hello.protocol
        ));
    }
    if hello.sim_version != SIM_VERSION {
        return refuse(&format!(
            "sim_version mismatch: worker has {}, coordinator has {SIM_VERSION}",
            hello.sim_version
        ));
    }
    let id = shared.next_worker_id.fetch_add(1, Ordering::SeqCst) + 1;
    let r = dmdp_obs::registry();
    let worker = Arc::new(WorkerHandle {
        id,
        name: hello.name.clone(),
        capacity: hello.jobs.max(1),
        writer: Mutex::new(Box::new(writer.into_inner().unwrap()) as Box<dyn Write + Send>),
        pending: Mutex::new(HashMap::new()),
        inflight_groups: AtomicUsize::new(0),
        alive: AtomicBool::new(true),
        last_seen: Mutex::new(Instant::now()),
        inflight_gauge: r.gauge_with(
            "dmdp_worker_inflight",
            &[("worker", &hello.name)],
            "job groups in flight on this worker",
        ),
        dispatch_counter: r.counter_with(
            "dmdp_dispatch_total",
            &[("worker", &hello.name)],
            "job groups dispatched to this worker",
        ),
    });
    if write_locked(&worker.writer, &protocol::registered_msg(id)).is_err() {
        return;
    }
    shared.workers.lock().unwrap().insert(id, Arc::clone(&worker));
    shared.metrics.registrations.inc();
    shared.metrics.workers.set(shared.workers.lock().unwrap().len() as i64);
    shared.log.info(
        "worker_registered",
        &[
            ("worker", id.into()),
            ("name", (&hello.name).into()),
            ("jobs", hello.jobs.into()),
            (
                "cores",
                hello
                    .cores
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
                    .into(),
            ),
        ],
    );
    handle_worker(shared, reader, &worker);
    // However the link ended, the worker is gone: deregister, then
    // requeue whatever it still owed so submitting threads re-place it.
    worker.alive.store(false, Ordering::SeqCst);
    shared.workers.lock().unwrap().remove(&id);
    shared.metrics.workers.set(shared.workers.lock().unwrap().len() as i64);
    let orphans: Vec<PendingGroup> =
        worker.pending.lock().unwrap().drain().map(|(_, pg)| pg).collect();
    if !orphans.is_empty() {
        shared.metrics.worker_deaths.inc();
        shared.log.warn(
            "worker_lost",
            &[
                ("worker", id.into()),
                ("name", (&worker.name).into()),
                ("requeued_groups", orphans.len().into()),
            ],
        );
    } else {
        shared.log.info(
            "worker_gone",
            &[("worker", id.into()), ("name", (&worker.name).into())],
        );
    }
    for pg in orphans {
        worker.inflight_groups.fetch_sub(1, Ordering::SeqCst);
        worker.inflight_gauge.dec();
        *pg.slot.slot.lock().unwrap() = Some(Err(GroupFail::Requeue));
        pg.slot.cv.notify_all();
    }
}

/// The worker link's read loop: heartbeats refresh liveness, completed
/// groups resolve their pending slots, and idleness past
/// [`WORKER_TIMEOUT`] (or EOF, or garbage) ends the link. On daemon
/// shutdown the worker is sent a drain order once it owes nothing.
fn handle_worker<R: Read>(shared: &Shared, mut reader: LineReader<R>, worker: &Arc<WorkerHandle>) {
    loop {
        match reader.read_line() {
            Ok(LineEvent::Line(text)) => {
                *worker.last_seen.lock().unwrap() = Instant::now();
                match Json::parse(&text).and_then(|v| WorkerMsg::from_json(&v)) {
                    Ok(WorkerMsg::Heartbeat) => shared.metrics.heartbeats.inc(),
                    Ok(WorkerMsg::GroupDone { id, rows }) => {
                        resolve_group(shared, worker, id, Ok(rows));
                    }
                    Ok(WorkerMsg::GroupFailed { id, error }) => {
                        resolve_group(shared, worker, id, Err(error));
                    }
                    Ok(WorkerMsg::Register(_)) => {
                        shared.log.warn(
                            "bad_line",
                            &[("worker", worker.id.into()), ("error", "double register".into())],
                        );
                        return;
                    }
                    Err(e) => {
                        shared.metrics.err_protocol.inc();
                        shared.log.warn(
                            "bad_line",
                            &[("worker", worker.id.into()), ("error", (&e).into())],
                        );
                        return;
                    }
                }
            }
            Ok(LineEvent::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst)
                    && shared.active_submits.load(Ordering::SeqCst) == 0
                    && worker.pending.lock().unwrap().is_empty()
                {
                    let _ = write_locked(&worker.writer, &protocol::worker_shutdown_msg());
                    return;
                }
                if worker.last_seen.lock().unwrap().elapsed() > WORKER_TIMEOUT {
                    shared.log.warn(
                        "worker_timeout",
                        &[("worker", worker.id.into()), ("name", (&worker.name).into())],
                    );
                    return;
                }
            }
            Ok(LineEvent::Eof) | Err(_) => return,
        }
    }
}

/// Resolves one dispatched group: pops its pending entry, verifies the
/// returned rows line up digest-for-digest with what was dispatched
/// (any divergence fails the group — a digest mismatch would corrupt
/// the store's content addressing), and wakes the submitting thread.
fn resolve_group(
    shared: &Shared,
    worker: &Arc<WorkerHandle>,
    gid: u64,
    rows: Result<Vec<(JobResult, String)>, String>,
) {
    let Some(pg) = worker.pending.lock().unwrap().remove(&gid) else {
        // A requeued group completing on a worker we already declared
        // dead-and-recovered; its rows are in the store, drop them.
        shared.log.warn(
            "late_group",
            &[("worker", worker.id.into()), ("group", gid.into())],
        );
        return;
    };
    worker.inflight_groups.fetch_sub(1, Ordering::SeqCst);
    worker.inflight_gauge.dec();
    let outcome = match rows {
        Err(e) => Err(GroupFail::Error(e)),
        Ok(rows) => {
            if rows.len() != pg.digests.len()
                || rows.iter().zip(&pg.digests).any(|((r, _), d)| &r.digest != d)
            {
                Err(GroupFail::Error(format!(
                    "worker {} returned rows that do not match the dispatched digests",
                    worker.name
                )))
            } else {
                Ok(rows
                    .into_iter()
                    .map(|(r, src)| {
                        (r, if src == SRC_STORE { SRC_STORE } else { SRC_EXECUTED })
                    })
                    .collect())
            }
        }
    };
    *pg.slot.slot.lock().unwrap() = Some(outcome);
    pg.slot.cv.notify_all();
}

/// The resident image set for one scale, building (and keeping) all 21
/// workloads on first use. Holding the map lock across the build also
/// serializes concurrent first requests, so the images are built once.
fn resident_images(shared: &Shared, scale: Scale) -> Arc<Vec<ResidentImage>> {
    let mut map = shared.images.lock().unwrap();
    if let Some(v) = map.get(scale.name()) {
        return Arc::clone(v);
    }
    let built: Vec<ResidentImage> = dmdp_workloads::all(scale)
        .into_iter()
        .map(|w| ResidentImage {
            name: w.name.to_string(),
            suite: w.suite,
            image: PlannedImage::new(Arc::new(w.program)),
        })
        .collect();
    let arc = Arc::new(built);
    map.insert(scale.name(), Arc::clone(&arc));
    arc
}

/// Materializes a request's job list against the resident images — the
/// same cross product, order and digests as `CampaignSpec::jobs`.
fn build_jobs(shared: &Shared, req: &SubmitRequest) -> Result<Vec<JobSpec>, String> {
    let resident = resident_images(shared, req.scale);
    if let Some(filter) = &req.kernels {
        for name in filter {
            if !resident.iter().any(|w| &w.name == name) {
                let known: Vec<&str> = resident.iter().map(|w| w.name.as_str()).collect();
                return Err(format!(
                    "unknown workload `{name}`; valid kernels: {}",
                    known.join(", ")
                ));
            }
        }
    }
    let mut jobs = Vec::new();
    for w in resident.iter() {
        if let Some(filter) = &req.kernels {
            if !filter.iter().any(|n| n == &w.name) {
                continue;
            }
        }
        let bundle = match req.sampling {
            Some(s) => Some(resolve_bundle(shared, &w.name, &w.image, s)?),
            None => None,
        };
        for &model in &req.models {
            for (label, patch) in &req.variants {
                let mut cfg = CoreConfig::new(model);
                patch.apply(&mut cfg);
                let mut job =
                    JobSpec::new(&w.name, w.suite, model, req.scale, label, cfg, &w.image);
                if let (Some(s), Some(b)) = (req.sampling, &bundle) {
                    job = job.sampled(SamplingSpec { sampling: s, bundle: Arc::clone(b) });
                }
                jobs.push(job);
            }
        }
    }
    Ok(jobs)
}

/// Resolves one workload's sampled bundle: the store's blob side first —
/// checkpoints are shared across models, requests and restarts, so a
/// workload is profiled once and every model simulates from the same
/// checkpoints — else a fresh profile + cluster + checkpoint build whose
/// bytes are persisted for the next request.
fn resolve_bundle(
    shared: &Shared,
    workload: &str,
    image: &PlannedImage,
    sampling: Sampling,
) -> Result<Arc<SampledBundle>, String> {
    let digest = sampling.bundle_digest(&image.program);
    if let Some(bytes) = shared.store.get_blob(&digest) {
        match SampledBundle::from_bytes(&bytes) {
            Ok(bundle) => {
                let bundle = Arc::new(bundle);
                dmdp_harness::record_bundle(&bundle, 0.0);
                shared.log.debug(
                    "bundle_hit",
                    &[("workload", workload.into()), ("digest", (&digest).into())],
                );
                return Ok(bundle);
            }
            // A corrupt blob degrades to a rebuild (which re-persists).
            Err(e) => shared.log.warn(
                "bundle_corrupt",
                &[
                    ("workload", workload.into()),
                    ("digest", (&digest).into()),
                    ("error", (&e).into()),
                ],
            ),
        }
    }
    let start = Instant::now();
    let bundle = dmdp_harness::build_bundle(&image.program, sampling)?;
    if let Err(e) = shared.store.put_blob(&digest, &bundle.to_bytes()) {
        warn_store_write(shared, &digest, &e);
    }
    shared.log.info(
        "bundle_built",
        &[
            ("workload", workload.into()),
            ("digest", (&digest).into()),
            ("intervals", bundle.plan.total_intervals.into()),
            ("reps", bundle.rep_runs().len().into()),
            ("checkpoint_bytes", bundle.checkpoint_bytes().into()),
            ("wall_s", start.elapsed().as_secs_f64().into()),
        ],
    );
    Ok(bundle)
}

/// How a job was satisfied, for events, log lines and stats.
const SRC_EXECUTED: &str = "executed";
const SRC_STORE: &str = "store";
const SRC_DEDUP: &str = "dedup";

/// Routes a failed store write through the event log and error counter —
/// persistence failure degrades durability, not the run.
fn warn_store_write(shared: &Shared, digest: &str, error: &str) {
    shared.metrics.err_store.inc();
    shared
        .log
        .warn("store_write_failed", &[("digest", digest.into()), ("error", error.into())]);
}

/// The least-loaded live worker (in-flight groups normalized by pool
/// width), or `None` when the daemon should execute in-process.
fn pick_worker(shared: &Shared) -> Option<Arc<WorkerHandle>> {
    let map = shared.workers.lock().unwrap();
    map.values()
        .filter(|w| w.alive.load(Ordering::SeqCst))
        .min_by_key(|w| {
            ((w.inflight_groups.load(Ordering::SeqCst) * 1000) / w.capacity.max(1), w.id)
        })
        .map(Arc::clone)
}

/// Executes a unit's store/dedup misses: dispatched to the least-loaded
/// registered worker when there is one, in-process otherwise. A worker
/// that dies mid-group gets its unit re-placed (on the next candidate,
/// or in-process once no workers remain), so a crash costs a re-run,
/// never a hole in the artifact. Returned sources are [`SRC_EXECUTED`]
/// or [`SRC_STORE`] (the worker's own store view satisfied a member —
/// a row some other process landed after this submit's triage).
fn execute_unit(
    shared: &Shared,
    req: &SubmitRequest,
    specs: &[&JobSpec],
    trace: &str,
) -> Vec<MemberOutcome> {
    if specs.is_empty() {
        return Vec::new();
    }
    loop {
        let Some(worker) = pick_worker(shared) else { break };
        let place_start = Instant::now();
        let lead = specs[0];
        // Specs do not retain their config patch; recover each member's
        // from the request by variant label (labels are unique).
        let variants: Vec<(String, CfgPatch)> = specs
            .iter()
            .map(|s| {
                let patch = req
                    .variants
                    .iter()
                    .find(|(label, _)| label == &s.variant)
                    .map(|(_, p)| p.clone())
                    .unwrap_or_default();
                (s.variant.clone(), patch)
            })
            .collect();
        let group = protocol::GroupSpec {
            workload: lead.workload.clone(),
            scale: lead.scale,
            model: lead.model,
            variants,
            batch: specs.len() > 1,
            sampling: lead.sampling.as_ref().map(|s| s.sampling),
        };
        let gid = shared.next_group_id.fetch_add(1, Ordering::SeqCst) + 1;
        let slot = Arc::new(GroupSlot::default());
        worker.pending.lock().unwrap().insert(
            gid,
            PendingGroup {
                slot: Arc::clone(&slot),
                digests: specs.iter().map(|s| s.digest.clone()).collect(),
            },
        );
        worker.inflight_groups.fetch_add(1, Ordering::SeqCst);
        worker.inflight_gauge.inc();
        // The connection thread may have declared this worker dead
        // between pick and insert; if our entry is still in the map we
        // own the cleanup, otherwise the drain took it and will requeue.
        if !worker.alive.load(Ordering::SeqCst)
            && worker.pending.lock().unwrap().remove(&gid).is_some()
        {
            worker.inflight_groups.fetch_sub(1, Ordering::SeqCst);
            worker.inflight_gauge.dec();
            continue;
        }
        if write_locked(&worker.writer, &protocol::group_msg(gid, &group)).is_err() {
            worker.alive.store(false, Ordering::SeqCst);
            if worker.pending.lock().unwrap().remove(&gid).is_some() {
                worker.inflight_groups.fetch_sub(1, Ordering::SeqCst);
                worker.inflight_gauge.dec();
            }
            continue;
        }
        shared.metrics.placement_us.observe(elapsed_us(place_start));
        worker.dispatch_counter.inc();
        shared.log.debug(
            "dispatch",
            &[
                ("trace", trace.into()),
                ("worker", (&worker.name).into()),
                ("group", gid.into()),
                ("workload", (&lead.workload).into()),
                ("model", lead.model.name().into()),
                ("members", specs.len().into()),
            ],
        );
        let outcome = {
            let mut guard = slot.slot.lock().unwrap();
            while guard.is_none() {
                guard = slot.cv.wait(guard).unwrap();
            }
            guard.take().expect("published by the connection thread")
        };
        match outcome {
            Ok(rows) => return rows.into_iter().map(Ok).collect(),
            Err(GroupFail::Requeue) => {
                shared.metrics.requeues.inc();
                shared.log.warn(
                    "requeue",
                    &[
                        ("trace", trace.into()),
                        ("worker", (&worker.name).into()),
                        ("workload", (&lead.workload).into()),
                        ("members", specs.len().into()),
                    ],
                );
                continue;
            }
            Err(GroupFail::Error(e)) => return specs.iter().map(|_| Err(e.clone())).collect(),
        }
    }
    // In-process: the non-sharded daemon's execution path, verbatim.
    if specs.len() == 1 {
        vec![specs[0].execute().map(|r| (r, SRC_EXECUTED))]
    } else {
        JobSpec::execute_batch(specs)
            .into_iter()
            .map(|res| res.map(|r| (r, SRC_EXECUTED)))
            .collect()
    }
}

/// Satisfies one job: persistent store first, then the in-flight table
/// (wait on an identical running job), then actually simulate (locally
/// or on a worker) — and publish the result to both waiters and the
/// store.
fn run_job(
    shared: &Shared,
    req: &SubmitRequest,
    spec: &JobSpec,
    trace: &str,
) -> Result<(JobResult, &'static str), String> {
    if let Some(hit) = shared.store.get(&spec.digest) {
        shared.store_hits.fetch_add(1, Ordering::Relaxed);
        return Ok((hit, SRC_STORE));
    }
    let (slot, owner) = {
        let mut map = shared.inflight.lock().unwrap();
        match map.get(&spec.digest) {
            Some(arc) => (Arc::clone(arc), false),
            None => {
                let arc = Arc::new(Inflight::default());
                map.insert(spec.digest.clone(), Arc::clone(&arc));
                (arc, true)
            }
        }
    };
    if owner {
        let mut out = execute_unit(shared, req, &[spec], trace);
        let outcome = out.pop().expect("one outcome per spec");
        if let Ok((r, src)) = &outcome {
            if *src == SRC_EXECUTED {
                shared.executed.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.store_hits.fetch_add(1, Ordering::Relaxed);
            }
            if let Err(e) = shared.store.put(r) {
                warn_store_write(shared, &spec.digest, &e);
            }
        }
        // Publish a summary copy (waiters never need the full stats),
        // then retire the in-flight entry.
        let summary = outcome.clone().map(|(mut r, _)| {
            r.stats = None;
            r
        });
        *slot.slot.lock().unwrap() = Some(summary);
        slot.cv.notify_all();
        shared.inflight.lock().unwrap().remove(&spec.digest);
        outcome
    } else {
        shared.dedup_hits.fetch_add(1, Ordering::Relaxed);
        let mut guard = slot.slot.lock().unwrap();
        while guard.is_none() {
            guard = slot.cv.wait(guard).unwrap();
        }
        match guard.as_ref().expect("published above") {
            Ok(r) => {
                let mut r = r.clone();
                r.cached = true;
                Ok((r, SRC_DEDUP))
            }
            Err(e) => Err(e.clone()),
        }
    }
}

/// A batch-unit member's outcome: the job result plus its source tag
/// (store hit, dedup wait, or executed), or the job's error string.
type MemberOutcome = Result<(JobResult, &'static str), String>;

/// Runs a batch unit — consecutive variant jobs of one (workload, model)
/// — preserving the per-digest store/dedup semantics job-per-variant
/// execution has: members found in the store drop out, members another
/// request is already simulating are waited on, and only the remaining
/// misses run, together, through one batched lockstep simulation
/// ([`JobSpec::execute_batch`]). Waiting on foreign in-flight jobs
/// happens *after* this unit's own results are published, so two
/// interleaved submissions can never deadlock on each other.
fn run_batch_unit(
    shared: &Shared,
    req: &SubmitRequest,
    specs: &[JobSpec],
    unit: &[usize],
    exec_start: Instant,
    trace: &str,
) -> Vec<(usize, MemberOutcome)> {
    enum Member {
        Done(Box<MemberOutcome>),
        Own(Arc<Inflight>),
        Wait(Arc<Inflight>),
    }
    let claimed_s = exec_start.elapsed().as_secs_f64();
    let mut members: Vec<Member> = Vec::with_capacity(unit.len());
    for &i in unit {
        let spec = &specs[i];
        if let Some(hit) = shared.store.get(&spec.digest) {
            shared.store_hits.fetch_add(1, Ordering::Relaxed);
            members.push(Member::Done(Box::new(Ok((hit, SRC_STORE)))));
            continue;
        }
        let mut map = shared.inflight.lock().unwrap();
        match map.get(&spec.digest) {
            Some(arc) => members.push(Member::Wait(Arc::clone(arc))),
            None => {
                let arc = Arc::new(Inflight::default());
                map.insert(spec.digest.clone(), Arc::clone(&arc));
                members.push(Member::Own(arc));
            }
        }
    }
    // Batch-execute the owned misses in one lockstep run.
    let owned: Vec<usize> = (0..unit.len())
        .filter(|&k| matches!(members[k], Member::Own(_)))
        .collect();
    let owned_specs: Vec<&JobSpec> = owned.iter().map(|&k| &specs[unit[k]]).collect();
    let mut results = execute_unit(shared, req, &owned_specs, trace).into_iter();
    for &k in &owned {
        let spec = &specs[unit[k]];
        let mut result = results.next().expect("one outcome per owned lane");
        if let Ok((r, src)) = &mut result {
            if *src == SRC_EXECUTED {
                r.started_s = claimed_s;
                r.finished_s = exec_start.elapsed().as_secs_f64();
                shared.executed.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.store_hits.fetch_add(1, Ordering::Relaxed);
            }
            if let Err(e) = shared.store.put(r) {
                warn_store_write(shared, &spec.digest, &e);
            }
        }
        let Member::Own(slot) = &members[k] else { unreachable!("filtered on Own") };
        let summary = result.clone().map(|(mut r, _)| {
            r.stats = None;
            r
        });
        *slot.slot.lock().unwrap() = Some(summary);
        slot.cv.notify_all();
        shared.inflight.lock().unwrap().remove(&spec.digest);
        members[k] = Member::Done(Box::new(result));
    }
    // Now (and only now) block on jobs other requests own.
    unit.iter()
        .zip(members)
        .map(|(&i, member)| {
            let outcome = match member {
                Member::Done(outcome) => *outcome,
                Member::Own(_) => unreachable!("resolved above"),
                Member::Wait(slot) => {
                    shared.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    let mut guard = slot.slot.lock().unwrap();
                    while guard.is_none() {
                        guard = slot.cv.wait(guard).unwrap();
                    }
                    match guard.as_ref().expect("published by owner") {
                        Ok(r) => {
                            let mut r = r.clone();
                            r.cached = true;
                            Ok((r, SRC_DEDUP))
                        }
                        Err(e) => Err(e.clone()),
                    }
                }
            };
            (i, outcome)
        })
        .collect()
}

/// Runs a submit request end to end: build the job list against resident
/// images, fan it out on the pool (streaming events if asked), assemble
/// a campaign artifact and send it back. Multi-variant submits run as
/// batch units (see [`run_batch_unit`]) unless the request opted out.
fn run_submit<W: Write + Send>(
    shared: &Shared,
    req: &SubmitRequest,
    writer: &Mutex<W>,
    trace: &str,
) -> Result<(), String> {
    let start = Instant::now();
    shared.active_submits.fetch_add(1, Ordering::SeqCst);
    shared.metrics.active_submits.inc();
    let outcome = run_submit_inner(shared, req, writer, start, trace);
    shared.active_submits.fetch_sub(1, Ordering::SeqCst);
    shared.metrics.active_submits.dec();
    outcome
}

fn run_submit_inner<W: Write + Send>(
    shared: &Shared,
    req: &SubmitRequest,
    writer: &Mutex<W>,
    start: Instant,
    trace: &str,
) -> Result<(), String> {
    let specs = build_jobs(shared, req)?;
    let build_s = start.elapsed().as_secs_f64();
    // Pool units: one per job, except that consecutive variant jobs of
    // the same (workload, model) form one batch unit when the request
    // left batching on. Sampled jobs never batch — lockstep measures
    // full runs only.
    let units = dmdp_harness::partition_units(&specs, |i| {
        req.batch_variants && specs[i].sampling.is_none()
    });
    // With workers registered the pool threads mostly block on remote
    // completions, so width follows the fleet's capacity instead of
    // the local core count — enough in flight to keep every worker
    // busy, plus headroom for store/dedup hits resolved locally.
    let worker_cap: usize = {
        let workers = shared.workers.lock().unwrap();
        workers
            .values()
            .filter(|w| w.alive.load(Ordering::SeqCst))
            .map(|w| w.capacity)
            .sum()
    };
    let width = if worker_cap > 0 { shared.jobs.max(2 * worker_cap) } else { shared.jobs };
    let exec_start = Instant::now();
    let unit_outcomes = pool::map_ordered(&units, width, |_, unit| {
        shared.metrics.queue_wait_us.observe(elapsed_us(exec_start));
        if req.watch {
            for &i in unit {
                let spec = &specs[i];
                let _ = write_locked(
                    writer,
                    &protocol::started_msg(i, &spec.workload, spec.model, &spec.variant),
                );
            }
        }
        let outcomes = if unit.len() == 1 {
            let i = unit[0];
            let claimed_s = exec_start.elapsed().as_secs_f64();
            let out = run_job(shared, req, &specs[i], trace).map(|(mut r, src)| {
                if src == SRC_EXECUTED {
                    r.started_s = claimed_s;
                    r.finished_s = exec_start.elapsed().as_secs_f64();
                }
                (r, src)
            });
            vec![(i, out)]
        } else {
            run_batch_unit(shared, req, &specs, unit, exec_start, trace)
        };
        if let Some(threshold_ms) = shared.slow_job_ms {
            for (_, out) in &outcomes {
                if let Ok((r, src)) = out {
                    if *src == SRC_EXECUTED && r.wall_s * 1000.0 >= threshold_ms as f64 {
                        shared.log.warn(
                            "slow_job",
                            &[
                                ("trace", trace.into()),
                                ("workload", (&r.workload).into()),
                                ("model", r.model.name().into()),
                                ("variant", (&r.variant).into()),
                                ("wall_ms", (r.wall_s * 1000.0).into()),
                                ("digest", (&r.digest).into()),
                            ],
                        );
                    }
                }
            }
        }
        if req.watch {
            for (i, out) in &outcomes {
                if let Ok((r, src)) = out {
                    let _ = write_locked(writer, &protocol::finished_msg(*i, r, src));
                }
            }
        }
        outcomes
    });
    let exec_s = exec_start.elapsed().as_secs_f64();

    let agg_start = Instant::now();
    let slots = dmdp_harness::collect_ordered(specs.len(), unit_outcomes);
    let mut jobs = Vec::with_capacity(slots.len());
    let (mut executed, mut from_store, mut from_dedup) = (0usize, 0usize, 0usize);
    for slot in slots {
        let (r, src) = slot.expect("every job satisfied")?;
        match src {
            SRC_EXECUTED => executed += 1,
            SRC_STORE => from_store += 1,
            _ => from_dedup += 1,
        }
        jobs.push(r);
    }
    let m = shared.metrics;
    m.jobs_executed.add(executed as u64);
    m.jobs_store.add(from_store as u64);
    m.jobs_dedup.add(from_dedup as u64);
    let mut campaign = Campaign {
        name: req.name.clone(),
        scale: req.scale,
        sim_version: SIM_VERSION.to_string(),
        created_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        wall_s: start.elapsed().as_secs_f64(),
        stages: StageWall { build_s, cache_s: 0.0, exec_s, aggregate_s: 0.0 },
        executed,
        cached: from_store + from_dedup,
        cache_warning: None,
        trace_id: Some(trace.to_string()),
        sampling: req.sampling,
        jobs,
    };
    campaign.stages.aggregate_s = agg_start.elapsed().as_secs_f64();
    m.submit_wall_us.observe(elapsed_us(start));
    shared.submits.fetch_add(1, Ordering::Relaxed);
    shared.log.info(
        "submit_done",
        &[
            ("trace", trace.into()),
            ("name", (&req.name).into()),
            ("jobs", campaign.jobs.len().into()),
            ("executed", executed.into()),
            ("store", from_store.into()),
            ("dedup", from_dedup.into()),
            ("wall_s", campaign.wall_s.into()),
        ],
    );
    if !shared.quiet {
        println!(
            "dmdp serve: submit `{}`: {} jobs  ({executed} executed, {from_store} store, {from_dedup} dedup)  {:.2}s",
            req.name,
            campaign.jobs.len(),
            campaign.wall_s
        );
    }
    write_locked(writer, &protocol::artifact_msg(campaign.to_json()))
}

fn stats_msg(shared: &Shared) -> Json {
    let store = shared.store.stats();
    let resident: usize = shared.images.lock().unwrap().values().map(|v| v.len()).sum();
    obj([
        ("type", Json::Str("stats".into())),
        ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
        ("sim_version", Json::Str(SIM_VERSION.to_string())),
        ("requests", Json::Num(shared.requests.load(Ordering::Relaxed) as f64)),
        ("submits", Json::Num(shared.submits.load(Ordering::Relaxed) as f64)),
        ("executed", Json::Num(shared.executed.load(Ordering::Relaxed) as f64)),
        ("store_hits", Json::Num(shared.store_hits.load(Ordering::Relaxed) as f64)),
        ("dedup_hits", Json::Num(shared.dedup_hits.load(Ordering::Relaxed) as f64)),
        ("active_submits", Json::Num(shared.active_submits.load(Ordering::SeqCst) as f64)),
        ("inflight", Json::Num(shared.inflight.lock().unwrap().len() as f64)),
        ("resident_images", Json::Num(resident as f64)),
        ("workers", Json::Num(shared.workers.lock().unwrap().len() as f64)),
        (
            "store",
            obj([
                ("entries", Json::Num(store.entries as f64)),
                ("bytes", Json::Num(store.bytes as f64)),
                ("hits", Json::Num(store.hits as f64)),
                ("misses", Json::Num(store.misses as f64)),
                ("writes", Json::Num(store.writes as f64)),
                ("evictions", Json::Num(store.evictions as f64)),
            ]),
        ),
    ])
}
