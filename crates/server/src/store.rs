//! The persistent content-addressed result store.
//!
//! Every completed [`JobResult`] is persisted under
//! `store/<digest[0..2]>/<digest>.json`, where the digest is the job's
//! FNV-1a content digest — the same key the campaign artifact cache uses,
//! so two jobs with equal digests are interchangeable by construction.
//! Writes go to a unique `.tmp` sibling first and land with an atomic
//! rename, so a crash can never leave a half-written entry under a final
//! name; leftover temporaries are swept on startup. The in-memory index
//! is rebuilt by scanning the tree on [`Store::open`], which is what
//! makes results survive daemon restarts.
//!
//! An optional byte cap turns the store into an LRU cache: once the
//! tree exceeds the cap, least-recently-used entries (by access order,
//! seeded from file mtimes at startup) are deleted until it fits.
//!
//! Several processes may share one store directory (the sharded
//! service: every worker plus the coordinator). Content addressing
//! makes that safe by construction — equal digests mean equal bytes —
//! but each process keeps its own index, so lookups fall back to disk
//! on an index miss (adopting entries a sibling wrote), eviction
//! tolerates files a sibling already unlinked, and an entry whose file
//! was re-landed by a sibling after we indexed it is never evicted
//! inside a small grace window ([`EVICT_GRACE`]).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

use dmdp_harness::{JobResult, Json};

/// Process-wide store metrics (cumulative across every [`Store`] this
/// process opens — the per-store view stays on [`Store::stats`]).
struct StoreMetrics {
    rescanned: &'static dmdp_obs::Counter,
    hits: &'static dmdp_obs::Counter,
    misses: &'static dmdp_obs::Counter,
    writes: &'static dmdp_obs::Counter,
    evictions: &'static dmdp_obs::Counter,
    write_us: &'static dmdp_obs::LogHistogram,
    blob_hits: &'static dmdp_obs::Counter,
    blob_misses: &'static dmdp_obs::Counter,
    blob_bytes: &'static dmdp_obs::Counter,
}

fn store_metrics() -> &'static StoreMetrics {
    static METRICS: std::sync::OnceLock<StoreMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = dmdp_obs::registry();
        StoreMetrics {
            rescanned: r.counter(
                "dmdp_store_rescanned_total",
                "entries re-indexed by startup tree scans",
            ),
            hits: r.counter("dmdp_store_hits_total", "store lookups satisfied from disk"),
            misses: r.counter("dmdp_store_misses_total", "store lookups that found nothing"),
            writes: r.counter("dmdp_store_writes_total", "results newly persisted"),
            evictions: r.counter("dmdp_store_evictions_total", "entries deleted by the LRU cap"),
            write_us: r.histogram(
                "dmdp_store_write_us",
                "store write+rename latency in microseconds",
            ),
            blob_hits: r.counter(
                "dmdp_store_blob_hits_total",
                "blob lookups (checkpoint bundles) satisfied from disk",
            ),
            blob_misses: r.counter(
                "dmdp_store_blob_misses_total",
                "blob lookups that found nothing",
            ),
            blob_bytes: r.counter(
                "dmdp_store_blob_bytes_total",
                "blob bytes newly persisted (checkpoint bundles)",
            ),
        }
    })
}

/// A snapshot of the store's counters, for daemon stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries currently indexed.
    pub entries: usize,
    /// Total bytes of indexed entries.
    pub bytes: u64,
    /// Lookups satisfied from disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Results newly persisted.
    pub writes: u64,
    /// Entries deleted by the LRU cap.
    pub evictions: u64,
}

/// How recently a sibling process must have re-landed an entry's file
/// (mtime newer than our index's knowledge of it) for eviction to spare
/// it. Guards the window between a sibling's atomic rename and its
/// result being observed durable; entries this process wrote or scanned
/// itself are evictable immediately.
const EVICT_GRACE: std::time::Duration = std::time::Duration::from_secs(2);

struct Entry {
    bytes: u64,
    last_used: u64,
    /// When this index last reconciled with the file on disk (insert,
    /// adoption, or startup scan). An on-disk mtime *newer* than this is
    /// evidence of a concurrent foreign writer.
    seen: SystemTime,
}

struct Index {
    entries: HashMap<String, Entry>,
    total_bytes: u64,
    clock: u64,
}

/// A content-addressed, crash-safe, optionally size-capped store of
/// [`JobResult`] summaries. All methods take `&self` and are safe to
/// call from many threads at once.
pub struct Store {
    root: PathBuf,
    cap_bytes: Option<u64>,
    index: Mutex<Index>,
    tmp_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
}

/// A digest is sixteen lowercase hex characters ([`dmdp_harness::Digest64::hex`]).
fn valid_digest(digest: &str) -> bool {
    digest.len() == 16 && digest.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

impl Store {
    /// Opens (or creates) a store rooted at `root`, rebuilding the index
    /// by scanning the tree. Leftover `.tmp` files from a crashed writer
    /// are deleted; entries that don't look like `<digest>.json` are
    /// ignored. With `cap_bytes`, the store immediately evicts down to
    /// the cap (oldest mtime first).
    ///
    /// # Errors
    ///
    /// Filesystem errors, stringified.
    pub fn open(root: &Path, cap_bytes: Option<u64>) -> Result<Store, String> {
        std::fs::create_dir_all(root).map_err(|e| format!("{}: {e}", root.display()))?;
        let mut found: Vec<(String, u64, std::time::SystemTime)> = Vec::new();
        let dirs = std::fs::read_dir(root).map_err(|e| format!("{}: {e}", root.display()))?;
        for dir in dirs.flatten() {
            if !dir.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                continue;
            }
            let Ok(files) = std::fs::read_dir(dir.path()) else { continue };
            for file in files.flatten() {
                let path = file.path();
                let name = file.file_name();
                let name = name.to_string_lossy();
                let Some(digest) = name.strip_suffix(".json") else {
                    // Anything else in the tree is a crashed writer's
                    // temporary (`<digest>.json.tmp.<n>`) — sweep it.
                    if name.contains(".tmp") {
                        std::fs::remove_file(&path).ok();
                    }
                    continue;
                };
                if !valid_digest(digest) {
                    continue;
                }
                let Ok(meta) = file.metadata() else { continue };
                let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                found.push((digest.to_string(), meta.len(), mtime));
            }
        }
        // Seed the LRU order from mtimes: oldest files get the smallest
        // clock values and are first in line for eviction.
        found.sort_by_key(|(_, _, mtime)| *mtime);
        store_metrics().rescanned.add(found.len() as u64);
        let mut index =
            Index { entries: HashMap::new(), total_bytes: 0, clock: 0 };
        let scanned_at = SystemTime::now();
        for (digest, bytes, _) in found {
            index.clock += 1;
            index.total_bytes += bytes;
            index.entries.insert(digest, Entry { bytes, last_used: index.clock, seen: scanned_at });
        }
        let store = Store {
            root: root.to_path_buf(),
            cap_bytes,
            index: Mutex::new(index),
            tmp_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        };
        store.enforce_cap(&mut store.index.lock().unwrap());
        Ok(store)
    }

    /// `<root>/<digest[0..2]>/<digest>.json`.
    pub fn path_of(&self, digest: &str) -> PathBuf {
        self.root.join(&digest[..2]).join(format!("{digest}.json"))
    }

    /// Looks a result up by digest. The returned row is marked `cached`
    /// (it was not executed by the caller). An entry that has vanished
    /// or no longer parses is dropped from the index and reported as a
    /// miss. An un-indexed digest whose file *is* on disk — a sibling
    /// process sharing this directory wrote it — is adopted into the
    /// index and reported as a hit, which is how a restarted worker
    /// re-syncs its store view without a full rescan.
    pub fn get(&self, digest: &str) -> Option<JobResult> {
        if !valid_digest(digest) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            store_metrics().misses.inc();
            return None;
        }
        let indexed = self.index.lock().unwrap().entries.contains_key(digest);
        let text = std::fs::read_to_string(self.path_of(digest)).ok();
        let bytes = text.as_ref().map(|t| t.len() as u64).unwrap_or(0);
        let loaded = text
            .and_then(|text| Json::parse(&text).ok())
            .and_then(|v| JobResult::from_json(&v).ok());
        let mut index = self.index.lock().unwrap();
        match loaded {
            Some(mut result) => {
                index.clock += 1;
                let clock = index.clock;
                match index.entries.get_mut(digest) {
                    Some(entry) => entry.last_used = clock,
                    None => {
                        // Adopt the sibling's write.
                        index.total_bytes += bytes;
                        index.entries.insert(
                            digest.to_string(),
                            Entry { bytes, last_used: clock, seen: SystemTime::now() },
                        );
                        self.enforce_cap(&mut index);
                    }
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                store_metrics().hits.inc();
                result.cached = true;
                Some(result)
            }
            None => {
                // Deleted or corrupted behind our back: forget it.
                if indexed {
                    if let Some(entry) = index.entries.remove(digest) {
                        index.total_bytes -= entry.bytes;
                    }
                    std::fs::remove_file(self.path_of(digest)).ok();
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                store_metrics().misses.inc();
                None
            }
        }
    }

    /// Persists a result under its digest. Returns `true` if the entry
    /// was newly written, `false` if it was already present (concurrent
    /// writers of one digest are expected — results with equal digests
    /// are bit-identical, so whoever lands the rename wins nothing and
    /// loses nothing).
    ///
    /// # Errors
    ///
    /// Filesystem errors, stringified. An invalid digest is an error —
    /// it would escape the two-level layout.
    pub fn put(&self, result: &JobResult) -> Result<bool, String> {
        if !valid_digest(&result.digest) {
            return Err(format!("store: invalid digest `{}`", result.digest));
        }
        if self.index.lock().unwrap().entries.contains_key(&result.digest) {
            return Ok(false);
        }
        let path = self.path_of(&result.digest);
        if let Ok(meta) = std::fs::metadata(&path) {
            // A sibling process already persisted this digest (equal
            // digests mean equal bytes): adopt its file instead of
            // racing a redundant rewrite.
            let mut index = self.index.lock().unwrap();
            if !index.entries.contains_key(&result.digest) {
                index.clock += 1;
                let clock = index.clock;
                index.total_bytes += meta.len();
                index.entries.insert(
                    result.digest.clone(),
                    Entry { bytes: meta.len(), last_used: clock, seen: SystemTime::now() },
                );
                self.enforce_cap(&mut index);
            }
            return Ok(false);
        }
        let write_start = std::time::Instant::now();
        let dir = path.parent().expect("store paths have a shard directory");
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        // Unique temporary per writer, atomic rename to the final name.
        let tmp = dir.join(format!(
            "{}.json.tmp.{}",
            result.digest,
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let text = result.to_json().pretty();
        std::fs::write(&tmp, &text).map_err(|e| format!("{}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut index = self.index.lock().unwrap();
        index.clock += 1;
        let clock = index.clock;
        let old = index.entries.insert(
            result.digest.clone(),
            Entry { bytes: text.len() as u64, last_used: clock, seen: SystemTime::now() },
        );
        index.total_bytes += text.len() as u64;
        if let Some(old) = old {
            // A concurrent writer beat us between the contains check and
            // here; both wrote identical bytes.
            index.total_bytes -= old.bytes;
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        let m = store_metrics();
        m.writes.inc();
        m.write_us.observe(write_start.elapsed().as_micros() as u64);
        self.enforce_cap(&mut index);
        Ok(true)
    }

    /// `<root>/<digest[0..2]>/<digest>.ckpt` — the sibling blob path
    /// (sampled-simulation checkpoint bundles).
    pub fn blob_path(&self, digest: &str) -> PathBuf {
        self.root.join(&digest[..2]).join(format!("{digest}.ckpt"))
    }

    /// Reads a binary blob by digest. Blobs ride the store's sharded
    /// tree but are *not* index entries: they are never parsed as job
    /// results, never counted against the LRU cap, and survive
    /// [`Store::get`]'s corruption sweep untouched.
    pub fn get_blob(&self, digest: &str) -> Option<Vec<u8>> {
        let m = store_metrics();
        if !valid_digest(digest) {
            m.blob_misses.inc();
            return None;
        }
        match std::fs::read(self.blob_path(digest)) {
            Ok(bytes) => {
                m.blob_hits.inc();
                Some(bytes)
            }
            Err(_) => {
                m.blob_misses.inc();
                None
            }
        }
    }

    /// Persists a blob under its digest (atomic tmp + rename, like
    /// [`Store::put`]). Returns `true` if newly written, `false` if
    /// already present — equal digests mean equal bytes, so either
    /// writer's outcome is interchangeable.
    ///
    /// # Errors
    ///
    /// Filesystem errors, stringified; an invalid digest is rejected.
    pub fn put_blob(&self, digest: &str, bytes: &[u8]) -> Result<bool, String> {
        if !valid_digest(digest) {
            return Err(format!("store: invalid blob digest `{digest}`"));
        }
        let path = self.blob_path(digest);
        if path.exists() {
            return Ok(false);
        }
        let dir = path.parent().expect("store paths have a shard directory");
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        // Temporary names contain `.tmp`, so a crashed blob write is
        // swept by the same startup pass that cleans result temporaries.
        let tmp = dir.join(format!(
            "{digest}.ckpt.tmp.{}",
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, bytes).map_err(|e| format!("{}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("{}: {e}", path.display()))?;
        store_metrics().blob_bytes.add(bytes.len() as u64);
        Ok(true)
    }

    /// Evicts least-recently-used entries until the tree fits the cap.
    /// The most recently touched entry is never evicted, so a store
    /// whose cap is smaller than one entry still makes progress.
    ///
    /// Multi-process safe: a victim whose file a sibling process already
    /// unlinked just leaves the index (ENOENT is not an error), and a
    /// victim whose on-disk mtime is newer than this index's knowledge
    /// of it — a sibling re-landed the result after we indexed it — is
    /// spared inside [`EVICT_GRACE`] (its entry is refreshed and LRU-
    /// bumped instead). `.ckpt` bundles are never index entries, so they
    /// are structurally exempt.
    fn enforce_cap(&self, index: &mut Index) {
        let Some(cap) = self.cap_bytes else { return };
        let mut spared: usize = 0;
        while index.total_bytes > cap && index.entries.len() > 1 + spared {
            let Some(victim) = index
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(digest, _)| digest.clone())
            else {
                return;
            };
            let path = self.path_of(&victim);
            let seen = index.entries.get(&victim).map(|e| e.seen);
            if let (Ok(meta), Some(seen)) = (std::fs::metadata(&path), seen) {
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                let within_grace = SystemTime::now()
                    .duration_since(mtime)
                    .map(|age| age < EVICT_GRACE)
                    .unwrap_or(true);
                if mtime > seen && within_grace {
                    // A sibling just re-landed this entry: refresh our
                    // view of it and move on to the next candidate.
                    index.clock += 1;
                    let clock = index.clock;
                    if let Some(entry) = index.entries.get_mut(&victim) {
                        index.total_bytes = index.total_bytes - entry.bytes + meta.len();
                        entry.bytes = meta.len();
                        entry.seen = mtime;
                        entry.last_used = clock;
                    }
                    spared += 1;
                    continue;
                }
            }
            if let Some(entry) = index.entries.remove(&victim) {
                index.total_bytes -= entry.bytes;
            }
            // A sibling evicting concurrently may have unlinked the file
            // first; that is the outcome we wanted, not an error.
            if let Err(e) = std::fs::remove_file(&path) {
                debug_assert!(
                    e.kind() == std::io::ErrorKind::NotFound,
                    "evicting {victim}: {e}"
                );
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
            store_metrics().evictions.inc();
        }
    }

    /// Entries currently indexed.
    pub fn len(&self) -> usize {
        self.index.lock().unwrap().entries.len()
    }

    /// True if the store indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `digest` is indexed (no LRU touch, no disk read).
    pub fn contains(&self, digest: &str) -> bool {
        self.index.lock().unwrap().entries.contains_key(digest)
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        let index = self.index.lock().unwrap();
        StoreStats {
            entries: index.entries.len(),
            bytes: index.total_bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}
