//! The `dmdp worker` process: one shard of a sharded `dmdp serve`.
//!
//! A worker dials the coordinator's TCP listener, performs the
//! `register` handshake (protocol version and [`SIM_VERSION`] must both
//! match — digests would silently disagree otherwise), then executes
//! the job groups the coordinator dispatches, each on its own pool of
//! runner threads with its own resident [`PlannedImage`]s. The
//! content-addressed [`Store`] directory is the only state shared with
//! the coordinator and the other workers: every executed result is
//! persisted there, and every dispatched member is checked against it
//! first, so a row another process already landed is never simulated
//! twice.
//!
//! Liveness is a `heartbeat` line every couple of idle seconds; if the
//! process dies mid-group the coordinator notices the dropped
//! connection, requeues the unfinished digests on another worker (or
//! runs them in-process), and a restarted worker simply re-registers —
//! its store view re-syncs lazily through on-disk adoption.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dmdp_core::{CoreConfig, SIM_VERSION};
use dmdp_harness::{JobResult, JobSpec, Json, PlannedImage, Sampling, SamplingSpec};
use dmdp_obs::log::{EventLog, Level};
use dmdp_sample::SampledBundle;
use dmdp_workloads::{Scale, Suite};

use crate::client::retry_transient;
use crate::protocol::{self, CoordMsg, GroupSpec, LineEvent, LineReader, WorkerHello, PROTOCOL_VERSION};
use crate::store::Store;

/// Configuration of one [`run_worker`] invocation.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator TCP address (e.g. `127.0.0.1:7199`).
    pub connect: String,
    /// Root directory of the shared content-addressed result store.
    pub store_dir: PathBuf,
    /// Runner threads (0 = one per affinity core, minimum 1).
    pub jobs: usize,
    /// Cores to pin this process to (best-effort; empty = no pinning).
    pub cores: Vec<usize>,
    /// Display name; labels this worker's rows in coordinator metrics.
    pub name: String,
    /// Transient connect failures to retry ([`retry_transient`]) — a
    /// worker usually races the coordinator's bind.
    pub connect_retries: u32,
    /// Suppress per-group log lines (warnings still surface).
    pub quiet: bool,
}

/// Final worker-side counters, returned when the coordinator hangs up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Job groups completed (including failed ones).
    pub groups: u64,
    /// Jobs actually simulated here.
    pub executed: u64,
    /// Dispatched jobs satisfied from the shared store.
    pub store_hits: u64,
}

/// Pins the calling process to `cores` via a raw `sched_setaffinity`
/// syscall — no libc crate. Strictly best-effort: any failure leaves
/// the default affinity in place, which only costs locality.
#[cfg(target_os = "linux")]
fn pin_cores(cores: &[usize]) {
    if cores.is_empty() {
        return;
    }
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let mut mask = [0u64; 16]; // up to 1024 cpus
    for &c in cores {
        if c < 1024 {
            mask[c / 64] |= 1 << (c % 64);
        }
    }
    let _ = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
}

#[cfg(not(target_os = "linux"))]
fn pin_cores(_cores: &[usize]) {}

struct ResidentWorkload {
    name: String,
    suite: Suite,
    image: PlannedImage,
}

struct WorkerCtx {
    store: Store,
    log: EventLog,
    /// Resident images per scale, built lazily on first dispatch —
    /// exactly the set the coordinator holds, so digests agree.
    images: Mutex<HashMap<&'static str, Arc<Vec<ResidentWorkload>>>>,
    groups: AtomicU64,
    executed: AtomicU64,
    store_hits: AtomicU64,
}

impl WorkerCtx {
    fn resident_images(&self, scale: Scale) -> Arc<Vec<ResidentWorkload>> {
        let mut map = self.images.lock().unwrap();
        if let Some(v) = map.get(scale.name()) {
            return Arc::clone(v);
        }
        let built: Vec<ResidentWorkload> = dmdp_workloads::all(scale)
            .into_iter()
            .map(|w| ResidentWorkload {
                name: w.name.to_string(),
                suite: w.suite,
                image: PlannedImage::new(Arc::new(w.program)),
            })
            .collect();
        let arc = Arc::new(built);
        map.insert(scale.name(), Arc::clone(&arc));
        arc
    }

    /// The workload's sampled bundle: shared store blob first (the
    /// coordinator profiles each workload once and persists it), else a
    /// local rebuild whose bytes are persisted for everyone else.
    fn resolve_bundle(
        &self,
        image: &PlannedImage,
        sampling: Sampling,
    ) -> Result<Arc<SampledBundle>, String> {
        let digest = sampling.bundle_digest(&image.program);
        if let Some(bytes) = self.store.get_blob(&digest) {
            if let Ok(bundle) = SampledBundle::from_bytes(&bytes) {
                let bundle = Arc::new(bundle);
                dmdp_harness::record_bundle(&bundle, 0.0);
                return Ok(bundle);
            }
            self.log.warn("bundle_corrupt", &[("digest", (&digest).into())]);
        }
        let bundle = dmdp_harness::build_bundle(&image.program, sampling)?;
        if let Err(e) = self.store.put_blob(&digest, &bundle.to_bytes()) {
            self.log.warn(
                "store_write_failed",
                &[("digest", (&digest).into()), ("error", (&e).into())],
            );
        }
        Ok(bundle)
    }

    /// Executes one dispatched group: rebuild the member [`JobSpec`]s
    /// against the resident images (digests are content-derived, so
    /// they match the coordinator's), satisfy what the shared store
    /// already holds, batch-execute the rest in lockstep when the group
    /// asked for it, and persist every executed row.
    fn run_group(&self, spec: &GroupSpec) -> Result<Vec<(JobResult, String)>, String> {
        let resident = self.resident_images(spec.scale);
        let w = resident
            .iter()
            .find(|w| w.name == spec.workload)
            .ok_or_else(|| format!("unknown workload `{}`", spec.workload))?;
        let bundle = match spec.sampling {
            Some(s) => Some(self.resolve_bundle(&w.image, s)?),
            None => None,
        };
        let mut jobs = Vec::with_capacity(spec.variants.len());
        for (label, patch) in &spec.variants {
            let mut cfg = CoreConfig::new(spec.model);
            patch.apply(&mut cfg);
            let mut job =
                JobSpec::new(&w.name, w.suite, spec.model, spec.scale, label, cfg, &w.image);
            if let (Some(s), Some(b)) = (spec.sampling, &bundle) {
                job = job.sampled(SamplingSpec { sampling: s, bundle: Arc::clone(b) });
            }
            jobs.push(job);
        }
        let mut rows: Vec<Option<(JobResult, String)>> = (0..jobs.len()).map(|_| None).collect();
        let mut misses = Vec::new();
        for (k, job) in jobs.iter().enumerate() {
            match self.store.get(&job.digest) {
                Some(hit) => {
                    self.store_hits.fetch_add(1, Ordering::Relaxed);
                    rows[k] = Some((hit, "store".to_string()));
                }
                None => misses.push(k),
            }
        }
        let outcomes: Vec<Result<JobResult, String>> =
            if spec.batch && misses.len() > 1 && spec.sampling.is_none() {
                let refs: Vec<&JobSpec> = misses.iter().map(|&k| &jobs[k]).collect();
                JobSpec::execute_batch(&refs)
            } else {
                misses.iter().map(|&k| jobs[k].execute()).collect()
            };
        for (&k, outcome) in misses.iter().zip(outcomes) {
            let r = outcome?;
            self.executed.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = self.store.put(&r) {
                self.log.warn(
                    "store_write_failed",
                    &[("digest", (&r.digest).into()), ("error", (&e).into())],
                );
            }
            rows[k] = Some((r, "executed".to_string()));
        }
        Ok(rows.into_iter().map(|r| r.expect("every row filled")).collect())
    }
}

fn write_locked<W: Write>(writer: &Mutex<W>, msg: &Json) -> Result<(), String> {
    protocol::write_msg(&mut *writer.lock().unwrap(), msg)
}

/// Runs one worker until the coordinator shuts it down or the
/// connection drops: connect (with retries), register, then drain
/// dispatched groups on `jobs` runner threads while the main thread
/// keeps reading the socket and heartbeating.
///
/// # Errors
///
/// Connect/handshake failures, a coordinator refusal (protocol or
/// `SIM_VERSION` mismatch), or store setup failures.
pub fn run_worker(opts: &WorkerOptions) -> Result<WorkerReport, String> {
    pin_cores(&opts.cores);
    let jobs = if opts.jobs == 0 { opts.cores.len().max(1) } else { opts.jobs };
    let log = EventLog::stderr(if opts.quiet { Level::Warn } else { Level::Info });
    let stream = retry_transient(opts.connect_retries, || TcpStream::connect(&opts.connect))
        .map_err(|e| format!("{}: {e}", opts.connect))?;
    let read_half = stream.try_clone().map_err(|e| format!("{}: {e}", opts.connect))?;
    read_half
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| format!("{}: {e}", opts.connect))?;
    let mut reader = LineReader::new(read_half);
    let writer = Mutex::new(stream);

    let hello = WorkerHello {
        protocol: PROTOCOL_VERSION,
        sim_version: SIM_VERSION.to_string(),
        name: opts.name.clone(),
        jobs,
        cores: opts.cores.clone(),
    };
    write_locked(&writer, &protocol::register_msg(&hello))?;
    let worker_id = {
        let mut idle = 0;
        loop {
            match reader.read_line()? {
                LineEvent::Line(text) => {
                    let v = Json::parse(&text)?;
                    match CoordMsg::from_json(&v)? {
                        CoordMsg::Registered { worker } => break worker,
                        CoordMsg::Error(e) => {
                            return Err(format!("coordinator refused registration: {e}"));
                        }
                        other => {
                            return Err(format!(
                                "unexpected coordinator message before registration: {other:?}"
                            ));
                        }
                    }
                }
                LineEvent::Idle => {
                    idle += 1;
                    if idle > 100 {
                        return Err("coordinator did not answer the handshake".to_string());
                    }
                }
                LineEvent::Eof => {
                    return Err("coordinator closed the connection during registration"
                        .to_string());
                }
            }
        }
    };
    let ctx = WorkerCtx {
        store: Store::open(&opts.store_dir, None)?,
        log,
        images: Mutex::new(HashMap::new()),
        groups: AtomicU64::new(0),
        executed: AtomicU64::new(0),
        store_hits: AtomicU64::new(0),
    };
    ctx.log.info(
        "worker_registered",
        &[
            ("name", (&opts.name).into()),
            ("worker", worker_id.into()),
            ("coordinator", (&opts.connect).into()),
            ("jobs", jobs.into()),
            ("pid", std::process::id().into()),
        ],
    );

    let queue: Mutex<VecDeque<(u64, GroupSpec)>> = Mutex::new(VecDeque::new());
    let queue_cv = Condvar::new();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let next = {
                    let mut q = queue.lock().unwrap();
                    loop {
                        if let Some(item) = q.pop_front() {
                            break Some(item);
                        }
                        if done.load(Ordering::SeqCst) {
                            break None;
                        }
                        q = queue_cv.wait(q).unwrap();
                    }
                };
                let Some((gid, gspec)) = next else { return };
                let start = Instant::now();
                let msg = match ctx.run_group(&gspec) {
                    Ok(rows) => protocol::group_done_msg(gid, &rows),
                    Err(e) => {
                        ctx.log.warn(
                            "group_failed",
                            &[("group", gid.into()), ("error", (&e).into())],
                        );
                        protocol::group_failed_msg(gid, &e)
                    }
                };
                ctx.groups.fetch_add(1, Ordering::Relaxed);
                ctx.log.debug(
                    "group_done",
                    &[
                        ("group", gid.into()),
                        ("workload", (&gspec.workload).into()),
                        ("members", gspec.variants.len().into()),
                        ("wall_s", start.elapsed().as_secs_f64().into()),
                    ],
                );
                if write_locked(&writer, &msg).is_err() {
                    done.store(true, Ordering::SeqCst);
                    queue_cv.notify_all();
                    return;
                }
            });
        }
        let mut last_beat = Instant::now();
        loop {
            if done.load(Ordering::SeqCst) {
                break;
            }
            match reader.read_line() {
                Ok(LineEvent::Line(text)) => {
                    match Json::parse(&text).and_then(|v| CoordMsg::from_json(&v)) {
                        Ok(CoordMsg::Group { id, spec }) => {
                            queue.lock().unwrap().push_back((id, spec));
                            queue_cv.notify_one();
                        }
                        Ok(CoordMsg::Shutdown) => {
                            ctx.log.info("worker_shutdown", &[("worker", worker_id.into())]);
                            break;
                        }
                        Ok(CoordMsg::Registered { .. }) => {}
                        Ok(CoordMsg::Error(e)) => {
                            ctx.log.warn("coordinator_error", &[("error", (&e).into())]);
                            break;
                        }
                        Err(e) => {
                            ctx.log.warn("bad_line", &[("error", (&e).into())]);
                            break;
                        }
                    }
                }
                Ok(LineEvent::Idle) => {
                    if last_beat.elapsed() >= Duration::from_secs(2) {
                        if write_locked(&writer, &protocol::heartbeat_msg()).is_err() {
                            break;
                        }
                        last_beat = Instant::now();
                    }
                }
                Ok(LineEvent::Eof) | Err(_) => break,
            }
        }
        done.store(true, Ordering::SeqCst);
        queue_cv.notify_all();
    });
    let report = WorkerReport {
        groups: ctx.groups.load(Ordering::Relaxed),
        executed: ctx.executed.load(Ordering::Relaxed),
        store_hits: ctx.store_hits.load(Ordering::Relaxed),
    };
    ctx.log.info(
        "worker_stopped",
        &[
            ("name", (&opts.name).into()),
            ("groups", report.groups.into()),
            ("executed", report.executed.into()),
            ("store_hits", report.store_hits.into()),
        ],
    );
    Ok(report)
}
