//! The `dmdp submit` client side of the daemon protocol.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use dmdp_harness::{Campaign, Json};

use crate::protocol::{self, LineEvent, LineReader, Request, SubmitRequest};

/// A connected daemon client. One connection can carry any number of
/// requests in sequence.
pub struct Client {
    reader: LineReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Client {
    /// Connects over a unix socket.
    ///
    /// # Errors
    ///
    /// Connection failures, stringified with the socket path.
    pub fn connect_unix(path: &Path) -> Result<Client, String> {
        let stream =
            UnixStream::connect(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let read_half = stream.try_clone().map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Client {
            reader: LineReader::new(Box::new(read_half)),
            writer: Box::new(stream),
        })
    }

    /// Connects over TCP (e.g. `127.0.0.1:7199`).
    ///
    /// # Errors
    ///
    /// Connection failures, stringified with the address.
    pub fn connect_tcp(addr: &str) -> Result<Client, String> {
        let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
        let read_half = stream.try_clone().map_err(|e| format!("{addr}: {e}"))?;
        Ok(Client {
            reader: LineReader::new(Box::new(read_half)),
            writer: Box::new(stream),
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), String> {
        protocol::write_msg(&mut self.writer, &req.to_json())
    }

    /// The next complete message from the daemon. Blocks; `Idle` never
    /// surfaces here because client sockets have no read timeout.
    fn next_msg(&mut self) -> Result<Json, String> {
        loop {
            match self.reader.read_line()? {
                LineEvent::Line(text) => {
                    return Json::parse(&text)
                        .map_err(|e| format!("daemon sent a malformed message: {e}"));
                }
                LineEvent::Eof => return Err("daemon closed the connection".to_string()),
                LineEvent::Idle => continue,
            }
        }
    }

    /// If the message is an `error`, surfaces it as `Err`.
    fn check_error(msg: &Json) -> Result<(), String> {
        if msg.get("type").and_then(Json::as_str) == Some("error") {
            let detail = msg
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("(no detail)");
            return Err(format!("daemon error: {detail}"));
        }
        Ok(())
    }

    /// Liveness check; returns the daemon's protocol version.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`pong` reply.
    pub fn ping(&mut self) -> Result<u64, String> {
        self.send(&Request::Ping)?;
        let msg = self.next_msg()?;
        Self::check_error(&msg)?;
        match msg.get("type").and_then(Json::as_str) {
            Some("pong") => Ok(msg.get("protocol").and_then(Json::as_u64).unwrap_or(0)),
            other => Err(format!("expected pong, got `{}`", other.unwrap_or("?"))),
        }
    }

    /// Fetches the daemon's stats document.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`stats` reply.
    pub fn stats(&mut self) -> Result<Json, String> {
        self.send(&Request::Stats)?;
        let msg = self.next_msg()?;
        Self::check_error(&msg)?;
        match msg.get("type").and_then(Json::as_str) {
            Some("stats") => Ok(msg),
            other => Err(format!("expected stats, got `{}`", other.unwrap_or("?"))),
        }
    }

    /// Fetches the daemon's full metrics registry snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`metrics` reply.
    pub fn metrics(&mut self) -> Result<Json, String> {
        self.send(&Request::Metrics)?;
        let msg = self.next_msg()?;
        Self::check_error(&msg)?;
        match msg.get("type").and_then(Json::as_str) {
            Some("metrics") => Ok(msg),
            other => Err(format!("expected metrics, got `{}`", other.unwrap_or("?"))),
        }
    }

    /// Asks the daemon to drain running submissions and exit. Returns
    /// once the daemon acknowledges — i.e. after the drain.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`ok` reply.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send(&Request::Shutdown)?;
        let msg = self.next_msg()?;
        Self::check_error(&msg)?;
        match msg.get("type").and_then(Json::as_str) {
            Some("ok") => Ok(()),
            other => Err(format!("expected ok, got `{}`", other.unwrap_or("?"))),
        }
    }

    /// Submits a campaign and blocks until the daemon returns the
    /// complete artifact. When the request asked to `watch`, every
    /// `started`/`finished` event is handed to `on_event` as it arrives.
    ///
    /// # Errors
    ///
    /// Transport failures, a daemon-side `error` reply, or an artifact
    /// that does not deserialize.
    pub fn submit(
        &mut self,
        req: &SubmitRequest,
        mut on_event: impl FnMut(&Json),
    ) -> Result<Campaign, String> {
        self.send(&Request::Submit(req.clone()))?;
        loop {
            let msg = self.next_msg()?;
            Self::check_error(&msg)?;
            match msg.get("type").and_then(Json::as_str) {
                Some("started") | Some("finished") => on_event(&msg),
                Some("artifact") => {
                    let campaign =
                        msg.get("campaign").ok_or("artifact reply without a campaign")?;
                    return Campaign::from_json(campaign);
                }
                other => {
                    return Err(format!(
                        "unexpected daemon message `{}`",
                        other.unwrap_or("?")
                    ));
                }
            }
        }
    }
}

/// Issues one `GET /metrics` over an already-connected stream and
/// returns the Prometheus text body. The daemon closes the connection
/// after the response, so read-to-end frames it.
fn scrape_metrics<S: Read + Write>(mut stream: S, what: &str) -> Result<String, String> {
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n")
        .map_err(|e| format!("{what}: {e}"))?;
    stream.flush().map_err(|e| format!("{what}: {e}"))?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| format!("{what}: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{what}: malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("{what}: {status}"));
    }
    Ok(body.to_string())
}

/// Scrapes `GET /metrics` from a daemon's unix socket.
///
/// # Errors
///
/// Connection or HTTP failures, stringified.
pub fn scrape_metrics_unix(path: &Path) -> Result<String, String> {
    let stream = UnixStream::connect(path).map_err(|e| format!("{}: {e}", path.display()))?;
    scrape_metrics(stream, &path.display().to_string())
}

/// Scrapes `GET /metrics` from a daemon's TCP listener — exactly what a
/// Prometheus scraper would do.
///
/// # Errors
///
/// Connection or HTTP failures, stringified.
pub fn scrape_metrics_tcp(addr: &str) -> Result<String, String> {
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    scrape_metrics(stream, addr)
}
