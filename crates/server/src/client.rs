//! The `dmdp submit` client side of the daemon protocol.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use dmdp_harness::{Campaign, Json};

use crate::protocol::{self, LineEvent, LineReader, Request, SubmitRequest};

/// A connected daemon client. One connection can carry any number of
/// requests in sequence.
pub struct Client {
    reader: LineReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Client {
    /// Connects over a unix socket.
    ///
    /// # Errors
    ///
    /// Connection failures, stringified with the socket path.
    pub fn connect_unix(path: &Path) -> Result<Client, String> {
        let stream =
            UnixStream::connect(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let read_half = stream.try_clone().map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Client {
            reader: LineReader::new(Box::new(read_half)),
            writer: Box::new(stream),
        })
    }

    /// Connects over TCP (e.g. `127.0.0.1:7199`).
    ///
    /// # Errors
    ///
    /// Connection failures, stringified with the address.
    pub fn connect_tcp(addr: &str) -> Result<Client, String> {
        let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
        let read_half = stream.try_clone().map_err(|e| format!("{addr}: {e}"))?;
        Ok(Client {
            reader: LineReader::new(Box::new(read_half)),
            writer: Box::new(stream),
        })
    }

    /// [`Client::connect_unix`] with transient-failure retries
    /// ([`retry_transient`]) — racing a daemon that is still binding its
    /// socket is expected in scripts.
    ///
    /// # Errors
    ///
    /// The last connection failure once the retries are exhausted.
    pub fn connect_unix_retry(path: &Path, retries: u32) -> Result<Client, String> {
        retry_transient(retries, || {
            UnixStream::connect(path).map(|stream| {
                let read_half = stream.try_clone();
                (stream, read_half)
            })
        })
        .map_err(|e| format!("{}: {e}", path.display()))
        .and_then(|(stream, read_half)| {
            let read_half = read_half.map_err(|e| format!("{}: {e}", path.display()))?;
            Ok(Client { reader: LineReader::new(Box::new(read_half)), writer: Box::new(stream) })
        })
    }

    /// [`Client::connect_tcp`] with transient-failure retries
    /// ([`retry_transient`]).
    ///
    /// # Errors
    ///
    /// The last connection failure once the retries are exhausted.
    pub fn connect_tcp_retry(addr: &str, retries: u32) -> Result<Client, String> {
        retry_transient(retries, || {
            std::net::TcpStream::connect(addr).map(|stream| {
                let read_half = stream.try_clone();
                (stream, read_half)
            })
        })
        .map_err(|e| format!("{addr}: {e}"))
        .and_then(|(stream, read_half)| {
            let read_half = read_half.map_err(|e| format!("{addr}: {e}"))?;
            Ok(Client { reader: LineReader::new(Box::new(read_half)), writer: Box::new(stream) })
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), String> {
        protocol::write_msg(&mut self.writer, &req.to_json())
    }

    /// The next complete message from the daemon. Blocks; `Idle` never
    /// surfaces here because client sockets have no read timeout.
    fn next_msg(&mut self) -> Result<Json, String> {
        loop {
            match self.reader.read_line()? {
                LineEvent::Line(text) => {
                    return Json::parse(&text)
                        .map_err(|e| format!("daemon sent a malformed message: {e}"));
                }
                LineEvent::Eof => return Err("daemon closed the connection".to_string()),
                LineEvent::Idle => continue,
            }
        }
    }

    /// If the message is an `error`, surfaces it as `Err`.
    fn check_error(msg: &Json) -> Result<(), String> {
        if msg.get("type").and_then(Json::as_str) == Some("error") {
            let detail = msg
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("(no detail)");
            return Err(format!("daemon error: {detail}"));
        }
        Ok(())
    }

    /// Liveness check; returns the daemon's protocol version.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`pong` reply.
    pub fn ping(&mut self) -> Result<u64, String> {
        self.send(&Request::Ping)?;
        let msg = self.next_msg()?;
        Self::check_error(&msg)?;
        match msg.get("type").and_then(Json::as_str) {
            Some("pong") => Ok(msg.get("protocol").and_then(Json::as_u64).unwrap_or(0)),
            other => Err(format!("expected pong, got `{}`", other.unwrap_or("?"))),
        }
    }

    /// Fetches the daemon's stats document.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`stats` reply.
    pub fn stats(&mut self) -> Result<Json, String> {
        self.send(&Request::Stats)?;
        let msg = self.next_msg()?;
        Self::check_error(&msg)?;
        match msg.get("type").and_then(Json::as_str) {
            Some("stats") => Ok(msg),
            other => Err(format!("expected stats, got `{}`", other.unwrap_or("?"))),
        }
    }

    /// Fetches the daemon's full metrics registry snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`metrics` reply.
    pub fn metrics(&mut self) -> Result<Json, String> {
        self.send(&Request::Metrics)?;
        let msg = self.next_msg()?;
        Self::check_error(&msg)?;
        match msg.get("type").and_then(Json::as_str) {
            Some("metrics") => Ok(msg),
            other => Err(format!("expected metrics, got `{}`", other.unwrap_or("?"))),
        }
    }

    /// Asks the daemon to drain running submissions and exit. Returns
    /// once the daemon acknowledges — i.e. after the drain.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`ok` reply.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send(&Request::Shutdown)?;
        let msg = self.next_msg()?;
        Self::check_error(&msg)?;
        match msg.get("type").and_then(Json::as_str) {
            Some("ok") => Ok(()),
            other => Err(format!("expected ok, got `{}`", other.unwrap_or("?"))),
        }
    }

    /// Submits a campaign and blocks until the daemon returns the
    /// complete artifact. When the request asked to `watch`, every
    /// `started`/`finished` event is handed to `on_event` as it arrives.
    ///
    /// # Errors
    ///
    /// Transport failures, a daemon-side `error` reply, or an artifact
    /// that does not deserialize.
    pub fn submit(
        &mut self,
        req: &SubmitRequest,
        mut on_event: impl FnMut(&Json),
    ) -> Result<Campaign, String> {
        self.send(&Request::Submit(req.clone()))?;
        loop {
            let msg = self.next_msg()?;
            Self::check_error(&msg)?;
            match msg.get("type").and_then(Json::as_str) {
                Some("started") | Some("finished") => on_event(&msg),
                Some("artifact") => {
                    let campaign =
                        msg.get("campaign").ok_or("artifact reply without a campaign")?;
                    return Campaign::from_json(campaign);
                }
                other => {
                    return Err(format!(
                        "unexpected daemon message `{}`",
                        other.unwrap_or("?")
                    ));
                }
            }
        }
    }
}

/// Retries `op` across *transient* connection failures — the daemon not
/// up yet (refused, socket file absent) or drowning in backlog (reset,
/// aborted, timed out) — with capped exponential backoff: 100 ms
/// doubling per attempt, capped at 2 s. `retries` counts the extra
/// attempts after the first, so `0` degrades to a single plain try.
/// Non-transient errors (permission denied, unreachable address) fail
/// immediately.
///
/// # Errors
///
/// The first non-transient error, or the last error once the retry
/// budget is exhausted.
pub fn retry_transient<T>(
    retries: u32,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    use std::io::ErrorKind;
    let mut backoff = std::time::Duration::from_millis(100);
    let cap = std::time::Duration::from_secs(2);
    let mut attempt = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                let transient = matches!(
                    e.kind(),
                    ErrorKind::ConnectionRefused
                        | ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::NotFound
                        | ErrorKind::TimedOut
                        | ErrorKind::WouldBlock
                        | ErrorKind::Interrupted
                );
                if !transient || attempt >= retries {
                    return Err(e);
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(cap);
                attempt += 1;
            }
        }
    }
}

/// Issues one `GET /metrics` over an already-connected stream and
/// returns the Prometheus text body. The daemon closes the connection
/// after the response, so read-to-end frames it.
fn scrape_metrics<S: Read + Write>(mut stream: S, what: &str) -> Result<String, String> {
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n")
        .map_err(|e| format!("{what}: {e}"))?;
    stream.flush().map_err(|e| format!("{what}: {e}"))?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| format!("{what}: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{what}: malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("{what}: {status}"));
    }
    Ok(body.to_string())
}

/// Scrapes `GET /metrics` from a daemon's unix socket.
///
/// # Errors
///
/// Connection or HTTP failures, stringified.
pub fn scrape_metrics_unix(path: &Path) -> Result<String, String> {
    let stream = UnixStream::connect(path).map_err(|e| format!("{}: {e}", path.display()))?;
    scrape_metrics(stream, &path.display().to_string())
}

/// Scrapes `GET /metrics` from a daemon's TCP listener — exactly what a
/// Prometheus scraper would do.
///
/// # Errors
///
/// Connection or HTTP failures, stringified.
pub fn scrape_metrics_tcp(addr: &str) -> Result<String, String> {
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    scrape_metrics(stream, addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::ErrorKind;

    #[test]
    fn retry_transient_retries_refusals_then_succeeds() {
        let mut attempts = 0;
        let got = retry_transient(3, || {
            attempts += 1;
            if attempts < 3 {
                Err(std::io::Error::new(ErrorKind::ConnectionRefused, "not up yet"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(got.unwrap(), 42);
        assert_eq!(attempts, 3);
    }

    #[test]
    fn retry_transient_fails_fast_on_permanent_errors() {
        let mut attempts = 0;
        let got: std::io::Result<()> = retry_transient(5, || {
            attempts += 1;
            Err(std::io::Error::new(ErrorKind::PermissionDenied, "no"))
        });
        assert_eq!(got.unwrap_err().kind(), ErrorKind::PermissionDenied);
        assert_eq!(attempts, 1, "permanent errors are not retried");
    }

    #[test]
    fn retry_transient_exhausts_its_budget() {
        let mut attempts = 0;
        let got: std::io::Result<()> = retry_transient(2, || {
            attempts += 1;
            Err(std::io::Error::new(ErrorKind::ConnectionRefused, "still down"))
        });
        assert_eq!(got.unwrap_err().kind(), ErrorKind::ConnectionRefused);
        assert_eq!(attempts, 3, "one try plus two retries");
    }
}
