//! Content digests for the campaign cache.
//!
//! A job's digest is a 64-bit FNV-1a hash over everything that
//! determines its result: the simulator's timing-semantics version, the
//! full core configuration identity, and the workload's assembled
//! program image (which itself captures the scale and the generator
//! seeds). Two jobs with equal digests produce bit-identical
//! [`dmdp_core::SimStats`], so a cached result can stand in for a re-run.

/// Streaming FNV-1a (64-bit). Not cryptographic — it only needs to make
/// accidental digest collisions between *different experiment setups*
/// vanishingly unlikely, and to be stable across platforms and builds.
#[derive(Debug, Clone, Copy)]
pub struct Digest64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Digest64 {
    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Digest64 {
        Digest64 { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a string, length-prefixed so field boundaries cannot
    /// alias (`"ab" + "c"` digests differently from `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(&(s.len() as u64).to_le_bytes());
        self.write(s.as_bytes())
    }

    /// The final 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The final digest as a fixed-width hex string (JSON-friendly).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

impl Default for Digest64 {
    fn default() -> Self {
        Digest64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_offset_basis() {
        assert_eq!(Digest64::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn known_answer() {
        // FNV-1a("a") — the published test vector.
        let mut d = Digest64::new();
        d.write(b"a");
        assert_eq!(d.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn length_prefix_prevents_aliasing() {
        let mut a = Digest64::new();
        a.write_str("ab").write_str("c");
        let mut b = Digest64::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_sixteen_chars() {
        assert_eq!(Digest64::new().hex().len(), 16);
    }
}
