#![warn(missing_docs)]
//! # dmdp-harness
//!
//! The experiment-campaign engine: builds a job list of (workload ×
//! communication model × configuration variant) simulations, executes it
//! on a work-stealing `std::thread` pool — every [`dmdp_core::Simulator`]
//! run is independent and deterministic, so parallel and serial
//! executions are bit-identical — and collects the results into a
//! [`Campaign`] with per-job wall-clock, simulated-MIPS throughput and
//! per-suite geometric means.
//!
//! Campaigns serialize to human-diffable JSON artifacts
//! (`bench-results/<campaign>.json`) through a hand-rolled, offline
//! writer/reader ([`json::Json`] — no serde). Every job carries a
//! content digest over the simulator's timing version, the full core
//! configuration and the assembled workload image; re-running a campaign
//! against an existing artifact skips every digest-matched job, so an
//! unchanged campaign re-runs **zero** simulations.
//!
//! Used by the `dmdp campaign` CLI subcommand and by the headline bench
//! targets (`fig12_speedup`, `tab04_load_latency`, `tab06_mpki`), which
//! obtain their rows through a campaign instead of private serial loops.
//!
//! # Example
//!
//! ```
//! use dmdp_harness::{CampaignSpec, RunOptions};
//! use dmdp_core::CommModel;
//! use dmdp_workloads::{Scale, Suite};
//!
//! let campaign = CampaignSpec::new("demo", Scale::Test)
//!     .models([CommModel::NoSq, CommModel::Dmdp])
//!     .kernels(["hmmer"])
//!     .run(&RunOptions { jobs: 2, ..RunOptions::default() })
//!     .unwrap();
//! let nosq = campaign.get("hmmer", CommModel::NoSq).unwrap();
//! let dmdp = campaign.get("hmmer", CommModel::Dmdp).unwrap();
//! assert!(nosq.ipc > 0.0 && dmdp.ipc > 0.0);
//! ```

pub mod digest;
pub mod json;
pub mod pool;
pub mod report;

mod campaign;
mod group;
mod job;
mod sampled;

pub use campaign::{Campaign, CampaignSpec, RunOptions, StageWall};
pub use digest::Digest64;
pub use group::{collect_ordered, partition_units};
pub use job::{CfgPatch, JobResult, JobSpec, PlannedImage};
pub use sampled::{build_bundle, record_bundle, Sampling, SamplingSpec};
pub use json::Json;
pub use pool::{default_workers, map_ordered, map_ordered_with, JobEvent};
pub use report::{error_table, render_campaign, render_error_table, ErrorRow, ErrorTable};
