//! Campaign construction, parallel execution, aggregation, artifact I/O
//! and the content-digest cache.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dmdp_core::{CommModel, CoreConfig, SIM_VERSION};
use dmdp_stats::geomean;
use dmdp_workloads::{Scale, Suite};

use crate::job::{CfgPatch, JobResult, JobSpec};
use crate::json::{obj, Json};
use crate::pool;
use crate::sampled::{Sampling, SamplingSpec};

/// Declarative description of an experiment campaign: which workloads,
/// under which communication models, at which scale, with which
/// configuration variants. The job list is the cross product.
///
/// # Example
///
/// ```
/// use dmdp_harness::{CampaignSpec, RunOptions};
/// use dmdp_core::CommModel;
/// use dmdp_workloads::Scale;
///
/// let campaign = CampaignSpec::new("doc", Scale::Test)
///     .models([CommModel::Baseline, CommModel::Dmdp])
///     .kernels(["lib", "mcf"])
///     .run(&RunOptions { jobs: 2, ..RunOptions::default() })
///     .unwrap();
/// assert_eq!(campaign.jobs.len(), 4);
/// assert!(campaign.get("mcf", CommModel::Dmdp).unwrap().ipc > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (also the default artifact stem).
    pub name: String,
    /// Workload scale for every job.
    pub scale: Scale,
    /// Communication models to sweep.
    pub models: Vec<CommModel>,
    /// Workload-name filter; `None` means all 21 kernels.
    pub kernels: Option<Vec<String>>,
    /// Configuration variants as `(label, patch)`; the default is the
    /// single unpatched variant `"main"`.
    pub variants: Vec<(String, CfgPatch)>,
    /// Run every job sampled (profile + cluster + checkpoint fast-
    /// forward) instead of in full. One bundle is built per workload
    /// and shared by all its (model × variant) jobs.
    pub sampling: Option<Sampling>,
}

impl CampaignSpec {
    /// A campaign over all 21 kernels under every model, main config.
    pub fn new(name: &str, scale: Scale) -> CampaignSpec {
        CampaignSpec {
            name: name.to_string(),
            scale,
            models: CommModel::ALL.to_vec(),
            kernels: None,
            variants: vec![("main".to_string(), CfgPatch::default())],
            sampling: None,
        }
    }

    /// Switches every job to sampled simulation with the given interval
    /// length and warmup depth.
    pub fn sampled(mut self, interval_insns: u64, warmup_intervals: u32) -> CampaignSpec {
        self.sampling = Some(Sampling { interval_insns, warmup_intervals });
        self
    }

    /// Restricts the model sweep.
    pub fn models(mut self, models: impl IntoIterator<Item = CommModel>) -> CampaignSpec {
        self.models = models.into_iter().collect();
        self
    }

    /// Restricts the workload set by name.
    pub fn kernels<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> CampaignSpec {
        self.kernels = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Replaces the variant list.
    pub fn variants(
        mut self,
        variants: impl IntoIterator<Item = (String, CfgPatch)>,
    ) -> CampaignSpec {
        self.variants = variants.into_iter().collect();
        self
    }

    /// Materializes the job list: builds each selected workload once and
    /// crosses it with the models and variants.
    ///
    /// # Errors
    ///
    /// If a kernel filter names an unknown workload.
    pub fn jobs(&self) -> Result<Vec<JobSpec>, String> {
        // Duplicate variant labels would silently collide in artifacts,
        // reports and the sweep table — reject them up front.
        for (i, (label, _)) in self.variants.iter().enumerate() {
            if self.variants[..i].iter().any(|(prior, _)| prior == label) {
                return Err(format!(
                    "duplicate variant label `{label}`: variant labels must be unique \
                     within a campaign"
                ));
            }
        }
        let all = dmdp_workloads::all(self.scale);
        if let Some(filter) = &self.kernels {
            for name in filter {
                if !all.iter().any(|w| w.name == name) {
                    let known: Vec<&str> = all.iter().map(|w| w.name).collect();
                    return Err(format!(
                        "unknown workload `{name}`; valid kernels: {}",
                        known.join(", ")
                    ));
                }
            }
        }
        let mut jobs = Vec::new();
        for w in all {
            if let Some(filter) = &self.kernels {
                if !filter.iter().any(|n| n == w.name) {
                    continue;
                }
            }
            // One program image + plan cache per workload, shared by
            // every (model × variant) job that runs it — and, when
            // sampling, one bundle (profile + clustering + checkpoints):
            // profile once, simulate every model from the same
            // checkpoints.
            let image = crate::job::PlannedImage::new(Arc::new(w.program));
            let bundle = match self.sampling {
                Some(s) => Some(crate::sampled::build_bundle(&image.program, s)?),
                None => None,
            };
            for &model in &self.models {
                for (label, patch) in &self.variants {
                    let mut cfg = CoreConfig::new(model);
                    patch.apply(&mut cfg);
                    let mut job =
                        JobSpec::new(w.name, w.suite, model, self.scale, label, cfg, &image);
                    if let (Some(s), Some(b)) = (self.sampling, &bundle) {
                        job = job.sampled(SamplingSpec { sampling: s, bundle: Arc::clone(b) });
                    }
                    jobs.push(job);
                }
            }
        }
        Ok(jobs)
    }

    /// Runs the campaign: fans the job list out over a work-stealing
    /// thread pool, reusing digest-matched results from `opts.cache`.
    ///
    /// # Errors
    ///
    /// The first job error (cycle-limit abort), an invalid kernel
    /// filter, or an unreadable cache artifact.
    pub fn run(&self, opts: &RunOptions) -> Result<Campaign, String> {
        let start = Instant::now();
        let specs = self.jobs()?;
        let build_s = start.elapsed().as_secs_f64();

        let cache_start = Instant::now();
        let mut cache_warning: Option<String> = None;
        let cached: Vec<Option<JobResult>> = match &opts.cache {
            // A cache artifact that fails to load — a schema version from
            // a different binary generation, a truncated write, plain
            // garbage — must not abort the campaign: it is only a cache.
            // Warn, pretend it was absent and recompute every job.
            Some(path) if path.exists() => match Campaign::load(path) {
                Ok(prior) => specs
                    .iter()
                    .map(|s| {
                        prior.jobs.iter().find(|r| r.digest == s.digest).map(|r| JobResult {
                            cached: true,
                            stats: None,
                            ..r.clone()
                        })
                    })
                    .collect(),
                Err(e) => {
                    let msg = format!(
                        "cache artifact {} is unusable ({e}); re-running every job",
                        path.display()
                    );
                    eprintln!("dmdp: warning: {msg}");
                    cache_warning = Some(msg);
                    specs.iter().map(|_| None).collect()
                }
            },
            _ => specs.iter().map(|_| None).collect(),
        };
        let cache_s = cache_start.elapsed().as_secs_f64();

        // The pool's unit of work is a *unit*: either one job (cached rows
        // and non-batched execution) or a run of consecutive non-cached
        // variant jobs of the same (workload, model), which execute as one
        // batched lockstep simulation. Cached members drop out before
        // grouping, so an all-hit sweep runs zero work and a partial hit
        // batches only the misses.
        // Sampled jobs never batch: each runs its own representative
        // intervals from shared checkpoints, and the lockstep engine
        // measures full runs only.
        let units = crate::group::partition_units(&specs, |i| {
            opts.batch_variants && cached[i].is_none() && specs[i].sampling.is_none()
        });

        let to_run = cached.iter().filter(|c| c.is_none()).count();
        let started = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let exec_start = Instant::now();
        let progress_line = |result: &Result<JobResult, String>| {
            let n = done.fetch_add(1, Ordering::Relaxed) + 1;
            let running = started.load(Ordering::Relaxed).saturating_sub(n);
            match result {
                Ok(r) => println!(
                    "[{n}/{to_run}] {:>9} × {:<8} [{}]  IPC {:.3}  {:.2}s  {:.2} MIPS  ({running} running, {} queued)",
                    r.workload,
                    r.model.name(),
                    r.variant,
                    r.ipc,
                    r.wall_s,
                    r.mips,
                    (to_run - n).saturating_sub(running)
                ),
                Err(e) => println!("[{n}/{to_run}] FAILED: {e}"),
            }
        };
        let unit_outcomes: Vec<Vec<(usize, Result<JobResult, String>)>> = pool::map_ordered_with(
            &units,
            opts.jobs,
            |_, unit| {
                if unit.len() == 1 && cached[unit[0]].is_some() {
                    let i = unit[0];
                    return vec![(i, Ok(cached[i].clone().expect("checked cached")))];
                }
                let claimed_s = exec_start.elapsed().as_secs_f64();
                let members: Vec<&JobSpec> = unit.iter().map(|&i| &specs[i]).collect();
                let results = JobSpec::execute_batch(&members);
                let finished = exec_start.elapsed().as_secs_f64();
                unit.iter()
                    .zip(results)
                    .map(|(&i, result)| {
                        let result = result.map(|mut r| {
                            r.started_s = claimed_s;
                            r.finished_s = finished;
                            r
                        });
                        if opts.progress {
                            progress_line(&result);
                        }
                        (i, result)
                    })
                    .collect()
            },
            // Pool lifecycle observer: count claims of non-cached jobs so
            // the progress line can show how many are in flight.
            |ev| {
                if let pool::JobEvent::Started { index } = ev {
                    let live = units[index].iter().filter(|&&i| cached[i].is_none()).count();
                    started.fetch_add(live, Ordering::Relaxed);
                }
            },
        );
        let exec_s = exec_start.elapsed().as_secs_f64();

        let agg_start = Instant::now();
        let slots = crate::group::collect_ordered(specs.len(), unit_outcomes);
        let mut jobs = Vec::with_capacity(slots.len());
        for slot in slots {
            jobs.push(slot.expect("every spec executed or was cached")?);
        }
        let cached_hits = jobs.iter().filter(|j| j.cached).count();
        let mut campaign = Campaign {
            name: self.name.clone(),
            scale: self.scale,
            sim_version: SIM_VERSION.to_string(),
            created_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            wall_s: start.elapsed().as_secs_f64(),
            stages: StageWall { build_s, cache_s, exec_s, aggregate_s: 0.0 },
            executed: jobs.len() - cached_hits,
            cached: cached_hits,
            cache_warning,
            trace_id: None,
            sampling: self.sampling,
            jobs,
        };
        campaign.stages.aggregate_s = agg_start.elapsed().as_secs_f64();
        Ok(campaign)
    }
}

/// Execution options for [`CampaignSpec::run`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (1 = serial on the calling thread).
    pub jobs: usize,
    /// A previous artifact to reuse digest-matched results from
    /// (typically the output path itself).
    pub cache: Option<PathBuf>,
    /// Print one line per finished job.
    pub progress: bool,
    /// Run the config variants of each (workload, model) as one batched
    /// lockstep job ([`JobSpec::execute_batch`]) instead of independent
    /// jobs. Per-variant results and digests are identical either way;
    /// `false` is the A/B and bisection fallback.
    pub batch_variants: bool,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            jobs: pool::default_workers(),
            cache: None,
            progress: false,
            batch_variants: true,
        }
    }
}

/// Per-stage wall-clock breakdown of one campaign run (all seconds).
/// Zero for artifacts written before the breakdown existed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageWall {
    /// Building the job list (workload generation + assembly).
    pub build_s: f64,
    /// Scanning the digest cache.
    pub cache_s: f64,
    /// Executing the job pool.
    pub exec_s: f64,
    /// Aggregating results into the campaign.
    pub aggregate_s: f64,
}

/// A completed campaign: every job's result plus run-level metadata.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name.
    pub name: String,
    /// Workload scale all jobs ran at.
    pub scale: Scale,
    /// [`SIM_VERSION`] of the producing simulator.
    pub sim_version: String,
    /// Creation time (unix seconds; 0 if the clock was unavailable).
    pub created_unix: u64,
    /// Wall-clock seconds for the whole campaign (this run only).
    pub wall_s: f64,
    /// Per-stage wall-time breakdown of this run.
    pub stages: StageWall,
    /// Jobs actually executed in this run.
    pub executed: usize,
    /// Jobs satisfied from the digest cache.
    pub cached: usize,
    /// Why the digest cache was ignored this run, if it was (an
    /// unreadable or schema-mismatched prior artifact). Transient — not
    /// serialized into the artifact.
    pub cache_warning: Option<String>,
    /// Trace id of the daemon request that produced this campaign
    /// (`None` for local runs and older artifacts). Greppable against
    /// the daemon's JSONL event log.
    pub trace_id: Option<String>,
    /// Sampling configuration the campaign ran under (`None` = full
    /// simulation, including every older artifact).
    pub sampling: Option<Sampling>,
    /// Per-job results, in job-list order.
    pub jobs: Vec<JobResult>,
}

impl Campaign {
    /// The result for (workload, model) under the `"main"` variant.
    pub fn get(&self, workload: &str, model: CommModel) -> Option<&JobResult> {
        self.get_variant(workload, model, "main")
    }

    /// The result for (workload, model, variant).
    pub fn get_variant(
        &self,
        workload: &str,
        model: CommModel,
        variant: &str,
    ) -> Option<&JobResult> {
        self.jobs
            .iter()
            .find(|r| r.workload == workload && r.model == model && r.variant == variant)
    }

    /// Geometric-mean IPC of a model over one suite (`"main"` variant);
    /// `None` if the campaign has no such jobs.
    pub fn geomean_ipc(&self, model: CommModel, suite: Suite) -> Option<f64> {
        let vals: Vec<f64> = self
            .jobs
            .iter()
            .filter(|r| r.model == model && r.suite == suite && r.variant == "main")
            .map(|r| r.ipc)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(geomean(vals))
        }
    }

    /// Geometric-mean speedup of `model` over `baseline` across one
    /// suite, pairing jobs by workload (`"main"` variant).
    pub fn geomean_speedup(
        &self,
        baseline: CommModel,
        model: CommModel,
        suite: Suite,
    ) -> Option<f64> {
        let ratios: Vec<f64> = self
            .jobs
            .iter()
            .filter(|r| r.model == model && r.suite == suite && r.variant == "main")
            .filter_map(|r| {
                let base = self.get(&r.workload, baseline)?;
                (base.ipc > 0.0).then(|| r.ipc / base.ipc)
            })
            .collect();
        if ratios.is_empty() {
            None
        } else {
            Some(geomean(ratios))
        }
    }

    /// The `n` slowest jobs of this campaign by simulation wall-clock,
    /// slowest first. Cached rows keep the wall time of the run that
    /// produced them, so they participate too.
    pub fn slowest_jobs(&self, n: usize) -> Vec<&JobResult> {
        let mut rows: Vec<&JobResult> = self.jobs.iter().collect();
        rows.sort_by(|a, b| b.wall_s.total_cmp(&a.wall_s));
        rows.truncate(n);
        rows
    }

    /// The variant labels present, `"main"` first.
    pub fn variants(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for r in &self.jobs {
            if !out.contains(&r.variant) {
                out.push(r.variant.clone());
            }
        }
        out.sort_by_key(|v| (v != "main", v.clone()));
        out
    }

    /// The models present in this campaign, in reporting order.
    pub fn models(&self) -> Vec<CommModel> {
        CommModel::ALL
            .into_iter()
            .filter(|&m| self.jobs.iter().any(|r| r.model == m))
            .collect()
    }

    /// Serializes the campaign, including derived per-suite aggregates
    /// (informational — the reader recomputes nothing from them).
    pub fn to_json(&self) -> Json {
        let mut aggregates = Vec::new();
        for model in self.models() {
            for suite in [Suite::Int, Suite::Fp] {
                if let Some(g) = self.geomean_ipc(model, suite) {
                    let mut entry = vec![
                        ("model".to_string(), Json::Str(model.name().to_string())),
                        ("suite".to_string(), Json::Str(suite.name().to_string())),
                        ("geomean_ipc".to_string(), Json::Num(g)),
                    ];
                    if model != CommModel::Baseline {
                        if let Some(s) = self.geomean_speedup(CommModel::Baseline, model, suite) {
                            entry.push(("geomean_speedup".to_string(), Json::Num(s)));
                        }
                    }
                    aggregates.push(Json::Obj(entry));
                }
            }
        }
        // Informational top-5 (derived from `jobs`; the reader ignores
        // it, `dmdp report` recomputes from the rows).
        let slowest = Json::Arr(
            self.slowest_jobs(5)
                .into_iter()
                .map(|r| {
                    obj([
                        ("workload", Json::Str(r.workload.clone())),
                        ("model", Json::Str(r.model.name().to_string())),
                        ("variant", Json::Str(r.variant.clone())),
                        ("wall_s", Json::Num(r.wall_s)),
                        ("mips", Json::Num(r.mips)),
                    ])
                })
                .collect(),
        );
        let mut members = vec![
            ("schema", Json::Num(1.0)),
            ("campaign", Json::Str(self.name.clone())),
            ("sim_version", Json::Str(self.sim_version.clone())),
            ("scale", Json::Str(self.scale.name().to_string())),
            ("created_unix", Json::Num(self.created_unix as f64)),
            ("wall_s", Json::Num(self.wall_s)),
            (
                "stages",
                obj([
                    ("build_s", Json::Num(self.stages.build_s)),
                    ("cache_s", Json::Num(self.stages.cache_s)),
                    ("exec_s", Json::Num(self.stages.exec_s)),
                    ("aggregate_s", Json::Num(self.stages.aggregate_s)),
                ]),
            ),
            ("executed", Json::Num(self.executed as f64)),
            ("cached", Json::Num(self.cached as f64)),
        ];
        if let Some(trace) = &self.trace_id {
            members.push(("trace_id", Json::Str(trace.clone())));
        }
        if let Some(s) = self.sampling {
            members.push((
                "sampling",
                obj([
                    ("interval_insns", Json::Num(s.interval_insns as f64)),
                    ("warmup_intervals", Json::Num(s.warmup_intervals as f64)),
                ]),
            ));
        }
        members.extend([
            ("jobs", Json::Arr(self.jobs.iter().map(JobResult::to_json).collect())),
            ("slowest_jobs", slowest),
            ("aggregates", Json::Arr(aggregates)),
        ]);
        obj(members)
    }

    /// Deserializes a campaign artifact.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<Campaign, String> {
        let schema = v.get("schema").and_then(Json::as_u64).unwrap_or(0);
        if schema != 1 {
            return Err(format!("unsupported campaign schema {schema}"));
        }
        let scale_name = v
            .get("scale")
            .and_then(Json::as_str)
            .ok_or("campaign: missing `scale`")?
            .to_string();
        let jobs = v
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or("campaign: missing `jobs` array")?
            .iter()
            .map(JobResult::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Campaign {
            name: v
                .get("campaign")
                .and_then(Json::as_str)
                .ok_or("campaign: missing `campaign`")?
                .to_string(),
            scale: Scale::from_name(&scale_name)
                .ok_or_else(|| format!("campaign: unknown scale `{scale_name}`"))?,
            sim_version: v
                .get("sim_version")
                .and_then(Json::as_str)
                .ok_or("campaign: missing `sim_version`")?
                .to_string(),
            created_unix: v.get("created_unix").and_then(Json::as_u64).unwrap_or(0),
            wall_s: v.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0),
            // Stage breakdown: tolerate pre-PR 3 artifacts (all zero).
            stages: {
                let f = |k: &str| {
                    v.get("stages").and_then(|s| s.get(k)).and_then(Json::as_f64).unwrap_or(0.0)
                };
                StageWall {
                    build_s: f("build_s"),
                    cache_s: f("cache_s"),
                    exec_s: f("exec_s"),
                    aggregate_s: f("aggregate_s"),
                }
            },
            executed: v.get("executed").and_then(Json::as_u64).unwrap_or(0) as usize,
            cached: v.get("cached").and_then(Json::as_u64).unwrap_or(0) as usize,
            cache_warning: None,
            // Daemon-request trace id (PR 8): tolerate older artifacts.
            trace_id: v.get("trace_id").and_then(Json::as_str).map(str::to_string),
            // Sampling echo (PR 9): absent means full simulation.
            sampling: v.get("sampling").and_then(|s| {
                Some(Sampling {
                    interval_insns: s.get("interval_insns").and_then(Json::as_u64)?,
                    warmup_intervals: s.get("warmup_intervals").and_then(Json::as_u64)? as u32,
                })
            }),
            jobs,
        })
    }

    /// Writes the artifact, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Filesystem errors, stringified.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            }
        }
        std::fs::write(path, self.to_json().pretty())
            .map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Reads an artifact back.
    ///
    /// # Errors
    ///
    /// Filesystem or parse errors, stringified.
    pub fn load(path: &Path) -> Result<Campaign, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Campaign::from_json(&Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_list_is_the_cross_product() {
        let spec = CampaignSpec::new("x", Scale::Test)
            .models([CommModel::Baseline, CommModel::Dmdp])
            .kernels(["lib", "mcf", "gcc"])
            .variants([
                ("main".to_string(), CfgPatch::default()),
                ("rob128".to_string(), CfgPatch { rob: Some(128), ..CfgPatch::default() }),
            ]);
        let jobs = spec.jobs().unwrap();
        assert_eq!(jobs.len(), 3 * 2 * 2);
        // Workload program built once per workload, shared by its jobs.
        let lib_jobs: Vec<_> = jobs.iter().filter(|j| j.workload == "lib").collect();
        assert_eq!(lib_jobs.len(), 4);
        assert!(lib_jobs.windows(2).all(|w| Arc::ptr_eq(&w[0].program, &w[1].program)));
        // ... and so is its plan cache.
        assert!(lib_jobs.windows(2).all(|w| Arc::ptr_eq(&w[0].plans, &w[1].plans)));
        // All digests distinct.
        let mut digests: Vec<&str> = jobs.iter().map(|j| j.digest.as_str()).collect();
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), jobs.len());
    }

    #[test]
    fn duplicate_variant_labels_are_rejected() {
        let err = CampaignSpec::new("x", Scale::Test)
            .variants([
                ("main".to_string(), CfgPatch::default()),
                ("rob64".to_string(), CfgPatch { rob: Some(64), ..CfgPatch::default() }),
                ("rob64".to_string(), CfgPatch { rob: Some(128), ..CfgPatch::default() }),
            ])
            .jobs()
            .unwrap_err();
        assert!(err.contains("duplicate variant label `rob64`"), "{err}");
        // And `run` surfaces the same rejection.
        let err = CampaignSpec::new("x", Scale::Test)
            .kernels(["lib"])
            .variants([
                ("a".to_string(), CfgPatch::default()),
                ("a".to_string(), CfgPatch::default()),
            ])
            .run(&RunOptions { jobs: 1, ..RunOptions::default() })
            .unwrap_err();
        assert!(err.contains("duplicate variant label `a`"), "{err}");
    }

    fn sweep_spec(name: &str) -> CampaignSpec {
        CampaignSpec::new(name, Scale::Test)
            .models([CommModel::NoSq, CommModel::Dmdp])
            .kernels(["lib", "mcf"])
            .variants([
                ("main".to_string(), CfgPatch::default()),
                ("rob32".to_string(), CfgPatch { rob: Some(32), ..CfgPatch::default() }),
                ("sb2".to_string(), CfgPatch { sb: Some(2), ..CfgPatch::default() }),
            ])
    }

    #[test]
    fn batched_campaign_matches_job_per_variant() {
        let batched = sweep_spec("b")
            .run(&RunOptions { jobs: 2, ..RunOptions::default() })
            .unwrap();
        let unbatched = sweep_spec("u")
            .run(&RunOptions { jobs: 2, batch_variants: false, ..RunOptions::default() })
            .unwrap();
        assert_eq!(batched.jobs.len(), 2 * 2 * 3);
        assert_eq!(batched.jobs.len(), unbatched.jobs.len());
        for (b, u) in batched.jobs.iter().zip(&unbatched.jobs) {
            assert_eq!(b.digest, u.digest);
            assert_eq!(b.variant, u.variant);
            // Full-stats bit-identity between the two execution paths.
            assert_eq!(b.stats, u.stats, "{} × {} [{}]", b.workload, b.model.name(), b.variant);
        }
    }

    #[test]
    fn partial_cache_hit_batches_only_the_misses() {
        let dir = std::env::temp_dir().join(format!("dmdp-batch-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = dir.join("sweep.json");
        // Seed the cache with the main-variant rows only.
        let seed = sweep_spec("seed")
            .variants([("main".to_string(), CfgPatch::default())])
            .run(&RunOptions { jobs: 1, ..RunOptions::default() })
            .unwrap();
        seed.save(&artifact).unwrap();
        // The full sweep reuses those rows and batch-executes the rest.
        let full = sweep_spec("seed")
            .run(&RunOptions { jobs: 1, cache: Some(artifact.clone()), ..RunOptions::default() })
            .unwrap();
        assert_eq!(full.cached, 4, "main rows come from the artifact");
        assert_eq!(full.executed, 8, "variant rows are executed");
        for job in &full.jobs {
            assert_eq!(job.cached, job.variant == "main");
        }
        // And the batched misses match a fresh unbatched run bit-for-bit.
        let reference = sweep_spec("ref")
            .run(&RunOptions { jobs: 1, batch_variants: false, ..RunOptions::default() })
            .unwrap();
        for (got, want) in full.jobs.iter().zip(&reference.jobs) {
            assert_eq!(got.digest, want.digest);
            assert_eq!(got.cycles, want.cycles);
            assert_eq!(got.ipc, want.ipc);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_kernel_is_rejected() {
        let err = CampaignSpec::new("x", Scale::Test).kernels(["nope"]).jobs().unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn geomeans_cover_models_and_speedups() {
        let campaign = CampaignSpec::new("g", Scale::Test)
            .models([CommModel::Baseline, CommModel::Dmdp])
            .kernels(["lib", "bwaves"])
            .run(&RunOptions { jobs: 1, ..RunOptions::default() })
            .unwrap();
        assert_eq!(campaign.jobs.len(), 4);
        assert!(campaign.geomean_ipc(CommModel::Dmdp, Suite::Int).unwrap() > 0.0);
        assert!(campaign.geomean_ipc(CommModel::Dmdp, Suite::Fp).unwrap() > 0.0);
        assert!(campaign.geomean_speedup(CommModel::Baseline, CommModel::Dmdp, Suite::Int).is_some());
        assert!(campaign.geomean_ipc(CommModel::Perfect, Suite::Int).is_none());
        assert_eq!(campaign.models(), vec![CommModel::Baseline, CommModel::Dmdp]);
    }
}
