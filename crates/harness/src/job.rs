//! Job specifications and per-job results.
//!
//! A campaign is a list of jobs, one per (workload × communication model
//! × configuration variant). Each job is self-contained — it owns its
//! full [`CoreConfig`] and a shared handle to the assembled program — so
//! any worker thread can execute it independently and deterministically.

use std::sync::Arc;
use std::time::Instant;

use dmdp_core::{BatchSimulator, CommModel, CoreConfig, PlanCache, SimStats, Simulator, SIM_VERSION};
use dmdp_isa::Program;
use dmdp_workloads::{Scale, Suite};

use crate::digest::Digest64;
use crate::json::{obj, Json};
use crate::sampled::{sampled_metrics, SamplingSpec};

/// Process-wide simulation-path metrics, registered lazily on first
/// job execution. A handful of relaxed atomic adds per *job* (never per
/// simulated cycle), so the simulator hot path is untouched whether or
/// not anything ever scrapes them.
struct SimMetrics {
    jobs: &'static dmdp_obs::Counter,
    exec_us: &'static dmdp_obs::LogHistogram,
    batch_units: &'static dmdp_obs::Counter,
    batch_lanes: &'static dmdp_obs::Counter,
    batch_derived: &'static dmdp_obs::Counter,
    batch_ff_spans: &'static dmdp_obs::Counter,
    batch_ff_cycles: &'static dmdp_obs::Counter,
}

fn sim_metrics() -> &'static SimMetrics {
    static METRICS: std::sync::OnceLock<SimMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = dmdp_obs::registry();
        SimMetrics {
            jobs: r.counter("dmdp_sim_jobs_total", "simulation jobs executed in-process"),
            exec_us: r.histogram(
                "dmdp_sim_exec_us",
                "per-job simulation wall-clock in microseconds",
            ),
            batch_units: r.counter(
                "dmdp_batch_units_total",
                "multi-variant groups run through the batched lockstep engine",
            ),
            batch_lanes: r.counter(
                "dmdp_batch_lanes_total",
                "variant lanes entering the batched lockstep engine",
            ),
            batch_derived: r.counter(
                "dmdp_batch_derived_total",
                "lanes derived from a never-bound reference instead of simulated",
            ),
            batch_ff_spans: r.counter(
                "dmdp_batch_ff_spans_total",
                "confirmed-dead spans applied by the event-horizon fast-forward",
            ),
            batch_ff_cycles: r.counter(
                "dmdp_batch_ff_cycles_total",
                "simulated cycles covered by fast-forwarded spans",
            ),
        }
    })
}

fn wall_to_us(wall_s: f64) -> u64 {
    (wall_s * 1e6).max(0.0) as u64
}

/// A sparse configuration override — the §VI-f/g alternative-machine
/// knobs a campaign can sweep. Fields left `None`/`false` keep the
/// paper's main configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CfgPatch {
    /// Pipeline width override.
    pub width: Option<usize>,
    /// ROB capacity override.
    pub rob: Option<usize>,
    /// Physical register file size override.
    pub prf: Option<usize>,
    /// Store buffer capacity override.
    pub sb: Option<usize>,
    /// Switch the store buffer to release consistency (RMO).
    pub rmo: bool,
}

impl CfgPatch {
    /// True if the patch changes nothing.
    pub fn is_empty(&self) -> bool {
        *self == CfgPatch::default()
    }

    /// Applies the overrides to a base configuration.
    pub fn apply(&self, cfg: &mut CoreConfig) {
        if let Some(w) = self.width {
            cfg.width = w;
        }
        if let Some(r) = self.rob {
            cfg.rob_entries = r;
        }
        if let Some(p) = self.prf {
            cfg.phys_regs = p;
        }
        if let Some(s) = self.sb {
            cfg.store_buffer_entries = s;
        }
        if self.rmo {
            cfg.consistency = dmdp_mem::Consistency::Rmo;
        }
    }
}

/// A workload's assembled program paired with its static µop plan
/// cache — built once per workload and shared (both `Arc`s) by every
/// (model × variant) job that runs the image.
#[derive(Debug, Clone)]
pub struct PlannedImage {
    /// The assembled program.
    pub program: Arc<Program>,
    /// The program's decode-plan table.
    pub plans: Arc<PlanCache>,
}

impl PlannedImage {
    /// Builds the plan cache for `program` (the one place a campaign
    /// pays the decode cost; jobs then share the result).
    pub fn new(program: Arc<Program>) -> PlannedImage {
        let plans = PlanCache::shared(&program);
        PlannedImage { program, plans }
    }
}

/// One runnable experiment: a workload under a model and configuration.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Workload (SPEC analogue) name.
    pub workload: String,
    /// The suite the paper reports the workload under.
    pub suite: Suite,
    /// Communication model under test.
    pub model: CommModel,
    /// Workload scale.
    pub scale: Scale,
    /// Configuration-variant label (`"main"` for the paper's default).
    pub variant: String,
    /// The full, patched core configuration.
    pub cfg: CoreConfig,
    /// The assembled program, shared across the jobs of one workload.
    pub program: Arc<Program>,
    /// The program's static µop plan cache, built once per workload and
    /// shared across all its (model × variant) jobs.
    pub plans: Arc<PlanCache>,
    /// Sampled-simulation work order; `None` runs the full simulation.
    pub sampling: Option<SamplingSpec>,
    /// Content digest identifying this job's result (hex).
    pub digest: String,
}

impl JobSpec {
    /// Builds a spec, computing its content digest from everything that
    /// determines the result: simulator timing version, full config
    /// identity, workload name and the assembled program image (which
    /// captures scale and generator seeds).
    pub fn new(
        workload: &str,
        suite: Suite,
        model: CommModel,
        scale: Scale,
        variant: &str,
        cfg: CoreConfig,
        image: &PlannedImage,
    ) -> JobSpec {
        // The plan cache is a pure host-side decode of the program image,
        // so it contributes nothing to the digest beyond what
        // `program.to_image()` already covers.
        let mut d = Digest64::new();
        d.write_str(SIM_VERSION)
            .write_str(&cfg.identity())
            .write_str(workload)
            .write(&image.program.to_image());
        JobSpec {
            workload: workload.to_string(),
            suite,
            model,
            scale,
            variant: variant.to_string(),
            cfg,
            program: Arc::clone(&image.program),
            plans: Arc::clone(&image.plans),
            sampling: None,
            digest: d.hex(),
        }
    }

    /// Turns a full-simulation spec into a sampled one: attaches the
    /// workload's bundle and appends the sampling knobs to the digest
    /// stream, so a sampled result can never be confused with (or
    /// satisfied from the cache of) the full run it estimates. Full-run
    /// digests are untouched — the suffix exists only on sampled jobs.
    pub fn sampled(mut self, spec: SamplingSpec) -> JobSpec {
        let mut d = Digest64::new();
        d.write_str(SIM_VERSION)
            .write_str(&self.cfg.identity())
            .write_str(&self.workload)
            .write(&self.program.to_image())
            .write_str(&spec.sampling.digest_suffix());
        self.digest = d.hex();
        self.sampling = Some(spec);
        self
    }

    /// Runs the simulation (full or sampled), timing it.
    ///
    /// # Errors
    ///
    /// A human-readable message if the simulator aborts (cycle limit).
    pub fn execute(&self) -> Result<JobResult, String> {
        if let Some(s) = &self.sampling {
            return self.execute_sampled(s);
        }
        let start = Instant::now();
        let report = Simulator::with_config(self.cfg.clone())
            .run_planned(&self.program, &self.plans)
            .map_err(|e| format!("{} × {} [{}]: {e}", self.workload, self.model.name(), self.variant))?;
        let wall = start.elapsed().as_secs_f64();
        let m = sim_metrics();
        m.jobs.inc();
        m.exec_us.observe(wall_to_us(wall));
        Ok(JobResult::from_stats(self, report.stats, wall))
    }

    /// Runs only the bundle's representative intervals (checkpoint
    /// fast-forward + warmup + measurement each) and recombines them
    /// into the whole-run estimate.
    fn execute_sampled(&self, s: &SamplingSpec) -> Result<JobResult, String> {
        let start = Instant::now();
        let sim = Simulator::with_config(self.cfg.clone());
        let runs = s.bundle.rep_runs();
        let mut measurements = Vec::with_capacity(runs.len());
        let mut simulated_insns = 0u64;
        for r in &runs {
            let iv = sim
                .run_from_checkpoint(
                    &self.program,
                    &self.plans,
                    &s.bundle.checkpoints[r.ckpt],
                    r.warmup_insns,
                    r.measure_insns,
                )
                .map_err(|e| {
                    format!(
                        "{} × {} [{}] interval {}: {e}",
                        self.workload,
                        self.model.name(),
                        self.variant,
                        r.interval
                    )
                })?;
            simulated_insns += iv.warmup_insns + iv.insns;
            measurements.push(dmdp_sample::IntervalMeasurement {
                interval: r.interval,
                weight: r.weight,
                cycles: iv.cycles,
                insns: iv.insns,
            });
        }
        let report = dmdp_sample::recombine(&s.bundle.plan, measurements);
        let wall = start.elapsed().as_secs_f64();
        let m = sim_metrics();
        m.jobs.inc();
        m.exec_us.observe(wall_to_us(wall));
        sampled_metrics().intervals_simulated.add(report.intervals_simulated);
        Ok(JobResult::from_sampled(self, s, &report, wall, simulated_insns))
    }

    /// Runs a group of variant jobs of one (workload, model) through the
    /// batched lockstep engine ([`BatchSimulator`]): one shared front-end
    /// (program image, decode plans, Perfect-model oracle pre-pass), one
    /// per-variant timing lane each. Results are bit-identical to
    /// [`JobSpec::execute`] per variant; the batch's wall-clock is
    /// attributed to each job proportionally to its simulated cycles, so
    /// per-job MIPS stay meaningful and the shares sum to the batch wall.
    ///
    /// A singleton group takes the plain path — callers need no special
    /// case for non-sweep campaigns.
    pub fn execute_batch(specs: &[&JobSpec]) -> Vec<Result<JobResult, String>> {
        if specs.len() == 1 {
            return vec![specs[0].execute()];
        }
        let Some(first) = specs.first() else {
            return Vec::new();
        };
        debug_assert!(
            specs.iter().all(|s| Arc::ptr_eq(&s.program, &first.program)
                && Arc::ptr_eq(&s.plans, &first.plans)),
            "a batch group must share one planned image"
        );
        debug_assert!(
            specs.iter().all(|s| s.sampling.is_none()),
            "sampled jobs run one interval at a time, never through the lockstep batch"
        );
        let start = Instant::now();
        let mut batch = BatchSimulator::new(Arc::clone(&first.program), Arc::clone(&first.plans));
        for spec in specs {
            batch.push(spec.cfg.clone());
        }
        let run = batch.run_detailed();
        let wall = start.elapsed().as_secs_f64();
        let m = sim_metrics();
        m.jobs.add(specs.len() as u64);
        m.batch_units.inc();
        m.batch_lanes.add(specs.len() as u64);
        m.batch_derived.add(run.derived as u64);
        m.batch_ff_spans.add(run.ff_spans);
        m.batch_ff_cycles.add(run.ff_cycles);
        let outcomes = run.results;
        let total_cycles: u64 =
            outcomes.iter().filter_map(|r| r.as_ref().ok()).map(|s| s.cycles).sum();
        specs
            .iter()
            .zip(outcomes)
            .map(|(spec, outcome)| match outcome {
                Ok(stats) => {
                    let share = if total_cycles > 0 {
                        stats.cycles as f64 / total_cycles as f64
                    } else {
                        1.0 / specs.len() as f64
                    };
                    m.exec_us.observe(wall_to_us(wall * share));
                    Ok(JobResult::from_stats(spec, stats, wall * share))
                }
                Err(e) => Err(format!(
                    "{} × {} [{}]: {e}",
                    spec.workload,
                    spec.model.name(),
                    spec.variant
                )),
            })
            .collect()
    }
}

/// The measured outcome of one job: timing-simulation statistics plus
/// harness-side wall-clock and throughput.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Workload name.
    pub workload: String,
    /// Reporting suite.
    pub suite: Suite,
    /// Communication model.
    pub model: CommModel,
    /// Configuration-variant label.
    pub variant: String,
    /// Content digest of the producing job (hex).
    pub digest: String,
    /// Host wall-clock seconds the simulation took.
    pub wall_s: f64,
    /// Seconds after the campaign's execute phase began that a worker
    /// claimed this job (zero for cached rows and standalone executes).
    pub started_s: f64,
    /// Seconds after the execute phase began that this job finished
    /// (zero for cached rows and standalone executes).
    pub finished_s: f64,
    /// Host throughput: simulated (retired) instructions per second, in
    /// millions.
    pub mips: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired architectural instructions.
    pub retired_insns: u64,
    /// Retired µops.
    pub retired_uops: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Memory dependence mispredictions per kilo-instruction.
    pub mem_dep_mpki: f64,
    /// Mean load execution latency in cycles.
    pub load_mean_latency: f64,
    /// Branch mispredictions.
    pub branch_mispredicts: u64,
    /// Memory dependence mispredictions (Table VI numerator).
    pub mem_dep_mispredicts: u64,
    /// Load re-executions.
    pub reexecutions: u64,
    /// Re-execution retire-stall cycles per kilo-instruction.
    pub reexec_stalls_per_ki: f64,
    /// Mean scheduler ready-list length per cycle (simulator-side
    /// observability; zero for artifacts predating the counter).
    pub mean_ready_len: f64,
    /// Scheduler wake events per kilo-cycle (zero for old artifacts).
    pub wakeups_per_kilocycle: f64,
    /// Completion-calendar pops (zero for old artifacts).
    pub calendar_pops: u64,
    /// Static µop plans built by this job's pipeline (zero when the
    /// campaign shared a prebuilt cache in; zero for old artifacts).
    pub plan_builds: u64,
    /// Dynamic instructions fetched through the plan cache (zero for old
    /// artifacts).
    pub plan_hits: u64,
    /// True if this row was satisfied from a previous artifact instead
    /// of being executed.
    pub cached: bool,
    /// True if this row is a sampled-simulation *estimate* (IPC, cycles
    /// and instruction counts recombined from representative intervals;
    /// the detailed per-event counters are zero).
    pub sampled: bool,
    /// Sampling interval length in instructions (zero when not sampled).
    pub interval_insns: u64,
    /// Detailed-warmup intervals per representative (zero when not
    /// sampled).
    pub warmup_intervals: u64,
    /// Intervals the profile sliced the run into (zero when not
    /// sampled).
    pub intervals_total: u64,
    /// Representative intervals simulated in detail (zero when not
    /// sampled).
    pub intervals_simulated: u64,
    /// The complete statistics of a *live* run. `None` when the row was
    /// loaded from a JSON artifact (artifacts keep only the summary) or
    /// produced by sampled simulation.
    pub stats: Option<SimStats>,
}

impl JobResult {
    /// Summarizes a finished simulation.
    pub fn from_stats(spec: &JobSpec, stats: SimStats, wall_s: f64) -> JobResult {
        JobResult {
            workload: spec.workload.clone(),
            suite: spec.suite,
            model: spec.model,
            variant: spec.variant.clone(),
            digest: spec.digest.clone(),
            wall_s,
            started_s: 0.0,
            finished_s: 0.0,
            mips: if wall_s > 0.0 { stats.retired_insns as f64 / wall_s / 1e6 } else { 0.0 },
            cycles: stats.cycles,
            retired_insns: stats.retired_insns,
            retired_uops: stats.retired_uops,
            ipc: stats.ipc(),
            mem_dep_mpki: stats.mem_dep_mpki(),
            load_mean_latency: stats.load_latency.overall_mean(),
            branch_mispredicts: stats.branch_mispredicts,
            mem_dep_mispredicts: stats.mem_dep_mispredicts,
            reexecutions: stats.reexecutions,
            reexec_stalls_per_ki: stats.reexec_stalls_per_ki(),
            mean_ready_len: stats.sched.mean_ready_len(stats.cycles),
            wakeups_per_kilocycle: stats.sched.wakeups_per_kilocycle(stats.cycles),
            calendar_pops: stats.sched.calendar_pops,
            plan_builds: stats.plan.builds,
            plan_hits: stats.plan.hits,
            cached: false,
            sampled: false,
            interval_insns: 0,
            warmup_intervals: 0,
            intervals_total: 0,
            intervals_simulated: 0,
            stats: Some(stats),
        }
    }

    /// Summarizes a sampled run: the whole-run columns (cycles, retired
    /// instructions, IPC) carry the recombined *estimate*; MIPS reflects
    /// the instructions actually simulated in detail, so sampled rows
    /// report honest host throughput. Detailed per-event counters
    /// (mispredictions, latencies) are zero — sampling estimates IPC.
    pub fn from_sampled(
        spec: &JobSpec,
        sampling: &SamplingSpec,
        report: &dmdp_sample::SampledReport,
        wall_s: f64,
        simulated_insns: u64,
    ) -> JobResult {
        JobResult {
            workload: spec.workload.clone(),
            suite: spec.suite,
            model: spec.model,
            variant: spec.variant.clone(),
            digest: spec.digest.clone(),
            wall_s,
            started_s: 0.0,
            finished_s: 0.0,
            mips: if wall_s > 0.0 { simulated_insns as f64 / wall_s / 1e6 } else { 0.0 },
            cycles: report.est_cycles,
            retired_insns: report.total_insns,
            retired_uops: 0,
            ipc: report.ipc,
            mem_dep_mpki: 0.0,
            load_mean_latency: 0.0,
            branch_mispredicts: 0,
            mem_dep_mispredicts: 0,
            reexecutions: 0,
            reexec_stalls_per_ki: 0.0,
            mean_ready_len: 0.0,
            wakeups_per_kilocycle: 0.0,
            calendar_pops: 0,
            plan_builds: 0,
            plan_hits: 0,
            cached: false,
            sampled: true,
            interval_insns: sampling.sampling.interval_insns,
            warmup_intervals: sampling.sampling.warmup_intervals as u64,
            intervals_total: report.intervals_total,
            intervals_simulated: report.intervals_simulated,
            stats: None,
        }
    }

    /// Serializes the summary row (full `stats` are not persisted).
    /// Sampling columns are emitted only on sampled rows, keeping
    /// full-simulation artifacts byte-identical to earlier versions.
    pub fn to_json(&self) -> Json {
        let mut row = obj([
            ("workload", Json::Str(self.workload.clone())),
            ("suite", Json::Str(self.suite.name().to_string())),
            ("model", Json::Str(self.model.name().to_string())),
            ("variant", Json::Str(self.variant.clone())),
            ("digest", Json::Str(self.digest.clone())),
            ("wall_s", Json::Num(self.wall_s)),
            ("started_s", Json::Num(self.started_s)),
            ("finished_s", Json::Num(self.finished_s)),
            ("mips", Json::Num(self.mips)),
            ("cycles", Json::Num(self.cycles as f64)),
            ("retired_insns", Json::Num(self.retired_insns as f64)),
            ("retired_uops", Json::Num(self.retired_uops as f64)),
            ("ipc", Json::Num(self.ipc)),
            ("mem_dep_mpki", Json::Num(self.mem_dep_mpki)),
            ("load_mean_latency", Json::Num(self.load_mean_latency)),
            ("branch_mispredicts", Json::Num(self.branch_mispredicts as f64)),
            ("mem_dep_mispredicts", Json::Num(self.mem_dep_mispredicts as f64)),
            ("reexecutions", Json::Num(self.reexecutions as f64)),
            ("reexec_stalls_per_ki", Json::Num(self.reexec_stalls_per_ki)),
            ("mean_ready_len", Json::Num(self.mean_ready_len)),
            ("wakeups_per_kilocycle", Json::Num(self.wakeups_per_kilocycle)),
            ("calendar_pops", Json::Num(self.calendar_pops as f64)),
            ("plan_builds", Json::Num(self.plan_builds as f64)),
            ("plan_hits", Json::Num(self.plan_hits as f64)),
            ("cached", Json::Bool(self.cached)),
        ]);
        if self.sampled {
            if let Json::Obj(members) = &mut row {
                members.extend([
                    ("sampled".to_string(), Json::Bool(true)),
                    ("interval_insns".to_string(), Json::Num(self.interval_insns as f64)),
                    ("warmup_intervals".to_string(), Json::Num(self.warmup_intervals as f64)),
                    ("intervals_total".to_string(), Json::Num(self.intervals_total as f64)),
                    (
                        "intervals_simulated".to_string(),
                        Json::Num(self.intervals_simulated as f64),
                    ),
                ]);
            }
        }
        row
    }

    /// Deserializes a summary row.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<JobResult, String> {
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("job row: missing string `{k}`"))
        };
        let num = |k: &str| {
            v.get(k).and_then(Json::as_f64).ok_or_else(|| format!("job row: missing number `{k}`"))
        };
        let int = |k: &str| {
            v.get(k).and_then(Json::as_u64).ok_or_else(|| format!("job row: missing count `{k}`"))
        };
        let suite_name = str_field("suite")?;
        let model_name = str_field("model")?;
        Ok(JobResult {
            workload: str_field("workload")?,
            suite: Suite::from_name(&suite_name)
                .ok_or_else(|| format!("job row: unknown suite `{suite_name}`"))?,
            model: CommModel::from_name(&model_name)
                .ok_or_else(|| format!("job row: unknown model `{model_name}`"))?,
            variant: str_field("variant")?,
            digest: str_field("digest")?,
            wall_s: num("wall_s")?,
            // Job lifecycle timestamps (PR 3 reporter): tolerate older
            // artifacts, like the scheduler counters below.
            started_s: v.get("started_s").and_then(Json::as_f64).unwrap_or(0.0),
            finished_s: v.get("finished_s").and_then(Json::as_f64).unwrap_or(0.0),
            mips: num("mips")?,
            cycles: int("cycles")?,
            retired_insns: int("retired_insns")?,
            retired_uops: int("retired_uops")?,
            ipc: num("ipc")?,
            mem_dep_mpki: num("mem_dep_mpki")?,
            load_mean_latency: num("load_mean_latency")?,
            branch_mispredicts: int("branch_mispredicts")?,
            mem_dep_mispredicts: int("mem_dep_mispredicts")?,
            reexecutions: int("reexecutions")?,
            reexec_stalls_per_ki: num("reexec_stalls_per_ki")?,
            // Scheduler-occupancy counters: tolerate artifacts written
            // before PR 2 (they carry the same timing, just not these
            // observability fields).
            mean_ready_len: v.get("mean_ready_len").and_then(Json::as_f64).unwrap_or(0.0),
            wakeups_per_kilocycle: v
                .get("wakeups_per_kilocycle")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            calendar_pops: v.get("calendar_pops").and_then(Json::as_u64).unwrap_or(0),
            // Plan-cache counters (PR 4): tolerate older artifacts.
            plan_builds: v.get("plan_builds").and_then(Json::as_u64).unwrap_or(0),
            plan_hits: v.get("plan_hits").and_then(Json::as_u64).unwrap_or(0),
            cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
            // Sampling columns (PR 9): absent means a full-simulation
            // row, including every older artifact.
            sampled: v.get("sampled").and_then(Json::as_bool).unwrap_or(false),
            interval_insns: v.get("interval_insns").and_then(Json::as_u64).unwrap_or(0),
            warmup_intervals: v.get("warmup_intervals").and_then(Json::as_u64).unwrap_or(0),
            intervals_total: v.get("intervals_total").and_then(Json::as_u64).unwrap_or(0),
            intervals_simulated: v.get("intervals_simulated").and_then(Json::as_u64).unwrap_or(0),
            stats: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(model: CommModel) -> JobSpec {
        let w = dmdp_workloads::by_name("lib", Scale::Test).unwrap();
        let image = PlannedImage::new(Arc::new(w.program));
        JobSpec::new("lib", w.suite, model, Scale::Test, "main", CoreConfig::new(model), &image)
    }

    #[test]
    fn digest_depends_on_model_and_patch() {
        let a = tiny_spec(CommModel::Dmdp);
        let b = tiny_spec(CommModel::Dmdp);
        assert_eq!(a.digest, b.digest);
        assert_ne!(a.digest, tiny_spec(CommModel::NoSq).digest);

        let w = dmdp_workloads::by_name("lib", Scale::Test).unwrap();
        let mut cfg = CoreConfig::new(CommModel::Dmdp);
        CfgPatch { rob: Some(128), ..CfgPatch::default() }.apply(&mut cfg);
        let image = PlannedImage::new(Arc::new(w.program));
        let patched =
            JobSpec::new("lib", w.suite, CommModel::Dmdp, Scale::Test, "rob128", cfg, &image);
        assert_ne!(a.digest, patched.digest);
    }

    #[test]
    fn execute_produces_consistent_summary() {
        let r = tiny_spec(CommModel::Dmdp).execute().unwrap();
        assert!(r.cycles > 0 && r.retired_insns > 0);
        assert!((r.ipc - r.retired_insns as f64 / r.cycles as f64).abs() < 1e-12);
        assert!(!r.cached);
        // The prebuilt cache was shared in, so this pipeline built no
        // plans but fetched every dynamic instruction through them.
        assert_eq!(r.plan_builds, 0);
        assert!(r.plan_hits >= r.retired_insns);
        let stats = r.stats.as_ref().expect("live run keeps full stats");
        assert_eq!(stats.cycles, r.cycles);
    }

    #[test]
    fn batched_execution_matches_job_per_variant_bit_for_bit() {
        let variants = [
            ("main", CfgPatch::default()),
            ("rob32", CfgPatch { rob: Some(32), ..CfgPatch::default() }),
            ("sb2", CfgPatch { sb: Some(2), ..CfgPatch::default() }),
            ("rmo", CfgPatch { rmo: true, ..CfgPatch::default() }),
        ];
        for model in CommModel::ALL {
            let w = dmdp_workloads::by_name("mcf", Scale::Test).unwrap();
            let image = PlannedImage::new(Arc::new(w.program));
            let specs: Vec<JobSpec> = variants
                .iter()
                .map(|(label, patch)| {
                    let mut cfg = CoreConfig::new(model);
                    patch.apply(&mut cfg);
                    JobSpec::new("mcf", w.suite, model, Scale::Test, label, cfg, &image)
                })
                .collect();
            let refs: Vec<&JobSpec> = specs.iter().collect();
            let batched = JobSpec::execute_batch(&refs);
            assert_eq!(batched.len(), specs.len());
            for (spec, outcome) in specs.iter().zip(&batched) {
                let got = outcome.as_ref().expect("batch lane runs");
                let solo = spec.execute().expect("solo run");
                // Full-stats bit-identity, not just the summary row.
                assert_eq!(
                    got.stats, solo.stats,
                    "batched diverged from solo: {} [{}]",
                    model.name(),
                    spec.variant
                );
                assert_eq!(got.digest, solo.digest);
                assert_eq!(got.cycles, solo.cycles);
                assert_eq!(got.ipc, solo.ipc);
            }
        }
    }

    #[test]
    fn result_json_round_trips() {
        let r = tiny_spec(CommModel::Baseline).execute().unwrap();
        let back = JobResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back.workload, r.workload);
        assert_eq!(back.model, r.model);
        assert_eq!(back.digest, r.digest);
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.ipc, r.ipc);
        assert!(back.stats.is_none(), "artifacts keep only the summary");
    }

    #[test]
    fn patch_applies_all_fields() {
        let mut cfg = CoreConfig::new(CommModel::Dmdp);
        let patch = CfgPatch { width: Some(4), rob: Some(64), prf: Some(200), sb: Some(32), rmo: true };
        assert!(!patch.is_empty());
        patch.apply(&mut cfg);
        assert_eq!(cfg.width, 4);
        assert_eq!(cfg.rob_entries, 64);
        assert_eq!(cfg.phys_regs, 200);
        assert_eq!(cfg.store_buffer_entries, 32);
        assert_eq!(cfg.consistency, dmdp_mem::Consistency::Rmo);
        assert!(CfgPatch::default().is_empty());
    }
}
