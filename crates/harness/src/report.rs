//! Human-readable rendering of campaign artifacts.
//!
//! `dmdp report <artifact.json>` loads any campaign JSON — including
//! `ci-smoke.json` — and renders it as plain-text tables: a per-variant
//! workload × model IPC matrix with deltas against the baseline model,
//! per-suite geometric means, scheduler-occupancy summaries, the
//! campaign's stage wall-time breakdown and its slowest jobs. Everything
//! is recomputed from the job rows, so artifacts written by older
//! binaries render too (missing observability fields show as zero).

use std::fmt::Write as _;

use dmdp_core::CommModel;
use dmdp_workloads::Suite;

use crate::campaign::{Campaign, StageWall};
use crate::job::JobResult;
use crate::json::{obj, Json};

/// Renders a campaign as a plain-text report.
pub fn render_campaign(c: &Campaign) -> String {
    let mut out = String::new();
    header(&mut out, c);
    let models = c.models();
    for variant in c.variants() {
        ipc_table(&mut out, c, &models, &variant);
    }
    variant_sweep(&mut out, c, &models);
    geomeans(&mut out, c, &models);
    sched_occupancy(&mut out, c, &models);
    slowest(&mut out, c);
    out
}

fn header(out: &mut String, c: &Campaign) {
    let _ = writeln!(out, "campaign `{}`  (scale {}, sim {})", c.name, c.scale.name(), c.sim_version);
    let _ = writeln!(
        out,
        "  jobs {}  ({} executed, {} cached)   wall {:.2}s",
        c.jobs.len(),
        c.executed,
        c.cached,
        c.wall_s
    );
    if c.stages != StageWall::default() {
        let s = c.stages;
        let _ = writeln!(
            out,
            "  stages: build {:.2}s | cache {:.2}s | exec {:.2}s | aggregate {:.2}s",
            s.build_s, s.cache_s, s.exec_s, s.aggregate_s
        );
    }
    if let Some(s) = c.sampling {
        let simulated: u64 = c.jobs.iter().map(|r| r.intervals_simulated).sum();
        let total: u64 = c.jobs.iter().map(|r| r.intervals_total).sum();
        let _ = writeln!(
            out,
            "  sampled: {} insn intervals, {} warmup  ({simulated} of {total} intervals simulated)",
            s.interval_insns, s.warmup_intervals
        );
    }
}

/// The workloads of one variant, in job-list order.
fn workloads_of(c: &Campaign, variant: &str) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for r in c.jobs.iter().filter(|r| r.variant == variant) {
        if !names.contains(&r.workload) {
            names.push(r.workload.clone());
        }
    }
    names
}

/// The model IPC deltas are measured against: `Baseline` when the
/// campaign swept it, else the first model present.
fn reference_model(models: &[CommModel]) -> Option<CommModel> {
    models
        .iter()
        .copied()
        .find(|&m| m == CommModel::Baseline)
        .or_else(|| models.first().copied())
}

fn ipc_table(out: &mut String, c: &Campaign, models: &[CommModel], variant: &str) {
    let workloads = workloads_of(c, variant);
    if workloads.is_empty() || models.is_empty() {
        return;
    }
    let reference = reference_model(models);
    let name_w = workloads.iter().map(String::len).max().unwrap_or(8).max(8);
    let _ = writeln!(out, "\nIPC by workload × model  [variant {variant}]");
    let mut head = format!("  {:<name_w$}", "workload");
    for m in models {
        let _ = write!(head, "  {:>15}", m.name());
    }
    let _ = writeln!(out, "{head}");
    for w in &workloads {
        let base_ipc = reference
            .and_then(|m| c.get_variant(w, m, variant))
            .map(|r| r.ipc)
            .filter(|&ipc| ipc > 0.0);
        let mut line = format!("  {w:<name_w$}");
        for &m in models {
            let cell = match c.get_variant(w, m, variant) {
                None => "-".to_string(),
                Some(r) if Some(m) == reference => format!("{:.3}", r.ipc),
                Some(r) => match base_ipc {
                    Some(b) => format!("{:.3} {:>+6.1}%", r.ipc, (r.ipc / b - 1.0) * 100.0),
                    None => format!("{:.3}", r.ipc),
                },
            };
            let _ = write!(line, "  {cell:>15}");
        }
        let _ = writeln!(out, "{line}");
    }
}

/// Geometric mean of one variant's per-workload IPCs under one model.
fn variant_geomean(c: &Campaign, m: CommModel, variant: &str) -> Option<f64> {
    let logs: Vec<f64> = c
        .jobs
        .iter()
        .filter(|r| r.model == m && r.variant == variant && r.ipc > 0.0)
        .map(|r| r.ipc.ln())
        .collect();
    if logs.is_empty() {
        None
    } else {
        Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
    }
}

/// Geomean of per-workload IPC ratios of `variant` over `main` under one
/// model, computed pairwise so a workload missing from either side drops
/// out of both.
fn variant_delta_vs_main(c: &Campaign, m: CommModel, variant: &str) -> Option<f64> {
    let mut logs = Vec::new();
    for w in workloads_of(c, variant) {
        let (Some(v), Some(b)) = (c.get_variant(&w, m, variant), c.get_variant(&w, m, "main"))
        else {
            continue;
        };
        if v.ipc > 0.0 && b.ipc > 0.0 {
            logs.push((v.ipc / b.ipc).ln());
        }
    }
    if logs.is_empty() {
        None
    } else {
        Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
    }
}

/// Per-variant sweep summary: one row per variant, one column per model,
/// each cell the variant's geomean IPC plus its pairwise geomean delta
/// against the `main` variant of the same model. Rendered only for
/// multi-variant campaigns, so single-variant (and older) artifacts are
/// untouched; campaigns without a `main` variant show geomeans alone.
fn variant_sweep(out: &mut String, c: &Campaign, models: &[CommModel]) {
    let variants = c.variants();
    if variants.len() < 2 || models.is_empty() {
        return;
    }
    let name_w = variants.iter().map(String::len).max().unwrap_or(8).max(8);
    let _ = writeln!(out, "\nvariant sweep (geomean IPC, delta vs variant `main`)");
    let mut head = format!("  {:<name_w$}", "variant");
    for m in models {
        let _ = write!(head, "  {:>15}", m.name());
    }
    let _ = writeln!(out, "{head}");
    for variant in &variants {
        let mut line = format!("  {variant:<name_w$}");
        for &m in models {
            let cell = match variant_geomean(c, m, variant) {
                None => "-".to_string(),
                Some(g) if variant == "main" => format!("{g:.3}"),
                Some(g) => match variant_delta_vs_main(c, m, variant) {
                    Some(d) => format!("{g:.3} {:>+6.1}%", (d - 1.0) * 100.0),
                    None => format!("{g:.3}"),
                },
            };
            let _ = write!(line, "  {cell:>15}");
        }
        let _ = writeln!(out, "{line}");
    }
}

fn geomeans(out: &mut String, c: &Campaign, models: &[CommModel]) {
    let reference = reference_model(models);
    let mut lines = Vec::new();
    for suite in [Suite::Int, Suite::Fp] {
        let mut cells = Vec::new();
        for &m in models {
            let Some(g) = c.geomean_ipc(m, suite) else { continue };
            let mut cell = format!("{} {g:.3}", m.name());
            if let Some(base) = reference.filter(|&b| b != m) {
                if let Some(s) = c.geomean_speedup(base, m, suite) {
                    let _ = write!(cell, " (×{s:.3})");
                }
            }
            cells.push(cell);
        }
        if !cells.is_empty() {
            lines.push(format!("  {:<4} {}", suite.name(), cells.join("  |  ")));
        }
    }
    if !lines.is_empty() {
        let reference_note = reference.map(|m| m.name()).unwrap_or("-");
        let _ = writeln!(out, "\ngeomean IPC (speedup vs {reference_note}, variant main)");
        for l in lines {
            let _ = writeln!(out, "{l}");
        }
    }
}

fn sched_occupancy(out: &mut String, c: &Campaign, models: &[CommModel]) {
    // Means over the main-variant jobs of each model; artifacts written
    // before the counters existed contribute zeros.
    let mut rows = Vec::new();
    for &m in models {
        let jobs: Vec<&JobResult> =
            c.jobs.iter().filter(|r| r.model == m && r.variant == "main").collect();
        if jobs.is_empty() {
            continue;
        }
        let n = jobs.len() as f64;
        let ready = jobs.iter().map(|r| r.mean_ready_len).sum::<f64>() / n;
        let wakeups = jobs.iter().map(|r| r.wakeups_per_kilocycle).sum::<f64>() / n;
        let pops = jobs
            .iter()
            .map(|r| {
                if r.cycles == 0 {
                    0.0
                } else {
                    r.calendar_pops as f64 * 1000.0 / r.cycles as f64
                }
            })
            .sum::<f64>()
            / n;
        rows.push((m, ready, wakeups, pops));
    }
    if rows.iter().all(|&(_, r, w, p)| r == 0.0 && w == 0.0 && p == 0.0) {
        return;
    }
    let _ = writeln!(out, "\nscheduler occupancy (mean over main-variant jobs)");
    let _ = writeln!(
        out,
        "  {:<8}  {:>10}  {:>11}  {:>16}",
        "model", "ready-list", "wakeups/kc", "calendar-pops/kc"
    );
    for (m, ready, wakeups, pops) in rows {
        let _ = writeln!(out, "  {:<8}  {ready:>10.2}  {wakeups:>11.1}  {pops:>16.1}", m.name());
    }
}

fn slowest(out: &mut String, c: &Campaign) {
    let rows = c.slowest_jobs(5);
    if rows.is_empty() {
        return;
    }
    match &c.trace_id {
        Some(trace) => {
            let _ = writeln!(
                out,
                "\nslowest jobs (simulation wall-clock; daemon trace {trace})"
            );
        }
        None => {
            let _ = writeln!(out, "\nslowest jobs (simulation wall-clock)");
        }
    }
    for (i, r) in rows.iter().enumerate() {
        let mut line = format!(
            "  {}. {:>9} × {:<8} [{}]  {:.2}s  {:.2} MIPS",
            i + 1,
            r.workload,
            r.model.name(),
            r.variant,
            r.wall_s,
            r.mips
        );
        if r.cached {
            line.push_str("  (cached)");
        } else if r.finished_s > 0.0 {
            let _ = write!(line, "  (ran t+{:.2}s → t+{:.2}s)", r.started_s, r.finished_s);
        }
        let _ = writeln!(out, "{line}");
    }
}

/// One (workload, model, variant) comparison of a sampled estimate
/// against the full simulation.
#[derive(Debug, Clone)]
pub struct ErrorRow {
    /// Workload name.
    pub workload: String,
    /// Communication model.
    pub model: CommModel,
    /// Variant label.
    pub variant: String,
    /// The sampled campaign's IPC estimate.
    pub sampled_ipc: f64,
    /// The full campaign's measured IPC.
    pub full_ipc: f64,
    /// Signed relative error, percent: `(sampled/full - 1) × 100`.
    pub error_pct: f64,
}

/// The sampled-vs-full comparison of two campaign artifacts.
#[derive(Debug, Clone)]
pub struct ErrorTable {
    /// Per-row comparisons, in the sampled artifact's job order.
    pub rows: Vec<ErrorRow>,
    /// Geometric mean of per-row `|error_pct|` (each floored at 1e-4%
    /// so exact matches don't zero the mean).
    pub geomean_abs_error_pct: f64,
    /// The single worst `|error_pct|`.
    pub max_abs_error_pct: f64,
    /// The sampled campaign's wall clock, seconds.
    pub sampled_wall_s: f64,
    /// The full campaign's wall clock, seconds.
    pub full_wall_s: f64,
    /// `full_wall_s / sampled_wall_s` (0 when either side is cached-only
    /// or otherwise reports no wall time).
    pub wall_speedup: f64,
}

/// Compares a sampled campaign against the full campaign it estimates:
/// one row per (workload, model, variant) present in both artifacts.
///
/// # Errors
///
/// The sampled artifact has no sampled rows, the reference has no full
/// rows, or the two share no (workload, model, variant) with nonzero
/// full IPC.
pub fn error_table(sampled: &Campaign, full: &Campaign) -> Result<ErrorTable, String> {
    if !sampled.jobs.iter().any(|r| r.sampled) {
        return Err(format!("campaign `{}` has no sampled rows", sampled.name));
    }
    if full.jobs.iter().any(|r| r.sampled) {
        return Err(format!(
            "reference campaign `{}` has sampled rows; compare against a full run",
            full.name
        ));
    }
    let mut rows = Vec::new();
    for s in sampled.jobs.iter().filter(|r| r.sampled) {
        let Some(f) = full.get_variant(&s.workload, s.model, &s.variant) else { continue };
        if f.ipc <= 0.0 {
            continue;
        }
        rows.push(ErrorRow {
            workload: s.workload.clone(),
            model: s.model,
            variant: s.variant.clone(),
            sampled_ipc: s.ipc,
            full_ipc: f.ipc,
            error_pct: (s.ipc / f.ipc - 1.0) * 100.0,
        });
    }
    if rows.is_empty() {
        return Err(format!(
            "campaigns `{}` and `{}` share no (workload, model, variant) rows",
            sampled.name, full.name
        ));
    }
    let logs: Vec<f64> = rows.iter().map(|r| r.error_pct.abs().max(1e-4).ln()).collect();
    let geomean = (logs.iter().sum::<f64>() / logs.len() as f64).exp();
    let max = rows.iter().map(|r| r.error_pct.abs()).fold(0.0, f64::max);
    let speedup = if sampled.wall_s > 0.0 && full.wall_s > 0.0 {
        full.wall_s / sampled.wall_s
    } else {
        0.0
    };
    Ok(ErrorTable {
        rows,
        geomean_abs_error_pct: geomean,
        max_abs_error_pct: max,
        sampled_wall_s: sampled.wall_s,
        full_wall_s: full.wall_s,
        wall_speedup: speedup,
    })
}

/// Renders an [`ErrorTable`] as plain text: per-row IPCs and signed
/// errors, then the aggregate error and wall-clock summary.
pub fn render_error_table(t: &ErrorTable) -> String {
    let mut out = String::new();
    let name_w = t.rows.iter().map(|r| r.workload.len()).max().unwrap_or(8).max(8);
    let _ = writeln!(out, "sampled vs full IPC error");
    let _ = writeln!(
        out,
        "  {:<name_w$}  {:<8}  {:<10}  {:>9}  {:>9}  {:>8}",
        "workload", "model", "variant", "sampled", "full", "error"
    );
    for r in &t.rows {
        let _ = writeln!(
            out,
            "  {:<name_w$}  {:<8}  {:<10}  {:>9.4}  {:>9.4}  {:>+7.2}%",
            r.workload,
            r.model.name(),
            r.variant,
            r.sampled_ipc,
            r.full_ipc,
            r.error_pct
        );
    }
    let _ = writeln!(
        out,
        "\n  {} rows: geomean |error| {:.3}%, worst |error| {:.3}%",
        t.rows.len(),
        t.geomean_abs_error_pct,
        t.max_abs_error_pct
    );
    if t.wall_speedup > 0.0 {
        let _ = writeln!(
            out,
            "  wall: sampled {:.2}s vs full {:.2}s  (×{:.1})",
            t.sampled_wall_s, t.full_wall_s, t.wall_speedup
        );
    }
    out
}

impl ErrorTable {
    /// The machine-readable form (`dmdp report --error-vs --json`),
    /// stable enough for CI to `jq` against.
    pub fn to_json(&self) -> Json {
        obj([
            ("type", Json::Str("sampled_error".into())),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            obj([
                                ("workload", Json::Str(r.workload.clone())),
                                ("model", Json::Str(r.model.name().into())),
                                ("variant", Json::Str(r.variant.clone())),
                                ("sampled_ipc", Json::Num(r.sampled_ipc)),
                                ("full_ipc", Json::Num(r.full_ipc)),
                                ("error_pct", Json::Num(r.error_pct)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("rows_compared", Json::Num(self.rows.len() as f64)),
            ("geomean_abs_error_pct", Json::Num(self.geomean_abs_error_pct)),
            ("max_abs_error_pct", Json::Num(self.max_abs_error_pct)),
            ("sampled_wall_s", Json::Num(self.sampled_wall_s)),
            ("full_wall_s", Json::Num(self.full_wall_s)),
            ("wall_speedup", Json::Num(self.wall_speedup)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignSpec, RunOptions};
    use dmdp_workloads::Scale;

    #[test]
    fn renders_every_section() {
        let campaign = CampaignSpec::new("render", Scale::Test)
            .models([CommModel::Baseline, CommModel::Dmdp])
            .kernels(["lib", "bwaves"])
            .run(&RunOptions { jobs: 1, ..RunOptions::default() })
            .unwrap();
        let text = render_campaign(&campaign);
        assert!(text.contains("campaign `render`"), "{text}");
        assert!(text.contains("IPC by workload × model"), "{text}");
        assert!(text.contains("geomean IPC"), "{text}");
        assert!(text.contains("scheduler occupancy"), "{text}");
        assert!(text.contains("slowest jobs"), "{text}");
        assert!(text.contains("stages: build"), "{text}");
        assert!(text.contains("lib"), "{text}");
        assert!(text.contains("bwaves"), "{text}");
    }

    #[test]
    fn variant_sweep_renders_deltas_against_main() {
        use crate::CfgPatch;
        let campaign = CampaignSpec::new("sweep", Scale::Test)
            .models([CommModel::Baseline, CommModel::Dmdp])
            .kernels(["lib", "mcf"])
            .variants([
                ("main".to_string(), CfgPatch::default()),
                ("rob32".to_string(), CfgPatch { rob: Some(32), ..CfgPatch::default() }),
                ("sb2".to_string(), CfgPatch { sb: Some(2), ..CfgPatch::default() }),
            ])
            .run(&RunOptions { jobs: 1, ..RunOptions::default() })
            .unwrap();
        let text = render_campaign(&campaign);
        assert!(text.contains("variant sweep"), "{text}");
        assert!(text.contains("rob32"), "{text}");
        assert!(text.contains("sb2"), "{text}");
        // Non-main rows carry a percentage delta against main.
        let sweep = text.split("variant sweep").nth(1).unwrap();
        let rob_row = sweep.lines().find(|l| l.trim_start().starts_with("rob32")).unwrap();
        assert!(rob_row.contains('%'), "{rob_row}");
        // The main row is the reference: geomean only, no delta.
        let main_row = sweep.lines().find(|l| l.trim_start().starts_with("main")).unwrap();
        assert!(!main_row.contains('%'), "{main_row}");
    }

    #[test]
    fn single_variant_artifacts_skip_the_sweep_section() {
        let campaign = CampaignSpec::new("solo", Scale::Test)
            .models([CommModel::Dmdp])
            .kernels(["lib"])
            .run(&RunOptions { jobs: 1, ..RunOptions::default() })
            .unwrap();
        let text = render_campaign(&campaign);
        assert!(!text.contains("variant sweep"), "{text}");
    }

    #[test]
    fn error_table_compares_sampled_to_full() {
        let full = CampaignSpec::new("full", Scale::Test)
            .models([CommModel::Baseline, CommModel::Dmdp])
            .kernels(["lib", "mcf"])
            .run(&RunOptions { jobs: 1, ..RunOptions::default() })
            .unwrap();
        let sampled = CampaignSpec::new("sampled", Scale::Test)
            .models([CommModel::Baseline, CommModel::Dmdp])
            .kernels(["lib", "mcf"])
            .sampled(1000, 2)
            .run(&RunOptions { jobs: 1, ..RunOptions::default() })
            .unwrap();
        let t = error_table(&sampled, &full).unwrap();
        assert_eq!(t.rows.len(), 4);
        assert!(t.max_abs_error_pct < 3.0, "{:#?}", t.rows);
        assert!(t.geomean_abs_error_pct <= t.max_abs_error_pct);
        let text = render_error_table(&t);
        assert!(text.contains("sampled vs full IPC error"), "{text}");
        assert!(text.contains("geomean |error|"), "{text}");
        let json = t.to_json();
        assert_eq!(json.get("rows_compared").and_then(Json::as_u64), Some(4));
        assert_eq!(json.get("rows").and_then(Json::as_arr).unwrap().len(), 4);
        // The sampled artifact's own report names the sampling knobs.
        assert!(render_campaign(&sampled).contains("sampled: 1000 insn intervals"));
        // Misuse errors, not panics.
        assert!(error_table(&full, &full).is_err(), "full-vs-full must be rejected");
        assert!(error_table(&sampled, &sampled).is_err(), "sampled reference rejected");
    }

    #[test]
    fn survives_artifact_round_trip() {
        let campaign = CampaignSpec::new("rt", Scale::Test)
            .models([CommModel::Dmdp])
            .kernels(["lib"])
            .run(&RunOptions { jobs: 1, ..RunOptions::default() })
            .unwrap();
        let back = Campaign::from_json(&campaign.to_json()).unwrap();
        assert_eq!(back.stages, campaign.stages);
        let text = render_campaign(&back);
        // Single-model campaign: deltas are measured against dmdp itself.
        assert!(text.contains("IPC by workload"), "{text}");
        assert!(text.contains("slowest jobs"), "{text}");
    }
}
