//! Job-group partitioning and ordered-result assembly.
//!
//! A campaign's job list is executed as *units*: runs of consecutive
//! variant jobs of one (workload, model) that the batched lockstep
//! engine ([`crate::JobSpec::execute_batch`]) can step together, with
//! everything else as singletons. The same partition drives three
//! executors — the local campaign pool, the daemon's in-process submit
//! path, and the sharded coordinator's dispatch of job groups to worker
//! processes — so all three produce identical per-variant digests and
//! row order by construction.

use crate::job::JobSpec;

/// Partitions `specs` (in campaign order) into pool/dispatch units.
///
/// `batchable(i)` says whether job `i` may participate in a multi-job
/// unit at all (callers gate on their batching flag, cache state, and
/// `sampling.is_none()` — sampled jobs measure checkpointed intervals
/// and never run in lockstep). A job extends the previous unit only
/// when both it and the unit's leading member are batchable and share
/// one (workload, model) and one program image; anything else starts a
/// new singleton unit. Units preserve index order, so flattening them
/// reproduces the campaign row order exactly.
pub fn partition_units(specs: &[JobSpec], batchable: impl Fn(usize) -> bool) -> Vec<Vec<usize>> {
    let mut units: Vec<Vec<usize>> = Vec::new();
    for i in 0..specs.len() {
        if batchable(i) {
            if let Some(unit) = units.last_mut() {
                let j = unit[0];
                if batchable(j)
                    && specs[j].workload == specs[i].workload
                    && specs[j].model == specs[i].model
                    && std::sync::Arc::ptr_eq(&specs[j].program, &specs[i].program)
                {
                    unit.push(i);
                    continue;
                }
            }
        }
        units.push(vec![i]);
    }
    units
}

/// Reassembles per-unit outcomes (in any completion order) into one
/// slot per original job index — the remote-result assembly step every
/// executor shares. Panics if a unit reported an out-of-range index;
/// indices left unreported stay `None` for the caller to diagnose.
pub fn collect_ordered<T>(n: usize, unit_outcomes: Vec<Vec<(usize, T)>>) -> Vec<Option<T>> {
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for unit in unit_outcomes {
        for (i, outcome) in unit {
            slots[i] = Some(outcome);
        }
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::PlannedImage;
    use dmdp_core::{CommModel, CoreConfig};
    use dmdp_workloads::Scale;
    use std::sync::Arc;

    fn image_of(workload: &str) -> PlannedImage {
        let w = dmdp_workloads::by_name(workload, Scale::Test).unwrap();
        PlannedImage::new(Arc::new(w.program))
    }

    fn spec_on(image: &PlannedImage, workload: &str, model: CommModel, variant: &str) -> JobSpec {
        let w = dmdp_workloads::by_name(workload, Scale::Test).unwrap();
        JobSpec::new(workload, w.suite, model, Scale::Test, variant, CoreConfig::new(model), image)
    }

    fn spec(workload: &str, model: CommModel, variant: &str) -> JobSpec {
        spec_on(&image_of(workload), workload, model, variant)
    }

    #[test]
    fn consecutive_variants_of_one_pair_form_one_unit() {
        let lib = image_of("lib");
        let mcf = image_of("mcf");
        let specs = vec![
            spec_on(&lib, "lib", CommModel::Dmdp, "main"),
            spec_on(&lib, "lib", CommModel::Dmdp, "rob32"),
            spec_on(&lib, "lib", CommModel::NoSq, "main"),
            spec_on(&mcf, "mcf", CommModel::NoSq, "main"),
            spec_on(&mcf, "mcf", CommModel::NoSq, "rob32"),
        ];
        let units = partition_units(&specs, |_| true);
        assert_eq!(units, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn unbatchable_jobs_stay_singletons_and_break_runs() {
        let specs = vec![
            spec("lib", CommModel::Dmdp, "main"),
            spec("lib", CommModel::Dmdp, "rob32"),
            spec("lib", CommModel::Dmdp, "sb2"),
        ];
        // Job 1 is not batchable (e.g. already cached): it stays a
        // singleton, and job 2 cannot extend it — units never mix
        // batchable and unbatchable members.
        let units = partition_units(&specs, |i| i != 1);
        assert_eq!(units, vec![vec![0], vec![1], vec![2]]);
        let none = partition_units(&specs, |_| false);
        assert_eq!(none, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn distinct_images_of_one_workload_never_share_a_unit() {
        // Two separately-built images of the same workload are equal in
        // content but not pointer-shared; the lockstep engine requires
        // one shared image per unit, so they must not merge.
        let a = spec("lib", CommModel::Dmdp, "main");
        let b = spec("lib", CommModel::Dmdp, "rob32");
        assert!(!std::sync::Arc::ptr_eq(&a.program, &b.program));
        let units = partition_units(&[a, b], |_| true);
        assert_eq!(units, vec![vec![0], vec![1]]);
    }

    #[test]
    fn collect_ordered_restores_campaign_order() {
        let slots = collect_ordered(4, vec![vec![(2, "c"), (3, "d")], vec![(0, "a")], vec![(1, "b")]]);
        let flat: Vec<&str> = slots.into_iter().map(|s| s.unwrap()).collect();
        assert_eq!(flat, ["a", "b", "c", "d"]);
    }
}
