//! A hand-rolled JSON value, writer and reader.
//!
//! The repository builds fully offline, so campaign artifacts cannot use
//! serde. This module implements the small JSON subset the artifacts
//! need: objects (insertion-ordered), arrays, strings with standard
//! escapes, finite numbers, booleans and null. Numbers are stored as
//! `f64`; every count the harness serializes is far below 2^53, where
//! `f64` is exact.
//!
//! The parser also reads bytes off a socket (the `dmdp serve` protocol),
//! so it must reject — never panic on — arbitrary garbage: every
//! malformed document returns a positioned error, and nesting depth is
//! capped so a bracket bomb cannot overflow the parse recursion.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so artifacts are
/// stable and diffable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64` (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes onto a single line with no whitespace — the framing
    /// the newline-delimited `dmdp serve` protocol needs (one document
    /// per line, never an embedded `\n`).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after the document"));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    assert!(n.is_finite(), "JSON cannot represent {n}");
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        let _ = write!(out, "{n:?}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. Real artifacts nest
/// four or five levels; the cap only exists so a hostile `[[[[…` off a
/// socket errors out instead of overflowing the recursion stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text.parse().map_err(|_| self.err(&format!("bad number `{text}`")))?;
        if !n.is_finite() {
            return Err(self.err(&format!("non-finite number `{text}`")));
        }
        Ok(Json::Num(n))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.descend()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Convenience: an ordered object from `(key, value)` pairs.
pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(3.25),
            Json::Num(1.0e-9),
            Json::Num(9_007_199_254_740_991.0), // 2^53 - 1
            Json::Str(String::new()),
            Json::Str("hello \"world\"\n\t\\ \u{1F600} \u{1}".to_string()),
        ] {
            assert_eq!(Json::parse(&v.pretty()).unwrap(), v, "{v:?}");
        }
    }

    #[test]
    fn nested_round_trips() {
        let v = obj([
            ("name", Json::Str("campaign".into())),
            ("jobs", Json::Arr(vec![
                obj([("ipc", Json::Num(2.125)), ("cached", Json::Bool(false))]),
                obj([]),
                Json::Arr(vec![]),
            ])),
            ("null", Json::Null),
        ]);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn object_preserves_member_order() {
        let text = r#"{"z": 1, "a": 2, "m": 3}"#;
        let Json::Obj(members) = Json::parse(text).unwrap() else { panic!() };
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).pretty().trim(), "42");
        assert_eq!(Json::Num(0.5).pretty().trim(), "0.5");
    }

    #[test]
    fn parse_errors_are_positioned() {
        for bad in ["", "{", "[1,", "\"abc", "tru", "1e999", "{}x", "{\"a\" 1}"] {
            let e = Json::parse(bad).unwrap_err();
            assert!(e.contains("JSON parse error"), "{bad}: {e}");
        }
    }

    #[test]
    fn compact_is_one_line_and_round_trips() {
        let v = obj([
            ("name", Json::Str("a \"b\"\nc".into())),
            ("jobs", Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Bool(true)])),
            ("empty", Json::Obj(vec![])),
        ]);
        let line = v.compact();
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(Json::parse(&line).unwrap(), v);
        assert_eq!(Json::Arr(vec![]).compact(), "[]");
        assert_eq!(
            obj([("a", Json::Num(1.0)), ("b", Json::Str("x".into()))]).compact(),
            r#"{"a":1,"b":"x"}"#
        );
    }

    #[test]
    fn bracket_bombs_error_instead_of_overflowing() {
        for bomb in ["[".repeat(100_000), "[{\"k\": ".repeat(50_000)] {
            let e = Json::parse(&bomb).unwrap_err();
            assert!(e.contains("nesting"), "{e}");
        }
        // Deep-but-legal nesting still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"s": "x", "n": 7, "b": true, "a": [1]}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("missing"), None);
    }
}
