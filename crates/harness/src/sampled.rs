//! Harness-side glue for sampled simulation: the campaign/daemon-facing
//! sampling configuration, bundle construction with observability, and
//! the digest key under which a bundle is shared.
//!
//! A [`dmdp_sample::SampledBundle`] is model- and
//! configuration-independent, so one bundle (profile + clustering +
//! checkpoints) serves every (model × variant) job of a workload —
//! campaigns build it once per workload, the daemon additionally
//! persists it in the content-addressed store keyed by
//! [`Sampling::bundle_digest`] and shares it across requests and
//! restarts.

use std::sync::Arc;
use std::time::Instant;

use dmdp_isa::Program;
use dmdp_sample::{SampleParams, SampledBundle};

use crate::digest::Digest64;

/// Process-wide sampled-simulation metrics: a few relaxed atomic adds
/// per bundle build / sampled job, never inside simulator loops.
pub(crate) struct SampledMetrics {
    pub intervals_profiled: &'static dmdp_obs::Counter,
    pub intervals_simulated: &'static dmdp_obs::Counter,
    pub checkpoint_bytes: &'static dmdp_obs::Counter,
    pub bundle_builds: &'static dmdp_obs::Counter,
    pub ff_mips: &'static dmdp_obs::LogHistogram,
}

pub(crate) fn sampled_metrics() -> &'static SampledMetrics {
    static METRICS: std::sync::OnceLock<SampledMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = dmdp_obs::registry();
        SampledMetrics {
            intervals_profiled: r.counter(
                "dmdp_sampled_intervals_profiled_total",
                "execution intervals profiled for sampled simulation",
            ),
            intervals_simulated: r.counter(
                "dmdp_sampled_intervals_simulated_total",
                "representative intervals simulated in detail",
            ),
            checkpoint_bytes: r.counter(
                "dmdp_sampled_checkpoint_bytes_total",
                "serialized architectural-checkpoint bytes captured",
            ),
            bundle_builds: r.counter(
                "dmdp_sampled_bundle_builds_total",
                "sampled bundles built (profile + cluster + checkpoint passes)",
            ),
            ff_mips: r.histogram(
                "dmdp_sampled_ff_mips",
                "functional fast-forward throughput during bundle builds, MIPS",
            ),
        }
    })
}

/// The sampling knobs a campaign or submit request carries: interval
/// length and warmup depth. Everything else (clustering seed, `max_k`)
/// is fixed by [`SampleParams::new`] so that equal knobs mean equal
/// bundles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampling {
    /// Interval length in dynamic instructions.
    pub interval_insns: u64,
    /// Intervals of detailed warmup before each measurement.
    pub warmup_intervals: u32,
}

impl Sampling {
    /// The corresponding profiling/clustering parameters.
    pub fn params(&self) -> SampleParams {
        SampleParams::new(self.interval_insns, self.warmup_intervals)
    }

    /// The digest-stream suffix distinguishing a sampled job from the
    /// full-simulation job of the same (config, workload, image).
    /// Appended only for sampled jobs, so full-run digests — and every
    /// golden artifact keyed by them — are untouched.
    pub fn digest_suffix(&self) -> String {
        format!("sampled:{}:{}", self.interval_insns, self.warmup_intervals)
    }

    /// Content digest of the bundle this sampling configuration produces
    /// for `program` — the daemon's store key. Covers the program image
    /// and both knobs (warmup shifts checkpoint boundaries, so it is
    /// part of the bundle's identity), but *not* the simulator timing
    /// version: bundles are architectural artifacts and survive timing
    /// changes.
    pub fn bundle_digest(&self, program: &Program) -> String {
        let mut d = Digest64::new();
        d.write_str("bundle").write_str(&self.digest_suffix()).write(&program.to_image());
        d.hex()
    }
}

/// A job's sampling work order: the knobs plus the shared bundle.
#[derive(Debug, Clone)]
pub struct SamplingSpec {
    /// The sampling knobs.
    pub sampling: Sampling,
    /// The workload's bundle, shared by every (model × variant) job.
    pub bundle: Arc<SampledBundle>,
}

/// Builds (and times) the sampled bundle for one workload, recording
/// the profiled-interval count, checkpoint payload size and functional
/// fast-forward throughput in the metrics registry.
///
/// # Errors
///
/// Bundle-construction errors (emulation faults, step-budget
/// exhaustion), stringified.
pub fn build_bundle(program: &Program, sampling: Sampling) -> Result<Arc<SampledBundle>, String> {
    let start = Instant::now();
    let bundle = SampledBundle::build(program, &sampling.params())?;
    let wall = start.elapsed().as_secs_f64();
    record_bundle(&bundle, wall);
    Ok(Arc::new(bundle))
}

/// Records bundle-level metrics (also used by the daemon when a bundle
/// is deserialized from the store with zero build time — only fresh
/// builds observe a fast-forward throughput).
pub fn record_bundle(bundle: &SampledBundle, build_wall_s: f64) {
    let m = sampled_metrics();
    m.bundle_builds.inc();
    m.intervals_profiled.add(bundle.plan.total_intervals);
    m.checkpoint_bytes.add(bundle.checkpoint_bytes());
    if build_wall_s > 0.0 {
        // Two functional passes (profile + capture) cover the program;
        // the budget they consume is what sampling saves downstream.
        let emulated = bundle.plan.total_insns.saturating_mul(2);
        m.ff_mips.observe((emulated as f64 / build_wall_s / 1e6) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_separates_knobs_and_images() {
        let a = dmdp_workloads::by_name("lib", dmdp_workloads::Scale::Test).unwrap().program;
        let b = dmdp_workloads::by_name("mcf", dmdp_workloads::Scale::Test).unwrap().program;
        let s1 = Sampling { interval_insns: 1000, warmup_intervals: 1 };
        let s2 = Sampling { interval_insns: 2000, warmup_intervals: 1 };
        let s3 = Sampling { interval_insns: 1000, warmup_intervals: 2 };
        assert_eq!(s1.bundle_digest(&a), s1.bundle_digest(&a));
        assert_ne!(s1.bundle_digest(&a), s2.bundle_digest(&a));
        assert_ne!(s1.bundle_digest(&a), s3.bundle_digest(&a));
        assert_ne!(s1.bundle_digest(&a), s1.bundle_digest(&b));
        assert_eq!(s1.digest_suffix(), "sampled:1000:1");
    }

    #[test]
    fn build_bundle_produces_a_usable_plan() {
        let p = dmdp_workloads::by_name("lib", dmdp_workloads::Scale::Test).unwrap().program;
        let bundle =
            build_bundle(&p, Sampling { interval_insns: 500, warmup_intervals: 1 }).unwrap();
        assert!(bundle.plan.k >= 1);
        assert!(!bundle.rep_runs().is_empty());
    }
}
