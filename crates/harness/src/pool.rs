//! A minimal work-stealing thread pool over `std::thread::scope`.
//!
//! Campaign jobs are independent, deterministic and of wildly uneven
//! duration (a `Perfect`-model run of `lbm` is many times slower than a
//! `Baseline` run of `lib`), so workers *steal* the next job index from
//! one shared atomic counter the moment they finish — natural load
//! balancing with no channels, no queues, no dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on `workers` threads, returning the results
/// in input order. `f(index, item)` may run on any thread and in any
/// order; a panic in `f` propagates to the caller after the scope joins.
///
/// `workers == 1` executes inline on the calling thread — serial
/// semantics, identical results (each job is deterministic), no thread
/// overhead.
pub fn map_ordered<I, T, F>(items: &[I], workers: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let workers = workers.min(items.len());
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = f(i, item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every job produced a result"))
        .collect()
}

/// The host's available parallelism (at least 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 2, 8] {
            let out = map_ordered(&items, workers, |_, &x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let items: Vec<usize> = (0..257).collect();
        let hits = AtomicU64::new(0);
        let out = map_ordered(&items, 4, |i, &x| {
            assert_eq!(i, x);
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 257);
        assert_eq!(hits.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u32> = Vec::new();
        assert!(map_ordered(&none, 8, |_, &x| x).is_empty());
        assert_eq!(map_ordered(&[41], 8, |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn uses_multiple_threads_when_asked() {
        use std::collections::HashSet;
        let items: Vec<u32> = (0..64).collect();
        let ids = Mutex::new(HashSet::new());
        map_ordered(&items, 4, |_, _| {
            ids.lock().unwrap().insert(std::thread::current().id());
            // Give other workers a chance to claim indices.
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        // On a single-core host the scheduler may still serialize onto
        // fewer threads, but more than one must have participated given
        // 64 sleeping jobs and 4 workers.
        assert!(ids.lock().unwrap().len() > 1);
    }
}
