//! A minimal work-stealing thread pool over `std::thread::scope`.
//!
//! Campaign jobs are independent, deterministic and of wildly uneven
//! duration (a `Perfect`-model run of `lbm` is many times slower than a
//! `Baseline` run of `lib`), so workers *steal* the next job index from
//! one shared atomic counter the moment they finish — natural load
//! balancing with no channels, no queues, no dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A job lifecycle notification from the pool. `Started` fires the
/// moment a worker claims the item (steals its index); `Finished` fires
/// after `f` returns. Both may arrive from any worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEvent {
    /// A worker claimed the item at `index`.
    Started {
        /// Index into the input slice.
        index: usize,
    },
    /// The closure returned for the item at `index`.
    Finished {
        /// Index into the input slice.
        index: usize,
    },
}

/// Applies `f` to every item on `workers` threads, returning the results
/// in input order. `f(index, item)` may run on any thread and in any
/// order; a panic in `f` propagates to the caller after the scope joins.
///
/// `workers == 1` executes inline on the calling thread — serial
/// semantics, identical results (each job is deterministic), no thread
/// overhead.
pub fn map_ordered<I, T, F>(items: &[I], workers: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    map_ordered_with(items, workers, f, |_| {})
}

/// [`map_ordered`] with a lifecycle observer: `on_event` receives a
/// [`JobEvent`] when each item is claimed and when it completes, from
/// whichever thread ran it. The observer drives live progress reporting
/// (queued = not yet started, running = started − finished) without the
/// work closure knowing about display concerns.
pub fn map_ordered_with<I, T, F, E>(items: &[I], workers: usize, f: F, on_event: E) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
    E: Fn(JobEvent) + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                on_event(JobEvent::Started { index: i });
                let out = f(i, item);
                on_event(JobEvent::Finished { index: i });
                out
            })
            .collect();
    }
    let workers = workers.min(items.len());
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                on_event(JobEvent::Started { index: i });
                let out = f(i, item);
                *results[i].lock().unwrap() = Some(out);
                on_event(JobEvent::Finished { index: i });
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every job produced a result"))
        .collect()
}

/// The host's available parallelism (at least 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 2, 8] {
            let out = map_ordered(&items, workers, |_, &x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let items: Vec<usize> = (0..257).collect();
        let hits = AtomicU64::new(0);
        let out = map_ordered(&items, 4, |i, &x| {
            assert_eq!(i, x);
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 257);
        assert_eq!(hits.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn events_pair_up_per_item() {
        use std::sync::Mutex as M;
        let items: Vec<usize> = (0..40).collect();
        let started = M::new(vec![0u32; 40]);
        let finished = M::new(vec![0u32; 40]);
        for workers in [1, 4] {
            *started.lock().unwrap() = vec![0; 40];
            *finished.lock().unwrap() = vec![0; 40];
            map_ordered_with(
                &items,
                workers,
                |_, &x| x,
                |ev| match ev {
                    JobEvent::Started { index } => started.lock().unwrap()[index] += 1,
                    JobEvent::Finished { index } => finished.lock().unwrap()[index] += 1,
                },
            );
            assert!(started.lock().unwrap().iter().all(|&c| c == 1));
            assert!(finished.lock().unwrap().iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u32> = Vec::new();
        assert!(map_ordered(&none, 8, |_, &x| x).is_empty());
        assert_eq!(map_ordered(&[41], 8, |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn uses_multiple_threads_when_asked() {
        use std::collections::HashSet;
        let items: Vec<u32> = (0..64).collect();
        let ids = Mutex::new(HashSet::new());
        map_ordered(&items, 4, |_, _| {
            ids.lock().unwrap().insert(std::thread::current().id());
            // Give other workers a chance to claim indices.
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        // On a single-core host the scheduler may still serialize onto
        // fewer threads, but more than one must have participated given
        // 64 sleeping jobs and 4 workers.
        assert!(ids.lock().unwrap().len() > 1);
    }
}
