//! Fuzz-style robustness tests for `harness::json`.
//!
//! The parser now reads bytes off the `dmdp serve` socket, so any input
//! — truncated, bit-flipped, spliced, or outright garbage — must come
//! back as `Ok` or a positioned `Err`, never a panic or a stack
//! overflow. The mutations are deterministic (in-repo xoshiro PRNG), so
//! a failure reproduces exactly.

use dmdp_harness::json::obj;
use dmdp_harness::Json;
use dmdp_prng::Prng;

/// A document shaped like the real wire traffic: nested objects, arrays,
/// every scalar kind, escapes and non-ASCII text.
fn seed_document() -> String {
    obj([
        ("schema", Json::Num(1.0)),
        ("campaign", Json::Str("fuzz \"quoted\" \n\t\\ λ".into())),
        ("wall_s", Json::Num(0.03125)),
        ("negative", Json::Num(-17.5)),
        ("big", Json::Num(9.007199254740991e15)),
        ("tiny", Json::Num(1.0e-9)),
        ("flag", Json::Bool(true)),
        ("off", Json::Bool(false)),
        ("nothing", Json::Null),
        (
            "jobs",
            Json::Arr(vec![
                obj([
                    ("workload", Json::Str("hmmer".into())),
                    ("digest", Json::Str("0123456789abcdef".into())),
                    ("ipc", Json::Num(2.125)),
                    ("cached", Json::Bool(false)),
                ]),
                Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Str(String::new())]),
                Json::Obj(vec![]),
            ]),
        ),
    ])
    .pretty()
}

/// Asserts the contract: the parser returns, and failures carry the
/// standard positioned message.
fn must_not_panic(text: &str) {
    if let Err(e) = Json::parse(text) {
        assert!(e.contains("JSON parse error"), "unpositioned error for {text:?}: {e}");
    }
}

#[test]
fn every_truncation_of_a_valid_document_is_handled() {
    let doc = seed_document();
    for cut in 0..doc.len() {
        if doc.is_char_boundary(cut) {
            must_not_panic(&doc[..cut]);
        }
    }
}

#[test]
fn random_byte_mutations_are_handled() {
    let doc = seed_document();
    let mut rng = Prng::new(0xf00d_2026);
    for _ in 0..2_000 {
        let mut bytes = doc.clone().into_bytes();
        // 1–4 point mutations: overwrite, insert, or delete a byte.
        for _ in 0..1 + rng.index(4) {
            let kind = rng.index(3);
            let at = rng.index(bytes.len().max(1));
            let b = (rng.next_u32() & 0xff) as u8;
            match kind {
                0 => {
                    if at < bytes.len() {
                        bytes[at] = b;
                    }
                }
                1 => bytes.insert(at.min(bytes.len()), b),
                _ => {
                    if at < bytes.len() {
                        bytes.remove(at);
                    }
                }
            }
        }
        // Socket framing decodes UTF-8 first; non-UTF-8 mutants are
        // rejected there, before the parser ever sees them.
        if let Ok(text) = std::str::from_utf8(&bytes) {
            must_not_panic(text);
        }
    }
}

#[test]
fn random_document_splices_are_handled() {
    let doc = seed_document();
    let mut rng = Prng::new(0xbeef_cafe);
    for _ in 0..2_000 {
        let a = rng.index(doc.len() + 1);
        let b = rng.index(doc.len() + 1);
        let (a, b) = (a.min(b), a.max(b));
        if doc.is_char_boundary(a) && doc.is_char_boundary(b) {
            // Cut [a, b) out, or double it in place.
            let cut = format!("{}{}", &doc[..a], &doc[b..]);
            must_not_panic(&cut);
            let doubled = format!("{}{}{}", &doc[..b], &doc[a..b], &doc[b..]);
            must_not_panic(&doubled);
        }
    }
}

#[test]
fn adversarial_corpus_is_rejected_not_panicked() {
    for bad in [
        "",
        " ",
        "\u{feff}{}",
        "nul",
        "truefalse",
        "\"\\u12",
        "\"\\u123g\"",
        "\"\\",
        "-",
        "+1",
        "1e",
        "1e999",
        "0x10",
        "--5",
        "1.2.3",
        "[,]",
        "[1,]",
        "{\"a\":}",
        "{\"a\"}",
        "{:1}",
        "{1:2}",
        "[}",
        "{]",
        "\"unterminated",
        "{\"k\": \"v\"",
        "[[[[[",
        "{\"a\": {\"b\": ",
        "null null",
    ] {
        assert!(Json::parse(bad).is_err(), "accepted garbage: {bad:?}");
        must_not_panic(bad);
    }
    // Huge flat array: legal, must parse without deep recursion.
    let flat = format!("[{}1]", "1,".repeat(50_000));
    assert!(Json::parse(&flat).is_ok());
}
