//! End-to-end sampled-simulation accuracy and artifact round-trips.

use dmdp_core::CommModel;
use dmdp_harness::{Campaign, CampaignSpec, RunOptions};
use dmdp_workloads::Scale;

fn opts() -> RunOptions {
    RunOptions { jobs: 2, ..RunOptions::default() }
}

#[test]
fn sampled_campaign_estimates_full_ipc() {
    let kernels = ["lib", "mcf", "bwaves"];
    let full = CampaignSpec::new("full", Scale::Test)
        .kernels(kernels)
        .run(&opts())
        .unwrap();
    let sampled = CampaignSpec::new("sampled", Scale::Test)
        .kernels(kernels)
        .sampled(1000, 2)
        .run(&opts())
        .unwrap();
    assert_eq!(sampled.jobs.len(), full.jobs.len());
    for (s, f) in sampled.jobs.iter().zip(&full.jobs) {
        assert_eq!(s.workload, f.workload);
        assert_eq!(s.model, f.model);
        assert!(s.sampled && !f.sampled);
        assert_ne!(s.digest, f.digest, "sampled digests must not collide with full");
        assert!(s.intervals_simulated > 0);
        assert!(s.intervals_simulated <= s.intervals_total);
        // Accuracy at test scale with the tuned knobs (interval 1000,
        // warmup 2 — the ci.sh smoke holds one kernel to ≤ 2%).
        let err = (s.ipc - f.ipc) / f.ipc * 100.0;
        assert!(
            err.abs() < 3.0,
            "{} × {}: sampled IPC {:.4} vs full {:.4} ({err:+.2}%)",
            s.workload,
            s.model.name(),
            s.ipc,
            f.ipc
        );
    }
}

#[test]
fn sampled_rows_and_campaign_meta_round_trip() {
    let sampled = CampaignSpec::new("rt", Scale::Test)
        .kernels(["lib"])
        .models([CommModel::Dmdp])
        .sampled(500, 1)
        .run(&opts())
        .unwrap();
    let back = Campaign::from_json(&sampled.to_json()).unwrap();
    assert_eq!(back.sampling, sampled.sampling);
    let (b, s) = (&back.jobs[0], &sampled.jobs[0]);
    assert!(b.sampled);
    assert_eq!(b.interval_insns, s.interval_insns);
    assert_eq!(b.warmup_intervals, s.warmup_intervals);
    assert_eq!(b.intervals_total, s.intervals_total);
    assert_eq!(b.intervals_simulated, s.intervals_simulated);
    assert_eq!(b.ipc, s.ipc);
}

#[test]
fn sampled_results_are_deterministic_and_cacheable() {
    let dir = std::env::temp_dir().join(format!("dmdp-sampled-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let artifact = dir.join("sampled.json");
    let spec = || {
        CampaignSpec::new("det", Scale::Test)
            .kernels(["mcf"])
            .models([CommModel::Baseline, CommModel::Dmdp])
            .sampled(500, 1)
    };
    let a = spec().run(&opts()).unwrap();
    a.save(&artifact).unwrap();
    let b = spec().run(&opts()).unwrap();
    for (x, y) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(x.digest, y.digest);
        assert_eq!(x.cycles, y.cycles, "sampled runs must be deterministic");
        assert_eq!(x.ipc, y.ipc);
    }
    // A re-run against the artifact is served entirely from the cache.
    let c = spec()
        .run(&RunOptions { cache: Some(artifact), ..opts() })
        .unwrap();
    assert_eq!(c.executed, 0);
    assert_eq!(c.cached, c.jobs.len());
    std::fs::remove_dir_all(&dir).ok();
}
