//! Integration tests of the pipeline probe layer: JSONL trace
//! round-trips through the harness JSON parser, per-µop stage cycles
//! respect pipeline order, squashed µops never report a retire cycle,
//! the tracer window keys on rename cycle, and attaching probes leaves
//! the simulated timing untouched.
//!
//! These live in the harness crate (not `dmdp-core`) so the trace lines
//! are parsed by the same [`Json`] reader that consumes campaign
//! artifacts, and so the core crate's dev-dependency graph stays
//! acyclic.

use std::path::PathBuf;

use dmdp_core::{CommModel, Probe, Simulator};
use dmdp_harness::Json;
use dmdp_workloads::Scale;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dmdp-probe-{}-{tag}.jsonl", std::process::id()))
}

/// One parsed trace line.
struct Rec {
    seq: u64,
    fetch: u64,
    rename: u64,
    dispatch: Option<u64>,
    issue: Option<u64>,
    wb: Option<u64>,
    retire: Option<u64>,
    squash: Option<u64>,
}

fn parse_trace(path: &PathBuf) -> Vec<Rec> {
    let text = std::fs::read_to_string(path).expect("trace file readable");
    text.lines()
        .map(|line| {
            let v = Json::parse(line).unwrap_or_else(|e| panic!("bad trace line `{line}`: {e}"));
            let req = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or_else(|| panic!("missing `{k}` in `{line}`"));
            let opt = |k: &str| v.get(k).and_then(Json::as_u64);
            assert!(v.get("kind").and_then(Json::as_str).is_some(), "missing kind: {line}");
            assert!(v.get("reexec").and_then(Json::as_bool).is_some(), "missing reexec: {line}");
            assert!(v.get("pc").and_then(Json::as_u64).is_some(), "missing pc: {line}");
            Rec {
                seq: req("seq"),
                fetch: req("fetch"),
                rename: req("rename"),
                dispatch: opt("dispatch"),
                issue: opt("issue"),
                wb: opt("wb"),
                retire: opt("retire"),
                squash: opt("squash"),
            }
        })
        .collect()
}

fn traced_run(model: CommModel, tag: &str) -> (dmdp_core::SimStats, Vec<Rec>) {
    let w = dmdp_workloads::by_name("gcc", Scale::Test).expect("gcc exists");
    let path = temp_path(tag);
    let probe = Probe::default().with_trace(&path, 0, None).expect("trace file creatable");
    let (report, probes) =
        Simulator::with_config(dmdp_core::CoreConfig::new(model)).run_probed(&w.program, probe).unwrap();
    assert!(probes.trace_error.is_none(), "{:?}", probes.trace_error);
    let recs = parse_trace(&path);
    assert_eq!(recs.len() as u64, probes.trace_records);
    std::fs::remove_file(&path).ok();
    (report.stats, recs)
}

#[test]
fn trace_round_trips_and_stage_cycles_are_monotonic() {
    for model in CommModel::ALL {
        let (stats, recs) = traced_run(model, &format!("mono-{}", model.name()));
        assert!(!recs.is_empty());
        for r in &recs {
            let tag = format!("{} seq {}", model.name(), r.seq);
            assert!(r.fetch <= r.rename, "fetch > rename: {tag}");
            if let Some(d) = r.dispatch {
                assert!(r.rename <= d, "rename > dispatch: {tag}");
                if let Some(i) = r.issue {
                    assert!(d <= i, "dispatch > issue: {tag}");
                }
            }
            if let (Some(i), Some(wb)) = (r.issue, r.wb) {
                assert!(i <= wb, "issue > wb: {tag}");
            }
            if let Some(ret) = r.retire {
                assert!(r.rename <= ret, "rename > retire: {tag}");
                if let Some(wb) = r.wb {
                    assert!(wb <= ret, "wb > retire: {tag}");
                }
            }
        }
        // Every record resolves exactly one way, and the retired ones
        // account for every retired µop of the run.
        assert!(recs.iter().all(|r| r.retire.is_some() != r.squash.is_some()));
        let retired = recs.iter().filter(|r| r.retire.is_some()).count() as u64;
        assert_eq!(retired, stats.retired_uops, "{}", model.name());
    }
}

#[test]
fn squashed_uops_never_report_retire() {
    // gcc under dmdp has both branch and memory-dependence recoveries.
    let (stats, recs) = traced_run(CommModel::Dmdp, "squash");
    let squashed: Vec<&Rec> = recs.iter().filter(|r| r.squash.is_some()).collect();
    assert!(!squashed.is_empty(), "expected recoveries in gcc × dmdp");
    assert!(stats.squashed_uops > 0);
    for r in &squashed {
        assert!(r.retire.is_none(), "squashed seq {} reports retire", r.seq);
        assert!(r.squash.unwrap() >= r.rename);
    }
}

#[test]
fn trace_window_keys_on_rename_cycle() {
    let w = dmdp_workloads::by_name("gcc", Scale::Test).unwrap();
    let path = temp_path("window");
    let (from, cycles) = (100, 80);
    let probe = Probe::default().with_trace(&path, from, Some(cycles)).unwrap();
    let (_, probes) = Simulator::with_config(dmdp_core::CoreConfig::new(CommModel::Dmdp))
        .run_probed(&w.program, probe)
        .unwrap();
    assert!(probes.trace_error.is_none());
    let recs = parse_trace(&path);
    std::fs::remove_file(&path).ok();
    assert!(!recs.is_empty(), "window should capture renames");
    for r in &recs {
        assert!(
            (from..from + cycles).contains(&r.rename),
            "rename {} outside [{from}, {})",
            r.rename,
            from + cycles
        );
    }
}

#[test]
fn sampler_windows_cover_the_whole_run() {
    for model in CommModel::ALL {
        let w = dmdp_workloads::by_name("gcc", Scale::Test).unwrap();
        let (report, probes) = Simulator::with_config(dmdp_core::CoreConfig::new(model))
            .run_probed(&w.program, Probe::default().with_samples(250))
            .unwrap();
        let s = &probes.samples;
        assert!(!s.is_empty());
        assert!(s.windows(2).all(|w| w[0].cycle < w[1].cycle), "cycles increase");
        assert!(s.iter().take(s.len() - 1).all(|x| x.cycle % 250 == 0), "full windows align");
        let insns: u64 = s.iter().map(|x| x.insns).sum();
        assert_eq!(insns, report.stats.retired_insns, "{}", model.name());
        let squashed: u64 = s.iter().map(|x| x.squashed_uops).sum();
        assert_eq!(squashed, report.stats.squashed_uops);
        assert!(s.iter().all(|x| x.ipc >= 0.0));
    }
}

#[test]
fn probes_leave_simulated_timing_unchanged() {
    // The probe observes; it must never perturb. Same run, probed vs
    // plain, bit-identical stats.
    let w = dmdp_workloads::by_name("mcf", Scale::Test).unwrap();
    for model in CommModel::ALL {
        let sim = Simulator::with_config(dmdp_core::CoreConfig::new(model));
        let plain = sim.run(&w.program).unwrap();
        let path = temp_path(&format!("timing-{}", model.name()));
        let probe = Probe::default().with_trace(&path, 0, None).unwrap().with_samples(100);
        let (probed, _) = sim.run_probed(&w.program, probe).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(plain.stats, probed.stats, "{} timing perturbed by probes", model.name());
    }
}
