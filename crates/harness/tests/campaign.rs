//! Integration tests for the campaign engine's core claims:
//!
//! 1. **Determinism** — the same campaign produces bit-identical
//!    `SimStats` whether it runs serially (`jobs = 1`) or on a
//!    work-stealing pool (`jobs = 4`).
//! 2. **Artifact round-trip** — a campaign written to JSON and read
//!    back preserves every summary field.
//! 3. **Digest cache** — re-running an unchanged campaign against its
//!    own artifact executes zero jobs; changing the configuration
//!    invalidates exactly the affected rows.

use dmdp_core::CommModel;
use dmdp_harness::{Campaign, CampaignSpec, CfgPatch, RunOptions};
use dmdp_workloads::Scale;

fn small_spec(name: &str) -> CampaignSpec {
    CampaignSpec::new(name, Scale::Test)
        .models([CommModel::Baseline, CommModel::NoSq, CommModel::Dmdp])
        .kernels(["lib", "hmmer", "mcf", "bwaves"])
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dmdp-harness-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn parallel_equals_serial_bit_for_bit() {
    let serial = small_spec("det")
        .run(&RunOptions { jobs: 1, cache: None, ..RunOptions::default() })
        .unwrap();
    let parallel = small_spec("det")
        .run(&RunOptions { jobs: 4, cache: None, ..RunOptions::default() })
        .unwrap();
    assert_eq!(serial.jobs.len(), 12);
    assert_eq!(serial.jobs.len(), parallel.jobs.len());
    for (s, p) in serial.jobs.iter().zip(&parallel.jobs) {
        assert_eq!(s.workload, p.workload);
        assert_eq!(s.model, p.model);
        assert_eq!(s.digest, p.digest);
        // The complete statistics structs must match bit for bit — every
        // counter, histogram bucket and energy count.
        assert_eq!(
            s.stats.as_ref().unwrap(),
            p.stats.as_ref().unwrap(),
            "{} × {} diverged between serial and parallel execution",
            s.workload,
            s.model.name()
        );
        assert_eq!(s.ipc.to_bits(), p.ipc.to_bits());
        assert_eq!(s.cycles, p.cycles);
    }
}

#[test]
fn artifact_round_trips_through_json() {
    let campaign = small_spec("roundtrip")
        .run(&RunOptions { jobs: 2, cache: None, ..RunOptions::default() })
        .unwrap();
    let dir = tmp_dir("roundtrip");
    let path = dir.join("campaign.json");
    campaign.save(&path).unwrap();
    let back = Campaign::load(&path).unwrap();

    assert_eq!(back.name, campaign.name);
    assert_eq!(back.scale, campaign.scale);
    assert_eq!(back.sim_version, campaign.sim_version);
    assert_eq!(back.jobs.len(), campaign.jobs.len());
    for (a, b) in campaign.jobs.iter().zip(&back.jobs) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.suite, b.suite);
        assert_eq!(a.model, b.model);
        assert_eq!(a.variant, b.variant);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.retired_insns, b.retired_insns);
        assert_eq!(a.retired_uops, b.retired_uops);
        assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "ipc must survive textual round-trip");
        assert_eq!(a.mem_dep_mpki.to_bits(), b.mem_dep_mpki.to_bits());
        assert_eq!(a.load_mean_latency.to_bits(), b.load_mean_latency.to_bits());
        assert_eq!(a.branch_mispredicts, b.branch_mispredicts);
        assert_eq!(a.mem_dep_mispredicts, b.mem_dep_mispredicts);
        assert_eq!(a.reexecutions, b.reexecutions);
        assert!(b.stats.is_none());
    }
    // Derived aggregates agree when recomputed from the loaded rows.
    for model in campaign.models() {
        for suite in [dmdp_workloads::Suite::Int, dmdp_workloads::Suite::Fp] {
            assert_eq!(
                campaign.geomean_ipc(model, suite).map(f64::to_bits),
                back.geomean_ipc(model, suite).map(f64::to_bits)
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unchanged_campaign_hits_the_cache_completely() {
    let dir = tmp_dir("cache");
    let path = dir.join("cache.json");

    let first = small_spec("cache")
        .run(&RunOptions { jobs: 2, cache: Some(path.clone()), ..RunOptions::default() })
        .unwrap();
    assert_eq!(first.executed, 12);
    assert_eq!(first.cached, 0);
    first.save(&path).unwrap();

    // Identical spec, artifact present: every digest matches, zero runs.
    let second = small_spec("cache")
        .run(&RunOptions { jobs: 2, cache: Some(path.clone()), ..RunOptions::default() })
        .unwrap();
    assert_eq!(second.executed, 0, "unchanged campaign must execute zero jobs");
    assert_eq!(second.cached, 12);
    for (a, b) in first.jobs.iter().zip(&second.jobs) {
        assert!(b.cached);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
    }
    second.save(&path).unwrap();

    // A config change invalidates every row (new digests).
    let patched = small_spec("cache")
        .variants([("rob128".to_string(), CfgPatch { rob: Some(128), ..CfgPatch::default() })])
        .run(&RunOptions { jobs: 2, cache: Some(path.clone()), ..RunOptions::default() })
        .unwrap();
    assert_eq!(patched.executed, 12, "a changed config must miss the cache");
    assert_eq!(patched.cached, 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unusable_cache_artifact_warns_and_recomputes() {
    let dir = tmp_dir("doctored");
    let path = dir.join("old.json");

    // A doctored artifact from an older binary generation: valid JSON,
    // wrong schema version. `--resume` against it must not abort the
    // campaign and must not silently pretend the cache was empty either
    // — it recomputes everything and says why.
    std::fs::write(&path, "{\"schema\": 99, \"campaign\": \"old\", \"jobs\": []}\n").unwrap();
    let spec = CampaignSpec::new("doctored", Scale::Test)
        .models([CommModel::Dmdp])
        .kernels(["lib", "mcf"]);
    let campaign = spec
        .run(&RunOptions { jobs: 1, cache: Some(path.clone()), ..RunOptions::default() })
        .expect("schema mismatch must degrade to a cold run, not an error");
    assert_eq!(campaign.executed, 2);
    assert_eq!(campaign.cached, 0);
    let warning = campaign.cache_warning.as_deref().expect("warning recorded");
    assert!(warning.contains("schema"), "{warning}");
    assert!(warning.contains("re-running"), "{warning}");

    // Garbage bytes behave the same way.
    std::fs::write(&path, "}{ not json").unwrap();
    let campaign = spec
        .run(&RunOptions { jobs: 1, cache: Some(path.clone()), ..RunOptions::default() })
        .unwrap();
    assert_eq!(campaign.executed, 2);
    assert!(campaign.cache_warning.is_some());

    // A healthy artifact keeps `cache_warning` empty.
    campaign.save(&path).unwrap();
    let warm = spec
        .run(&RunOptions { jobs: 1, cache: Some(path.clone()), ..RunOptions::default() })
        .unwrap();
    assert_eq!(warm.executed, 0);
    assert!(warm.cache_warning.is_none());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_is_keyed_by_content_not_position() {
    let dir = tmp_dir("content");
    let path = dir.join("c.json");
    let full = small_spec("content")
        .run(&RunOptions { jobs: 2, cache: None, ..RunOptions::default() })
        .unwrap();
    full.save(&path).unwrap();

    // A *subset* campaign in a different order still hits: digests are
    // content-addressed, not positional.
    let subset = CampaignSpec::new("content", Scale::Test)
        .models([CommModel::Dmdp, CommModel::Baseline])
        .kernels(["bwaves", "lib"])
        .run(&RunOptions { jobs: 2, cache: Some(path.clone()), ..RunOptions::default() })
        .unwrap();
    assert_eq!(subset.jobs.len(), 4);
    assert_eq!(subset.executed, 0);
    assert_eq!(subset.cached, 4);

    std::fs::remove_dir_all(&dir).ok();
}
