//! End-to-end tests of the `dmdp` binary: probe flags, the `report`
//! subcommand, and the unknown-workload diagnostics — all via
//! `CARGO_BIN_EXE_dmdp`, so they exercise exactly what a user runs.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dmdp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dmdp"))
        .args(args)
        .current_dir(std::env::temp_dir())
        .output()
        .expect("dmdp binary runs")
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dmdp-cli-{}-{name}", std::process::id()))
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn run_rejects_unknown_workload_listing_kernels() {
    let out = dmdp(&["run", "--workload", "nonesuch", "--scale", "test"]);
    assert!(!out.status.success(), "unknown workload must fail");
    let err = stderr(&out);
    assert!(err.contains("unknown workload `nonesuch`"), "{err}");
    assert!(err.contains("valid kernels"), "{err}");
    for name in ["bzip2", "mcf", "sphinx3"] {
        assert!(err.contains(name), "missing `{name}` in: {err}");
    }
}

#[test]
fn campaign_rejects_unknown_kernel_listing_kernels() {
    let out = dmdp(&["campaign", "--kernel", "nonesuch", "--scale", "test", "--quiet"]);
    assert!(!out.status.success(), "unknown kernel must fail");
    let err = stderr(&out);
    assert!(err.contains("unknown workload `nonesuch`"), "{err}");
    assert!(err.contains("valid kernels"), "{err}");
    assert!(err.contains("bzip2"), "{err}");
}

#[test]
fn traced_and_sampled_run_writes_wellformed_artifacts() {
    let trace = temp("trace.jsonl");
    let samples = temp("samples.json");
    let out = dmdp(&[
        "run",
        "--workload",
        "gcc",
        "--scale",
        "test",
        "--model",
        "dmdp",
        "--trace",
        trace.to_str().unwrap(),
        "--sample-every",
        "200",
        "--sample-out",
        samples.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("trace"), "{text}");
    assert!(text.contains("samples"), "{text}");
    assert!(text.contains("scheduler"), "sched-stats line missing: {text}");

    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    assert!(trace_text.lines().count() > 100, "trace suspiciously small");
    for line in trace_text.lines().take(50) {
        let v = dmdp_harness::Json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert!(v.get("seq").is_some() && v.get("kind").is_some(), "{line}");
    }
    let sample_text = std::fs::read_to_string(&samples).expect("samples written");
    let v = dmdp_harness::Json::parse(&sample_text).expect("samples parse");
    let arr = v.as_arr().expect("samples are an array");
    assert!(!arr.is_empty());
    assert!(arr.iter().all(|s| s.get("cycle").is_some() && s.get("ipc").is_some()));
    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&samples).ok();
}

#[test]
fn probe_flag_validation() {
    let out = dmdp(&["run", "--trace-from", "10", "--scale", "test"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--trace"), "{}", stderr(&out));

    let out = dmdp(&["run", "--trace-cycles", "100", "--scale", "test"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--trace"), "{}", stderr(&out));

    let out = dmdp(&["run", "--sample-out", "x.json", "--scale", "test"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--sample-every"), "{}", stderr(&out));

    let out = dmdp(&["run", "--sample-every", "0", "--scale", "test"]);
    assert!(!out.status.success());
}

#[test]
fn report_renders_a_campaign_artifact() {
    let artifact = temp("report.json");
    let out = dmdp(&[
        "campaign",
        "--name",
        "cli-report",
        "--scale",
        "test",
        "--kernel",
        "lib",
        "--kernel",
        "bwaves",
        "--quiet",
        "--out",
        artifact.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let out = dmdp(&["report", artifact.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for section in
        ["campaign `cli-report`", "IPC by workload", "geomean IPC", "scheduler occupancy", "slowest jobs"]
    {
        assert!(text.contains(section), "missing `{section}` in:\n{text}");
    }
    std::fs::remove_file(&artifact).ok();
}

/// Kills the daemon child on panic so a failed assertion can't leak a
/// process holding the socket.
struct KillOnDrop(std::process::Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        self.0.kill().ok();
        self.0.wait().ok();
    }
}

/// The deterministic slice of a `dmdp report` rendering: from the IPC
/// tables through the scheduler-occupancy section. The header and the
/// slowest-jobs table depend on wall-clock and are excluded.
fn deterministic_report(artifact: &std::path::Path) -> String {
    let out = dmdp(&["report", artifact.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    let from = text.find("IPC by workload").expect("IPC section present");
    let to = text.find("slowest jobs").expect("slowest-jobs section present");
    text[from..to].to_string()
}

/// Sorted (digest, cycles, ipc) triples of an artifact's job rows.
fn job_triples(artifact: &std::path::Path) -> Vec<(String, u64, f64)> {
    let text = std::fs::read_to_string(artifact).expect("artifact readable");
    let v = dmdp_harness::Json::parse(&text).expect("artifact parses");
    let mut rows: Vec<(String, u64, f64)> = v
        .get("jobs")
        .and_then(dmdp_harness::Json::as_arr)
        .expect("jobs array")
        .iter()
        .map(|j| {
            (
                j.get("digest").and_then(dmdp_harness::Json::as_str).unwrap().to_string(),
                j.get("cycles").and_then(dmdp_harness::Json::as_u64).unwrap(),
                j.get("ipc").and_then(dmdp_harness::Json::as_f64).unwrap(),
            )
        })
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

#[test]
fn submitted_artifact_matches_a_local_campaign_and_reuses_the_store() {
    let dir = temp("daemon");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("dmdp.sock");
    let store = dir.join("store");
    let local = dir.join("local.json");
    let remote = dir.join("remote.json");
    let remote2 = dir.join("remote2.json");

    // A cold local campaign is the golden reference.
    let spec: &[&str] =
        &["--name", "golden", "--scale", "test", "--kernel", "lib", "--kernel", "hmmer", "--quiet"];
    let out = dmdp(
        &[&["campaign"], spec, &["--force", "--out", local.to_str().unwrap()]].concat(),
    );
    assert!(out.status.success(), "{}", stderr(&out));

    let child = Command::new(env!("CARGO_BIN_EXE_dmdp"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--jobs",
            "2",
        ])
        .current_dir(std::env::temp_dir())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let mut child = KillOnDrop(child);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    while !socket.exists() {
        assert!(std::time::Instant::now() < deadline, "daemon never bound its socket");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // Same sweep through the daemon: the artifact must carry the same
    // digests and numbers and render the same report.
    let submit: &[&str] = &["submit", "--socket", socket.to_str().unwrap()];
    let out = dmdp(&[submit, spec, &["--out", remote.to_str().unwrap()]].concat());
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(job_triples(&local), job_triples(&remote), "daemon results diverge from local");
    assert_eq!(
        deterministic_report(&local),
        deterministic_report(&remote),
        "submitted artifact renders differently"
    );

    // A second identical submission executes nothing — all store hits.
    let out = dmdp(&[submit, spec, &["--out", remote2.to_str().unwrap()]].concat());
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("0 executed, 8 cached"), "{}", stdout(&out));
    assert_eq!(job_triples(&remote), job_triples(&remote2));

    // Graceful stop: the daemon acknowledges, exits cleanly, and removes
    // its socket file.
    let out = dmdp(&[submit, &["--shutdown"]].concat());
    assert!(out.status.success(), "{}", stderr(&out));
    let status = child.0.wait().expect("daemon reaps");
    assert!(status.success(), "daemon exited with {status}");
    assert!(!socket.exists(), "socket file left behind");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_and_top_subcommands_read_a_live_daemon() {
    let dir = temp("obs-cli");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("dmdp.sock");
    let store = dir.join("store");
    let events = dir.join("events.jsonl");
    let artifact = dir.join("sweep.json");

    let child = Command::new(env!("CARGO_BIN_EXE_dmdp"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--jobs",
            "2",
            "--log",
            events.to_str().unwrap(),
            "--log-level",
            "debug",
            "--slow-job-ms",
            "0",
        ])
        .current_dir(std::env::temp_dir())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let mut child = KillOnDrop(child);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    while !socket.exists() {
        assert!(std::time::Instant::now() < deadline, "daemon never bound its socket");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let submit: &[&str] = &["submit", "--socket", socket.to_str().unwrap()];
    let spec: &[&str] = &["--name", "obs-cli", "--scale", "test", "--kernel", "lib", "--quiet"];
    let out = dmdp(&[submit, spec, &["--out", artifact.to_str().unwrap()]].concat());
    assert!(out.status.success(), "{}", stderr(&out));

    // `dmdp metrics` prints the JSON snapshot: parseable, with the
    // daemon's request counters and latency histograms present.
    let out = dmdp(&["metrics", "--socket", socket.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    let v = dmdp_harness::Json::parse(&text).unwrap_or_else(|e| panic!("{e}:\n{text}"));
    let names: Vec<&str> = v
        .get("metrics")
        .and_then(dmdp_harness::Json::as_arr)
        .expect("metrics array")
        .iter()
        .filter_map(|m| m.get("name").and_then(dmdp_harness::Json::as_str))
        .collect();
    for want in ["dmdp_requests_total", "dmdp_jobs_total", "dmdp_queue_wait_us"] {
        assert!(names.contains(&want), "missing `{want}` in {names:?}");
    }

    // `dmdp metrics --prom` scrapes the HTTP endpoint over the same
    // unix socket and prints Prometheus text.
    let out = dmdp(&["metrics", "--prom", "--socket", socket.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let prom = stdout(&out);
    assert!(prom.contains("# TYPE dmdp_requests_total counter"), "{prom}");
    assert!(prom.contains("# TYPE dmdp_queue_wait_us histogram"), "{prom}");
    assert!(prom.contains("dmdp_jobs_total{source=\"executed\"}"), "{prom}");

    // `dmdp top` renders two frames and exits; the second frame carries
    // rates computed against the first.
    let out = dmdp(&[
        "top",
        "--socket",
        socket.to_str().unwrap(),
        "--iterations",
        "2",
        "--interval",
        "0.1",
        "--no-clear",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let top = stdout(&out);
    for section in ["dmdp top — frame 2", "COUNTERS", "GAUGES", "HISTOGRAMS", "/s"] {
        assert!(top.contains(section), "missing `{section}` in:\n{top}");
    }

    // The artifact's trace id appears in the daemon's event log, tying
    // the submitted sweep to its structured trace — and with
    // --slow-job-ms 0, every executed job logs a slow_job event.
    let text = std::fs::read_to_string(&artifact).expect("artifact readable");
    let trace = dmdp_harness::Json::parse(&text)
        .expect("artifact parses")
        .get("trace_id")
        .and_then(dmdp_harness::Json::as_str)
        .expect("artifact carries trace_id")
        .to_string();
    let log = std::fs::read_to_string(&events).expect("event log written");
    assert!(
        log.lines().any(|l| l.contains("submit_done") && l.contains(&trace)),
        "trace {trace} missing from event log:\n{log}"
    );
    assert!(log.contains("slow_job"), "no slow_job event despite --slow-job-ms 0:\n{log}");

    let out = dmdp(&[submit, &["--shutdown"]].concat());
    assert!(out.status.success(), "{}", stderr(&out));
    child.0.wait().expect("daemon reaps");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sampled_campaign_and_error_report_round_trip() {
    let full = temp("err-full.json");
    let sampled = temp("err-sampled.json");
    let base: &[&str] = &["--scale", "test", "--kernel", "mcf", "--model", "dmdp", "--quiet"];

    let out = dmdp(
        &[&["campaign", "--name", "full"], base, &["--force", "--out", full.to_str().unwrap()]]
            .concat(),
    );
    assert!(out.status.success(), "{}", stderr(&out));
    let out = dmdp(
        &[
            &["campaign", "--name", "sampled", "--interval-insns", "1000", "--warmup-intervals", "2"],
            base,
            &["--force", "--out", sampled.to_str().unwrap()],
        ]
        .concat(),
    );
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("sampled (1000 insns × 2 warmup)"),
        "{}",
        stdout(&out)
    );

    // The plain report names the sampling; the comparison renders a
    // table, and --json emits the machine-readable shape CI checks.
    let out = dmdp(&["report", sampled.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("sampled: 1000 insn intervals"), "{}", stdout(&out));
    let out =
        dmdp(&["report", sampled.to_str().unwrap(), "--error-vs", full.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("geomean |error|"), "{}", stdout(&out));
    let out = dmdp(&[
        "report",
        sampled.to_str().unwrap(),
        "--error-vs",
        full.to_str().unwrap(),
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    let v = dmdp_harness::Json::parse(&text).unwrap_or_else(|e| panic!("{e}:\n{text}"));
    assert_eq!(v.get("rows_compared").and_then(dmdp_harness::Json::as_u64), Some(1));
    let err = v.get("geomean_abs_error_pct").and_then(dmdp_harness::Json::as_f64).unwrap();
    assert!(err <= 2.0, "sampled error {err}% above the 2% budget:\n{text}");

    // Comparing a full artifact against itself is a clean error.
    let out = dmdp(&["report", full.to_str().unwrap(), "--error-vs", full.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("no sampled rows"), "{}", stderr(&out));
    std::fs::remove_file(&full).ok();
    std::fs::remove_file(&sampled).ok();
}

#[test]
fn submit_without_a_daemon_fails_cleanly() {
    let socket = temp("no-daemon.sock");
    std::fs::remove_file(&socket).ok();
    let out = dmdp(&["submit", "--socket", socket.to_str().unwrap(), "--ping"]);
    assert!(!out.status.success(), "ping with no daemon must fail");
    assert!(stderr(&out).contains("no-daemon.sock"), "{}", stderr(&out));
}

#[test]
fn report_fails_on_missing_or_malformed_artifact() {
    let out = dmdp(&["report", "definitely-not-here.json"]);
    assert!(!out.status.success());

    let bad = temp("bad.json");
    std::fs::write(&bad, "{\"schema\": 99}").unwrap();
    let out = dmdp(&["report", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("schema"), "{}", stderr(&out));
    std::fs::remove_file(&bad).ok();
}

/// Events from a daemon JSONL log with a given `event` value.
fn events_named(log: &std::path::Path, name: &str) -> Vec<dmdp_harness::Json> {
    std::fs::read_to_string(log)
        .unwrap_or_default()
        .lines()
        .filter_map(|l| dmdp_harness::Json::parse(l).ok())
        .filter(|v| v.get("event").and_then(dmdp_harness::Json::as_str) == Some(name))
        .collect()
}

/// True while `pid` names a live process.
fn pid_alive(pid: u64) -> bool {
    std::process::Command::new("kill")
        .args(["-0", &pid.to_string()])
        .stderr(std::process::Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

#[test]
fn sharded_serve_matches_single_process_artifacts() {
    let dir = temp("sharded");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("dmdp.sock");
    let events = dir.join("events.jsonl");
    let local = dir.join("local.json");
    let remote = dir.join("remote.json");
    let remote2 = dir.join("remote2.json");

    // Golden reference: the same sweep fully in-process.
    let spec: &[&str] =
        &["--name", "sharded", "--scale", "test", "--kernel", "lib", "--kernel", "hmmer", "--quiet"];
    let out = dmdp(&[&["campaign"], spec, &["--force", "--out", local.to_str().unwrap()]].concat());
    assert!(out.status.success(), "{}", stderr(&out));

    // A coordinator with two spawned worker shards (--tcp implied).
    let child = Command::new(env!("CARGO_BIN_EXE_dmdp"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--store",
            dir.join("store").to_str().unwrap(),
            "--jobs",
            "2",
            "--workers",
            "2",
            "--log",
            events.to_str().unwrap(),
            "--log-level",
            "debug",
        ])
        .current_dir(std::env::temp_dir())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("coordinator spawns");
    let mut child = KillOnDrop(child);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while events_named(&events, "worker_registered").len() < 2 {
        assert!(std::time::Instant::now() < deadline, "workers never registered");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // The submitted artifact must be byte-equal on digests and numbers.
    let submit: &[&str] =
        &["submit", "--socket", socket.to_str().unwrap(), "--connect-retries", "5"];
    let out = dmdp(&[submit, spec, &["--out", remote.to_str().unwrap()]].concat());
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(job_triples(&local), job_triples(&remote), "sharded results diverge from local");
    assert_eq!(deterministic_report(&local), deterministic_report(&remote));

    // Work actually went through the shards, and the repeat is all
    // store hits.
    assert!(!events_named(&events, "dispatch").is_empty(), "no groups were dispatched");
    let out = dmdp(&[submit, spec, &["--out", remote2.to_str().unwrap()]].concat());
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("0 executed, 8 cached"), "{}", stdout(&out));
    assert_eq!(job_triples(&remote), job_triples(&remote2));

    // Shutdown drains the workers too: clean exit, no orphans.
    let worker_pids: Vec<u64> = events_named(&events, "worker_spawned")
        .iter()
        .filter_map(|v| v.get("pid").and_then(dmdp_harness::Json::as_u64))
        .collect();
    assert_eq!(worker_pids.len(), 2, "two workers were spawned");
    let out = dmdp(&[submit, &["--shutdown"]].concat());
    assert!(out.status.success(), "{}", stderr(&out));
    let status = child.0.wait().expect("coordinator reaps");
    assert!(status.success(), "coordinator exited with {status}");
    for pid in worker_pids {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while pid_alive(pid) {
            assert!(std::time::Instant::now() < deadline, "worker {pid} left running");
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_worker_mid_campaign_loses_no_jobs() {
    let dir = temp("crash");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("dmdp.sock");
    let events = dir.join("events.jsonl");
    let local = dir.join("local.json");
    let remote = dir.join("remote.json");

    let spec: &[&str] = &["--name", "crash", "--scale", "test", "--model", "dmdp", "--quiet"];
    let out = dmdp(&[&["campaign"], spec, &["--force", "--out", local.to_str().unwrap()]].concat());
    assert!(out.status.success(), "{}", stderr(&out));

    let child = Command::new(env!("CARGO_BIN_EXE_dmdp"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--store",
            dir.join("store").to_str().unwrap(),
            "--jobs",
            "2",
            "--workers",
            "2",
            "--log",
            events.to_str().unwrap(),
            "--log-level",
            "debug",
        ])
        .current_dir(std::env::temp_dir())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("coordinator spawns");
    let mut child = KillOnDrop(child);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while events_named(&events, "worker_registered").len() < 2 {
        assert!(std::time::Instant::now() < deadline, "workers never registered");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // Submit the full 21-kernel sweep in the background, and SIGKILL the
    // worker holding the first dispatched group as soon as it appears.
    let submit_child = Command::new(env!("CARGO_BIN_EXE_dmdp"))
        .args(
            [
                &["submit", "--socket", socket.to_str().unwrap()],
                spec,
                &["--out", remote.to_str().unwrap()],
            ]
            .concat(),
        )
        .current_dir(std::env::temp_dir())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("submit spawns");

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let victim_name = loop {
        if let Some(d) = events_named(&events, "dispatch").first() {
            break d.get("worker").and_then(dmdp_harness::Json::as_str).unwrap().to_string();
        }
        assert!(std::time::Instant::now() < deadline, "no dispatch before the deadline");
        std::thread::sleep(std::time::Duration::from_millis(2));
    };
    let victim_pid = events_named(&events, "worker_spawned")
        .iter()
        .find(|v| v.get("name").and_then(dmdp_harness::Json::as_str) == Some(victim_name.as_str()))
        .and_then(|v| v.get("pid").and_then(dmdp_harness::Json::as_u64))
        .expect("victim's spawn event carries its pid");
    std::process::Command::new("kill")
        .args(["-9", &victim_pid.to_string()])
        .status()
        .expect("kill runs");

    // The submit still completes, with every job accounted for exactly
    // once and digits identical to the single-process golden run.
    let out = submit_child.wait_with_output().expect("submit finishes");
    assert!(
        out.status.success(),
        "submit failed after worker crash: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(job_triples(&local), job_triples(&remote), "crash recovery changed results");
    let text = std::fs::read_to_string(&remote).unwrap();
    let v = dmdp_harness::Json::parse(&text).unwrap();
    let jobs = v.get("jobs").and_then(dmdp_harness::Json::as_arr).unwrap();
    assert_eq!(jobs.len(), 21);
    let mut digests: Vec<&str> = jobs
        .iter()
        .map(|j| j.get("digest").and_then(dmdp_harness::Json::as_str).unwrap())
        .collect();
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), 21, "a digest landed twice");

    // The coordinator noticed the death and kept serving on the
    // remaining shard (or in-process). (The victim stays a zombie until
    // the coordinator reaps it at shutdown, so no liveness probe here.)
    let lost = events_named(&events, "worker_lost").len()
        + events_named(&events, "worker_gone").len();
    assert!(lost >= 1, "the coordinator never noticed the dead worker");

    let out = dmdp(&["submit", "--socket", socket.to_str().unwrap(), "--shutdown"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let status = child.0.wait().expect("coordinator reaps");
    assert!(status.success(), "coordinator exited with {status}");
    std::fs::remove_dir_all(&dir).ok();
}
