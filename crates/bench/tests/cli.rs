//! End-to-end tests of the `dmdp` binary: probe flags, the `report`
//! subcommand, and the unknown-workload diagnostics — all via
//! `CARGO_BIN_EXE_dmdp`, so they exercise exactly what a user runs.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dmdp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dmdp"))
        .args(args)
        .current_dir(std::env::temp_dir())
        .output()
        .expect("dmdp binary runs")
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dmdp-cli-{}-{name}", std::process::id()))
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn run_rejects_unknown_workload_listing_kernels() {
    let out = dmdp(&["run", "--workload", "nonesuch", "--scale", "test"]);
    assert!(!out.status.success(), "unknown workload must fail");
    let err = stderr(&out);
    assert!(err.contains("unknown workload `nonesuch`"), "{err}");
    assert!(err.contains("valid kernels"), "{err}");
    for name in ["bzip2", "mcf", "sphinx3"] {
        assert!(err.contains(name), "missing `{name}` in: {err}");
    }
}

#[test]
fn campaign_rejects_unknown_kernel_listing_kernels() {
    let out = dmdp(&["campaign", "--kernel", "nonesuch", "--scale", "test", "--quiet"]);
    assert!(!out.status.success(), "unknown kernel must fail");
    let err = stderr(&out);
    assert!(err.contains("unknown workload `nonesuch`"), "{err}");
    assert!(err.contains("valid kernels"), "{err}");
    assert!(err.contains("bzip2"), "{err}");
}

#[test]
fn traced_and_sampled_run_writes_wellformed_artifacts() {
    let trace = temp("trace.jsonl");
    let samples = temp("samples.json");
    let out = dmdp(&[
        "run",
        "--workload",
        "gcc",
        "--scale",
        "test",
        "--model",
        "dmdp",
        "--trace",
        trace.to_str().unwrap(),
        "--sample-every",
        "200",
        "--sample-out",
        samples.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("trace"), "{text}");
    assert!(text.contains("samples"), "{text}");
    assert!(text.contains("scheduler"), "sched-stats line missing: {text}");

    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    assert!(trace_text.lines().count() > 100, "trace suspiciously small");
    for line in trace_text.lines().take(50) {
        let v = dmdp_harness::Json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert!(v.get("seq").is_some() && v.get("kind").is_some(), "{line}");
    }
    let sample_text = std::fs::read_to_string(&samples).expect("samples written");
    let v = dmdp_harness::Json::parse(&sample_text).expect("samples parse");
    let arr = v.as_arr().expect("samples are an array");
    assert!(!arr.is_empty());
    assert!(arr.iter().all(|s| s.get("cycle").is_some() && s.get("ipc").is_some()));
    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&samples).ok();
}

#[test]
fn probe_flag_validation() {
    let out = dmdp(&["run", "--trace-from", "10", "--scale", "test"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--trace"), "{}", stderr(&out));

    let out = dmdp(&["run", "--trace-cycles", "100", "--scale", "test"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--trace"), "{}", stderr(&out));

    let out = dmdp(&["run", "--sample-out", "x.json", "--scale", "test"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--sample-every"), "{}", stderr(&out));

    let out = dmdp(&["run", "--sample-every", "0", "--scale", "test"]);
    assert!(!out.status.success());
}

#[test]
fn report_renders_a_campaign_artifact() {
    let artifact = temp("report.json");
    let out = dmdp(&[
        "campaign",
        "--name",
        "cli-report",
        "--scale",
        "test",
        "--kernel",
        "lib",
        "--kernel",
        "bwaves",
        "--quiet",
        "--out",
        artifact.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let out = dmdp(&["report", artifact.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for section in
        ["campaign `cli-report`", "IPC by workload", "geomean IPC", "scheduler occupancy", "slowest jobs"]
    {
        assert!(text.contains(section), "missing `{section}` in:\n{text}");
    }
    std::fs::remove_file(&artifact).ok();
}

#[test]
fn report_fails_on_missing_or_malformed_artifact() {
    let out = dmdp(&["report", "definitely-not-here.json"]);
    assert!(!out.status.success());

    let bad = temp("bad.json");
    std::fs::write(&bad, "{\"schema\": 99}").unwrap();
    let out = dmdp(&["report", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("schema"), "{}", stderr(&out));
    std::fs::remove_file(&bad).ok();
}
