//! §VI-g: relaxed memory order. Stores commit out of order; SRB entries
//! invalidate at commit. Paper: DMDP surpasses NoSQ by 7.67% Int /
//! 4.08% FP under RMO.

use dmdp_bench::{header, run_cfg, suite_geomeans, workloads};
use dmdp_core::{CommModel, CoreConfig};
use dmdp_mem::Consistency;
use dmdp_stats::Table;

fn main() {
    header("alt-rmo", "§VI-g — RMO consistency: DMDP speedup over NoSQ");
    let mut t = Table::new(["bench", "tso dmdp/nosq", "rmo dmdp/nosq"]);
    let mut tso = Vec::new();
    let mut rmo = Vec::new();
    for w in workloads() {
        let mut ratio = [0.0f64; 2];
        for (i, consistency) in [Consistency::Tso, Consistency::Rmo].into_iter().enumerate() {
            let nosq =
                run_cfg(CoreConfig { consistency, ..CoreConfig::new(CommModel::NoSq) }, &w);
            let dmdp =
                run_cfg(CoreConfig { consistency, ..CoreConfig::new(CommModel::Dmdp) }, &w);
            ratio[i] = dmdp.ipc() / nosq.ipc();
        }
        tso.push((w.name.to_string(), w.suite, ratio[0]));
        rmo.push((w.name.to_string(), w.suite, ratio[1]));
        t.row([
            w.name.to_string(),
            format!("{:.3}", ratio[0]),
            format!("{:.3}", ratio[1]),
        ]);
    }
    println!("{t}");
    let (a, b) = suite_geomeans(&tso);
    let (c, d) = suite_geomeans(&rmo);
    println!("geomean dmdp/nosq @TSO: Int {a:.3}  FP {b:.3}  (paper +7.17% / +4.48%)");
    println!("geomean dmdp/nosq @RMO: Int {c:.3}  FP {d:.3}  (paper +7.67% / +4.08%)");
}
