//! §VI-g: 4-issue machine. The DMDP-over-NoSQ gain shrinks (paper:
//! 4.56% Int, 2.41% FP) because a narrower window exposes fewer
//! in-flight store-load communications.

use dmdp_bench::{header, run_cfg, suite_geomeans, workloads};
use dmdp_core::{CommModel, CoreConfig};
use dmdp_stats::Table;

fn main() {
    header("alt-issue", "§VI-g — 4-issue width: DMDP speedup over NoSQ");
    let mut t = Table::new(["bench", "w8 dmdp/nosq", "w4 dmdp/nosq"]);
    let mut w8 = Vec::new();
    let mut w4 = Vec::new();
    for w in workloads() {
        let mut ratio = [0.0f64; 2];
        for (i, width) in [8usize, 4].into_iter().enumerate() {
            let nosq = run_cfg(
                CoreConfig { width, ..CoreConfig::new(CommModel::NoSq) },
                &w,
            );
            let dmdp = run_cfg(
                CoreConfig { width, ..CoreConfig::new(CommModel::Dmdp) },
                &w,
            );
            ratio[i] = dmdp.ipc() / nosq.ipc();
        }
        w8.push((w.name.to_string(), w.suite, ratio[0]));
        w4.push((w.name.to_string(), w.suite, ratio[1]));
        t.row([
            w.name.to_string(),
            format!("{:.3}", ratio[0]),
            format!("{:.3}", ratio[1]),
        ]);
    }
    println!("{t}");
    let (i8_, f8_) = suite_geomeans(&w8);
    let (i4_, f4_) = suite_geomeans(&w4);
    println!("geomean dmdp/nosq @8-wide: Int {i8_:.3}  FP {f8_:.3}  (paper +7.17% / +4.48%)");
    println!("geomean dmdp/nosq @4-wide: Int {i4_:.3}  FP {f4_:.3}  (paper +4.56% / +2.41%)");
}
