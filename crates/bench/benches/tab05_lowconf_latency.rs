//! Table V: average execution time of low-confidence loads, NoSQ vs
//! DMDP. Paper: DMDP saves up to 79.25%, average 54.48%.

use dmdp_bench::{header, run, workloads};
use dmdp_core::CommModel;
use dmdp_stats::Table;

fn main() {
    header("tab05", "Table V — execution time of low-confidence loads");
    let mut t = Table::new(["bench", "nosq(cyc)", "dmdp(cyc)", "saved%", "n-lowconf"]);
    let mut savings = Vec::new();
    for w in workloads() {
        let nq = run(CommModel::NoSq, &w);
        let dm = run(CommModel::Dmdp, &w);
        let n = nq.stats.lowconf_latency.overall_mean();
        let d = dm.stats.lowconf_latency.overall_mean();
        let count = nq.stats.lowconf_latency.total();
        let saved = if n > 0.0 && d > 0.0 && count > 10 {
            let s = 100.0 * (1.0 - d / n);
            savings.push(s);
            format!("{s:.1}")
        } else {
            "n/a".to_string()
        };
        t.row([
            w.name.to_string(),
            format!("{n:.1}"),
            format!("{d:.1}"),
            saved,
            count.to_string(),
        ]);
    }
    println!("{t}");
    if !savings.is_empty() {
        println!(
            "mean saving over kernels with low-confidence loads: {:.1}% (paper avg 54.48%, max 79.25%)",
            savings.iter().sum::<f64>() / savings.len() as f64
        );
    }
}
