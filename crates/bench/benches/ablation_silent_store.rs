//! §IV-C a ablation: the silent-store-aware predictor update (train on
//! every re-execution) vs the original exception-only policy. The paper
//! discusses hmmer as the benchmark where this matters most (§VI-a).

use dmdp_bench::{header, run_cfg, workloads};
use dmdp_core::{CommModel, CoreConfig};
use dmdp_stats::Table;

fn main() {
    header("ablat-silent", "§IV-C a — silent-store-aware predictor update");
    let mut t = Table::new([
        "bench",
        "model",
        "aware-IPC",
        "naive-IPC",
        "aware-reexec/ki",
        "naive-reexec/ki",
    ]);
    for w in workloads() {
        for model in [CommModel::NoSq, CommModel::Dmdp] {
            let aware = run_cfg(CoreConfig::new(model), &w);
            let naive = run_cfg(
                CoreConfig { silent_store_update: false, ..CoreConfig::new(model) },
                &w,
            );
            let ki = |r: &dmdp_core::SimReport| {
                dmdp_stats::mpki(r.stats.reexecutions, r.stats.retired_insns)
            };
            t.row([
                w.name.to_string(),
                model.name().to_string(),
                format!("{:.3}", aware.ipc()),
                format!("{:.3}", naive.ipc()),
                format!("{:.2}", ki(&aware)),
                format!("{:.2}", ki(&naive)),
            ]);
        }
    }
    println!("{t}");
    println!("shape: the aware policy removes repeated silent-store re-executions (paper Fig. 10).");
}
