//! Table VI: memory dependence mispredictions per kilo-instruction,
//! NoSQ vs DMDP. Paper shape: DMDP usually lower (biased confidence),
//! except drifting-distance kernels like bzip2 where NoSQ's delaying
//! covers older-store mispredictions.
//!
//! Rows come from a parallel `dmdp-harness` campaign (digest-cached in
//! `bench-results/`) instead of a private serial loop.

use dmdp_bench::{campaign_models, header, workloads};
use dmdp_core::CommModel;
use dmdp_stats::Table;

fn main() {
    header("tab06", "Table VI — memory dependence mispredictions (MPKI)");
    let campaign = campaign_models("tab06", [CommModel::NoSq, CommModel::Dmdp]);
    let mut t = Table::new(["bench", "nosq", "dmdp"]);
    for w in workloads() {
        let n = campaign.get(w.name, CommModel::NoSq).expect("nosq row").mem_dep_mpki;
        let d = campaign.get(w.name, CommModel::Dmdp).expect("dmdp row").mem_dep_mpki;
        t.row([w.name.to_string(), format!("{n:.2}"), format!("{d:.2}")]);
    }
    println!("{t}");
    println!("paper reference points: hmmer NoSQ 3.06 vs DMDP 1.03; bzip2 has DMDP ~2x NoSQ.");
}
