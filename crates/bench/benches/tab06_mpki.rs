//! Table VI: memory dependence mispredictions per kilo-instruction,
//! NoSQ vs DMDP. Paper shape: DMDP usually lower (biased confidence),
//! except drifting-distance kernels like bzip2 where NoSQ's delaying
//! covers older-store mispredictions.

use dmdp_bench::{header, run, workloads};
use dmdp_core::CommModel;
use dmdp_stats::Table;

fn main() {
    header("tab06", "Table VI — memory dependence mispredictions (MPKI)");
    let mut t = Table::new(["bench", "nosq", "dmdp"]);
    for w in workloads() {
        let n = run(CommModel::NoSq, &w).stats.mem_dep_mpki();
        let d = run(CommModel::Dmdp, &w).stats.mem_dep_mpki();
        t.row([w.name.to_string(), format!("{n:.2}"), format!("{d:.2}")]);
    }
    println!("{t}");
    println!("paper reference points: hmmer NoSQ 3.06 vs DMDP 1.03; bzip2 has DMDP ~2x NoSQ.");
}
