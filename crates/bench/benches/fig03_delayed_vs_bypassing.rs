//! Figure 3: log2 ratio of mean Delayed-access to Bypassing load
//! execution time under NoSQ (positive = delayed loads are slower).

use dmdp_bench::{header, run, workloads};
use dmdp_core::CommModel;
use dmdp_stats::{LoadSource, Table};

fn main() {
    header("fig03", "Figure 3 — delayed vs bypassing load execution time (NoSQ)");
    let mut t = Table::new(["bench", "delayed(cyc)", "bypassing(cyc)", "log2 ratio"]);
    let mut del_all = 0.0f64;
    let mut byp_all = 0.0f64;
    let mut n = 0u32;
    for w in workloads() {
        let r = run(CommModel::NoSq, &w);
        let ll = &r.stats.load_latency;
        let d = ll.mean_latency(LoadSource::Delayed);
        let b = ll.mean_latency(LoadSource::Bypassed);
        let ratio = if d > 0.0 && b > 0.0 {
            format!("{:+.2}", (d / b).log2())
        } else {
            "n/a".to_string()
        };
        if d > 0.0 && b > 0.0 {
            del_all += d;
            byp_all += b;
            n += 1;
        }
        t.row([w.name.to_string(), format!("{d:.1}"), format!("{b:.1}"), ratio]);
    }
    println!("{t}");
    if n > 0 {
        println!(
            "mean over kernels with both classes: delayed/bypassing = {:.1}x (paper: ~7x)",
            (del_all / n as f64) / (byp_all / n as f64).max(1.0)
        );
    }
}
