//! Figure 15: energy-delay product of DMDP normalized to NoSQ.
//! Paper: DMDP saves 8.5% (Int) and 5.1% (FP) EDP despite executing
//! extra predication micro-ops.

use dmdp_bench::{header, run, suite_geomeans, workloads};
use dmdp_core::CommModel;
use dmdp_stats::Table;

fn main() {
    header("fig15", "Figure 15 — EDP of DMDP normalized to NoSQ");
    let mut t = Table::new(["bench", "energy-ratio", "cycle-ratio", "edp-ratio"]);
    let mut rows = Vec::new();
    for w in workloads() {
        let n = run(CommModel::NoSq, &w);
        let d = run(CommModel::Dmdp, &w);
        let e = d.stats.energy.total_nj() / n.stats.energy.total_nj();
        let c = d.stats.cycles as f64 / n.stats.cycles as f64;
        let edp = d.stats.edp() / n.stats.edp();
        rows.push((w.name.to_string(), w.suite, edp));
        t.row([
            w.name.to_string(),
            format!("{e:.3}"),
            format!("{c:.3}"),
            format!("{edp:.3}"),
        ]);
    }
    println!("{t}");
    let (int, fp) = suite_geomeans(&rows);
    println!("EDP geomean (dmdp/nosq): Int {int:.3}  FP {fp:.3}  (paper 0.915 / 0.949)");
    println!("shape: slight energy increase from predication uops, outweighed by shorter execution.");
}
