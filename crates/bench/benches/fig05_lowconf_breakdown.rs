//! Figure 5: dependence prediction outcomes over low-confidence loads —
//! IndepStore / DiffStore / Correct (measured on the NoSQ machine).

use dmdp_bench::{header, run, workloads};
use dmdp_core::CommModel;
use dmdp_stats::Table;

fn main() {
    header("fig05", "Figure 5 — low-confidence prediction outcomes (NoSQ)");
    let mut t = Table::new(["bench", "indep%", "diff%", "correct%", "lowconf-loads"]);
    let mut tot = [0u64; 3];
    for w in workloads() {
        let r = run(CommModel::NoSq, &w);
        let b = r.stats.lowconf;
        let total = b.total().max(1);
        tot[0] += b.indep_store;
        tot[1] += b.diff_store;
        tot[2] += b.correct;
        t.row([
            w.name.to_string(),
            format!("{:.1}", 100.0 * b.indep_store as f64 / total as f64),
            format!("{:.1}", 100.0 * b.diff_store as f64 / total as f64),
            format!("{:.1}", 100.0 * b.correct as f64 / total as f64),
            b.total().to_string(),
        ]);
    }
    println!("{t}");
    let all = (tot[0] + tot[1] + tot[2]).max(1) as f64;
    println!(
        "suite: indep {:.1}%  diff {:.1}%  correct {:.1}%  (paper: IndepStore dominates; naive-independent mispredict 11.4%, DMDP 3.7%)",
        100.0 * tot[0] as f64 / all,
        100.0 * tot[1] as f64 / all,
        100.0 * tot[2] as f64 / all
    );
}
