//! Table VII: retire-stall cycles per 1000 committed instructions caused
//! by load re-execution, NoSQ vs DMDP. Paper shape: DMDP stalls more
//! (its loads execute earlier, widening the vulnerability window); lbm
//! is the worst case.

use dmdp_bench::{header, run, workloads};
use dmdp_core::CommModel;
use dmdp_stats::Table;

fn main() {
    header("tab07", "Table VII — re-execution stall cycles per kilo-instruction");
    let mut t = Table::new(["bench", "nosq", "dmdp"]);
    for w in workloads() {
        let n = run(CommModel::NoSq, &w).stats.reexec_stalls_per_ki();
        let d = run(CommModel::Dmdp, &w).stats.reexec_stalls_per_ki();
        t.row([w.name.to_string(), format!("{n:.1}"), format!("{d:.1}")]);
    }
    println!("{t}");
}
