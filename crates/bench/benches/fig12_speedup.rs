//! Figure 12: IPC of NoSQ, DMDP and Perfect normalized to the baseline
//! store-queue machine. Paper geomeans: Int 0.975 / 1.045 / 1.068,
//! FP 1.008 / 1.053 / 1.066.
//!
//! Rows come from a parallel campaign run through `dmdp-harness` — all
//! 21 kernels × 4 models fan out across the host's cores, and repeated
//! runs reuse the digest-cached artifact in `bench-results/`.

use dmdp_bench::{campaign_all_models, header};
use dmdp_core::CommModel;
use dmdp_stats::Table;
use dmdp_workloads::Suite;

fn main() {
    header("fig12", "Figure 12 — SPEC 2006 speedup over the baseline");
    let campaign = campaign_all_models("fig12");
    let mut t = Table::new(["bench", "base-IPC", "nosq", "dmdp", "perfect"]);
    for w in dmdp_bench::workloads() {
        let base = campaign.get(w.name, CommModel::Baseline).expect("baseline row").ipc;
        let rel = |m| campaign.get(w.name, m).expect("model row").ipc / base;
        t.row([
            w.name.to_string(),
            format!("{base:.3}"),
            format!("{:.3}", rel(CommModel::NoSq)),
            format!("{:.3}", rel(CommModel::Dmdp)),
            format!("{:.3}", rel(CommModel::Perfect)),
        ]);
    }
    println!("{t}");
    for model in [CommModel::NoSq, CommModel::Dmdp, CommModel::Perfect] {
        let int = campaign.geomean_speedup(CommModel::Baseline, model, Suite::Int).unwrap();
        let fp = campaign.geomean_speedup(CommModel::Baseline, model, Suite::Fp).unwrap();
        println!("{:8} geomean: Int {int:.3}  FP {fp:.3}", model.name());
    }
    println!("paper    geomean: Int 0.975/1.045/1.068  FP 1.008/1.053/1.066 (nosq/dmdp/perfect)");
}
