//! Figure 12: IPC of NoSQ, DMDP and Perfect normalized to the baseline
//! store-queue machine. Paper geomeans: Int 0.975 / 1.045 / 1.068,
//! FP 1.008 / 1.053 / 1.066.

use dmdp_bench::{header, run, suite_geomeans, workloads};
use dmdp_core::CommModel;
use dmdp_stats::Table;

fn main() {
    header("fig12", "Figure 12 — SPEC 2006 speedup over the baseline");
    let mut t = Table::new(["bench", "base-IPC", "nosq", "dmdp", "perfect"]);
    let mut rows = [Vec::new(), Vec::new(), Vec::new()];
    for w in workloads() {
        let base = run(CommModel::Baseline, &w).ipc();
        let vals = [
            run(CommModel::NoSq, &w).ipc() / base,
            run(CommModel::Dmdp, &w).ipc() / base,
            run(CommModel::Perfect, &w).ipc() / base,
        ];
        for (i, v) in vals.iter().enumerate() {
            rows[i].push((w.name.to_string(), w.suite, *v));
        }
        t.row([
            w.name.to_string(),
            format!("{base:.3}"),
            format!("{:.3}", vals[0]),
            format!("{:.3}", vals[1]),
            format!("{:.3}", vals[2]),
        ]);
    }
    println!("{t}");
    for (label, r) in [("nosq", &rows[0]), ("dmdp", &rows[1]), ("perfect", &rows[2])] {
        let (int, fp) = suite_geomeans(r);
        println!("{label:8} geomean: Int {int:.3}  FP {fp:.3}");
    }
    println!("paper    geomean: Int 0.975/1.045/1.068  FP 1.008/1.053/1.066 (nosq/dmdp/perfect)");
}
