//! §VI-g: 512-entry ROB. A larger window bridges longer store-load
//! distances, growing DMDP's gain (paper: 7.56% Int, 6.35% FP).

use dmdp_bench::{header, run_cfg, suite_geomeans, workloads};
use dmdp_core::{CommModel, CoreConfig};
use dmdp_stats::Table;

fn main() {
    header("alt-rob", "§VI-g — 512-entry ROB: DMDP speedup over NoSQ");
    let mut t = Table::new(["bench", "rob256 dmdp/nosq", "rob512 dmdp/nosq"]);
    let mut r256 = Vec::new();
    let mut r512 = Vec::new();
    for w in workloads() {
        let mut ratio = [0.0f64; 2];
        for (i, rob) in [256usize, 512].into_iter().enumerate() {
            // Scale the PRF with the ROB so renaming is not starved.
            let prf = if rob == 512 { 640 } else { 320 };
            let nosq = run_cfg(
                CoreConfig { rob_entries: rob, phys_regs: prf, ..CoreConfig::new(CommModel::NoSq) },
                &w,
            );
            let dmdp = run_cfg(
                CoreConfig { rob_entries: rob, phys_regs: prf, ..CoreConfig::new(CommModel::Dmdp) },
                &w,
            );
            ratio[i] = dmdp.ipc() / nosq.ipc();
        }
        r256.push((w.name.to_string(), w.suite, ratio[0]));
        r512.push((w.name.to_string(), w.suite, ratio[1]));
        t.row([
            w.name.to_string(),
            format!("{:.3}", ratio[0]),
            format!("{:.3}", ratio[1]),
        ]);
    }
    println!("{t}");
    let (a, b) = suite_geomeans(&r256);
    let (c, d) = suite_geomeans(&r512);
    println!("geomean dmdp/nosq @rob256: Int {a:.3}  FP {b:.3}");
    println!("geomean dmdp/nosq @rob512: Int {c:.3}  FP {d:.3}  (paper +7.56% / +6.35%)");
}
