//! Table IV: average execution time of all loads (cycles between rename
//! and the result becoming available), baseline vs DMDP.
//! Paper average: 39.31 -> 31.15 cycles (DMDP saves >20%).
//!
//! Rows come from a parallel `dmdp-harness` campaign (digest-cached in
//! `bench-results/`) instead of a private serial loop.

use dmdp_bench::{campaign_models, header, workloads};
use dmdp_core::CommModel;
use dmdp_stats::Table;

fn main() {
    header("tab04", "Table IV — average execution time of all loads");
    let campaign = campaign_models("tab04", [CommModel::Baseline, CommModel::Dmdp]);
    let mut t = Table::new(["bench", "baseline(cyc)", "dmdp(cyc)", "saved%"]);
    let mut b_sum = 0.0;
    let mut d_sum = 0.0;
    let mut n = 0.0;
    for w in workloads() {
        let b = campaign.get(w.name, CommModel::Baseline).expect("baseline row").load_mean_latency;
        let d = campaign.get(w.name, CommModel::Dmdp).expect("dmdp row").load_mean_latency;
        b_sum += b;
        d_sum += d;
        n += 1.0;
        t.row([
            w.name.to_string(),
            format!("{b:.2}"),
            format!("{d:.2}"),
            format!("{:.1}", 100.0 * (1.0 - d / b.max(1e-9))),
        ]);
    }
    println!("{t}");
    println!(
        "average: baseline {:.2} -> dmdp {:.2} cycles ({:.1}% saved; paper: 39.31 -> 31.15, >20% saved)",
        b_sum / n,
        d_sum / n,
        100.0 * (1.0 - (d_sum / n) / (b_sum / n))
    );
}
