//! Figure 2: how loads get their values under NoSQ — Direct access,
//! Bypassing (memory cloaking), Delayed access.

use dmdp_bench::{header, run, workloads};
use dmdp_core::CommModel;
use dmdp_stats::{LoadSource, Table};

fn main() {
    header("fig02", "Figure 2 — load instruction distribution under NoSQ");
    let mut t = Table::new(["bench", "direct%", "bypassing%", "delayed%"]);
    for w in workloads() {
        let r = run(CommModel::NoSq, &w);
        let ll = &r.stats.load_latency;
        t.row([
            w.name.to_string(),
            format!("{:.1}", 100.0 * ll.fraction(LoadSource::Direct)),
            format!("{:.1}", 100.0 * ll.fraction(LoadSource::Bypassed)),
            format!("{:.1}", 100.0 * ll.fraction(LoadSource::Delayed)),
        ]);
    }
    println!("{t}");
    println!("paper shape: bzip2/gcc/mcf/hmmer/h264ref/astar show the largest Delayed fractions.");
}
