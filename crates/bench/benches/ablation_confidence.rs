//! §IV-E ablation: the biased confidence update (divide by two on a
//! misprediction) vs NoSQ's balanced (-1) update, on the DMDP machine.
//! The biased policy trades extra predications for fewer recoveries.

use dmdp_bench::{header, run_cfg, suite_geomeans, workloads};
use dmdp_core::{CommModel, CoreConfig};
use dmdp_predict::ConfidencePolicy;
use dmdp_stats::Table;

fn main() {
    header("ablat-conf", "§IV-E — biased vs balanced confidence update (DMDP)");
    let mut t =
        Table::new(["bench", "balanced-IPC", "biased-IPC", "bal-MPKI", "bias-MPKI", "bias-pred-uops"]);
    let mut rows = Vec::new();
    for w in workloads() {
        let mut cfg = CoreConfig::new(CommModel::Dmdp);
        cfg.distance.policy = ConfidencePolicy::Balanced;
        let bal = run_cfg(cfg, &w);
        let bias = run_cfg(CoreConfig::new(CommModel::Dmdp), &w);
        rows.push((w.name.to_string(), w.suite, bias.ipc() / bal.ipc()));
        t.row([
            w.name.to_string(),
            format!("{:.3}", bal.ipc()),
            format!("{:.3}", bias.ipc()),
            format!("{:.2}", bal.stats.mem_dep_mpki()),
            format!("{:.2}", bias.stats.mem_dep_mpki()),
            bias.stats.predication_uops.to_string(),
        ]);
    }
    println!("{t}");
    let (int, fp) = suite_geomeans(&rows);
    println!("geomean biased/balanced IPC: Int {int:.3}  FP {fp:.3}");
    println!("shape: biased has fewer mispredictions at the cost of more predications (paper §IV-E).");
}
