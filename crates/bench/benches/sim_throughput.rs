//! Criterion benchmark of the simulator itself: simulated instructions
//! per second for each communication model (not a paper artifact).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dmdp_core::{CommModel, Simulator};
use dmdp_workloads::{by_name, Scale};

fn bench_models(c: &mut Criterion) {
    let w = by_name("gcc", Scale::Test).expect("gcc workload");
    let insns = {
        let mut emu = dmdp_isa::Emulator::new(&w.program);
        emu.run(100_000_000).expect("halts").retired
    };
    let mut group = c.benchmark_group("simulate-gcc");
    group.throughput(Throughput::Elements(insns));
    for model in CommModel::ALL {
        group.bench_function(model.name(), |b| {
            b.iter(|| Simulator::new(model).run(&w.program).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
