//! Benchmark of the simulator itself: simulated instructions per second
//! for each communication model (not a paper artifact). Hand-rolled
//! timing harness — the repository builds fully offline, so no criterion.
//!
//! Usage: `sim_throughput [--scale test|small|full] [--repeats N] [kernel ...]`
//! (defaults: test scale, 1 repeat; a mix of branchy and memory-bound
//! kernels). `--repeats N` runs N independent measurement loops per
//! (kernel × model) and reports the fastest — min-of-N strips scheduler
//! and frequency noise from comparisons across commits.
//!
//! Output is line-oriented so `scripts/bench.sh` can parse it:
//! one `calib <Mops>` line (a fixed xorshift64 loop timed on this host,
//! for normalising MIPS across machines), then one
//! `<kernel> <model> <ms/run> ms/run <MIPS> MIPS (<n> iters)` line per
//! (kernel × model) pair.

use std::hint::black_box;
use std::time::Instant;

use dmdp_core::{CommModel, Simulator};
use dmdp_workloads::{by_name, Scale};

/// Kernels benchmarked when none are named on the command line: gcc is
/// branchy/recovery-heavy (worst case for event bookkeeping), mcf, milc
/// and lbm are memory-bound (high IQ/calendar occupancy, where the old
/// per-cycle rescans were most expensive).
const DEFAULT_KERNELS: &[&str] = &["gcc", "mcf", "milc", "lbm"];

/// Times a fixed 64M-step xorshift64 loop and returns host mega-ops/s.
/// The loop is pure register arithmetic, so the figure tracks the
/// single-core integer speed the simulator itself is bound by.
fn calibrate() -> f64 {
    let n = 1u64 << 26;
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let start = Instant::now();
    for _ in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x = black_box(x);
    }
    let secs = start.elapsed().as_secs_f64();
    n as f64 / secs / 1e6
}

fn main() {
    let mut scale = Scale::Test;
    let mut repeats = 1u32;
    let mut kernels: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                scale = Scale::from_name(&v)
                    .unwrap_or_else(|| panic!("unknown scale {v:?} (test|small|full)"));
            }
            "--repeats" => {
                let v = args.next().expect("--repeats needs a value");
                repeats = v.parse().expect("--repeats takes a positive integer");
                assert!(repeats >= 1, "--repeats takes a positive integer");
            }
            // `cargo bench` appends `--bench` to the harness arguments.
            "--bench" => {}
            _ => kernels.push(a),
        }
    }
    if kernels.is_empty() {
        kernels = DEFAULT_KERNELS.iter().map(|s| s.to_string()).collect();
    }

    println!("=== sim_throughput: simulator speed at {} scale ===", scale.name());
    println!("calib {:.1} host Mops (xorshift64)", calibrate());

    for name in &kernels {
        let w = by_name(name, scale)
            .unwrap_or_else(|| panic!("unknown kernel {name:?} (see dmdp-workloads)"));
        let insns = {
            let mut emu = dmdp_isa::Emulator::new(&w.program);
            emu.run(1_000_000_000).expect("halts").retired
        };
        println!("--- {name}/{} ({insns} insns) ---", scale.name());
        for model in CommModel::ALL {
            let sim = Simulator::new(model);
            // Warm up, then measure enough iterations for a stable
            // number; with --repeats, keep the fastest of N such loops.
            for _ in 0..3 {
                black_box(sim.run(&w.program).expect("runs"));
            }
            let mut best_per_run = f64::INFINITY;
            let mut best_iters = 0u32;
            for _ in 0..repeats {
                let mut iters = 0u32;
                let start = Instant::now();
                while iters < 5 || start.elapsed().as_millis() < 500 {
                    black_box(sim.run(&w.program).expect("runs"));
                    iters += 1;
                }
                let per_run = start.elapsed().as_secs_f64() / iters as f64;
                if per_run < best_per_run {
                    best_per_run = per_run;
                    best_iters = iters;
                }
            }
            let mips = insns as f64 / best_per_run / 1e6;
            println!(
                "{name:9} {:9} {:>8.3} ms/run {mips:>8.2} MIPS ({best_iters} iters)",
                model.name(),
                best_per_run * 1e3,
            );
        }
    }
}
