//! Benchmark of the simulator itself: simulated instructions per second
//! for each communication model (not a paper artifact). Hand-rolled
//! timing harness — the repository builds fully offline, so no criterion.

use std::hint::black_box;
use std::time::Instant;

use dmdp_core::{CommModel, Simulator};
use dmdp_workloads::{by_name, Scale};

fn main() {
    let w = by_name("gcc", Scale::Test).expect("gcc workload");
    let insns = {
        let mut emu = dmdp_isa::Emulator::new(&w.program);
        emu.run(100_000_000).expect("halts").retired
    };
    println!("=== sim_throughput: simulator speed on gcc/{:?} ({insns} insns) ===", Scale::Test);
    for model in CommModel::ALL {
        let sim = Simulator::new(model);
        // Warm up, then measure enough iterations for a stable number.
        for _ in 0..3 {
            black_box(sim.run(&w.program).expect("runs"));
        }
        let mut iters = 0u32;
        let start = Instant::now();
        while iters < 10 || start.elapsed().as_millis() < 500 {
            black_box(sim.run(&w.program).expect("runs"));
            iters += 1;
        }
        let secs = start.elapsed().as_secs_f64();
        let per_run = secs / iters as f64;
        let mips = insns as f64 / per_run / 1e6;
        println!(
            "{:9} {:>8.3} ms/run   {:>8.2} simulated MIPS   ({iters} iters)",
            model.name(),
            per_run * 1e3,
            mips
        );
    }
}
