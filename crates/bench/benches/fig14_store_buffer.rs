//! Figure 14: DMDP with 32- and 64-entry store buffers, normalized to a
//! 16-entry buffer. Paper geomeans: 32-entry +2.07% Int / +3.81% FP;
//! 64-entry +2.77% Int / +5.01% FP; lbm improves most. Also reports the
//! paper's full-store-buffer stall estimate (503.1 / 220.5 / 75.0 cycles
//! per kilo-instruction for 16/32/64).

use dmdp_bench::{header, run_cfg, suite_geomeans, workloads};
use dmdp_core::{CommModel, CoreConfig};
use dmdp_stats::Table;

fn main() {
    header("fig14", "Figure 14 — store buffer size sweep (DMDP)");
    let mut t = Table::new(["bench", "ipc@16", "32/16", "64/16"]);
    let mut r32 = Vec::new();
    let mut r64 = Vec::new();
    let mut stalls = [0.0f64; 3];
    let mut n = 0.0;
    for w in workloads() {
        let mut ipc = [0.0f64; 3];
        for (i, sb) in [16usize, 32, 64].into_iter().enumerate() {
            let cfg = CoreConfig {
                store_buffer_entries: sb,
                ..CoreConfig::new(CommModel::Dmdp)
            };
            let r = run_cfg(cfg, &w);
            ipc[i] = r.ipc();
            stalls[i] += r.stats.sb_full_stalls_per_ki();
        }
        n += 1.0;
        r32.push((w.name.to_string(), w.suite, ipc[1] / ipc[0]));
        r64.push((w.name.to_string(), w.suite, ipc[2] / ipc[0]));
        t.row([
            w.name.to_string(),
            format!("{:.3}", ipc[0]),
            format!("{:.3}", ipc[1] / ipc[0]),
            format!("{:.3}", ipc[2] / ipc[0]),
        ]);
    }
    println!("{t}");
    let (i32_, f32_) = suite_geomeans(&r32);
    let (i64_, f64_) = suite_geomeans(&r64);
    println!("32-entry geomean: Int {i32_:.3}  FP {f32_:.3}  (paper +2.07% / +3.81%)");
    println!("64-entry geomean: Int {i64_:.3}  FP {f64_:.3}  (paper +2.77% / +5.01%)");
    println!(
        "mean SB-full stall cycles/ki: 16-entry {:.1}, 32-entry {:.1}, 64-entry {:.1} (paper 503.1 / 220.5 / 75.0)",
        stalls[0] / n,
        stalls[1] / n,
        stalls[2] / n
    );
}
