//! §VI-f: register file pressure. Store registers live until commit, so
//! halving the PRF (320 -> 160) squeezes DMDP's gain over the baseline
//! (paper: 4.94% -> 4.24%).

use dmdp_bench::{header, run_cfg, suite_geomeans, workloads};
use dmdp_core::{CommModel, CoreConfig};
use dmdp_stats::Table;

fn main() {
    header("alt-prf", "§VI-f — physical register pressure (DMDP over baseline)");
    let mut t = Table::new(["bench", "prf320 dmdp/base", "prf160 dmdp/base"]);
    let mut p320 = Vec::new();
    let mut p160 = Vec::new();
    for w in workloads() {
        let mut ratio = [0.0f64; 2];
        for (i, prf) in [320usize, 160].into_iter().enumerate() {
            let base = run_cfg(
                CoreConfig { phys_regs: prf, ..CoreConfig::new(CommModel::Baseline) },
                &w,
            );
            let dmdp = run_cfg(
                CoreConfig { phys_regs: prf, ..CoreConfig::new(CommModel::Dmdp) },
                &w,
            );
            ratio[i] = dmdp.ipc() / base.ipc();
        }
        p320.push((w.name.to_string(), w.suite, ratio[0]));
        p160.push((w.name.to_string(), w.suite, ratio[1]));
        t.row([
            w.name.to_string(),
            format!("{:.3}", ratio[0]),
            format!("{:.3}", ratio[1]),
        ]);
    }
    println!("{t}");
    let (a, b) = suite_geomeans(&p320);
    let (c, d) = suite_geomeans(&p160);
    println!("geomean dmdp/baseline @prf320: Int {a:.3}  FP {b:.3}");
    println!("geomean dmdp/baseline @prf160: Int {c:.3}  FP {d:.3}  (paper: gain shrinks 4.94% -> 4.24%)");
}
