#![warn(missing_docs)]
//! # dmdp-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§VI). Each experiment is a `harness = false`
//! bench target printing the same rows/series the paper reports:
//!
//! | target | paper artifact |
//! |---|---|
//! | `fig02_load_distribution` | Figure 2 — load breakdown under NoSQ |
//! | `fig03_delayed_vs_bypassing` | Figure 3 — delayed vs bypassing latency |
//! | `fig05_lowconf_breakdown` | Figure 5 — low-confidence outcomes |
//! | `fig12_speedup` | Figure 12 — IPC normalized to the baseline |
//! | `tab04_load_latency` | Table IV — mean load execution time |
//! | `tab05_lowconf_latency` | Table V — low-confidence load execution time |
//! | `tab06_mpki` | Table VI — dependence mispredictions / kilo-insn |
//! | `tab07_reexec_stalls` | Table VII — re-execution stall cycles / kilo-insn |
//! | `fig14_store_buffer` | Figure 14 — 32/64-entry SB vs 16-entry |
//! | `fig15_edp` | Figure 15 — EDP normalized to NoSQ |
//! | `alt_*`, `ablation_*` | §VI-f/g alternative configurations, §IV-C/E ablations |
//! | `sim_throughput` | Criterion: simulator speed (not in the paper) |
//!
//! Run one with `cargo bench -p dmdp-bench --bench fig12_speedup`, or all
//! of them with `cargo bench`. Set `DMDP_SCALE=test|small|full`
//! (default `small`) to trade runtime for fidelity.

use dmdp_core::{CommModel, CoreConfig, SimReport, Simulator};
use dmdp_harness::{Campaign, CampaignSpec, RunOptions};
use dmdp_stats::geomean;
use dmdp_workloads::{Scale, Suite, Workload};

/// The workload scale selected via `DMDP_SCALE` (default `small`).
pub fn scale() -> Scale {
    match std::env::var("DMDP_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        Ok("full") => Scale::Full,
        _ => Scale::Small,
    }
}

/// All workloads at the selected scale.
pub fn workloads() -> Vec<Workload> {
    dmdp_workloads::all(scale())
}

/// Runs one workload under one model with the paper's main configuration.
pub fn run(model: CommModel, w: &Workload) -> SimReport {
    Simulator::new(model)
        .run(&w.program)
        .unwrap_or_else(|e| panic!("{} under {:?}: {e}", w.name, model))
}

/// Runs one workload under an explicit configuration.
pub fn run_cfg(cfg: CoreConfig, w: &Workload) -> SimReport {
    Simulator::with_config(cfg)
        .run(&w.program)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name))
}

/// Runs (or cache-resumes) a campaign over all workloads at the selected
/// scale under `models`, fanned out across every core. The artifact
/// lands in `bench-results/<name>-<scale>.json`; digest-matched jobs are
/// reused from it, so a repeated bench run simulates nothing.
pub fn campaign_models(name: &str, models: impl IntoIterator<Item = CommModel>) -> Campaign {
    let scale = scale();
    let out = std::path::PathBuf::from(format!("bench-results/{name}-{}.json", scale.name()));
    let spec = CampaignSpec::new(name, scale).models(models);
    let opts = RunOptions { cache: Some(out.clone()), ..RunOptions::default() };
    let campaign = spec.run(&opts).unwrap_or_else(|e| panic!("campaign {name}: {e}"));
    campaign.save(&out).unwrap_or_else(|e| panic!("campaign {name}: {e}"));
    campaign
}

/// [`campaign_models`] over all four communication models.
pub fn campaign_all_models(name: &str) -> Campaign {
    campaign_models(name, CommModel::ALL)
}

/// Per-suite geometric means of `(name, suite, value)` rows, returned as
/// `(int, fp)`.
pub fn suite_geomeans(rows: &[(String, Suite, f64)]) -> (f64, f64) {
    let int = geomean(rows.iter().filter(|r| r.1 == Suite::Int).map(|r| r.2));
    let fp = geomean(rows.iter().filter(|r| r.1 == Suite::Fp).map(|r| r.2));
    (int, fp)
}

/// Prints the standard experiment header.
pub fn header(id: &str, paper: &str) {
    println!("=== {id}: {paper} ===");
    println!("scale: {:?} ({} iteration units/kernel)", scale(), scale().iterations());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_small() {
        if std::env::var("DMDP_SCALE").is_err() {
            assert_eq!(scale(), Scale::Small);
        }
    }

    #[test]
    fn suite_geomeans_split() {
        let rows = vec![
            ("a".to_string(), Suite::Int, 2.0),
            ("b".to_string(), Suite::Int, 8.0),
            ("c".to_string(), Suite::Fp, 3.0),
        ];
        let (int, fp) = suite_geomeans(&rows);
        assert!((int - 4.0).abs() < 1e-12);
        assert!((fp - 3.0).abs() < 1e-12);
    }

    #[test]
    fn run_small_workload_under_all_models() {
        let w = dmdp_workloads::by_name("lib", Scale::Test).unwrap();
        for m in CommModel::ALL {
            let r = run(m, &w);
            assert!(r.stats.retired_insns > 0);
        }
    }
}
