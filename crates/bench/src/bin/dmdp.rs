//! `dmdp` — command-line driver for the simulator.
//!
//! ```text
//! dmdp workloads
//!     List the 21 SPEC-2006 analogue kernels.
//!
//! dmdp run [--model baseline|nosq|dmdp|perfect|all] [--scale test|small|full]
//!          [--workload NAME | --asm FILE.s | --image FILE.img]
//!          [--width N] [--rob N] [--prf N] [--sb N] [--rmo] [--energy]
//!     Simulate a workload (or an assembly/image file) and print a report.
//!
//! dmdp asm FILE.s -o FILE.img
//!     Assemble a source file into a binary program image.
//!
//! dmdp disasm FILE.img
//!     Print the disassembly listing of a program image.
//! ```

use std::process::ExitCode;

use dmdp_core::{CommModel, CoreConfig, SimReport, Simulator};
use dmdp_isa::{asm, Program};
use dmdp_mem::Consistency;
use dmdp_workloads::Scale;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("workloads") => cmd_workloads(),
        Some("run") => cmd_run(&args[1..]),
        Some("asm") => cmd_asm(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        _ => {
            eprintln!("usage: dmdp <workloads|run|asm|disasm> [options]  (see --help in the doc comment)");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dmdp: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn cmd_workloads() -> CliResult {
    println!("{:10} {:5} character", "name", "suite");
    for w in dmdp_workloads::all(Scale::Test) {
        println!("{:10} {:5?} {}", w.name, w.suite, w.character);
    }
    Ok(())
}

struct RunOpts {
    models: Vec<CommModel>,
    scale: Scale,
    workload: Option<String>,
    asm_file: Option<String>,
    image_file: Option<String>,
    width: Option<usize>,
    rob: Option<usize>,
    prf: Option<usize>,
    sb: Option<usize>,
    rmo: bool,
    energy: bool,
}

fn parse_run(args: &[String]) -> Result<RunOpts, String> {
    let mut o = RunOpts {
        models: vec![CommModel::Dmdp],
        scale: Scale::Small,
        workload: None,
        asm_file: None,
        image_file: None,
        width: None,
        rob: None,
        prf: None,
        sb: None,
        rmo: false,
        energy: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().ok_or_else(|| format!("{a} needs a value"));
        match a.as_str() {
            "--model" => {
                let v = val()?;
                o.models = match v.as_str() {
                    "baseline" => vec![CommModel::Baseline],
                    "nosq" => vec![CommModel::NoSq],
                    "dmdp" => vec![CommModel::Dmdp],
                    "perfect" => vec![CommModel::Perfect],
                    "all" => CommModel::ALL.to_vec(),
                    other => return Err(format!("unknown model `{other}`")),
                };
            }
            "--scale" => {
                o.scale = match val()?.as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--workload" => o.workload = Some(val()?),
            "--asm" => o.asm_file = Some(val()?),
            "--image" => o.image_file = Some(val()?),
            "--width" => o.width = Some(val()?.parse().map_err(|e| format!("--width: {e}"))?),
            "--rob" => o.rob = Some(val()?.parse().map_err(|e| format!("--rob: {e}"))?),
            "--prf" => o.prf = Some(val()?.parse().map_err(|e| format!("--prf: {e}"))?),
            "--sb" => o.sb = Some(val()?.parse().map_err(|e| format!("--sb: {e}"))?),
            "--rmo" => o.rmo = true,
            "--energy" => o.energy = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

fn load_program(o: &RunOpts) -> Result<Program, Box<dyn std::error::Error>> {
    if let Some(f) = &o.asm_file {
        let src = std::fs::read_to_string(f)?;
        return Ok(asm::assemble_named(f, &src)?);
    }
    if let Some(f) = &o.image_file {
        let bytes = std::fs::read(f)?;
        return Ok(Program::from_image(&bytes)?);
    }
    let name = o.workload.as_deref().unwrap_or("bzip2");
    dmdp_workloads::by_name(name, o.scale)
        .map(|w| w.program)
        .ok_or_else(|| format!("unknown workload `{name}` (try `dmdp workloads`)").into())
}

fn cmd_run(args: &[String]) -> CliResult {
    let o = parse_run(args)?;
    let program = load_program(&o)?;
    println!("program: {} ({} static instructions)", program.name(), program.len());
    for model in &o.models {
        let mut cfg = CoreConfig::new(*model);
        if let Some(w) = o.width {
            cfg.width = w;
        }
        if let Some(r) = o.rob {
            cfg.rob_entries = r;
        }
        if let Some(p) = o.prf {
            cfg.phys_regs = p;
        }
        if let Some(s) = o.sb {
            cfg.store_buffer_entries = s;
        }
        if o.rmo {
            cfg.consistency = Consistency::Rmo;
        }
        let report = Simulator::with_config(cfg).run(&program)?;
        print_report(&report, o.energy);
    }
    Ok(())
}

fn print_report(r: &SimReport, energy: bool) {
    let s = &r.stats;
    println!("\n== {} ==", r.model.name());
    println!("  cycles            {:>12}", s.cycles);
    println!("  instructions      {:>12}   IPC {:.3}", s.retired_insns, r.ipc());
    println!("  uops              {:>12}   (+{} predication)", s.retired_uops, s.predication_uops);
    println!("  loads / stores    {:>12} / {}", s.retired_loads, s.retired_stores);
    println!(
        "  branch mispredict {:>12}   memdep mispredict {} ({:.2} MPKI)",
        s.branch_mispredicts,
        s.mem_dep_mispredicts,
        s.mem_dep_mpki()
    );
    println!(
        "  re-executions     {:>12}   stall cycles {} (reexec) / {} (SB full)",
        s.reexecutions, s.reexec_stall_cycles, s.sb_full_stall_cycles
    );
    use dmdp_stats::LoadSource;
    let ll = &s.load_latency;
    println!("  load classes      direct {} | bypassed {} | delayed {} | predicated {}",
        ll.count(LoadSource::Direct),
        ll.count(LoadSource::Bypassed),
        ll.count(LoadSource::Delayed),
        ll.count(LoadSource::Predicated));
    println!("  mean load latency {:>12.2} cycles", ll.overall_mean());
    if energy {
        println!("  energy            {:>12.1} nJ   EDP {:.3e}", s.energy.total_nj(), s.edp());
        for (ev, n, nj) in s.energy.breakdown().into_iter().take(8) {
            println!("    {:14} {:>10} events {:>12.1} nJ", ev.label(), n, nj);
        }
    }
}

fn cmd_asm(args: &[String]) -> CliResult {
    let (input, output) = match args {
        [i, o_flag, o] if o_flag == "-o" => (i, o.clone()),
        [i] => (i, format!("{i}.img")),
        _ => return Err("usage: dmdp asm FILE.s [-o FILE.img]".into()),
    };
    let src = std::fs::read_to_string(input)?;
    let program = asm::assemble_named(input, &src)?;
    std::fs::write(&output, program.to_image())?;
    println!(
        "{input}: {} instructions, {} data bytes -> {output}",
        program.len(),
        program.data().len()
    );
    Ok(())
}

fn cmd_disasm(args: &[String]) -> CliResult {
    let [input] = args else {
        return Err("usage: dmdp disasm FILE.img".into());
    };
    let bytes = std::fs::read(input)?;
    let program = Program::from_image(&bytes)?;
    println!("# {} (entry {})", program.name(), program.entry());
    print!("{}", program.listing());
    Ok(())
}
