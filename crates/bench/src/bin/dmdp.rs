//! `dmdp` — command-line driver for the simulator. Run `dmdp --help`
//! (or `dmdp <subcommand> --help`) for usage.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dmdp_core::{CommModel, CoreConfig, Probe, Sample, SimReport, Simulator};
use dmdp_harness::json::obj;
use dmdp_harness::{
    error_table, render_campaign, render_error_table, Campaign, CampaignSpec, CfgPatch, Json,
    RunOptions, Sampling,
};
use dmdp_isa::{asm, Program};
use dmdp_server::{serve, Client, ServeOptions, SubmitRequest};
use dmdp_workloads::Scale;

const TOP_HELP: &str = "\
dmdp — cycle-level simulator of Dynamic Memory Dependence Predication (ISCA 2018)

USAGE:
    dmdp <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    workloads    List the 21 SPEC-2006 analogue kernels
    run          Simulate one workload (or an .s/.img file) and print a report
    campaign     Run a parallel experiment campaign, write a JSON artifact
    serve        Run a campaign daemon with a persistent result store
    worker       Run one shard of a sharded daemon (see `dmdp serve --workers`)
    submit       Submit a campaign to a running daemon, save the artifact
    metrics      Fetch a running daemon's metrics snapshot (JSON or Prometheus)
    top          Live view of a daemon's metrics as refreshing deltas and rates
    report       Render a campaign JSON artifact as human-readable tables
    asm          Assemble a source file into a binary program image
    disasm       Print the disassembly listing of a program image

Run `dmdp <SUBCOMMAND> --help` for that subcommand's options.
";

const RUN_HELP: &str = "\
dmdp run — simulate a workload and print a report

USAGE:
    dmdp run [OPTIONS]

OPTIONS:
    --model <M>      baseline | nosq | dmdp | perfect | all   [default: dmdp]
    --scale <S>      test | small | full | huge               [default: small]
    --workload <W>   kernel name (see `dmdp workloads`)       [default: bzip2]
    --asm <FILE.s>   simulate an assembly source file instead
    --image <FILE>   simulate a binary program image instead
    --width <N>      pipeline width override
    --rob <N>        ROB capacity override
    --prf <N>        physical register file size override
    --sb <N>         store buffer capacity override
    --rmo            release consistency instead of TSO
    --energy         print the dynamic-energy breakdown
    -h, --help       print this help

PROBE OPTIONS (observability only — simulated timing is unchanged):
    --trace <FILE>        write a per-µop stage-timeline JSONL trace
    --trace-from <CYCLE>  start tracing µops renamed at this cycle  [default: 0]
    --trace-cycles <N>    trace a window of N cycles (default: to the end)
    --sample-every <N>    collect a time-series sample every N cycles
    --sample-out <FILE>   samples JSON path  [default: samples.json]

With `--model all`, per-model output paths get a `-<model>` suffix
before the extension (e.g. trace-dmdp.jsonl).
";

const CAMPAIGN_HELP: &str = "\
dmdp campaign — run a (workload × model) sweep in parallel and write a
JSON result artifact with per-job wall-clock, MIPS and suite geomeans

USAGE:
    dmdp campaign [OPTIONS]

OPTIONS:
    --name <NAME>     campaign name                      [default: campaign]
    --model <M>       baseline | nosq | dmdp | perfect | all  [default: all]
    --scale <S>       test | small | full | huge         [default: small]
    --kernel <W>      restrict to one kernel (repeatable)
    --jobs <N>        worker threads                     [default: all cores]
    --out <FILE>      artifact path   [default: bench-results/<name>.json]
    --force           ignore the digest cache; re-run every job
    --quiet           suppress per-job progress lines
    --variant <LABEL=KNOBS>
                      add a config variant to the sweep (repeatable).
                      KNOBS is comma-separated width/rob/prf/sb:<N> and
                      rmo, e.g. --variant rob64=rob:64,sb:8 --variant main=
    --batch-variants <on|off>
                      run each (workload, model)'s variants as one batched
                      lockstep simulation (bit-identical results; `off`
                      falls back to job-per-variant)       [default: on]
    --width/--rob/--prf/--sb <N>, --rmo
                      configuration overrides, as in `dmdp run`
                      (shorthand for a single `custom` variant)
    --sampled         estimate IPC by sampled simulation: profile each
                      workload into intervals, cluster them, and simulate
                      only representative intervals from checkpoints
    --interval-insns <N>
                      sampling interval length in instructions (implies
                      --sampled)                        [default: 10000]
    --warmup-intervals <W>
                      detailed-warmup intervals before each measurement
                      (implies --sampled; 0 still gets a short
                      micro-warmup on top of the checkpoint's
                      functional cache/branch warming)  [default: 1]
    -h, --help        print this help

Unchanged jobs (same simulator version, config and workload content) are
reused from the existing artifact at --out: a repeated campaign executes
zero jobs and still rewrites a complete artifact. Sampled jobs carry
their own digests, so sampled and full artifacts never mix; compare
them with `dmdp report SAMPLED.json --error-vs FULL.json`.
";

const SERVE_HELP: &str = "\
dmdp serve — long-running campaign daemon with a persistent
content-addressed result store

USAGE:
    dmdp serve [OPTIONS]

OPTIONS:
    --socket <PATH>   unix socket to listen on        [default: dmdp.sock]
    --tcp <ADDR>      also listen on TCP (e.g. 127.0.0.1:7199)
    --store <DIR>     result store directory          [default: dmdp-store]
    --cap-mb <N>      LRU store size cap in MiB       [default: unbounded]
    --jobs <N>        worker threads per submission   [default: all cores]
    --quiet           suppress per-request log lines
    --log <FILE>      append structured JSONL events to FILE
                      instead of stderr
    --log-level <L>   debug | info | warn | error     [default: info]
    --slow-job-ms <N> warn (slow_job event) about executed jobs whose
                      simulation wall clock reaches N milliseconds
    --workers <N>     spawn N `dmdp worker` shard processes with disjoint
                      core-affinity hints and dispatch job groups to
                      them (implies --tcp 127.0.0.1:0 if --tcp is unset)
    --accept-workers  accept externally started `dmdp worker --connect`
                      registrations without spawning any
    --worker-exe <BIN>
                      binary to spawn for --workers  [default: this dmdp]
    -h, --help        print this help

With --workers (or --accept-workers plus external `dmdp worker`
processes) the daemon becomes a coordinator: job groups are placed on
the least-loaded registered worker, every worker runs its own thread
pool and resident workload images, and the store directory is the only
shared state — so sharded artifacts stay byte-compatible with
single-process ones. A worker that dies mid-group has its unfinished
digests requeued; a restarted worker re-registers and re-syncs its
store view lazily.

The daemon keeps workload images and µop plan caches resident across
requests, persists every job result under its content digest
(store/<d[0..2]>/<digest>.json), and dedups identical in-flight jobs
across concurrent clients — each distinct job digest is simulated at
most once, ever. Stop it with `dmdp submit --shutdown`; running
submissions drain first.

Every listener also answers HTTP `GET /metrics` with the Prometheus
text exposition of the process metrics registry; `dmdp metrics` and
`dmdp top` read the same registry over the NDJSON protocol. Each
request gets a trace id, logged with its events and embedded in the
artifact, so artifacts grep back to their daemon-side event lines.
";

const WORKER_HELP: &str = "\
dmdp worker — one shard of a sharded `dmdp serve`

USAGE:
    dmdp worker --connect HOST:PORT [OPTIONS]

OPTIONS:
    --connect <ADDR>  coordinator TCP address (required; the address
                      `dmdp serve --tcp` printed in its listening event)
    --store <DIR>     shared result store directory  [default: dmdp-store]
                      must be the same directory the coordinator uses
    --jobs <N>        runner threads   [default: one per --cores core]
    --cores <LIST>    comma-separated cores to pin to (best-effort),
                      e.g. --cores 0,1
    --name <NAME>     worker name, labels its coordinator metrics
                                                     [default: worker]
    --connect-retries <N>
                      transient connect failures to retry with capped
                      exponential backoff            [default: 10]
    --quiet           suppress per-group log lines
    -h, --help        print this help

The worker registers over the daemon protocol (protocol and simulator
versions must match), executes dispatched job groups against its own
resident workload images, checks the shared store before simulating
each member, and heartbeats while idle. It exits when the coordinator
drains it (after `dmdp submit --shutdown`) or hangs up. Normally spawned
by `dmdp serve --workers N`; run it by hand to add shards from other
terminals or hosts that share the store directory.
";

const METRICS_HELP: &str = "\
dmdp metrics — fetch a running daemon's metrics snapshot

USAGE:
    dmdp metrics [OPTIONS]

OPTIONS:
    --socket <PATH>   daemon unix socket              [default: dmdp.sock]
    --tcp <ADDR>      connect over TCP instead
    --prom            scrape GET /metrics and print the Prometheus text
                      exposition instead of the JSON snapshot
    -h, --help        print this help

The default output is the daemon's `metrics` protocol reply: one JSON
document listing every registered counter, gauge and histogram. With
--prom the same registry is scraped over HTTP exactly as a Prometheus
server would scrape it.
";

const TOP_CMD_HELP: &str = "\
dmdp top — live view of a daemon's metrics as refreshing deltas and rates

USAGE:
    dmdp top [OPTIONS]

OPTIONS:
    --socket <PATH>    daemon unix socket             [default: dmdp.sock]
    --tcp <ADDR>       connect over TCP instead
    --interval <S>     seconds between refreshes      [default: 2]
    --iterations <N>   exit after N frames (0 = run until interrupted)
                                                      [default: 0]
    --no-clear         append frames instead of redrawing in place
    -h, --help         print this help

Counters show totals plus per-second rates over the last interval,
histograms show the window's observation rate and approximate p50/p99
from log2-bucket deltas, and gauges show their instantaneous level.
Against a sharded daemon a WORKERS table summarises each registered
worker's in-flight groups and dispatch totals from its labelled series.
";

const SUBMIT_HELP: &str = "\
dmdp submit — submit a campaign to a running `dmdp serve` daemon

USAGE:
    dmdp submit [OPTIONS]
    dmdp submit --stats | --shutdown | --ping

OPTIONS:
    --socket <PATH>   daemon unix socket              [default: dmdp.sock]
    --tcp <ADDR>      connect over TCP instead
    --name <NAME>     campaign name                   [default: campaign]
    --model <M>       baseline | nosq | dmdp | perfect | all  [default: all]
    --scale <S>       test | small | full | huge      [default: small]
    --kernel <W>      restrict to one kernel (repeatable)
    --out <FILE>      artifact path   [default: bench-results/<name>.json]
    --quiet           suppress per-job progress lines
    --variant <LABEL=KNOBS>
                      add a config variant to the sweep (repeatable),
                      as in `dmdp campaign`
    --batch-variants <on|off>
                      daemon-side batched lockstep execution of each
                      (workload, model)'s variants          [default: on]
    --width/--rob/--prf/--sb <N>, --rmo
                      configuration overrides, as in `dmdp campaign`
    --sampled, --interval-insns <N>, --warmup-intervals <W>
                      sampled simulation, as in `dmdp campaign`; the
                      daemon persists each workload's checkpoint bundle
                      in its store and shares it across models, requests
                      and restarts
    --connect-retries <N>
                      transient connect failures (daemon still binding
                      its socket, backlog resets) to retry with capped
                      exponential backoff             [default: 3]
    --stats           print daemon statistics and exit
    --shutdown        drain the daemon and stop it
    --ping            liveness check
    -h, --help        print this help

The saved artifact is byte-compatible with `dmdp campaign` output —
`dmdp report` renders it unchanged. Jobs already in the daemon's store
are not re-simulated, so a repeated submission executes zero jobs.
";

const REPORT_HELP: &str = "\
dmdp report — render a campaign JSON artifact as human-readable tables

USAGE:
    dmdp report <ARTIFACT.json> [OPTIONS]

OPTIONS:
    --error-vs <FULL.json>
                  compare a sampled artifact's IPC estimates against the
                  full-simulation artifact at FULL.json: per-row signed
                  errors, geomean/worst |error| and the wall-clock ratio
    --json        with --error-vs, print the comparison as JSON instead
                  of a table (stable shape, for jq/CI)
    -h, --help    print this help

Prints per-variant workload × model IPC tables (with deltas against the
baseline model), per-suite geometric means, scheduler-occupancy means,
the stage wall-time breakdown and the slowest jobs. Works on any
campaign artifact, including `bench-results/ci-smoke.json`.
";

const ASM_HELP: &str = "\
dmdp asm — assemble a source file into a binary program image

USAGE:
    dmdp asm FILE.s [-o FILE.img]     (default output: FILE.s.img)
    dmdp asm -h | --help
";

const DISASM_HELP: &str = "\
dmdp disasm — print the disassembly listing of a program image

USAGE:
    dmdp disasm FILE.img
    dmdp disasm -h | --help
";

const WORKLOADS_HELP: &str = "\
dmdp workloads — list the 21 SPEC-2006 analogue kernels

USAGE:
    dmdp workloads
";

fn wants_help(args: &[String]) -> bool {
    args.iter().any(|a| a == "--help" || a == "-h")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("workloads") => helped(&args[1..], WORKLOADS_HELP, |_| cmd_workloads()),
        Some("run") => helped(&args[1..], RUN_HELP, cmd_run),
        Some("campaign") => helped(&args[1..], CAMPAIGN_HELP, cmd_campaign),
        Some("serve") => helped(&args[1..], SERVE_HELP, cmd_serve),
        Some("worker") => helped(&args[1..], WORKER_HELP, cmd_worker),
        Some("submit") => helped(&args[1..], SUBMIT_HELP, cmd_submit),
        Some("metrics") => helped(&args[1..], METRICS_HELP, cmd_metrics),
        Some("top") => helped(&args[1..], TOP_CMD_HELP, cmd_top),
        Some("report") => helped(&args[1..], REPORT_HELP, cmd_report),
        Some("asm") => helped(&args[1..], ASM_HELP, cmd_asm),
        Some("disasm") => helped(&args[1..], DISASM_HELP, cmd_disasm),
        Some("--help" | "-h") => {
            print!("{TOP_HELP}");
            return ExitCode::SUCCESS;
        }
        _ => {
            eprint!("{TOP_HELP}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dmdp: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn helped(args: &[String], help: &str, f: impl FnOnce(&[String]) -> CliResult) -> CliResult {
    if wants_help(args) {
        print!("{help}");
        Ok(())
    } else {
        f(args)
    }
}

fn cmd_workloads() -> CliResult {
    println!("{:10} {:5} character", "name", "suite");
    for w in dmdp_workloads::all(Scale::Test) {
        println!("{:10} {:5} {}", w.name, w.suite.name(), w.character);
    }
    Ok(())
}

fn parse_models(v: &str) -> Result<Vec<CommModel>, String> {
    if v == "all" {
        return Ok(CommModel::ALL.to_vec());
    }
    CommModel::from_name(v).map(|m| vec![m]).ok_or_else(|| format!("unknown model `{v}`"))
}

fn parse_scale(v: &str) -> Result<Scale, String> {
    Scale::from_name(v).ok_or_else(|| format!("unknown scale `{v}`"))
}

struct RunOpts {
    models: Vec<CommModel>,
    scale: Scale,
    workload: Option<String>,
    asm_file: Option<String>,
    image_file: Option<String>,
    patch: CfgPatch,
    energy: bool,
    trace: Option<PathBuf>,
    trace_from: u64,
    trace_cycles: Option<u64>,
    sample_every: Option<u64>,
    sample_out: Option<PathBuf>,
}

fn parse_run(args: &[String]) -> Result<RunOpts, String> {
    let mut o = RunOpts {
        models: vec![CommModel::Dmdp],
        scale: Scale::Small,
        workload: None,
        asm_file: None,
        image_file: None,
        patch: CfgPatch::default(),
        energy: false,
        trace: None,
        trace_from: 0,
        trace_cycles: None,
        sample_every: None,
        sample_out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().ok_or_else(|| format!("{a} needs a value"));
        match a.as_str() {
            "--model" => o.models = parse_models(&val()?)?,
            "--scale" => o.scale = parse_scale(&val()?)?,
            "--workload" => o.workload = Some(val()?),
            "--asm" => o.asm_file = Some(val()?),
            "--image" => o.image_file = Some(val()?),
            "--width" => o.patch.width = Some(val()?.parse().map_err(|e| format!("--width: {e}"))?),
            "--rob" => o.patch.rob = Some(val()?.parse().map_err(|e| format!("--rob: {e}"))?),
            "--prf" => o.patch.prf = Some(val()?.parse().map_err(|e| format!("--prf: {e}"))?),
            "--sb" => o.patch.sb = Some(val()?.parse().map_err(|e| format!("--sb: {e}"))?),
            "--rmo" => o.patch.rmo = true,
            "--energy" => o.energy = true,
            "--trace" => o.trace = Some(PathBuf::from(val()?)),
            "--trace-from" => {
                o.trace_from = val()?.parse().map_err(|e| format!("--trace-from: {e}"))?
            }
            "--trace-cycles" => {
                o.trace_cycles = Some(val()?.parse().map_err(|e| format!("--trace-cycles: {e}"))?)
            }
            "--sample-every" => {
                let n: u64 = val()?.parse().map_err(|e| format!("--sample-every: {e}"))?;
                if n == 0 {
                    return Err("--sample-every must be at least 1".to_string());
                }
                o.sample_every = Some(n);
            }
            "--sample-out" => o.sample_out = Some(PathBuf::from(val()?)),
            other => return Err(format!("unknown option `{other}` (see `dmdp run --help`)")),
        }
    }
    if o.trace.is_none() && (o.trace_from != 0 || o.trace_cycles.is_some()) {
        return Err("--trace-from/--trace-cycles need --trace <FILE>".to_string());
    }
    if o.sample_out.is_some() && o.sample_every.is_none() {
        return Err("--sample-out needs --sample-every <N>".to_string());
    }
    Ok(o)
}

fn load_program(o: &RunOpts) -> Result<Program, Box<dyn std::error::Error>> {
    if let Some(f) = &o.asm_file {
        let src = std::fs::read_to_string(f)?;
        return Ok(asm::assemble_named(f, &src)?);
    }
    if let Some(f) = &o.image_file {
        let bytes = std::fs::read(f)?;
        return Ok(Program::from_image(&bytes)?);
    }
    let name = o.workload.as_deref().unwrap_or("bzip2");
    dmdp_workloads::by_name(name, o.scale).map(|w| w.program).ok_or_else(|| {
        format!("unknown workload `{name}`; valid kernels: {}", dmdp_workloads::names().join(", "))
            .into()
    })
}

/// `trace.jsonl` → `trace-dmdp.jsonl` — keeps per-model artifacts apart
/// when one `dmdp run --model all` writes several.
fn suffixed(path: &Path, model: CommModel) -> PathBuf {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
    let name = match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}-{}.{ext}", model.name()),
        None => format!("{stem}-{}", model.name()),
    };
    path.with_file_name(name)
}

fn samples_json(samples: &[Sample]) -> Json {
    Json::Arr(
        samples
            .iter()
            .map(|s| {
                obj([
                    ("cycle", Json::Num(s.cycle as f64)),
                    ("insns", Json::Num(s.insns as f64)),
                    ("ipc", Json::Num(s.ipc)),
                    ("fetched", Json::Num(s.fetched as f64)),
                    ("rob", Json::Num(s.rob as f64)),
                    ("iq", Json::Num(s.iq as f64)),
                    ("ready", Json::Num(s.ready as f64)),
                    ("sb", Json::Num(s.sb as f64)),
                    ("branch_mispredicts", Json::Num(s.branch_mispredicts as f64)),
                    ("mem_dep_mispredicts", Json::Num(s.mem_dep_mispredicts as f64)),
                    ("recoveries", Json::Num(s.recoveries as f64)),
                    ("squashed_uops", Json::Num(s.squashed_uops as f64)),
                ])
            })
            .collect(),
    )
}

fn cmd_run(args: &[String]) -> CliResult {
    let o = parse_run(args)?;
    let program = load_program(&o)?;
    println!("program: {} ({} static instructions)", program.name(), program.len());
    let probing = o.trace.is_some() || o.sample_every.is_some();
    let many = o.models.len() > 1;
    for model in &o.models {
        let mut cfg = CoreConfig::new(*model);
        o.patch.apply(&mut cfg);
        let sim = Simulator::with_config(cfg);
        if !probing {
            print_report(&sim.run(&program)?, o.energy);
            continue;
        }
        let mut probe = Probe::default();
        let trace_path = o.trace.as_ref().map(|p| if many { suffixed(p, *model) } else { p.clone() });
        if let Some(path) = &trace_path {
            probe = probe
                .with_trace(path, o.trace_from, o.trace_cycles)
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
        if let Some(every) = o.sample_every {
            probe = probe.with_samples(every);
        }
        let (report, probes) = sim.run_probed(&program, probe)?;
        print_report(&report, o.energy);
        if let Some(path) = &trace_path {
            if let Some(e) = &probes.trace_error {
                return Err(format!("{}: trace write failed: {e}", path.display()).into());
            }
            println!("  trace             {:>12} records -> {}", probes.trace_records, path.display());
        }
        if o.sample_every.is_some() {
            let out = o.sample_out.clone().unwrap_or_else(|| PathBuf::from("samples.json"));
            let out = if many { suffixed(&out, *model) } else { out };
            std::fs::write(&out, samples_json(&probes.samples).pretty())
                .map_err(|e| format!("{}: {e}", out.display()))?;
            println!("  samples           {:>12} windows -> {}", probes.samples.len(), out.display());
        }
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> CliResult {
    let mut artifact: Option<PathBuf> = None;
    let mut error_vs: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--error-vs" => {
                let v = it.next().ok_or("--error-vs needs a value")?;
                error_vs = Some(PathBuf::from(v));
            }
            "--json" => json = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (see `dmdp report --help`)").into())
            }
            path => {
                if artifact.replace(PathBuf::from(path)).is_some() {
                    return Err("usage: dmdp report <ARTIFACT.json> [OPTIONS]".into());
                }
            }
        }
    }
    let Some(path) = artifact else {
        return Err("usage: dmdp report <ARTIFACT.json> [OPTIONS]".into());
    };
    if json && error_vs.is_none() {
        return Err("--json needs --error-vs <FULL.json>".into());
    }
    let campaign = Campaign::load(&path)?;
    let Some(full_path) = error_vs else {
        print!("{}", render_campaign(&campaign));
        return Ok(());
    };
    let full = Campaign::load(&full_path)?;
    let table = error_table(&campaign, &full)?;
    if json {
        println!("{}", table.to_json().pretty());
    } else {
        print!("{}", render_error_table(&table));
    }
    Ok(())
}

/// Parse a `--variant LABEL=KNOBS` spec. KNOBS is a comma-separated list of
/// `width:<N>`, `rob:<N>`, `prf:<N>`, `sb:<N>` and bare `rmo`; an empty KNOBS
/// (`main=`) is the default configuration.
fn parse_variant(spec: &str) -> Result<(String, CfgPatch), String> {
    let Some((label, knobs)) = spec.split_once('=') else {
        return Err(format!("--variant `{spec}`: expected LABEL=KNOBS (e.g. rob64=rob:64,sb:8)"));
    };
    if label.is_empty() {
        return Err(format!("--variant `{spec}`: label must not be empty"));
    }
    let mut patch = CfgPatch::default();
    for knob in knobs.split(',').filter(|k| !k.is_empty()) {
        if knob == "rmo" {
            patch.rmo = true;
            continue;
        }
        let Some((key, val)) = knob.split_once(':') else {
            return Err(format!("--variant `{spec}`: knob `{knob}` is not key:value or rmo"));
        };
        let n: usize = val.parse().map_err(|e| format!("--variant `{spec}`: {key}: {e}"))?;
        match key {
            "width" => patch.width = Some(n),
            "rob" => patch.rob = Some(n),
            "prf" => patch.prf = Some(n),
            "sb" => patch.sb = Some(n),
            other => return Err(format!("--variant `{spec}`: unknown knob `{other}` (width/rob/prf/sb/rmo)")),
        }
    }
    Ok((label.to_string(), patch))
}

fn parse_on_off(flag: &str, val: &str) -> Result<bool, String> {
    match val {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(format!("{flag}: expected `on` or `off`, got `{other}`")),
    }
}

struct CampaignOpts {
    name: String,
    models: Vec<CommModel>,
    scale: Scale,
    kernels: Vec<String>,
    jobs: usize,
    out: Option<PathBuf>,
    force: bool,
    quiet: bool,
    patch: CfgPatch,
    variants: Vec<(String, CfgPatch)>,
    batch_variants: bool,
    sampling: Option<Sampling>,
}

/// Folds the three sampled-simulation flags into `Option<Sampling>`:
/// `--interval-insns`/`--warmup-intervals` imply `--sampled`, and the
/// unset knob keeps its default.
#[derive(Default)]
struct SamplingFlags {
    sampled: bool,
    interval_insns: Option<u64>,
    warmup_intervals: Option<u32>,
}

impl SamplingFlags {
    fn resolve(&self) -> Result<Option<Sampling>, String> {
        if !self.sampled && self.interval_insns.is_none() && self.warmup_intervals.is_none() {
            return Ok(None);
        }
        let interval_insns = self.interval_insns.unwrap_or(10_000);
        if interval_insns == 0 {
            return Err("--interval-insns must be at least 1".to_string());
        }
        Ok(Some(Sampling { interval_insns, warmup_intervals: self.warmup_intervals.unwrap_or(1) }))
    }
}

fn parse_campaign(args: &[String]) -> Result<CampaignOpts, String> {
    let mut o = CampaignOpts {
        name: "campaign".to_string(),
        models: CommModel::ALL.to_vec(),
        scale: Scale::Small,
        kernels: Vec::new(),
        jobs: dmdp_harness::default_workers(),
        out: None,
        force: false,
        quiet: false,
        patch: CfgPatch::default(),
        variants: Vec::new(),
        batch_variants: true,
        sampling: None,
    };
    let mut sampling = SamplingFlags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().ok_or_else(|| format!("{a} needs a value"));
        match a.as_str() {
            "--name" => o.name = val()?,
            "--model" => o.models = parse_models(&val()?)?,
            "--scale" => o.scale = parse_scale(&val()?)?,
            "--kernel" => o.kernels.push(val()?),
            "--jobs" => {
                o.jobs = val()?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if o.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--out" => o.out = Some(PathBuf::from(val()?)),
            "--force" => o.force = true,
            "--quiet" => o.quiet = true,
            "--width" => o.patch.width = Some(val()?.parse().map_err(|e| format!("--width: {e}"))?),
            "--rob" => o.patch.rob = Some(val()?.parse().map_err(|e| format!("--rob: {e}"))?),
            "--prf" => o.patch.prf = Some(val()?.parse().map_err(|e| format!("--prf: {e}"))?),
            "--sb" => o.patch.sb = Some(val()?.parse().map_err(|e| format!("--sb: {e}"))?),
            "--rmo" => o.patch.rmo = true,
            "--variant" => o.variants.push(parse_variant(&val()?)?),
            "--batch-variants" => o.batch_variants = parse_on_off("--batch-variants", &val()?)?,
            "--sampled" => sampling.sampled = true,
            "--interval-insns" => {
                sampling.interval_insns =
                    Some(val()?.parse().map_err(|e| format!("--interval-insns: {e}"))?);
            }
            "--warmup-intervals" => {
                sampling.warmup_intervals =
                    Some(val()?.parse().map_err(|e| format!("--warmup-intervals: {e}"))?);
            }
            other => return Err(format!("unknown option `{other}` (see `dmdp campaign --help`)")),
        }
    }
    if !o.variants.is_empty() && !o.patch.is_empty() {
        return Err("--variant cannot be combined with bare --width/--rob/--prf/--sb/--rmo; fold the overrides into a variant spec".to_string());
    }
    o.sampling = sampling.resolve()?;
    Ok(o)
}

fn cmd_campaign(args: &[String]) -> CliResult {
    let o = parse_campaign(args)?;
    let out = o.out.clone().unwrap_or_else(|| PathBuf::from(format!("bench-results/{}.json", o.name)));
    let mut spec = CampaignSpec::new(&o.name, o.scale).models(o.models.clone());
    if !o.kernels.is_empty() {
        spec = spec.kernels(o.kernels.clone());
    }
    let n_variants = if !o.variants.is_empty() {
        spec = spec.variants(o.variants.clone());
        o.variants.len()
    } else if !o.patch.is_empty() {
        spec = spec.variants([("custom".to_string(), o.patch.clone())]);
        1
    } else {
        1
    };
    let sampled_note = o
        .sampling
        .map(|s| format!(", sampled ({} insns × {} warmup)", s.interval_insns, s.warmup_intervals))
        .unwrap_or_default();
    // Count jobs before attaching sampling — the count is identical and
    // this keeps the expensive bundle builds inside `run` only.
    let n_jobs = spec.jobs()?.len();
    if let Some(s) = o.sampling {
        spec = spec.sampled(s.interval_insns, s.warmup_intervals);
    }
    println!(
        "campaign `{}`: {} jobs ({} kernels × {} models × {} variants), scale {}{sampled_note}, {} workers -> {}",
        o.name,
        n_jobs,
        n_jobs / (o.models.len() * n_variants).max(1),
        o.models.len(),
        n_variants,
        o.scale.name(),
        o.jobs,
        out.display()
    );
    let opts = RunOptions {
        jobs: o.jobs,
        cache: (!o.force).then(|| out.clone()),
        progress: !o.quiet,
        batch_variants: o.batch_variants,
    };
    let campaign = spec.run(&opts)?;
    campaign.save(&out)?;
    println!(
        "\n{}: {} executed, {} cached, {:.2}s wall",
        out.display(),
        campaign.executed,
        campaign.cached,
        campaign.wall_s
    );
    for model in campaign.models() {
        let int = campaign.geomean_ipc(model, dmdp_workloads::Suite::Int);
        let fp = campaign.geomean_ipc(model, dmdp_workloads::Suite::Fp);
        if let (Some(int), Some(fp)) = (int, fp) {
            let speedup = campaign
                .geomean_speedup(CommModel::Baseline, model, dmdp_workloads::Suite::Int)
                .map(|s| format!("  Int speedup {s:.3}"))
                .unwrap_or_default();
            println!("{:9} geomean IPC: Int {int:.3}  FP {fp:.3}{speedup}", model.name());
        }
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult {
    let mut opts = ServeOptions {
        socket: PathBuf::from("dmdp.sock"),
        tcp: None,
        store_dir: PathBuf::from("dmdp-store"),
        jobs: 0, // 0 = all cores, resolved by the daemon
        store_cap_bytes: None,
        quiet: false,
        log: None,
        log_level: dmdp_obs::log::Level::Info,
        slow_job_ms: None,
        workers: 0,
        accept_workers: false,
        worker_exe: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().ok_or_else(|| format!("{a} needs a value"));
        match a.as_str() {
            "--socket" => opts.socket = PathBuf::from(val()?),
            "--tcp" => opts.tcp = Some(val()?),
            "--store" => opts.store_dir = PathBuf::from(val()?),
            "--cap-mb" => {
                let mb: u64 = val()?.parse().map_err(|e| format!("--cap-mb: {e}"))?;
                opts.store_cap_bytes = Some(mb * 1024 * 1024);
            }
            "--jobs" => {
                opts.jobs = val()?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--quiet" => opts.quiet = true,
            "--log" => opts.log = Some(PathBuf::from(val()?)),
            "--log-level" => {
                let v = val()?;
                opts.log_level = dmdp_obs::log::Level::parse(&v).ok_or_else(|| {
                    format!("--log-level: unknown level `{v}` (debug|info|warn|error)")
                })?;
            }
            "--slow-job-ms" => {
                opts.slow_job_ms =
                    Some(val()?.parse().map_err(|e| format!("--slow-job-ms: {e}"))?);
            }
            "--workers" => {
                opts.workers = val()?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--accept-workers" => opts.accept_workers = true,
            "--worker-exe" => opts.worker_exe = Some(PathBuf::from(val()?)),
            other => return Err(format!("unknown option `{other}` (see `dmdp serve --help`)").into()),
        }
    }
    if opts.workers > 0 && opts.tcp.is_none() {
        // Spawned workers dial back over TCP; an ephemeral loopback port
        // (printed in the `listening` event) keeps the flag optional.
        opts.tcp = Some("127.0.0.1:0".to_string());
    }
    serve(&opts)?;
    Ok(())
}

fn cmd_worker(args: &[String]) -> CliResult {
    let mut opts = dmdp_server::WorkerOptions {
        connect: String::new(),
        store_dir: PathBuf::from("dmdp-store"),
        jobs: 0, // 0 = one thread per affinity core
        cores: Vec::new(),
        name: "worker".to_string(),
        connect_retries: 10,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().ok_or_else(|| format!("{a} needs a value"));
        match a.as_str() {
            "--connect" => opts.connect = val()?,
            "--store" => opts.store_dir = PathBuf::from(val()?),
            "--jobs" => {
                opts.jobs = val()?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--cores" => {
                for part in val()?.split(',').filter(|p| !p.is_empty()) {
                    opts.cores.push(part.parse().map_err(|e| format!("--cores `{part}`: {e}"))?);
                }
            }
            "--name" => opts.name = val()?,
            "--connect-retries" => {
                opts.connect_retries =
                    val()?.parse().map_err(|e| format!("--connect-retries: {e}"))?;
            }
            "--quiet" => opts.quiet = true,
            other => {
                return Err(format!("unknown option `{other}` (see `dmdp worker --help`)").into())
            }
        }
    }
    if opts.connect.is_empty() {
        return Err("dmdp worker needs --connect HOST:PORT (see `dmdp worker --help`)".into());
    }
    let report = dmdp_server::run_worker(&opts)?;
    println!(
        "worker `{}` done: {} groups, {} executed, {} store hits",
        opts.name, report.groups, report.executed, report.store_hits
    );
    Ok(())
}

struct SubmitOpts {
    socket: PathBuf,
    tcp: Option<String>,
    request: SubmitRequest,
    kernels: Vec<String>,
    patch: CfgPatch,
    variants: Vec<(String, CfgPatch)>,
    out: Option<PathBuf>,
    quiet: bool,
    connect_retries: u32,
    mode: SubmitMode,
}

enum SubmitMode {
    Campaign,
    Stats,
    Shutdown,
    Ping,
}

fn parse_submit(args: &[String]) -> Result<SubmitOpts, String> {
    let mut o = SubmitOpts {
        socket: PathBuf::from("dmdp.sock"),
        tcp: None,
        request: SubmitRequest::new("campaign", Scale::Small),
        kernels: Vec::new(),
        patch: CfgPatch::default(),
        variants: Vec::new(),
        out: None,
        quiet: false,
        connect_retries: 3,
        mode: SubmitMode::Campaign,
    };
    let mut sampling = SamplingFlags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().ok_or_else(|| format!("{a} needs a value"));
        match a.as_str() {
            "--socket" => o.socket = PathBuf::from(val()?),
            "--tcp" => o.tcp = Some(val()?),
            "--name" => o.request.name = val()?,
            "--model" => o.request.models = parse_models(&val()?)?,
            "--scale" => o.request.scale = parse_scale(&val()?)?,
            "--kernel" => o.kernels.push(val()?),
            "--out" => o.out = Some(PathBuf::from(val()?)),
            "--quiet" => o.quiet = true,
            "--width" => o.patch.width = Some(val()?.parse().map_err(|e| format!("--width: {e}"))?),
            "--rob" => o.patch.rob = Some(val()?.parse().map_err(|e| format!("--rob: {e}"))?),
            "--prf" => o.patch.prf = Some(val()?.parse().map_err(|e| format!("--prf: {e}"))?),
            "--sb" => o.patch.sb = Some(val()?.parse().map_err(|e| format!("--sb: {e}"))?),
            "--rmo" => o.patch.rmo = true,
            "--variant" => o.variants.push(parse_variant(&val()?)?),
            "--batch-variants" => o.request.batch_variants = parse_on_off("--batch-variants", &val()?)?,
            "--sampled" => sampling.sampled = true,
            "--interval-insns" => {
                sampling.interval_insns =
                    Some(val()?.parse().map_err(|e| format!("--interval-insns: {e}"))?);
            }
            "--warmup-intervals" => {
                sampling.warmup_intervals =
                    Some(val()?.parse().map_err(|e| format!("--warmup-intervals: {e}"))?);
            }
            "--connect-retries" => {
                o.connect_retries =
                    val()?.parse().map_err(|e| format!("--connect-retries: {e}"))?;
            }
            "--stats" => o.mode = SubmitMode::Stats,
            "--shutdown" => o.mode = SubmitMode::Shutdown,
            "--ping" => o.mode = SubmitMode::Ping,
            other => return Err(format!("unknown option `{other}` (see `dmdp submit --help`)")),
        }
    }
    if !o.kernels.is_empty() {
        o.request.kernels = Some(o.kernels.clone());
    }
    if !o.variants.is_empty() && !o.patch.is_empty() {
        return Err("--variant cannot be combined with bare --width/--rob/--prf/--sb/--rmo; fold the overrides into a variant spec".to_string());
    }
    if !o.variants.is_empty() {
        o.request.variants = o.variants.clone();
    } else if !o.patch.is_empty() {
        o.request.variants = vec![("custom".to_string(), o.patch.clone())];
    }
    o.request.sampling = sampling.resolve()?;
    o.request.watch = !o.quiet;
    Ok(o)
}

fn cmd_submit(args: &[String]) -> CliResult {
    let o = parse_submit(args)?;
    let mut client = match &o.tcp {
        Some(addr) => Client::connect_tcp_retry(addr, o.connect_retries)?,
        None => Client::connect_unix_retry(&o.socket, o.connect_retries)?,
    };
    match o.mode {
        SubmitMode::Ping => {
            let protocol = client.ping()?;
            println!("daemon is up (protocol {protocol})");
            return Ok(());
        }
        SubmitMode::Stats => {
            print!("{}", client.stats()?.pretty());
            println!();
            return Ok(());
        }
        SubmitMode::Shutdown => {
            client.shutdown()?;
            println!("daemon drained and stopped");
            return Ok(());
        }
        SubmitMode::Campaign => {}
    }
    let out = o
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("bench-results/{}.json", o.request.name)));
    let campaign = client.submit(&o.request, |ev| {
        if ev.get("type").and_then(Json::as_str) == Some("finished") {
            let field = |k: &str| ev.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
            println!(
                "{:>9} × {:<8} [{}]  IPC {:.3}  ({})",
                field("workload"),
                field("model"),
                field("variant"),
                ev.get("ipc").and_then(Json::as_f64).unwrap_or(0.0),
                field("source"),
            );
        }
    })?;
    campaign.save(&out)?;
    println!(
        "{}: {} jobs, {} executed, {} cached, {:.2}s wall (daemon)",
        out.display(),
        campaign.jobs.len(),
        campaign.executed,
        campaign.cached,
        campaign.wall_s
    );
    Ok(())
}

fn connect_daemon(socket: &Path, tcp: Option<&str>) -> Result<Client, String> {
    match tcp {
        Some(addr) => Client::connect_tcp(addr),
        None => Client::connect_unix(socket),
    }
}

fn cmd_metrics(args: &[String]) -> CliResult {
    let mut socket = PathBuf::from("dmdp.sock");
    let mut tcp: Option<String> = None;
    let mut prom = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().ok_or_else(|| format!("{a} needs a value"));
        match a.as_str() {
            "--socket" => socket = PathBuf::from(val()?),
            "--tcp" => tcp = Some(val()?),
            "--prom" => prom = true,
            other => {
                return Err(format!("unknown option `{other}` (see `dmdp metrics --help`)").into())
            }
        }
    }
    if prom {
        let text = match &tcp {
            Some(addr) => dmdp_server::scrape_metrics_tcp(addr)?,
            None => dmdp_server::scrape_metrics_unix(&socket)?,
        };
        print!("{text}");
        return Ok(());
    }
    let mut client = connect_daemon(&socket, tcp.as_deref())?;
    print!("{}", client.metrics()?.pretty());
    println!();
    Ok(())
}

/// One metric series as `dmdp top` tracks it between frames.
struct TopRow {
    key: String,
    kind: String,
    value: f64,
    count: f64,
    sum: f64,
    /// `(le, cumulative_count)` pairs; the overflow bucket's `le` is
    /// +Inf (decoded from the wire's -1 sentinel).
    buckets: Vec<(f64, f64)>,
}

fn parse_metrics_rows(msg: &Json) -> Vec<TopRow> {
    let Some(entries) = msg.get("metrics").and_then(Json::as_arr) else {
        return Vec::new();
    };
    entries
        .iter()
        .filter_map(|e| {
            let name = e.get("name").and_then(Json::as_str)?;
            let mut key = name.to_string();
            if let Some(Json::Obj(labels)) = e.get("labels") {
                let parts: Vec<String> = labels
                    .iter()
                    .filter_map(|(k, v)| v.as_str().map(|v| format!("{k}=\"{v}\"")))
                    .collect();
                if !parts.is_empty() {
                    key = format!("{name}{{{}}}", parts.join(","));
                }
            }
            let num = |k: &str| e.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            let buckets = e
                .get("buckets")
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|pair| {
                            let pair = pair.as_arr()?;
                            let le = pair.first()?.as_f64()?;
                            let cum = pair.get(1)?.as_f64()?;
                            Some((if le < 0.0 { f64::INFINITY } else { le }, cum))
                        })
                        .collect()
                })
                .unwrap_or_default();
            Some(TopRow {
                key,
                kind: e.get("kind").and_then(Json::as_str).unwrap_or("?").to_string(),
                value: num("value"),
                count: num("count"),
                sum: num("sum"),
                buckets,
            })
        })
        .collect()
}

/// Cumulative count at `le` in a sparse `(le, cumulative)` list: zero
/// buckets are omitted on the wire, so the cumulative value at any
/// bound is that of the closest listed bound at or below it.
fn cum_at(pairs: &[(f64, f64)], le: f64) -> f64 {
    pairs.iter().filter(|(l, _)| *l <= le).map(|(_, c)| *c).fold(0.0, f64::max)
}

/// Approximate quantile of the observations between two cumulative
/// snapshots of one histogram: the smallest bucket bound covering the
/// target rank within the window.
fn window_quantile(now: &[(f64, f64)], prev: &[(f64, f64)], q: f64) -> f64 {
    let total = cum_at(now, f64::INFINITY) - cum_at(prev, f64::INFINITY);
    if total <= 0.0 {
        return 0.0;
    }
    let target = (q * total).ceil().max(1.0);
    for (le, _) in now {
        if cum_at(now, *le) - cum_at(prev, *le) >= target {
            return *le;
        }
    }
    f64::INFINITY
}

/// `1234567` → `1.2M`; keeps the `dmdp top` tables narrow.
fn fmt_si(v: f64) -> String {
    if !v.is_finite() {
        return "inf".to_string();
    }
    let (scaled, suffix) = if v.abs() >= 1e9 {
        (v / 1e9, "G")
    } else if v.abs() >= 1e6 {
        (v / 1e6, "M")
    } else if v.abs() >= 1e3 {
        (v / 1e3, "k")
    } else {
        (v, "")
    };
    if suffix.is_empty() && scaled.fract() == 0.0 {
        format!("{scaled:.0}")
    } else {
        format!("{scaled:.1}{suffix}")
    }
}

/// The `worker` label value of a series key like
/// `dmdp_dispatch_total{worker="w0"}`, if it carries one.
fn worker_label(key: &str) -> Option<String> {
    let (_, rest) = key.split_once("{worker=\"")?;
    let (name, _) = rest.split_once('"')?;
    Some(name.to_string())
}

fn render_top_frame(
    rows: &[TopRow],
    prev: Option<&std::collections::HashMap<String, TopRow>>,
    dt: f64,
    frame: usize,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "dmdp top — frame {frame}, window {dt:.1}s\n");
    let rate = |now: f64, then: Option<f64>| -> String {
        match then {
            Some(then) if dt > 0.0 => format!("{}/s", fmt_si((now - then).max(0.0) / dt)),
            _ => "-".to_string(),
        }
    };
    let _ = writeln!(out, "{:<52} {:>10} {:>10}", "COUNTERS", "TOTAL", "RATE");
    for r in rows.iter().filter(|r| r.kind == "counter") {
        let then = prev.and_then(|p| p.get(&r.key)).map(|p| p.value);
        let _ = writeln!(out, "{:<52} {:>10} {:>10}", r.key, fmt_si(r.value), rate(r.value, then));
    }
    let _ = writeln!(out, "\n{:<52} {:>10}", "GAUGES", "VALUE");
    for r in rows.iter().filter(|r| r.kind == "gauge") {
        let _ = writeln!(out, "{:<52} {:>10}", r.key, fmt_si(r.value));
    }
    // Per-worker summary of a sharded daemon, folded from the
    // `{worker="..."}`-labelled series.
    let mut workers: std::collections::BTreeMap<String, (f64, f64, Option<f64>)> =
        std::collections::BTreeMap::new();
    for r in rows {
        let Some(name) = worker_label(&r.key) else { continue };
        let entry = workers.entry(name).or_insert((0.0, 0.0, None));
        if r.key.starts_with("dmdp_worker_inflight") {
            entry.0 = r.value;
        } else if r.key.starts_with("dmdp_dispatch_total") {
            entry.1 = r.value;
            entry.2 = prev.and_then(|p| p.get(&r.key)).map(|p| p.value);
        }
    }
    if !workers.is_empty() {
        let _ =
            writeln!(out, "\n{:<30} {:>10} {:>12} {:>10}", "WORKERS", "INFLIGHT", "DISPATCHED", "RATE");
        for (name, (inflight, dispatched, then)) in &workers {
            let _ = writeln!(
                out,
                "{:<30} {:>10} {:>12} {:>10}",
                name,
                fmt_si(*inflight),
                fmt_si(*dispatched),
                rate(*dispatched, *then)
            );
        }
    }
    let _ = writeln!(
        out,
        "\n{:<42} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "HISTOGRAMS", "COUNT", "OBS/s", "MEAN", "p50", "p99"
    );
    for r in rows.iter().filter(|r| r.kind == "histogram") {
        let then = prev.and_then(|p| p.get(&r.key));
        let (p50, p99) = match then {
            // Percentiles over the refresh window when it saw
            // observations, else over the whole run.
            Some(p) if r.count > p.count => (
                window_quantile(&r.buckets, &p.buckets, 0.50),
                window_quantile(&r.buckets, &p.buckets, 0.99),
            ),
            _ => (window_quantile(&r.buckets, &[], 0.50), window_quantile(&r.buckets, &[], 0.99)),
        };
        let mean = if r.count > 0.0 { r.sum / r.count } else { 0.0 };
        let _ = writeln!(
            out,
            "{:<42} {:>9} {:>9} {:>9} {:>9} {:>9}",
            r.key,
            fmt_si(r.count),
            rate(r.count, then.map(|p| p.count)),
            fmt_si(mean),
            fmt_si(p50),
            fmt_si(p99)
        );
    }
    out
}

fn cmd_top(args: &[String]) -> CliResult {
    let mut socket = PathBuf::from("dmdp.sock");
    let mut tcp: Option<String> = None;
    let mut interval = 2.0f64;
    let mut iterations = 0usize;
    let mut no_clear = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().ok_or_else(|| format!("{a} needs a value"));
        match a.as_str() {
            "--socket" => socket = PathBuf::from(val()?),
            "--tcp" => tcp = Some(val()?),
            "--interval" => {
                interval = val()?.parse().map_err(|e| format!("--interval: {e}"))?;
                if interval <= 0.0 || !interval.is_finite() {
                    return Err("--interval must be positive".into());
                }
            }
            "--iterations" => {
                iterations = val()?.parse().map_err(|e| format!("--iterations: {e}"))?;
            }
            "--no-clear" => no_clear = true,
            other => return Err(format!("unknown option `{other}` (see `dmdp top --help`)").into()),
        }
    }
    let mut client = connect_daemon(&socket, tcp.as_deref())?;
    let mut prev: Option<(std::time::Instant, std::collections::HashMap<String, TopRow>)> = None;
    let mut frame = 0usize;
    loop {
        frame += 1;
        let msg = client.metrics()?;
        let now = std::time::Instant::now();
        let rows = parse_metrics_rows(&msg);
        let dt = prev.as_ref().map(|(t, _)| now.duration_since(*t).as_secs_f64()).unwrap_or(0.0);
        let text = render_top_frame(rows.as_slice(), prev.as_ref().map(|(_, m)| m), dt, frame);
        if !no_clear {
            // Clear and home — a cheap full-screen redraw.
            print!("\x1b[2J\x1b[H");
        }
        print!("{text}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        prev = Some((now, rows.into_iter().map(|r| (r.key.clone(), r)).collect()));
        if iterations != 0 && frame >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

fn print_report(r: &SimReport, energy: bool) {
    let s = &r.stats;
    println!("\n== {} ==", r.model.name());
    println!("  cycles            {:>12}", s.cycles);
    println!("  instructions      {:>12}   IPC {:.3}", s.retired_insns, r.ipc());
    println!("  uops              {:>12}   (+{} predication)", s.retired_uops, s.predication_uops);
    println!("  loads / stores    {:>12} / {}", s.retired_loads, s.retired_stores);
    println!(
        "  branch mispredict {:>12}   memdep mispredict {} ({:.2} MPKI)",
        s.branch_mispredicts,
        s.mem_dep_mispredicts,
        s.mem_dep_mpki()
    );
    println!(
        "  re-executions     {:>12}   stall cycles {} (reexec) / {} (SB full)",
        s.reexecutions, s.reexec_stall_cycles, s.sb_full_stall_cycles
    );
    use dmdp_stats::LoadSource;
    let ll = &s.load_latency;
    println!("  load classes      direct {} | bypassed {} | delayed {} | predicated {}",
        ll.count(LoadSource::Direct),
        ll.count(LoadSource::Bypassed),
        ll.count(LoadSource::Delayed),
        ll.count(LoadSource::Predicated));
    println!("  mean load latency {:>12.2} cycles", ll.overall_mean());
    println!(
        "  scheduler         {:>12.2} mean ready | {:.1} wakeups/kc | {:.1} calendar pops/kc",
        s.sched.mean_ready_len(s.cycles),
        s.sched.wakeups_per_kilocycle(s.cycles),
        s.sched.calendar_pops_per_kilocycle(s.cycles)
    );
    println!(
        "  plan cache        {:>12} static plans built | {} dynamic fetches through cache",
        s.plan.builds, s.plan.hits
    );
    if energy {
        println!("  energy            {:>12.1} nJ   EDP {:.3e}", s.energy.total_nj(), s.edp());
        for (ev, n, nj) in s.energy.breakdown().into_iter().take(8) {
            println!("    {:14} {:>10} events {:>12.1} nJ", ev.label(), n, nj);
        }
    }
}

fn cmd_asm(args: &[String]) -> CliResult {
    let (input, output) = match args {
        [i, o_flag, o] if o_flag == "-o" => (i, o.clone()),
        [i] => (i, format!("{i}.img")),
        _ => return Err("usage: dmdp asm FILE.s [-o FILE.img]".into()),
    };
    let src = std::fs::read_to_string(input)?;
    let program = asm::assemble_named(input, &src)?;
    std::fs::write(&output, program.to_image())?;
    println!(
        "{input}: {} instructions, {} data bytes -> {output}",
        program.len(),
        program.data().len()
    );
    Ok(())
}

fn cmd_disasm(args: &[String]) -> CliResult {
    let [input] = args else {
        return Err("usage: dmdp disasm FILE.img".into());
    };
    let bytes = std::fs::read(input)?;
    let program = Program::from_image(&bytes)?;
    println!("# {} (entry {})", program.name(), program.entry());
    print!("{}", program.listing());
    Ok(())
}
