//! Property tests for the assembler: the disassembly listing of any
//! program re-assembles to the identical program (mnemonics, operand
//! forms and numeric targets all round-trip), and memory stays
//! little-endian coherent under random access sequences.

use dmdp_isa::{asm, Insn, MemWidth, Program, Reg, SparseMem};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_insn(text_len: u32) -> impl Strategy<Value = Insn> {
    let r = reg;
    prop_oneof![
        (r(), r(), r()).prop_map(|(a, b, c)| Insn::add(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Insn::sub(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Insn::xor(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Insn::slt(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Insn::mul(a, b, c)),
        (r(), r(), -32768i32..32768).prop_map(|(a, b, i)| Insn::addi(a, b, i)),
        (r(), r(), 0i32..65536).prop_map(|(a, b, i)| Insn::ori(a, b, i)),
        (r(), r(), -32768i32..32768).prop_map(|(a, b, i)| Insn::muli(a, b, i)),
        (r(), 0i32..65536).prop_map(|(a, i)| Insn::lui(a, i)),
        (r(), r(), -256i32..256).prop_map(|(a, b, o)| Insn::lw(a, b, o * 4)),
        (r(), r(), -256i32..256).prop_map(|(a, b, o)| Insn::lhu(a, b, o * 2)),
        (r(), r(), -256i32..256).prop_map(|(a, b, o)| Insn::lb(a, b, o)),
        (r(), r(), -256i32..256).prop_map(|(a, b, o)| Insn::sw(a, b, o * 4)),
        (r(), r(), -256i32..256).prop_map(|(a, b, o)| Insn::sh(a, b, o * 2)),
        (r(), r(), 0..text_len).prop_map(|(a, b, t)| Insn::beq(a, b, t)),
        (r(), 0..text_len).prop_map(|(a, t)| Insn::bgtz(a, t)),
        (0..text_len).prop_map(Insn::j),
        r().prop_map(Insn::jr),
        Just(Insn::nop()),
    ]
}

proptest! {
    #[test]
    fn listing_reassembles_identically(
        insns in prop::collection::vec(arb_insn(32), 1..32)
    ) {
        let mut text = insns;
        text.push(Insn::halt());
        let original = Program::new("p", text, 0x10000, Vec::new(), 0);
        let listing: String = original
            .listing()
            .lines()
            .map(|l| l.split_once(':').expect("pc prefix").1.trim().to_string() + "\n")
            .collect();
        let reassembled = asm::assemble(&listing).expect("listing must be valid assembly");
        prop_assert_eq!(original.text(), reassembled.text());
    }

    #[test]
    fn sparse_memory_byte_coherence(
        ops in prop::collection::vec(
            (0u32..256, any::<u32>(), 0u8..3),
            1..64
        )
    ) {
        let mut mem = SparseMem::new();
        let mut shadow = [0u8; 1024];
        for (slot, value, width_sel) in ops {
            let width = match width_sel {
                0 => MemWidth::Byte,
                1 => MemWidth::Half,
                _ => MemWidth::Word,
            };
            let addr = slot * 4; // word-aligned, valid for every width
            mem.write(addr, width, value);
            for i in 0..width.bytes() {
                shadow[(addr + i) as usize] = (value >> (8 * i)) as u8;
            }
        }
        for a in 0..1024u32 {
            prop_assert_eq!(mem.read_byte(a), shadow[a as usize]);
        }
    }
}

proptest! {
    /// Binary round trip: every constructible instruction survives
    /// encode/decode, and whole programs survive imaging.
    #[test]
    fn binary_encoding_round_trips(insns in prop::collection::vec(arb_insn(64), 1..48)) {
        for i in &insns {
            prop_assert_eq!(dmdp_isa::encode::decode(dmdp_isa::encode::encode(*i)).unwrap(), *i);
        }
        let mut text = insns;
        text.push(Insn::halt());
        let p = Program::new("bin", text, 0x10000, vec![1, 2, 3, 4], 0);
        let q = Program::from_image(&p.to_image()).unwrap();
        prop_assert_eq!(p.text(), q.text());
        prop_assert_eq!(p.data(), q.data());
    }
}
