//! Property tests for the assembler: the disassembly listing of any
//! program re-assembles to the identical program (mnemonics, operand
//! forms and numeric targets all round-trip), and memory stays
//! little-endian coherent under random access sequences.
//!
//! Cases are drawn from the deterministic [`dmdp_prng::Prng`] stream so
//! the suite needs no external property-testing dependency and every
//! failure reproduces exactly.

use dmdp_isa::{asm, Insn, MemWidth, Program, Reg, SparseMem};
use dmdp_prng::Prng;

fn reg(r: &mut Prng) -> Reg {
    Reg::new(r.below(32) as u8)
}

fn arb_insn(r: &mut Prng, text_len: u32) -> Insn {
    let (a, b, c) = (reg(r), reg(r), reg(r));
    match r.below(19) {
        0 => Insn::add(a, b, c),
        1 => Insn::sub(a, b, c),
        2 => Insn::xor(a, b, c),
        3 => Insn::slt(a, b, c),
        4 => Insn::mul(a, b, c),
        5 => Insn::addi(a, b, r.range_i32(-32768, 32767)),
        6 => Insn::ori(a, b, r.range_i32(0, 65535)),
        7 => Insn::muli(a, b, r.range_i32(-32768, 32767)),
        8 => Insn::lui(a, r.range_i32(0, 65535)),
        9 => Insn::lw(a, b, r.range_i32(-256, 255) * 4),
        10 => Insn::lhu(a, b, r.range_i32(-256, 255) * 2),
        11 => Insn::lb(a, b, r.range_i32(-256, 255)),
        12 => Insn::sw(a, b, r.range_i32(-256, 255) * 4),
        13 => Insn::sh(a, b, r.range_i32(-256, 255) * 2),
        14 => Insn::beq(a, b, r.below(text_len)),
        15 => Insn::bgtz(a, r.below(text_len)),
        16 => Insn::j(r.below(text_len)),
        17 => Insn::jr(a),
        _ => Insn::nop(),
    }
}

fn arb_insns(r: &mut Prng, text_len: u32, min: usize, max: usize) -> Vec<Insn> {
    let n = min + r.index(max - min);
    (0..n).map(|_| arb_insn(r, text_len)).collect()
}

#[test]
fn listing_reassembles_identically() {
    let mut r = Prng::new(0xA53A_0001);
    for _ in 0..256 {
        let mut text = arb_insns(&mut r, 32, 1, 32);
        text.push(Insn::halt());
        let original = Program::new("p", text, 0x10000, Vec::new(), 0);
        let listing: String = original
            .listing()
            .lines()
            .map(|l| l.split_once(':').expect("pc prefix").1.trim().to_string() + "\n")
            .collect();
        let reassembled = asm::assemble(&listing).expect("listing must be valid assembly");
        assert_eq!(original.text(), reassembled.text(), "listing:\n{}", original.listing());
    }
}

#[test]
fn sparse_memory_byte_coherence() {
    let mut r = Prng::new(0xA53A_0002);
    for _ in 0..256 {
        let mut mem = SparseMem::new();
        let mut shadow = [0u8; 1024];
        let ops = 1 + r.index(63);
        for _ in 0..ops {
            let slot = r.below(256);
            let value = r.next_u32();
            let width = match r.below(3) {
                0 => MemWidth::Byte,
                1 => MemWidth::Half,
                _ => MemWidth::Word,
            };
            let addr = slot * 4; // word-aligned, valid for every width
            mem.write(addr, width, value);
            for i in 0..width.bytes() {
                shadow[(addr + i) as usize] = (value >> (8 * i)) as u8;
            }
        }
        for a in 0..1024u32 {
            assert_eq!(mem.read_byte(a), shadow[a as usize], "byte at {a:#x}");
        }
    }
}

/// Binary round trip: every constructible instruction survives
/// encode/decode, and whole programs survive imaging.
#[test]
fn binary_encoding_round_trips() {
    let mut r = Prng::new(0xA53A_0003);
    for _ in 0..256 {
        let insns = arb_insns(&mut r, 64, 1, 48);
        for i in &insns {
            assert_eq!(dmdp_isa::encode::decode(dmdp_isa::encode::encode(*i)).unwrap(), *i);
        }
        let mut text = insns;
        text.push(Insn::halt());
        let p = Program::new("bin", text, 0x10000, vec![1, 2, 3, 4], 0);
        let q = Program::from_image(&p.to_image()).unwrap();
        assert_eq!(p.text(), q.text());
        assert_eq!(p.data(), q.data());
    }
}
