//! Property tests for the partial-word forwarding rules (paper §IV-D):
//! the shift/mask/extend algebra must agree with a byte-array reference
//! model for every (store, load) geometry.
//!
//! The geometry space is tiny (3 widths × 4 lanes each side × sign), so
//! these tests enumerate it *exhaustively* and draw only the data values
//! from the deterministic [`dmdp_prng::Prng`] stream.

use dmdp_isa::bab::{self, Predicate};
use dmdp_isa::MemWidth;
use dmdp_prng::Prng;

const WIDTHS: [MemWidth; 3] = [MemWidth::Byte, MemWidth::Half, MemWidth::Word];

/// An aligned address for `w` within one word at `base`.
fn aligned_addr(base: u32, w: MemWidth, lane: u32) -> u32 {
    base + (lane % (4 / w.bytes())) * w.bytes()
}

/// Byte-array reference: write the store into a word image, read the load
/// back out.
fn reference_forward(
    store_addr: u32,
    sw: MemWidth,
    store_val: u32,
    load_addr: u32,
    lw: MemWidth,
    signed: bool,
) -> u32 {
    let mut bytes = [0u8; 4];
    for i in 0..sw.bytes() {
        bytes[((store_addr & 3) + i) as usize] = (store_val >> (8 * i)) as u8;
    }
    let mut raw: u32 = 0;
    for i in 0..lw.bytes() {
        raw |= (bytes[((load_addr & 3) + i) as usize] as u32) << (8 * i);
    }
    match (lw, signed) {
        (MemWidth::Byte, true) => raw as u8 as i8 as i32 as u32,
        (MemWidth::Half, true) => raw as u16 as i16 as i32 as u32,
        _ => raw,
    }
}

/// Every (store width, load width, store lane, load lane, signedness)
/// geometry, with `values_per_geometry` random data values each.
fn for_each_geometry(seed: u64, values_per_geometry: usize, mut f: impl FnMut(MemWidth, MemWidth, u32, u32, u32, bool)) {
    let mut r = Prng::new(seed);
    for sw in WIDTHS {
        for lw in WIDTHS {
            for s_lane in 0..4u32 {
                for l_lane in 0..4u32 {
                    for signed in [false, true] {
                        for _ in 0..values_per_geometry {
                            f(sw, lw, s_lane, l_lane, r.next_u32(), signed);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn forward_matches_byte_array_reference() {
    for_each_geometry(0xBAB_0001, 8, |sw, lw, s_lane, l_lane, value, signed| {
        let base = 0x1000u32;
        let store_addr = aligned_addr(base, sw, s_lane);
        let load_addr = aligned_addr(base, lw, l_lane);
        let got = bab::forward(store_addr, sw, value, load_addr, lw, signed);
        let store_bab = bab::bab(store_addr, sw);
        let load_bab = bab::bab(load_addr, lw);
        if bab::covers(store_bab, load_bab) {
            let want = reference_forward(store_addr, sw, value, load_addr, lw, signed);
            assert_eq!(got, Some(want), "{sw:?}@{store_addr:#x} -> {lw:?}@{load_addr:#x} signed={signed}");
        } else {
            assert_eq!(got, None, "{sw:?}@{store_addr:#x} -> {lw:?}@{load_addr:#x}");
        }
    });
}

#[test]
fn predicate_encoding_round_trips() {
    // The full predicate space: 2 × 4 × 4 — enumerate it all.
    for matches in [false, true] {
        for s in 0u8..4 {
            for l in 0u8..4 {
                let p = Predicate { matches, store_lo2: s, load_lo2: l };
                assert_eq!(Predicate::decode(p.encode()), p);
                // The guard bit is bit zero, as the CMOV expects.
                assert_eq!(p.encode() & 1, matches as u32);
            }
        }
    }
}

#[test]
fn cmp_and_cmov_agree_with_forward() {
    for_each_geometry(0xBAB_0002, 8, |sw, lw, s_lane, l_lane, value, signed| {
        let base = 0x2000u32;
        let store_addr = aligned_addr(base, sw, s_lane);
        let load_addr = aligned_addr(base, lw, l_lane);
        let p = Predicate::compare(store_addr, sw, load_addr, lw);
        match bab::forward(store_addr, sw, value, load_addr, lw, signed) {
            Some(want) => {
                // The CMP must accept exactly the forwardable geometries,
                // and the true-path CMOV must produce the forwarded value.
                assert!(p.matches);
                assert_eq!(p.apply_forward(sw, value, lw, signed), want);
            }
            None => assert!(!p.matches),
        }
    });
}

#[test]
fn covers_is_subset_relation() {
    // 16 × 16 byte-availability bitmaps — fully enumerable.
    for a in 0u8..16 {
        for b in 0u8..16 {
            assert_eq!(bab::covers(a, b), a & b == b);
            // Reflexive and monotone under union.
            assert!(bab::covers(a | b, b));
        }
    }
}
