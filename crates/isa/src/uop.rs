//! The micro-op (µop) layer.
//!
//! The paper's machine splits every memory instruction at decode into an
//! **address-generation µop** (`AGI`) that computes *and translates* the
//! effective address into a dedicated physical register, followed by the
//! memory-access µop proper (paper Fig. 7). The `AGI` destination is the
//! hardware-only logical register `$32` ([`Reg::ADDR_TMP`]); renaming gives
//! every memory instruction its own physical copy. This is what removes
//! the load/store queues: addresses live in the register file and are read
//! back at retire/commit.
//!
//! DMDP additionally inserts, at rename time for low-confidence loads, a
//! `CMP` µop producing a predicate in `$34` and a pair of `CMOV`s
//! (paper Fig. 8). Those µop kinds are defined here; the insertion logic
//! lives in `dmdp-core`.

use crate::insn::Insn;
use crate::op::{AluOp, BranchCond, MemWidth, Op};
use crate::reg::Reg;

/// The operation a µop performs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum UopKind {
    /// ALU operation, `rd = rs <op> (rt | imm)`.
    Alu(AluOp),
    /// Address generation + TLB translation: `rd = rs + imm`, flagged so
    /// the result is a *physical* address (paper §IV-A e).
    Agi,
    /// Cache access half of a load; the address comes from the `AGI`'s
    /// destination register (µop source `rs`).
    Load {
        /// Access width.
        width: MemWidth,
        /// Sub-word sign extension.
        signed: bool,
    },
    /// A store's data/address bookkeeping µop. Never dispatched to the
    /// out-of-order core: the store executes when it commits (§I).
    Store {
        /// Access width.
        width: MemWidth,
    },
    /// Conditional branch.
    Branch(BranchCond),
    /// Unconditional jump; `link` writes the return address, `indirect`
    /// takes the target from `rs`.
    Jump {
        /// Writes `pc+1` into `rd`.
        link: bool,
        /// Target comes from a register rather than the immediate.
        indirect: bool,
    },
    /// DMDP predicate computation: compares the predicted store's address
    /// register with the load's address register and writes an encoded
    /// [`crate::bab::Predicate`].
    Cmp {
        /// The predicted store's access width (known from the Store
        /// Register Buffer at insertion time).
        store_width: MemWidth,
        /// The load's access width.
        load_width: MemWidth,
    },
    /// NoSQ's "shift & mask instruction" for partial-word bypassing: the
    /// store and load addresses are unknown at rename, so the shift
    /// amounts are *predicted* (remembered from the last collision) and
    /// verified at retire (paper §IV-D's NoSQ comparison).
    ShiftMask {
        /// Predicted store access width.
        store_width: MemWidth,
        /// Predicted low bits of the store address.
        store_lo2: u8,
        /// Predicted low bits of the load address.
        load_lo2: u8,
        /// The load's width.
        load_width: MemWidth,
        /// The load's sign extension.
        load_signed: bool,
    },
    /// DMDP conditional move. The two `CMOV`s of a predication pair share
    /// one destination physical register; exactly one of them writes it.
    Cmov {
        /// Executes when the predicate is true (forward the store's data)
        /// vs false (use the value loaded from the cache).
        on_true: bool,
        /// Store width, for the partial-word shift.
        store_width: MemWidth,
        /// Load width, for the partial-word mask.
        load_width: MemWidth,
        /// Load sign extension.
        load_signed: bool,
    },
    /// Stops the machine.
    Halt,
    /// No operation.
    Nop,
}

impl UopKind {
    /// Functional-unit latency of this µop, excluding memory (loads take
    /// the cache access time determined by the memory model).
    pub fn latency(self) -> u8 {
        match self {
            UopKind::Alu(op) => op.latency(),
            // AGI includes the TLB lookup done in parallel with the add.
            UopKind::Agi => 1,
            UopKind::Cmp { .. } | UopKind::Cmov { .. } | UopKind::ShiftMask { .. } => 1,
            UopKind::Branch(_) | UopKind::Jump { .. } => 1,
            UopKind::Load { .. } | UopKind::Store { .. } | UopKind::Halt | UopKind::Nop => 1,
        }
    }

    /// Whether this µop is the cache-access half of a load.
    pub fn is_load(self) -> bool {
        matches!(self, UopKind::Load { .. })
    }

    /// Whether this µop is a store placeholder.
    pub fn is_store(self) -> bool {
        matches!(self, UopKind::Store { .. })
    }

    /// Whether this µop may redirect control flow.
    pub fn is_control(self) -> bool {
        matches!(self, UopKind::Branch(_) | UopKind::Jump { .. })
    }
}

/// A decoded µop over *logical* registers (renaming maps them to physical
/// registers inside `dmdp-core`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Uop {
    /// Operation.
    pub kind: UopKind,
    /// Logical destination (`Reg::ZERO` when none).
    pub rd: Reg,
    /// First logical source (`Reg::ZERO` when none).
    pub rs: Reg,
    /// Second logical source (`Reg::ZERO` when none).
    pub rt: Reg,
    /// Immediate operand.
    pub imm: i32,
}

impl Uop {
    /// Logical destination, `None` for `$0` (never renamed).
    pub fn dest(&self) -> Option<Reg> {
        (!self.rd.is_zero()).then_some(self.rd)
    }

    /// Logical sources, `None` entries for `$0`.
    pub fn sources(&self) -> [Option<Reg>; 2] {
        let f = |r: Reg| (!r.is_zero()).then_some(r);
        [f(self.rs), f(self.rt)]
    }
}

/// The µop expansion of one architectural instruction: at most two µops
/// (an optional `AGI` plus the main µop).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct UopSeq {
    uops: [Uop; 2],
    len: u8,
}

impl UopSeq {
    fn one(u: Uop) -> UopSeq {
        UopSeq { uops: [u, u], len: 1 }
    }

    fn two(a: Uop, b: Uop) -> UopSeq {
        UopSeq { uops: [a, b], len: 2 }
    }

    /// The µops, in program order.
    pub fn as_slice(&self) -> &[Uop] {
        &self.uops[..self.len as usize]
    }

    /// Number of µops (1 or 2).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false; expansion produces at least one µop.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl<'a> IntoIterator for &'a UopSeq {
    type Item = &'a Uop;
    type IntoIter = std::slice::Iter<'a, Uop>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Expands an architectural instruction into its µop sequence
/// (paper Fig. 7 a→b).
///
/// * `lw $9, 4($3)` → `agi $32, $3, 4` ; `load $9, ($32)`
/// * `sw $7, 8($8)` → `agi $32, $8, 8` ; `store $7, ($32)`
/// * everything else expands to itself.
///
/// # Example
///
/// ```
/// use dmdp_isa::{uop, Insn, Reg};
/// let seq = uop::expand(Insn::lw(Reg::new(9), Reg::new(3), 4));
/// assert_eq!(seq.len(), 2);
/// assert_eq!(seq.as_slice()[0].rd, Reg::ADDR_TMP);
/// ```
pub fn expand(insn: Insn) -> UopSeq {
    let agi = |base: Reg, imm: i32| Uop {
        kind: UopKind::Agi,
        rd: Reg::ADDR_TMP,
        rs: base,
        rt: Reg::ZERO,
        imm,
    };
    match insn.op {
        Op::Load { width, signed } => UopSeq::two(
            agi(insn.rs, insn.imm),
            Uop {
                kind: UopKind::Load { width, signed },
                rd: insn.rd,
                rs: Reg::ADDR_TMP,
                rt: Reg::ZERO,
                imm: 0,
            },
        ),
        Op::Store { width } => UopSeq::two(
            agi(insn.rs, insn.imm),
            Uop {
                kind: UopKind::Store { width },
                rd: Reg::ZERO,
                rs: Reg::ADDR_TMP,
                rt: insn.rt,
                imm: 0,
            },
        ),
        Op::Alu(op) => UopSeq::one(Uop {
            kind: UopKind::Alu(op),
            rd: insn.rd,
            rs: insn.rs,
            rt: insn.rt,
            imm: 0,
        }),
        Op::AluImm(op) => UopSeq::one(Uop {
            kind: UopKind::Alu(op),
            rd: insn.rd,
            rs: insn.rs,
            rt: Reg::ZERO,
            imm: insn.imm,
        }),
        Op::Branch(c) => UopSeq::one(Uop {
            kind: UopKind::Branch(c),
            rd: Reg::ZERO,
            rs: insn.rs,
            rt: insn.rt,
            imm: insn.imm,
        }),
        Op::Jump => UopSeq::one(Uop {
            kind: UopKind::Jump { link: false, indirect: false },
            rd: Reg::ZERO,
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            imm: insn.imm,
        }),
        Op::JumpAndLink => UopSeq::one(Uop {
            kind: UopKind::Jump { link: true, indirect: false },
            rd: insn.rd,
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            imm: insn.imm,
        }),
        Op::JumpReg => UopSeq::one(Uop {
            kind: UopKind::Jump { link: false, indirect: true },
            rd: Reg::ZERO,
            rs: insn.rs,
            rt: Reg::ZERO,
            imm: 0,
        }),
        Op::JumpAndLinkReg => UopSeq::one(Uop {
            kind: UopKind::Jump { link: true, indirect: true },
            rd: insn.rd,
            rs: insn.rs,
            rt: Reg::ZERO,
            imm: 0,
        }),
        Op::Nop => UopSeq::one(Uop {
            kind: UopKind::Nop,
            rd: Reg::ZERO,
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            imm: 0,
        }),
        Op::Halt => UopSeq::one(Uop {
            kind: UopKind::Halt,
            rd: Reg::ZERO,
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            imm: 0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_expands_to_agi_plus_load() {
        let seq = expand(Insn::lw(Reg::new(9), Reg::new(3), 4));
        let u = seq.as_slice();
        assert_eq!(u.len(), 2);
        assert_eq!(u[0].kind, UopKind::Agi);
        assert_eq!(u[0].rd, Reg::ADDR_TMP);
        assert_eq!(u[0].rs, Reg::new(3));
        assert_eq!(u[0].imm, 4);
        assert!(u[1].kind.is_load());
        assert_eq!(u[1].rd, Reg::new(9));
        assert_eq!(u[1].rs, Reg::ADDR_TMP);
    }

    #[test]
    fn store_expands_to_agi_plus_store() {
        let seq = expand(Insn::sw(Reg::new(7), Reg::new(8), 8));
        let u = seq.as_slice();
        assert_eq!(u.len(), 2);
        assert_eq!(u[0].kind, UopKind::Agi);
        assert!(u[1].kind.is_store());
        assert_eq!(u[1].rt, Reg::new(7));
        assert_eq!(u[1].dest(), None);
        assert_eq!(u[1].sources(), [Some(Reg::ADDR_TMP), Some(Reg::new(7))]);
    }

    #[test]
    fn alu_expands_to_itself() {
        let seq = expand(Insn::add(Reg::new(3), Reg::new(1), Reg::new(2)));
        assert_eq!(seq.len(), 1);
        assert_eq!(seq.as_slice()[0].kind, UopKind::Alu(AluOp::Add));
    }

    #[test]
    fn alu_imm_moves_imm_into_uop() {
        let seq = expand(Insn::addi(Reg::new(3), Reg::new(1), -7));
        let u = seq.as_slice()[0];
        assert_eq!(u.imm, -7);
        assert_eq!(u.sources(), [Some(Reg::new(1)), None]);
    }

    #[test]
    fn control_uops() {
        assert!(expand(Insn::beq(Reg::new(1), Reg::new(2), 0)).as_slice()[0]
            .kind
            .is_control());
        let jal = expand(Insn::jal(7)).as_slice()[0];
        assert_eq!(jal.kind, UopKind::Jump { link: true, indirect: false });
        assert_eq!(jal.dest(), Some(Reg::RA));
        let jr = expand(Insn::jr(Reg::RA)).as_slice()[0];
        assert_eq!(jr.kind, UopKind::Jump { link: false, indirect: true });
    }

    #[test]
    fn latencies() {
        assert_eq!(UopKind::Agi.latency(), 1);
        assert_eq!(UopKind::Alu(AluOp::Div).latency(), 12);
        assert_eq!(UopKind::Cmp { store_width: MemWidth::Word, load_width: MemWidth::Word }.latency(), 1);
    }

    #[test]
    fn uop_seq_iteration() {
        let seq = expand(Insn::lw(Reg::new(9), Reg::new(3), 4));
        assert_eq!(seq.into_iter().count(), 2);
        assert!(!seq.is_empty());
    }
}
