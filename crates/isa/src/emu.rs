use std::collections::{HashMap, HashSet, VecDeque};
use std::error::Error;
use std::fmt;

use crate::checkpoint::{dep_bucket, Checkpoint, IntervalFeatures, IntervalProfile};
use crate::insn::Insn;
use crate::op::{AluOp, Op};
use crate::program::Program;
use crate::reg::Reg;
use crate::sparse::SparseMem;
use crate::{Addr, Pc, Word};

/// Error produced by the functional emulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The PC walked past the end of the text segment without hitting
    /// `halt`.
    PcOutOfRange {
        /// The offending PC.
        pc: Pc,
    },
    /// `run` reached its step limit before the program halted.
    StepLimit {
        /// The limit that was exhausted.
        limit: u64,
    },
    /// An unaligned memory access was attempted.
    Unaligned {
        /// The PC of the faulting instruction.
        pc: Pc,
        /// The faulting address.
        addr: Addr,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfRange { pc } => write!(f, "pc {pc} outside text segment"),
            EmuError::StepLimit { limit } => write!(f, "step limit {limit} exhausted before halt"),
            EmuError::Unaligned { pc, addr } => {
                write!(f, "unaligned access at {addr:#x} (pc {pc})")
            }
        }
    }
}

impl Error for EmuError {}

/// What a single [`Emulator::step`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction retired; execution continues.
    Retired(RetiredEvent),
    /// A `halt` retired; the machine is stopped.
    Halted,
}

/// Why a bounded run ([`Emulator::run_insns`]) stopped.
///
/// Sampling fast-forward must distinguish "the instruction budget was
/// spent" (resume later) from "the program retired `halt`" (there is
/// nothing left to simulate) — conflating the two would silently
/// truncate runs, which is why budget exhaustion in the unbounded
/// entry points is a *named error* ([`EmuError::StepLimit`]) rather
/// than a normal return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program retired `halt` within the budget.
    Halted,
    /// The instruction budget ran out first; execution can resume.
    BudgetExhausted,
}

/// The architectural effect of one retired instruction — used by
/// co-simulation tests to check the out-of-order models instruction by
/// instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetiredEvent {
    /// PC of the retired instruction.
    pub pc: Pc,
    /// The instruction itself.
    pub insn: Insn,
    /// Register write performed, if any.
    pub wrote: Option<(Reg, Word)>,
    /// Memory effect, if any.
    pub mem: Option<MemEvent>,
    /// PC of the next instruction.
    pub next_pc: Pc,
}

/// A memory access performed by a retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// Effective byte address.
    pub addr: Addr,
    /// The value loaded (post-extension) or stored (pre-truncation).
    pub value: Word,
    /// Whether this was a store.
    pub is_store: bool,
}

/// Summary of a completed [`Emulator::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunResult {
    /// Dynamic instructions retired, `halt` included.
    pub retired: u64,
    /// Dynamic loads retired.
    pub loads: u64,
    /// Dynamic stores retired.
    pub stores: u64,
    /// Dynamic conditional branches retired.
    pub branches: u64,
}

/// Per-dynamic-load oracle facts extracted by a functional pre-pass.
///
/// This is the knowledge the paper's *Perfect* memory dependence predictor
/// is assumed to have: for the *n*-th dynamic load, which store (by store
/// sequence number, 1-based in program order) last wrote any byte the load
/// reads — `0` when the location was never stored to — and the exact value
/// the load observes.
#[derive(Debug, Clone, Default)]
pub struct OracleTrace {
    /// `last_writer_ssn[n]` = SSN of the youngest earlier store overlapping
    /// dynamic load `n` (0 = none).
    pub last_writer_ssn: Vec<u32>,
    /// The architecturally correct value of dynamic load `n`.
    pub load_values: Vec<Word>,
    /// Total dynamic stores in the run.
    pub store_count: u32,
}

/// Tracks, per byte of memory, the SSN of the last store that wrote it.
#[derive(Default)]
struct LastWriter {
    pages: HashMap<u32, Box<[u32; 4096]>>,
}

impl LastWriter {
    fn record(&mut self, addr: Addr, len: u32, ssn: u32) {
        for a in addr..addr + len {
            let page = self
                .pages
                .entry(a >> 12)
                .or_insert_with(|| Box::new([0u32; 4096]));
            page[(a & 0xFFF) as usize] = ssn;
        }
    }

    fn youngest(&self, addr: Addr, len: u32) -> u32 {
        let mut best = 0;
        for a in addr..addr + len {
            if let Some(page) = self.pages.get(&(a >> 12)) {
                best = best.max(page[(a & 0xFFF) as usize]);
            }
        }
        best
    }
}

/// A functional (architecturally exact, untimed) emulator.
///
/// Serves two roles in the reproduction:
///
/// 1. **Golden reference** — every out-of-order model's final architectural
///    state must match the emulator's (checked by the integration tests).
/// 2. **Oracle pre-pass** — [`Emulator::run_with_trace`] records the exact
///    store→load dependences, which drives the paper's *Perfect* model.
///
/// # Example
///
/// ```
/// use dmdp_isa::{asm, Emulator, Reg};
/// let p = asm::assemble("li $1, 2\nli $2, 3\nmul $3, $1, $2\nhalt")?;
/// let mut emu = Emulator::new(&p);
/// emu.run(100)?;
/// assert_eq!(emu.reg(Reg::new(3)), 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Emulator {
    program: Program,
    regs: [Word; Reg::NUM_ARCH],
    pc: Pc,
    mem: SparseMem,
    halted: bool,
    result: RunResult,
}

impl Emulator {
    /// Creates an emulator with the program's initial memory image loaded
    /// and all registers zero.
    pub fn new(program: &Program) -> Emulator {
        Emulator {
            mem: program.initial_memory(),
            program: program.clone(),
            regs: [0; Reg::NUM_ARCH],
            pc: program.entry(),
            halted: false,
            result: RunResult::default(),
        }
    }

    /// Current value of an architectural register.
    ///
    /// # Panics
    ///
    /// Panics if `r` is a hidden (µarch-only) register.
    pub fn reg(&self, r: Reg) -> Word {
        assert!(!r.is_hidden(), "hidden registers have no architectural value");
        self.regs[r.index()]
    }

    /// Sets an architectural register (for test setup).
    ///
    /// # Panics
    ///
    /// Panics if `r` is hidden. Writes to `$0` are ignored.
    pub fn set_reg(&mut self, r: Reg, value: Word) {
        assert!(!r.is_hidden());
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// A copy of all 32 architectural registers.
    pub fn regs(&self) -> [Word; Reg::NUM_ARCH] {
        self.regs
    }

    /// Current PC.
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// Whether the machine has retired `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Read-only view of memory.
    pub fn mem(&self) -> &SparseMem {
        &self.mem
    }

    /// Convenience word read from memory.
    pub fn load_word(&self, addr: Addr) -> Word {
        self.mem.read_word(addr)
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> RunResult {
        self.result
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns an error for a PC outside the text segment or an unaligned
    /// access. The emulator is left un-advanced on error.
    pub fn step(&mut self) -> Result<StepOutcome, EmuError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        let pc = self.pc;
        let insn = self
            .program
            .fetch(pc)
            .ok_or(EmuError::PcOutOfRange { pc })?;
        let g = |r: Reg| -> Word {
            if r.is_zero() {
                0
            } else {
                self.regs[r.index()]
            }
        };
        let mut wrote = None;
        let mut mem_event = None;
        let mut next_pc = pc + 1;
        match insn.op {
            Op::Alu(op) => {
                wrote = Some((insn.rd, op.apply(g(insn.rs), g(insn.rt))));
            }
            Op::AluImm(op) => {
                let b = if op == AluOp::Lui { insn.imm as u32 & 0xFFFF } else { insn.imm as u32 };
                wrote = Some((insn.rd, op.apply(g(insn.rs), b)));
            }
            Op::Load { width, signed } => {
                let addr = g(insn.rs).wrapping_add(insn.imm as u32);
                if !width.is_aligned(addr) {
                    return Err(EmuError::Unaligned { pc, addr });
                }
                let value = self.mem.read(addr, width, signed);
                wrote = Some((insn.rd, value));
                mem_event = Some(MemEvent { addr, value, is_store: false });
                self.result.loads += 1;
            }
            Op::Store { width } => {
                let addr = g(insn.rs).wrapping_add(insn.imm as u32);
                if !width.is_aligned(addr) {
                    return Err(EmuError::Unaligned { pc, addr });
                }
                let value = g(insn.rt);
                self.mem.write(addr, width, value);
                mem_event = Some(MemEvent { addr, value, is_store: true });
                self.result.stores += 1;
            }
            Op::Branch(cond) => {
                if cond.taken(g(insn.rs), g(insn.rt)) {
                    next_pc = insn.imm as Pc;
                }
                self.result.branches += 1;
            }
            Op::Jump => next_pc = insn.imm as Pc,
            Op::JumpAndLink => {
                wrote = Some((insn.rd, pc + 1));
                next_pc = insn.imm as Pc;
            }
            Op::JumpReg => next_pc = g(insn.rs),
            Op::JumpAndLinkReg => {
                wrote = Some((insn.rd, pc + 1));
                next_pc = g(insn.rs);
            }
            Op::Nop => {}
            Op::Halt => {
                self.halted = true;
                self.result.retired += 1;
                return Ok(StepOutcome::Halted);
            }
        }
        if let Some((rd, v)) = wrote {
            if rd.is_zero() {
                wrote = None;
            } else {
                self.regs[rd.index()] = v;
            }
        }
        self.pc = next_pc;
        self.result.retired += 1;
        Ok(StepOutcome::Retired(RetiredEvent { pc, insn, wrote, mem: mem_event, next_pc }))
    }

    /// Runs until `halt`, for at most `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// Propagates [`Emulator::step`] errors, and returns
    /// [`EmuError::StepLimit`] if the program does not halt in time.
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, EmuError> {
        for _ in 0..max_steps {
            if let StepOutcome::Halted = self.step()? {
                return Ok(self.result);
            }
        }
        if self.halted {
            Ok(self.result)
        } else {
            Err(EmuError::StepLimit { limit: max_steps })
        }
    }

    /// Runs to completion while recording the [`OracleTrace`] that the
    /// *Perfect* dependence predictor consumes.
    ///
    /// # Errors
    ///
    /// See [`Emulator::run`].
    pub fn run_with_trace(&mut self, max_steps: u64) -> Result<(RunResult, OracleTrace), EmuError> {
        let mut trace = OracleTrace::default();
        let mut writers = LastWriter::default();
        for _ in 0..max_steps {
            match self.step()? {
                StepOutcome::Halted => return Ok((self.result, trace)),
                StepOutcome::Retired(ev) => {
                    if let Some(mem) = ev.mem {
                        let width = ev.insn.mem_width().expect("mem event without width");
                        if mem.is_store {
                            trace.store_count += 1;
                            writers.record(mem.addr, width.bytes(), trace.store_count);
                        } else {
                            trace
                                .last_writer_ssn
                                .push(writers.youngest(mem.addr, width.bytes()));
                            trace.load_values.push(mem.value);
                        }
                    }
                }
            }
        }
        Err(EmuError::StepLimit { limit: max_steps })
    }

    /// Bounded variant of [`Emulator::run_with_trace`]: traces at most
    /// `n` further instructions and — unlike the unbounded entry point,
    /// where exhaustion is the named [`EmuError::StepLimit`] error —
    /// reports budget exhaustion as a normal outcome, returning the
    /// partial trace. The sampling pipeline uses this to build an
    /// oracle covering just one measurement window from a checkpoint
    /// instead of tracing the whole remaining run.
    ///
    /// # Errors
    ///
    /// Propagates [`Emulator::step`] errors.
    pub fn run_with_trace_insns(
        &mut self,
        n: u64,
    ) -> Result<(OracleTrace, StopReason), EmuError> {
        let mut trace = OracleTrace::default();
        let mut writers = LastWriter::default();
        let target = self.result.retired.saturating_add(n);
        while self.result.retired < target {
            match self.step()? {
                StepOutcome::Halted => return Ok((trace, StopReason::Halted)),
                StepOutcome::Retired(ev) => {
                    if let Some(mem) = ev.mem {
                        let width = ev.insn.mem_width().expect("mem event without width");
                        if mem.is_store {
                            trace.store_count += 1;
                            writers.record(mem.addr, width.bytes(), trace.store_count);
                        } else {
                            trace
                                .last_writer_ssn
                                .push(writers.youngest(mem.addr, width.bytes()));
                            trace.load_values.push(mem.value);
                        }
                    }
                }
            }
        }
        let reason =
            if self.halted { StopReason::Halted } else { StopReason::BudgetExhausted };
        Ok((trace, reason))
    }

    /// Runs at most `n` further instructions, reporting whether the
    /// program halted or the budget was exhausted first. Unlike
    /// [`Emulator::run`], budget exhaustion is a *normal outcome* here
    /// — the emulator stays resumable at the exact boundary, which is
    /// what the sampling fast-forward engine needs.
    ///
    /// # Errors
    ///
    /// Propagates [`Emulator::step`] errors (bad PC, unaligned access).
    pub fn run_insns(&mut self, n: u64) -> Result<StopReason, EmuError> {
        let target = self.result.retired.saturating_add(n);
        while self.result.retired < target {
            if let StepOutcome::Halted = self.step()? {
                return Ok(StopReason::Halted);
            }
        }
        Ok(if self.halted { StopReason::Halted } else { StopReason::BudgetExhausted })
    }

    /// Captures the complete architectural state as a [`Checkpoint`].
    /// The warming hint is empty (cold caches) — only
    /// [`Emulator::capture_checkpoints`] observes the access recency
    /// needed to fill it.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            pc: self.pc,
            regs: self.regs,
            result: self.result,
            pages: self.mem.pages_sorted(),
            warm_lines: Vec::new(),
            warm_branches: Vec::new(),
        }
    }

    /// Rebuilds an emulator mid-run from a checkpoint of `program`.
    /// Resuming reproduces the original run bit-identically from the
    /// checkpoint onward (the emulator is deterministic and the
    /// checkpoint is the full architectural state).
    pub fn from_checkpoint(program: &Program, ckpt: &Checkpoint) -> Emulator {
        let mut mem = SparseMem::new();
        for (index, page) in &ckpt.pages {
            mem.install_page(*index, page);
        }
        Emulator {
            mem,
            program: program.clone(),
            regs: ckpt.regs,
            pc: ckpt.pc,
            halted: false,
            result: ckpt.result,
        }
    }

    /// Runs to completion, slicing execution into fixed-instruction
    /// intervals and collecting one [`IntervalFeatures`] vector per
    /// interval (sampled-simulation profiling pass).
    ///
    /// # Errors
    ///
    /// [`EmuError::StepLimit`] if the program does not halt within
    /// `max_steps` — a profile of a truncated run would silently bias
    /// every downstream weight, so it is refused outright. Step errors
    /// propagate.
    ///
    /// # Panics
    ///
    /// Panics if `interval_insns` is zero.
    pub fn profile_intervals(
        &mut self,
        interval_insns: u64,
        max_steps: u64,
    ) -> Result<IntervalProfile, EmuError> {
        assert!(interval_insns > 0, "interval length must be nonzero");
        let mut profile = IntervalProfile { interval_insns, ..IntervalProfile::default() };
        let mut writers = LastWriter::default();
        let mut store_count: u32 = 0;
        let mut bb: HashMap<Pc, u32> = HashMap::new();
        // Locality counters: lines ever touched (run-global) and lines
        // touched in the current interval.
        let mut seen_lines: HashSet<u32> = HashSet::new();
        let mut iv_lines: HashSet<u32> = HashSet::new();
        let mut cur = IntervalFeatures::default();
        // The interval's entry PC is a block leader.
        *bb.entry(self.pc).or_insert(0) += 1;
        let flush = |bb: &mut HashMap<Pc, u32>,
                     iv_lines: &mut HashSet<u32>,
                     cur: &mut IntervalFeatures,
                     out: &mut Vec<IntervalFeatures>| {
            let mut counts: Vec<(Pc, u32)> = bb.drain().collect();
            counts.sort_unstable_by_key(|&(pc, _)| pc);
            cur.bb_counts = counts;
            iv_lines.clear();
            out.push(std::mem::take(cur));
        };
        for _ in 0..max_steps {
            let before = self.result.retired;
            match self.step()? {
                StepOutcome::Halted => {
                    cur.insns += self.result.retired - before;
                    if cur.insns > 0 {
                        flush(&mut bb, &mut iv_lines, &mut cur, &mut profile.intervals);
                    }
                    profile.result = self.result;
                    return Ok(profile);
                }
                StepOutcome::Retired(ev) => {
                    cur.insns += 1;
                    if let Some(mem) = ev.mem {
                        let width = ev.insn.mem_width().expect("mem event without width");
                        if mem.is_store {
                            store_count += 1;
                            writers.record(mem.addr, width.bytes(), store_count);
                        } else {
                            let ssn = writers.youngest(mem.addr, width.bytes());
                            cur.dep_buckets[dep_bucket(ssn, store_count)] += 1;
                        }
                        let line = mem.addr / crate::checkpoint::LOC_LINE_BYTES;
                        if iv_lines.insert(line) {
                            cur.touched_lines += 1;
                        }
                        if seen_lines.insert(line) {
                            cur.new_lines += 1;
                        }
                    }
                    if ev.next_pc != ev.pc + 1 {
                        // A taken control transfer: the target starts a
                        // new basic-block occurrence.
                        *bb.entry(ev.next_pc).or_insert(0) += 1;
                    }
                    if cur.insns == interval_insns {
                        flush(&mut bb, &mut iv_lines, &mut cur, &mut profile.intervals);
                        *bb.entry(self.pc).or_insert(0) += 1;
                    }
                }
            }
        }
        Err(EmuError::StepLimit { limit: max_steps })
    }

    /// Re-runs the program from the current state, capturing an
    /// architectural checkpoint at each requested position.
    /// `boundaries` are absolute retired-instruction counts
    /// (ascending, not necessarily interval-aligned — warmup windows
    /// may start mid-interval); boundary `b` is the state after
    /// exactly `b` retired instructions, so boundary 0 is the current
    /// state. If the program halts before a later boundary, the
    /// halted state is captured (callers derive boundaries from a
    /// profile of the same program, so this only happens for the
    /// boundary at the very end).
    ///
    /// # Errors
    ///
    /// Propagates [`Emulator::step`] errors.
    ///
    /// # Panics
    ///
    /// Panics if `boundaries` is not ascending or a boundary lies
    /// behind instructions already retired.
    pub fn capture_checkpoints(
        &mut self,
        boundaries: &[u64],
        warm_cap: usize,
    ) -> Result<Vec<Checkpoint>, EmuError> {
        assert!(boundaries.windows(2).all(|w| w[0] < w[1]), "boundaries must ascend");
        let mut ckpts = Vec::with_capacity(boundaries.len());
        // Warming-hint state: per-line access recency (each checkpoint
        // carries the `warm_cap` most recently touched lines, LRU→MRU)
        // and the trailing window of conditional-branch outcomes (the
        // last `warm_cap` of them, oldest first).
        let mut recency: HashMap<u32, u64> = HashMap::new();
        let mut seq: u64 = 0;
        let mut branches: VecDeque<(Pc, Pc)> = VecDeque::with_capacity(warm_cap);
        for &target in boundaries {
            assert!(
                target >= self.result.retired,
                "boundary {target} behind the {} instructions already retired",
                self.result.retired
            );
            while self.result.retired < target {
                match self.step()? {
                    StepOutcome::Halted => break,
                    StepOutcome::Retired(ev) => {
                        if let Some(mem) = ev.mem {
                            seq += 1;
                            recency.insert(mem.addr / crate::checkpoint::LOC_LINE_BYTES, seq);
                        }
                        if matches!(ev.insn.op, Op::Branch(_)) {
                            if branches.len() == warm_cap {
                                branches.pop_front();
                            }
                            branches.push_back((ev.pc, ev.next_pc));
                        }
                    }
                }
            }
            let mut ckpt = self.checkpoint();
            let mut lines: Vec<(u64, u32)> = recency.iter().map(|(&l, &s)| (s, l)).collect();
            lines.sort_unstable();
            if lines.len() > warm_cap {
                lines.drain(..lines.len() - warm_cap);
            }
            ckpt.warm_lines = lines.into_iter().map(|(_, l)| l).collect();
            ckpt.warm_branches = branches.iter().copied().collect();
            ckpts.push(ckpt);
        }
        Ok(ckpts)
    }
}

impl fmt::Debug for Emulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Emulator")
            .field("program", &self.program.name())
            .field("pc", &self.pc)
            .field("halted", &self.halted)
            .field("retired", &self.result.retired)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_asm(src: &str) -> Emulator {
        let p = assemble(src).unwrap();
        let mut e = Emulator::new(&p);
        e.run(1_000_000).unwrap();
        e
    }

    #[test]
    fn arithmetic_loop() {
        // sum = 1 + 2 + ... + 10
        let e = run_asm(
            r#"
            li   $1, 10
            li   $2, 0
        top:
            add  $2, $2, $1
            addi $1, $1, -1
            bgtz $1, top
            halt
        "#,
        );
        assert_eq!(e.reg(Reg::new(2)), 55);
        assert!(e.is_halted());
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let e = run_asm(
            r#"
                .data
        buf:    .space 16
                .text
            lui  $8, %hi(buf)
            ori  $8, $8, %lo(buf)
            li   $1, -2
            sw   $1, 0($8)
            lw   $2, 0($8)
            lh   $3, 0($8)
            lhu  $4, 0($8)
            lb   $5, 0($8)
            lbu  $6, 0($8)
            halt
        "#,
        );
        assert_eq!(e.reg(Reg::new(2)), -2i32 as u32);
        assert_eq!(e.reg(Reg::new(3)), -2i32 as u32);
        assert_eq!(e.reg(Reg::new(4)), 0xFFFE);
        assert_eq!(e.reg(Reg::new(5)), -2i32 as u32);
        assert_eq!(e.reg(Reg::new(6)), 0xFE);
    }

    #[test]
    fn jal_jr_call_return() {
        let e = run_asm(
            r#"
            jal  func
            li   $2, 7
            halt
        func:
            li   $1, 5
            jr   $31
        "#,
        );
        assert_eq!(e.reg(Reg::new(1)), 5);
        assert_eq!(e.reg(Reg::new(2)), 7);
    }

    #[test]
    fn zero_register_ignores_writes() {
        let e = run_asm("addi $0, $0, 99\nhalt");
        assert_eq!(e.reg(Reg::ZERO), 0);
    }

    #[test]
    fn step_limit_error() {
        let p = assemble("top: j top\nhalt").unwrap();
        let mut e = Emulator::new(&p);
        assert_eq!(e.run(100), Err(EmuError::StepLimit { limit: 100 }));
    }

    #[test]
    fn pc_out_of_range_error() {
        let p = assemble("nop\nnop").unwrap();
        let mut e = Emulator::new(&p);
        let r = e.run(100);
        assert_eq!(r, Err(EmuError::PcOutOfRange { pc: 2 }));
    }

    #[test]
    fn unaligned_access_error() {
        let p = assemble("li $1, 1\nlw $2, 0($1)\nhalt").unwrap();
        let mut e = Emulator::new(&p);
        assert!(matches!(e.run(10), Err(EmuError::Unaligned { addr: 1, .. })));
    }

    #[test]
    fn retired_event_contents() {
        let p = assemble("li $1, 3\nsw $1, 0x10000($0)\nhalt").unwrap();
        let mut e = Emulator::new(&p);
        let ev = match e.step().unwrap() {
            StepOutcome::Retired(ev) => ev,
            _ => panic!(),
        };
        assert_eq!(ev.wrote, Some((Reg::new(1), 3)));
        assert_eq!(ev.next_pc, 1);
        let ev = match e.step().unwrap() {
            StepOutcome::Retired(ev) => ev,
            _ => panic!(),
        };
        assert_eq!(ev.mem, Some(MemEvent { addr: 0x10000, value: 3, is_store: true }));
    }

    #[test]
    fn oracle_trace_tracks_last_writer() {
        let p = assemble(
            r#"
                .data
        a:      .word 0
        b:      .word 0
                .text
            li   $1, 1
            lui  $8, %hi(a)
            ori  $8, $8, %lo(a)
            lw   $2, 0($8)      # load 0: never written -> ssn 0
            sw   $1, 0($8)      # store 1
            lw   $3, 0($8)      # load 1: last writer store 1
            sw   $1, 4($8)      # store 2
            lw   $4, 0($8)      # load 2: still store 1
            lw   $5, 4($8)      # load 3: store 2
            sw   $1, 0($8)      # store 3 (silent)
            lw   $6, 0($8)      # load 4: store 3
            halt
        "#,
        )
        .unwrap();
        let mut e = Emulator::new(&p);
        let (_, trace) = e.run_with_trace(1000).unwrap();
        assert_eq!(trace.store_count, 3);
        assert_eq!(trace.last_writer_ssn, vec![0, 1, 1, 2, 3]);
        assert_eq!(trace.load_values, vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn oracle_trace_partial_word_overlap() {
        let p = assemble(
            r#"
                .data
        a:      .word 0
                .text
            li   $1, 0x7F
            lui  $8, %hi(a)
            ori  $8, $8, %lo(a)
            sw   $1, 0($8)      # store 1 writes bytes 0..4
            sb   $1, 2($8)      # store 2 writes byte 2
            lhu  $2, 0($8)      # load 0 reads bytes 0..2 -> store 1
            lhu  $3, 2($8)      # load 1 reads bytes 2..4 -> store 2
            halt
        "#,
        )
        .unwrap();
        let mut e = Emulator::new(&p);
        let (_, trace) = e.run_with_trace(1000).unwrap();
        assert_eq!(trace.last_writer_ssn, vec![1, 2]);
        assert_eq!(trace.load_values, vec![0x7F, 0x7F]);
    }

    #[test]
    fn step_limit_is_distinct_from_halt() {
        // Regression: budget exhaustion must be the *named*
        // `EmuError::StepLimit`, never a silent halt-like return, in
        // every entry point — and `run_insns` must report the
        // distinction as a normal outcome.
        let looping = assemble("top: j top\nhalt").unwrap();
        let halting = assemble("nop\nnop\nhalt").unwrap();

        let mut e = Emulator::new(&looping);
        assert_eq!(e.run(50), Err(EmuError::StepLimit { limit: 50 }));
        assert!(!e.is_halted());
        let mut e = Emulator::new(&looping);
        assert_eq!(
            e.run_with_trace(50).unwrap_err(),
            EmuError::StepLimit { limit: 50 }
        );
        let mut e = Emulator::new(&looping);
        assert_eq!(e.run_insns(50), Ok(StopReason::BudgetExhausted));
        assert_eq!(e.stats().retired, 50);
        // Resumable at the exact boundary.
        assert_eq!(e.run_insns(25), Ok(StopReason::BudgetExhausted));
        assert_eq!(e.stats().retired, 75);

        let mut e = Emulator::new(&halting);
        assert_eq!(e.run_insns(50), Ok(StopReason::Halted));
        assert!(e.is_halted());
        assert_eq!(e.stats().retired, 3);
        let mut e = Emulator::new(&halting);
        // Budget landing exactly on the halt still reports Halted.
        assert_eq!(e.run_insns(3), Ok(StopReason::Halted));
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let src = r#"
                .data
        buf:    .space 64
                .text
            li   $1, 12
            lui  $8, %hi(buf)
            ori  $8, $8, %lo(buf)
        top:
            sw   $1, 0($8)
            lw   $2, 0($8)
            add  $3, $3, $2
            addi $1, $1, -1
            bgtz $1, top
            halt
        "#;
        let p = assemble(src).unwrap();
        let mut full = Emulator::new(&p);
        let full_result = full.run(1_000_000).unwrap();

        let mut front = Emulator::new(&p);
        assert_eq!(front.run_insns(20), Ok(StopReason::BudgetExhausted));
        let ckpt = front.checkpoint();
        assert_eq!(ckpt.result.retired, 20);
        // Serialize → restore → resume: bit-identical final state.
        let restored = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(restored, ckpt);
        let mut resumed = Emulator::from_checkpoint(&p, &restored);
        let resumed_result = resumed.run(1_000_000).unwrap();
        assert_eq!(resumed_result, full_result);
        assert_eq!(resumed.regs(), full.regs());
        assert_eq!(resumed.pc(), full.pc());
    }

    #[test]
    fn profile_intervals_slices_and_counts() {
        let src = r#"
            li   $1, 10
        top:
            sw   $1, 0x10000($0)
            lw   $2, 0x10000($0)
            addi $1, $1, -1
            bgtz $1, top
            halt
        "#;
        let p = assemble(src).unwrap();
        let mut e = Emulator::new(&p);
        let profile = e.profile_intervals(16, 1_000_000).unwrap();
        let total: u64 = profile.intervals.iter().map(|iv| iv.insns).sum();
        assert_eq!(total, profile.result.retired);
        assert_eq!(profile.result.retired, 1 + 10 * 4 + 1);
        assert_eq!(profile.intervals.len(), 3); // 16 + 16 + 10
        assert_eq!(profile.intervals[2].insns, 10);
        for iv in &profile.intervals[..2] {
            assert_eq!(iv.insns, 16);
            assert!(!iv.bb_counts.is_empty());
        }
        // The loop's loads all read the store from the same iteration:
        // distance 0, bucket 0 — except the first load of interval 0 is
        // also bucket 0 (its store precedes it immediately).
        let loads: u32 = profile.intervals.iter().map(|iv| iv.dep_buckets[0]).sum();
        assert_eq!(loads as u64, profile.result.loads);
        // A looping program must refuse to profile past the budget.
        let looping = assemble("top: j top\nhalt").unwrap();
        let mut e = Emulator::new(&looping);
        assert_eq!(
            e.profile_intervals(8, 100).unwrap_err(),
            EmuError::StepLimit { limit: 100 }
        );
    }

    #[test]
    fn capture_checkpoints_at_boundaries() {
        let src = r#"
            li   $1, 40
        top:
            sw   $1, 0x10000($0)
            addi $1, $1, -1
            bgtz $1, top
            halt
        "#;
        let p = assemble(src).unwrap();
        let mut e = Emulator::new(&p);
        let ckpts = e.capture_checkpoints(&[0, 30, 75], 4096).unwrap();
        assert_eq!(ckpts.len(), 3);
        assert_eq!(ckpts[0].result.retired, 0);
        assert_eq!(ckpts[1].result.retired, 30);
        assert_eq!(ckpts[2].result.retired, 75);
        // Each checkpoint resumes to the same final state.
        let mut full = Emulator::new(&p);
        let want = full.run(1_000_000).unwrap();
        for c in &ckpts {
            let mut r = Emulator::from_checkpoint(&p, c);
            assert_eq!(r.run(1_000_000).unwrap(), want);
            assert_eq!(r.regs(), full.regs());
        }
    }

    #[test]
    fn stats_count_classes() {
        let e = run_asm(
            r#"
            li  $1, 2
        top:
            sw  $1, 0x10000($0)
            lw  $2, 0x10000($0)
            addi $1, $1, -1
            bgtz $1, top
            halt
        "#,
        );
        let s = e.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 2);
        assert_eq!(s.branches, 2);
        assert_eq!(s.retired, 1 + 2 * 4 + 1);
    }
}
