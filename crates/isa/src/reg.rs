use std::fmt;

/// An architectural (logical) register.
///
/// The ISA exposes 32 general-purpose registers `$0`–`$31`, with `$0`
/// hard-wired to zero. Following the paper (§IV-A e), three additional
/// registers are visible *only to the hardware* and are used by the µop
/// expansion machinery:
///
/// * [`Reg::ADDR_TMP`] (`$32`) — destination of address-generation (`AGI`)
///   µops,
/// * [`Reg::LOAD_TMP`] (`$33`) — destination of the cache-access half of a
///   predicated load,
/// * [`Reg::PRED_TMP`] (`$34`) — the predicate produced by `CMP`.
///
/// These participate in renaming exactly like ordinary registers, which is
/// what lets the rename stage treat predication insertion as regular
/// instruction flow.
///
/// # Example
///
/// ```
/// use dmdp_isa::Reg;
/// let r = Reg::new(8);
/// assert_eq!(r.index(), 8);
/// assert_eq!(r.to_string(), "$8");
/// assert!(!r.is_zero());
/// assert!(Reg::ADDR_TMP.is_hidden());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register `$0`.
    pub const ZERO: Reg = Reg(0);
    /// Conventional return-address register `$31`.
    pub const RA: Reg = Reg(31);
    /// Conventional stack pointer `$29`.
    pub const SP: Reg = Reg(29);
    /// Hardware-only address temporary `$32` (paper Fig. 7).
    pub const ADDR_TMP: Reg = Reg(32);
    /// Hardware-only load-data temporary `$33` (paper Fig. 8).
    pub const LOAD_TMP: Reg = Reg(33);
    /// Hardware-only predicate register `$34` (paper Fig. 8).
    pub const PRED_TMP: Reg = Reg(34);

    /// Number of programmer-visible registers.
    pub const NUM_ARCH: usize = 32;
    /// Total number of logical registers including the hidden ones.
    pub const NUM_LOGICAL: usize = 35;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::NUM_LOGICAL`.
    #[inline]
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < Reg::NUM_LOGICAL,
            "register index {index} out of range"
        );
        Reg(index)
    }

    /// The register's index in `0..Reg::NUM_LOGICAL`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Whether this register is one of the hardware-only temporaries
    /// (`$32`–`$34`) that are invisible to the programmer.
    #[inline]
    pub fn is_hidden(self) -> bool {
        self.0 >= Reg::NUM_ARCH as u8
    }

    /// Iterator over every logical register, hidden ones included.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Reg::NUM_LOGICAL as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_zero() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
    }

    #[test]
    fn hidden_registers() {
        assert!(Reg::ADDR_TMP.is_hidden());
        assert!(Reg::LOAD_TMP.is_hidden());
        assert!(Reg::PRED_TMP.is_hidden());
        assert!(!Reg::new(31).is_hidden());
    }

    #[test]
    fn display_matches_mips_convention() {
        assert_eq!(Reg::new(8).to_string(), "$8");
        assert_eq!(Reg::ADDR_TMP.to_string(), "$32");
    }

    #[test]
    fn all_covers_every_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), Reg::NUM_LOGICAL);
        assert_eq!(regs[0], Reg::ZERO);
        assert_eq!(regs[34], Reg::PRED_TMP);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(35);
    }
}
