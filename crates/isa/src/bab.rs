//! Byte Access Bits (BAB) and partial-word forwarding (paper §IV-D).
//!
//! Every memory access is described by its *aligned word address* plus a
//! 4-bit mask — the Byte Access Bits — saying which bytes of that word it
//! touches. A store forwards to a load iff the word addresses match and
//! the store's BAB covers the load's BAB; the forwarded value must then be
//! shifted, masked and sign/zero-extended according to the two accesses'
//! low address bits and widths. The machine is little-endian.
//!
//! The `CMP` µop compresses everything the `CMOV` needs into a single
//! predicate word ([`Predicate`]): the match bit plus both accesses' low
//! address bits. The paper notes that "the predicate is a word-wide
//! register, only one bit is used to guard the predicated instruction,
//! other bits can be used" — this module defines that encoding.

use crate::op::MemWidth;
use crate::{Addr, Word};

/// The aligned word address containing `addr`.
#[inline]
pub fn word_addr(addr: Addr) -> Addr {
    addr & !3
}

/// The Byte Access Bits for an access of `width` at `addr`: bit *i* set
/// means byte *i* of the aligned word is touched.
///
/// # Panics
///
/// Panics if the access is not naturally aligned (the ISA traps on
/// unaligned accesses, so the µarch never sees one).
#[inline]
pub fn bab(addr: Addr, width: MemWidth) -> u8 {
    assert!(width.is_aligned(addr), "unaligned {width} access at {addr:#x}");
    let lane = (addr & 3) as u8;
    match width {
        MemWidth::Byte => 1 << lane,
        MemWidth::Half => 0b11 << lane,
        MemWidth::Word => 0b1111,
    }
}

/// Whether a store with `store_bab` fully covers a load with `load_bab`
/// (forwarding is legal — paper Fig. 11 left branch).
#[inline]
pub fn covers(store_bab: u8, load_bab: u8) -> bool {
    store_bab & load_bab == load_bab
}

/// Whether the two accesses touch at least one common byte (a collision —
/// paper §IV-A b).
#[inline]
pub fn overlaps(store_bab: u8, load_bab: u8) -> bool {
    store_bab & load_bab != 0
}

/// Positions `value` of `width` stored at `addr` within its aligned word
/// ("the store shifts left", §IV-D).
#[inline]
pub fn place_in_word(addr: Addr, width: MemWidth, value: Word) -> Word {
    let shift = (addr & 3) * 8;
    let masked = match width {
        MemWidth::Byte => value & 0xFF,
        MemWidth::Half => value & 0xFFFF,
        MemWidth::Word => value,
    };
    masked << shift
}

/// Extracts an access of `width` at `addr` out of the aligned word value
/// `word` ("the load shifts right", §IV-D), applying sign or zero
/// extension for sub-word loads.
#[inline]
pub fn extract_from_word(word: Word, addr: Addr, width: MemWidth, signed: bool) -> Word {
    let shift = (addr & 3) * 8;
    let raw = word >> shift;
    match (width, signed) {
        (MemWidth::Byte, false) => raw & 0xFF,
        (MemWidth::Byte, true) => (raw as u8) as i8 as i32 as u32,
        (MemWidth::Half, false) => raw & 0xFFFF,
        (MemWidth::Half, true) => (raw as u16) as i16 as i32 as u32,
        (MemWidth::Word, _) => raw,
    }
}

/// Store→load forwarding: the value the load observes if it takes its data
/// from the store, or `None` if forwarding is illegal (different words, or
/// the store does not cover every byte the load needs).
///
/// # Example
///
/// ```
/// use dmdp_isa::bab::forward;
/// use dmdp_isa::MemWidth;
/// // A word store forwards its upper half, shifted, to a half-word load.
/// let v = forward(0x100, MemWidth::Word, 0xAABB_CCDD, 0x102, MemWidth::Half, false);
/// assert_eq!(v, Some(0xAABB));
/// // A byte store cannot satisfy a word load.
/// assert_eq!(forward(0x100, MemWidth::Byte, 0xFF, 0x100, MemWidth::Word, false), None);
/// ```
pub fn forward(
    store_addr: Addr,
    store_width: MemWidth,
    store_value: Word,
    load_addr: Addr,
    load_width: MemWidth,
    load_signed: bool,
) -> Option<Word> {
    if word_addr(store_addr) != word_addr(load_addr) {
        return None;
    }
    let sb = bab(store_addr, store_width);
    let lb = bab(load_addr, load_width);
    if !covers(sb, lb) {
        return None;
    }
    let word = place_in_word(store_addr, store_width, store_value);
    Some(extract_from_word(word, load_addr, load_width, load_signed))
}

/// The word-wide predicate produced by the `CMP` µop.
///
/// Layout: bit 0 = addresses match and store covers load; bits 8–9 = the
/// store's low address bits; bits 10–11 = the load's low address bits.
/// The `CMOV` µop combines these with its statically-known widths to shift
/// and extend the forwarded store data.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Predicate {
    /// Whether the predicted store indeed collides (and covers) the load.
    pub matches: bool,
    /// `store_addr & 3`.
    pub store_lo2: u8,
    /// `load_addr & 3`.
    pub load_lo2: u8,
}

impl Predicate {
    /// Computes the predicate for a (store, load) address pair — exactly
    /// what the `CMP` µop does at execute.
    pub fn compare(
        store_addr: Addr,
        store_width: MemWidth,
        load_addr: Addr,
        load_width: MemWidth,
    ) -> Predicate {
        let matches = word_addr(store_addr) == word_addr(load_addr)
            && covers(bab(store_addr, store_width), bab(load_addr, load_width));
        Predicate {
            matches,
            store_lo2: (store_addr & 3) as u8,
            load_lo2: (load_addr & 3) as u8,
        }
    }

    /// Packs the predicate into a register value.
    pub fn encode(self) -> Word {
        (self.matches as u32) | ((self.store_lo2 as u32) << 8) | ((self.load_lo2 as u32) << 10)
    }

    /// Unpacks a predicate from a register value.
    pub fn decode(word: Word) -> Predicate {
        Predicate {
            matches: word & 1 != 0,
            store_lo2: ((word >> 8) & 3) as u8,
            load_lo2: ((word >> 10) & 3) as u8,
        }
    }

    /// The value a true-path `CMOV` writes: the store's data shifted and
    /// extended as the load requires.
    ///
    /// Must only be called when [`Predicate::matches`] is true; the shift
    /// amounts are meaningless otherwise.
    pub fn apply_forward(
        self,
        store_width: MemWidth,
        store_value: Word,
        load_width: MemWidth,
        load_signed: bool,
    ) -> Word {
        let word = place_in_word(self.store_lo2 as Addr, store_width, store_value);
        extract_from_word(word, self.load_lo2 as Addr, load_width, load_signed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bab_masks() {
        assert_eq!(bab(0x100, MemWidth::Word), 0b1111);
        assert_eq!(bab(0x101, MemWidth::Byte), 0b0010);
        assert_eq!(bab(0x102, MemWidth::Half), 0b1100);
        assert_eq!(bab(0x103, MemWidth::Byte), 0b1000);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_half_panics() {
        let _ = bab(0x101, MemWidth::Half);
    }

    #[test]
    fn covers_and_overlaps() {
        assert!(covers(0b1111, 0b0011));
        assert!(!covers(0b0011, 0b1111));
        assert!(overlaps(0b0011, 0b0110));
        assert!(!overlaps(0b0011, 0b1100));
    }

    #[test]
    fn word_forwards_to_subword() {
        // Store 0xAABBCCDD at word 0x100; LE byte layout DD CC BB AA.
        let w = 0xAABB_CCDDu32;
        assert_eq!(forward(0x100, MemWidth::Word, w, 0x100, MemWidth::Byte, false), Some(0xDD));
        assert_eq!(forward(0x100, MemWidth::Word, w, 0x103, MemWidth::Byte, false), Some(0xAA));
        assert_eq!(forward(0x100, MemWidth::Word, w, 0x102, MemWidth::Half, false), Some(0xAABB));
        assert_eq!(forward(0x100, MemWidth::Word, w, 0x100, MemWidth::Word, false), Some(w));
    }

    #[test]
    fn sign_extension_on_forward() {
        let w = 0x0000_80FFu32;
        assert_eq!(
            forward(0x100, MemWidth::Word, w, 0x100, MemWidth::Byte, true),
            Some(0xFFFF_FFFF)
        );
        assert_eq!(
            forward(0x100, MemWidth::Word, w, 0x100, MemWidth::Half, true),
            Some(0xFFFF_80FF)
        );
        assert_eq!(forward(0x100, MemWidth::Word, w, 0x100, MemWidth::Half, false), Some(0x80FF));
    }

    #[test]
    fn partial_store_rejects_wider_load() {
        assert_eq!(forward(0x100, MemWidth::Half, 0x1234, 0x100, MemWidth::Word, false), None);
        assert_eq!(forward(0x100, MemWidth::Byte, 0x12, 0x100, MemWidth::Half, false), None);
    }

    #[test]
    fn disjoint_bytes_reject() {
        assert_eq!(forward(0x100, MemWidth::Half, 0x1234, 0x102, MemWidth::Half, false), None);
        assert_eq!(forward(0x100, MemWidth::Word, 0, 0x104, MemWidth::Word, false), None);
    }

    #[test]
    fn byte_store_forwards_to_same_byte() {
        assert_eq!(forward(0x102, MemWidth::Byte, 0x5A, 0x102, MemWidth::Byte, false), Some(0x5A));
    }

    #[test]
    fn predicate_roundtrip() {
        for matches in [false, true] {
            for s in 0..4u8 {
                for l in 0..4u8 {
                    let p = Predicate { matches, store_lo2: s, load_lo2: l };
                    assert_eq!(Predicate::decode(p.encode()), p);
                }
            }
        }
    }

    #[test]
    fn predicate_compare_matches_forward() {
        let p = Predicate::compare(0x100, MemWidth::Word, 0x102, MemWidth::Half);
        assert!(p.matches);
        assert_eq!(
            p.apply_forward(MemWidth::Word, 0xAABB_CCDD, MemWidth::Half, false),
            0xAABB
        );
        let p = Predicate::compare(0x100, MemWidth::Half, 0x102, MemWidth::Half);
        assert!(!p.matches);
    }

    #[test]
    fn predicate_guard_bit_is_bit_zero() {
        let p = Predicate { matches: true, store_lo2: 0, load_lo2: 0 };
        assert_eq!(p.encode() & 1, 1);
        let p = Predicate { matches: false, store_lo2: 3, load_lo2: 3 };
        assert_eq!(p.encode() & 1, 0);
    }
}
