use std::fmt;

/// Width of a memory access.
///
/// The paper's partial-word forwarding machinery (§IV-D) distinguishes
/// accesses by the set of bytes they touch within an aligned word; the
/// width (together with the low address bits) determines the Byte Access
/// Bits.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum MemWidth {
    /// One byte (`LB`/`LBU`/`SB`).
    Byte,
    /// Two bytes (`LH`/`LHU`/`SH`).
    Half,
    /// Four bytes (`LW`/`SW`).
    Word,
}

impl MemWidth {
    /// Number of bytes accessed.
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }

    /// Whether an access of this width at `addr` is naturally aligned.
    #[inline]
    pub fn is_aligned(self, addr: u32) -> bool {
        addr.is_multiple_of(self.bytes())
    }

    /// Whether this is a sub-word access. Sub-word loads are barred from
    /// memory cloaking in DMDP (§IV-D) and must use predication.
    #[inline]
    pub fn is_partial(self) -> bool {
        self != MemWidth::Word
    }
}

impl fmt::Display for MemWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemWidth::Byte => "byte",
            MemWidth::Half => "half",
            MemWidth::Word => "word",
        };
        f.write_str(s)
    }
}

/// Arithmetic/logic operations executed by the ALU µop.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping addition (also used for `ADDI` and address material).
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Bitwise nor.
    Nor,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Logical shift left (amount from the second operand, mod 32).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Load-upper-immediate: `rt = imm << 16` (first operand ignored).
    Lui,
    /// Signed 32-bit multiply (low word). Long latency.
    Mul,
    /// Signed 32-bit divide (quotient; division by zero yields 0). Long
    /// latency.
    Div,
    /// Remainder (0 on division by zero). Long latency.
    Rem,
}

impl AluOp {
    /// Execution latency in cycles; the issue model uses this to schedule
    /// wakeup of dependents.
    #[inline]
    pub fn latency(self) -> u8 {
        match self {
            AluOp::Mul => 4,
            AluOp::Div | AluOp::Rem => 12,
            _ => 1,
        }
    }

    /// Applies the operation to two operand values.
    #[inline]
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Nor => !(a | b),
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
            AluOp::Lui => b << 16,
            AluOp::Mul => (a as i32).wrapping_mul(b as i32) as u32,
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    ((a as i32).wrapping_div(b as i32)) as u32
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    ((a as i32).wrapping_rem(b as i32)) as u32
                }
            }
        }
    }
}

/// Branch conditions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    /// Branch if equal (`BEQ`), two register sources.
    Eq,
    /// Branch if not equal (`BNE`), two register sources.
    Ne,
    /// Branch if `rs <= 0` signed (`BLEZ`).
    Lez,
    /// Branch if `rs > 0` signed (`BGTZ`).
    Gtz,
    /// Branch if `rs < 0` signed (`BLTZ`).
    Ltz,
    /// Branch if `rs >= 0` signed (`BGEZ`).
    Gez,
}

impl BranchCond {
    /// Evaluates the condition for source values `a` (and `b` for the
    /// two-source conditions, ignored otherwise).
    #[inline]
    pub fn taken(self, a: u32, b: u32) -> bool {
        let sa = a as i32;
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lez => sa <= 0,
            BranchCond::Gtz => sa > 0,
            BranchCond::Ltz => sa < 0,
            BranchCond::Gez => sa >= 0,
        }
    }

    /// Whether the condition reads a second register source.
    #[inline]
    pub fn uses_rt(self) -> bool {
        matches!(self, BranchCond::Eq | BranchCond::Ne)
    }
}

/// Architectural opcodes.
///
/// The instruction format is uniform ([`crate::Insn`]): `rd`/`rs`/`rt`
/// register fields plus a 32-bit immediate whose meaning depends on the
/// opcode (ALU immediate, load/store offset, branch/jump target in
/// instruction-index units).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Three-register ALU operation: `rd = rs <op> rt`.
    Alu(AluOp),
    /// Immediate ALU operation: `rd = rs <op> imm`.
    AluImm(AluOp),
    /// Load: `rd = mem[rs + imm]`, `signed` controls sub-word extension.
    Load {
        /// Access width.
        width: MemWidth,
        /// Sign-extend (`LB`/`LH`) vs zero-extend (`LBU`/`LHU`).
        signed: bool,
    },
    /// Store: `mem[rs + imm] = rt`.
    Store {
        /// Access width.
        width: MemWidth,
    },
    /// Conditional branch to `imm` (instruction index) when taken.
    Branch(BranchCond),
    /// Unconditional jump to `imm`.
    Jump,
    /// Jump-and-link: `rd = pc + 1; pc = imm`.
    JumpAndLink,
    /// Jump to the address in `rs` (instruction index in the register).
    JumpReg,
    /// Jump-and-link through register.
    JumpAndLinkReg,
    /// No operation.
    Nop,
    /// Stops the machine; the last instruction every kernel retires.
    Halt,
}

impl Op {
    /// Whether the opcode reads memory.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, Op::Load { .. })
    }

    /// Whether the opcode writes memory.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, Op::Store { .. })
    }

    /// Whether the opcode can redirect the PC.
    #[inline]
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Op::Branch(_) | Op::Jump | Op::JumpAndLink | Op::JumpReg | Op::JumpAndLinkReg
        )
    }

    /// Whether the opcode is a conditional branch.
    #[inline]
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Op::Branch(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Half.bytes(), 2);
        assert_eq!(MemWidth::Word.bytes(), 4);
        assert!(MemWidth::Half.is_partial());
        assert!(!MemWidth::Word.is_partial());
    }

    #[test]
    fn alignment() {
        assert!(MemWidth::Word.is_aligned(8));
        assert!(!MemWidth::Word.is_aligned(6));
        assert!(MemWidth::Half.is_aligned(6));
        assert!(!MemWidth::Half.is_aligned(7));
        assert!(MemWidth::Byte.is_aligned(7));
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u32::MAX);
        assert_eq!(AluOp::Slt.apply(-1i32 as u32, 0), 1);
        assert_eq!(AluOp::Sltu.apply(-1i32 as u32, 0), 0);
        assert_eq!(AluOp::Sra.apply(-8i32 as u32, 1), -4i32 as u32);
        assert_eq!(AluOp::Srl.apply(-8i32 as u32, 1), 0x7FFF_FFFC);
        assert_eq!(AluOp::Lui.apply(0, 0x1234), 0x1234_0000);
        assert_eq!(AluOp::Div.apply(7, 0), 0);
        assert_eq!(AluOp::Div.apply(-9i32 as u32, 2), -4i32 as u32);
        assert_eq!(AluOp::Rem.apply(9, 4), 1);
        assert_eq!(AluOp::Nor.apply(0, 0), u32::MAX);
    }

    #[test]
    fn alu_latencies() {
        assert_eq!(AluOp::Add.latency(), 1);
        assert_eq!(AluOp::Mul.latency(), 4);
        assert_eq!(AluOp::Div.latency(), 12);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.taken(3, 3));
        assert!(!BranchCond::Eq.taken(3, 4));
        assert!(BranchCond::Ne.taken(3, 4));
        assert!(BranchCond::Lez.taken(0, 9));
        assert!(BranchCond::Lez.taken(-5i32 as u32, 9));
        assert!(!BranchCond::Gtz.taken(0, 9));
        assert!(BranchCond::Gtz.taken(1, 9));
        assert!(BranchCond::Ltz.taken(-1i32 as u32, 0));
        assert!(BranchCond::Gez.taken(0, 0));
        assert!(BranchCond::Eq.uses_rt());
        assert!(!BranchCond::Ltz.uses_rt());
    }

    #[test]
    fn op_classes() {
        assert!(Op::Load { width: MemWidth::Word, signed: false }.is_load());
        assert!(Op::Store { width: MemWidth::Byte }.is_store());
        assert!(Op::Branch(BranchCond::Eq).is_control());
        assert!(Op::Branch(BranchCond::Eq).is_cond_branch());
        assert!(Op::Jump.is_control());
        assert!(!Op::Jump.is_cond_branch());
        assert!(!Op::Nop.is_control());
    }
}
