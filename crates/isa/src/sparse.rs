use std::collections::HashMap;

use crate::op::MemWidth;
use crate::{Addr, Word};

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// Size in bytes of one backing page (4 KiB) — the granule of
/// architectural checkpoints.
pub const PAGE_BYTES: usize = PAGE_SIZE;

/// A sparse byte-addressable memory image, allocated in 4 KiB pages on
/// first touch. Unwritten bytes read as zero.
///
/// This is the *architectural* storage used by the functional emulator and
/// as the backing store behind the timed cache hierarchy; it has no timing
/// of its own.
///
/// # Example
///
/// ```
/// use dmdp_isa::SparseMem;
/// let mut m = SparseMem::new();
/// m.write_word(0x1000, 0xDEAD_BEEF);
/// assert_eq!(m.read_word(0x1000), 0xDEAD_BEEF);
/// assert_eq!(m.read_byte(0x1003), 0xDE); // little-endian
/// assert_eq!(m.read_word(0x2000), 0);    // untouched memory is zero
/// ```
#[derive(Clone, Default)]
pub struct SparseMem {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMem {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> SparseMem {
        SparseMem { pages: HashMap::new() }
    }

    #[inline]
    fn page(&self, addr: Addr) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    #[inline]
    fn page_mut(&mut self, addr: Addr) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    #[inline]
    pub fn read_byte(&self, addr: Addr) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_byte(&mut self, addr: Addr, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads a naturally-aligned little-endian word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned.
    #[inline]
    pub fn read_word(&self, addr: Addr) -> Word {
        assert!(addr.is_multiple_of(4), "unaligned word read at {addr:#x}");
        u32::from_le_bytes([
            self.read_byte(addr),
            self.read_byte(addr + 1),
            self.read_byte(addr + 2),
            self.read_byte(addr + 3),
        ])
    }

    /// Writes a naturally-aligned little-endian word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned.
    #[inline]
    pub fn write_word(&mut self, addr: Addr, value: Word) {
        assert!(addr.is_multiple_of(4), "unaligned word write at {addr:#x}");
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_byte(addr + i as u32, *b);
        }
    }

    /// Reads an access of the given width, applying sign/zero extension
    /// for sub-word loads.
    ///
    /// # Panics
    ///
    /// Panics if the access is not naturally aligned.
    pub fn read(&self, addr: Addr, width: MemWidth, signed: bool) -> Word {
        assert!(width.is_aligned(addr), "unaligned {width} read at {addr:#x}");
        match (width, signed) {
            (MemWidth::Byte, false) => self.read_byte(addr) as u32,
            (MemWidth::Byte, true) => self.read_byte(addr) as i8 as i32 as u32,
            (MemWidth::Half, s) => {
                let v = u16::from_le_bytes([self.read_byte(addr), self.read_byte(addr + 1)]);
                if s {
                    v as i16 as i32 as u32
                } else {
                    v as u32
                }
            }
            (MemWidth::Word, _) => self.read_word(addr),
        }
    }

    /// Writes the low `width` bytes of `value`.
    ///
    /// # Panics
    ///
    /// Panics if the access is not naturally aligned.
    pub fn write(&mut self, addr: Addr, width: MemWidth, value: Word) {
        assert!(width.is_aligned(addr), "unaligned {width} write at {addr:#x}");
        for i in 0..width.bytes() {
            self.write_byte(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_byte(addr + i as u32, *b);
        }
    }

    /// Number of resident 4 KiB pages (useful in tests and for memory
    /// footprint reporting).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// A snapshot of every resident page as `(page index, bytes)`,
    /// sorted by index — the canonical order used by architectural
    /// checkpoints so that equal memory states serialize identically.
    pub fn pages_sorted(&self) -> Vec<(u32, Box<[u8; PAGE_SIZE]>)> {
        let mut pages: Vec<(u32, Box<[u8; PAGE_SIZE]>)> =
            self.pages.iter().map(|(&i, p)| (i, p.clone())).collect();
        pages.sort_unstable_by_key(|&(i, _)| i);
        pages
    }

    /// Installs a full page at the given page index, replacing whatever
    /// was resident there (checkpoint restore).
    pub fn install_page(&mut self, index: u32, bytes: &[u8; PAGE_SIZE]) {
        self.pages.insert(index, Box::new(*bytes));
    }
}

impl std::fmt::Debug for SparseMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseMem")
            .field("resident_pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill() {
        let m = SparseMem::new();
        assert_eq!(m.read_word(0), 0);
        assert_eq!(m.read_byte(0xFFFF_FFFF), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = SparseMem::new();
        m.write_word(0x10, 0x0102_0304);
        assert_eq!(m.read_byte(0x10), 0x04);
        assert_eq!(m.read_byte(0x13), 0x01);
    }

    #[test]
    fn cross_page_word() {
        let mut m = SparseMem::new();
        m.write_word(0xFFC, 0xAABB_CCDD);
        assert_eq!(m.read_word(0xFFC), 0xAABB_CCDD);
        assert_eq!(m.resident_pages(), 1);
        m.write_bytes(0xFFE, &[1, 2, 3, 4]);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn sub_word_reads() {
        let mut m = SparseMem::new();
        m.write_word(0x20, 0xFFFF_80FE);
        assert_eq!(m.read(0x20, MemWidth::Byte, false), 0xFE);
        assert_eq!(m.read(0x20, MemWidth::Byte, true), 0xFFFF_FFFE);
        assert_eq!(m.read(0x20, MemWidth::Half, true), 0xFFFF_80FE);
        assert_eq!(m.read(0x20, MemWidth::Half, false), 0x80FE);
        assert_eq!(m.read(0x22, MemWidth::Half, false), 0xFFFF);
    }

    #[test]
    fn sub_word_writes() {
        let mut m = SparseMem::new();
        m.write_word(0x30, 0xAAAA_AAAA);
        m.write(0x31, MemWidth::Byte, 0x11);
        assert_eq!(m.read_word(0x30), 0xAAAA_11AA);
        m.write(0x32, MemWidth::Half, 0xBEEF);
        assert_eq!(m.read_word(0x30), 0xBEEF_11AA);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_word_read_panics() {
        SparseMem::new().read_word(2);
    }

    #[test]
    fn pages_round_trip_sorted() {
        let mut m = SparseMem::new();
        m.write_word(0x5000, 3);
        m.write_word(0x1000, 1);
        m.write_word(0x3000, 2);
        let pages = m.pages_sorted();
        assert_eq!(pages.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![1, 3, 5]);
        let mut n = SparseMem::new();
        for (i, p) in &pages {
            n.install_page(*i, p);
        }
        for addr in [0x1000, 0x3000, 0x5000] {
            assert_eq!(n.read_word(addr), m.read_word(addr));
        }
        assert_eq!(n.resident_pages(), 3);
    }
}
