//! Architectural checkpoints and interval profiling for sampled
//! simulation.
//!
//! The SimPoint-style sampling pipeline (see `dmdp-sample`) slices a
//! program's execution into fixed-instruction *intervals*, clusters the
//! per-interval [`IntervalFeatures`] vectors, and then simulates only one
//! representative interval per cluster. The detailed pipeline is seeded
//! at a representative's boundary from a [`Checkpoint`] — the complete
//! architectural state (PC, the 32 architectural registers, every
//! resident memory page, and the run statistics accumulated so far) —
//! captured by the functional emulator, which serves as the fast-forward
//! engine.
//!
//! Checkpoints are content-digested (FNV-1a over the canonical byte
//! serialization) so that the campaign store can share one checkpoint
//! set across every model and configuration simulating the same
//! (workload, interval length) pair.

use crate::emu::RunResult;
use crate::sparse::PAGE_BYTES;
use crate::{Pc, Reg, Word};

/// Number of dependence-class feature buckets in an interval vector.
///
/// Buckets `0..=15` hold loads by `log2(store distance + 1)` — the
/// number of dynamic stores between a load and the youngest earlier
/// store writing any byte it reads. Bucket `16` collects larger
/// distances; bucket [`BUCKET_NEVER_WRITTEN`] collects loads from
/// locations no store has written.
pub const DEP_BUCKETS: usize = 18;

/// The [`DEP_BUCKETS`] slot for loads of never-written locations.
pub const BUCKET_NEVER_WRITTEN: usize = DEP_BUCKETS - 1;

/// Maps a load's store distance to its feature bucket.
///
/// `writer_ssn` is the 1-based sequence number of the youngest earlier
/// overlapping store (`0` = never written); `store_count` is the number
/// of stores retired so far.
#[inline]
pub fn dep_bucket(writer_ssn: u32, store_count: u32) -> usize {
    if writer_ssn == 0 {
        return BUCKET_NEVER_WRITTEN;
    }
    let distance = store_count - writer_ssn;
    ((distance + 1).ilog2() as usize).min(DEP_BUCKETS - 2)
}

/// Cache-line granule used by the locality features: 64-byte lines,
/// matching the detailed model's L1D line size order of magnitude. The
/// exact granule is uncritical — the features only need to *separate*
/// cold-footprint intervals from resident ones.
pub const LOC_LINE_BYTES: u32 = 64;

/// The feature vector of one fixed-instruction execution interval.
///
/// Combines a sparse basic-block vector (execution counts of block
/// leaders — PCs entered through a taken control transfer or the
/// interval start) with a dense dependence-class histogram
/// ([`dep_bucket`]) and a pair of cache-locality counters: together
/// they separate *control* phases, *memory-dependence* phases, and
/// *cache-warmth* phases. The locality pair matters because basic-block
/// vectors are address-blind: a kernel whose first pass over an array
/// takes compulsory misses and whose later passes hit in cache executes
/// the identical blocks in both phases at very different CPI.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalFeatures {
    /// `(block leader PC, execution count)` pairs, sorted by PC.
    pub bb_counts: Vec<(Pc, u32)>,
    /// Load counts per store-distance class (see [`dep_bucket`]).
    pub dep_buckets: [u32; DEP_BUCKETS],
    /// [`LOC_LINE_BYTES`]-sized lines touched for the first time in the
    /// whole run during this interval (compulsory-miss proxy).
    pub new_lines: u32,
    /// Distinct lines touched in this interval (footprint proxy).
    pub touched_lines: u32,
    /// Dynamic instructions in this interval (equals the interval
    /// length everywhere but the final, possibly partial, interval).
    pub insns: u64,
}

/// The profile of a complete run, sliced into fixed-instruction
/// intervals by [`crate::Emulator::profile_intervals`].
#[derive(Debug, Clone, Default)]
pub struct IntervalProfile {
    /// Interval length in dynamic instructions.
    pub interval_insns: u64,
    /// One feature vector per interval, in execution order.
    pub intervals: Vec<IntervalFeatures>,
    /// Statistics of the full run (the program ran to `halt`).
    pub result: RunResult,
}

impl IntervalProfile {
    /// Total dynamic instructions profiled.
    pub fn total_insns(&self) -> u64 {
        self.result.retired
    }
}

/// A complete architectural checkpoint at an interval boundary.
///
/// Restoring a checkpoint into a fresh [`crate::Emulator`]
/// ([`crate::Emulator::from_checkpoint`]) or a fresh detailed pipeline
/// (`Simulator::run_from_checkpoint` in `dmdp-core`) reproduces the
/// run from this point bit-identically: the state captured is the full
/// architectural machine state, and both engines are deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// PC of the next instruction to execute.
    pub pc: Pc,
    /// The 32 architectural registers.
    pub regs: [Word; Reg::NUM_ARCH],
    /// Run statistics accumulated up to this point (its `retired`
    /// field is the checkpoint's position in the dynamic stream).
    pub result: RunResult,
    /// Every resident 4 KiB memory page, sorted by page index.
    pub pages: Vec<(u32, Box<[u8; PAGE_BYTES]>)>,
    /// The [`LOC_LINE_BYTES`]-sized lines most recently touched before
    /// the boundary, ordered LRU→MRU and capped by the capture call.
    /// Architectural state strictly speaking ends at `pages`; this is
    /// the warming hint that lets a seeded detailed pipeline start with
    /// realistic cache and TLB contents instead of simulating a
    /// compulsory-miss storm the uncheckpointed run never had. Empty on
    /// a bare [`crate::Emulator::checkpoint`] (cold).
    pub warm_lines: Vec<u32>,
    /// `(pc, next_pc)` of the conditional branches retired most
    /// recently before the boundary, oldest first and capped like
    /// [`Checkpoint::warm_lines`] — the branch-predictor warming hint
    /// (taken-ness is `next_pc != pc + 1`). Empty on a bare
    /// [`crate::Emulator::checkpoint`].
    pub warm_branches: Vec<(Pc, Pc)>,
}

const CKPT_MAGIC: &[u8; 8] = b"DMDPCKP1";

/// FNV-1a over a byte slice — the same construction as
/// `dmdp_harness::Digest64`, re-stated here so `dmdp-isa` stays
/// dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Checkpoint {
    /// Content digest over the canonical serialization — equal digests
    /// mean interchangeable checkpoints.
    pub fn digest(&self) -> u64 {
        fnv1a(&self.to_bytes())
    }

    /// Serialized size in bytes (without serializing).
    pub fn byte_len(&self) -> usize {
        8 + 4
            + 4 * (1 + Reg::NUM_ARCH)
            + 4 * 8
            + 4
            + self.pages.len() * (4 + PAGE_BYTES)
            + 4
            + 4 * self.warm_lines.len()
            + 4
            + 8 * self.warm_branches.len()
    }

    /// Canonical little-endian byte serialization (round-trips through
    /// [`Checkpoint::from_bytes`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len());
        out.extend_from_slice(CKPT_MAGIC);
        out.extend_from_slice(&2u32.to_le_bytes());
        out.extend_from_slice(&self.pc.to_le_bytes());
        for r in self.regs {
            out.extend_from_slice(&r.to_le_bytes());
        }
        for v in [self.result.retired, self.result.loads, self.result.stores, self.result.branches]
        {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.pages.len() as u32).to_le_bytes());
        for (index, page) in &self.pages {
            out.extend_from_slice(&index.to_le_bytes());
            out.extend_from_slice(&page[..]);
        }
        out.extend_from_slice(&(self.warm_lines.len() as u32).to_le_bytes());
        for line in &self.warm_lines {
            out.extend_from_slice(&line.to_le_bytes());
        }
        out.extend_from_slice(&(self.warm_branches.len() as u32).to_le_bytes());
        for (pc, next_pc) in &self.warm_branches {
            out.extend_from_slice(&pc.to_le_bytes());
            out.extend_from_slice(&next_pc.to_le_bytes());
        }
        out
    }

    /// Deserializes a checkpoint produced by [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// A human-readable message on a bad magic, version, or truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, String> {
        let mut at = 0usize;
        let mut take = |n: usize| -> Result<&[u8], String> {
            let end = at.checked_add(n).filter(|&e| e <= bytes.len());
            let end = end.ok_or_else(|| format!("checkpoint truncated at byte {at}"))?;
            let s = &bytes[at..end];
            at = end;
            Ok(s)
        };
        if take(8)? != CKPT_MAGIC {
            return Err("not a dmdp checkpoint (bad magic)".into());
        }
        let u32_of = |s: &[u8]| u32::from_le_bytes(s.try_into().unwrap());
        let u64_of = |s: &[u8]| u64::from_le_bytes(s.try_into().unwrap());
        let version = u32_of(take(4)?);
        if version != 2 {
            return Err(format!("unsupported checkpoint version {version}"));
        }
        let pc = u32_of(take(4)?);
        let mut regs = [0u32; Reg::NUM_ARCH];
        for r in &mut regs {
            *r = u32_of(take(4)?);
        }
        let result = RunResult {
            retired: u64_of(take(8)?),
            loads: u64_of(take(8)?),
            stores: u64_of(take(8)?),
            branches: u64_of(take(8)?),
        };
        let n_pages = u32_of(take(4)?) as usize;
        let mut pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            let index = u32_of(take(4)?);
            let mut page = Box::new([0u8; PAGE_BYTES]);
            page.copy_from_slice(take(PAGE_BYTES)?);
            pages.push((index, page));
        }
        let n_warm = u32_of(take(4)?) as usize;
        let mut warm_lines = Vec::with_capacity(n_warm);
        for _ in 0..n_warm {
            warm_lines.push(u32_of(take(4)?));
        }
        let n_branches = u32_of(take(4)?) as usize;
        let mut warm_branches = Vec::with_capacity(n_branches);
        for _ in 0..n_branches {
            let pc = u32_of(take(4)?);
            let next_pc = u32_of(take(4)?);
            warm_branches.push((pc, next_pc));
        }
        if at != bytes.len() {
            return Err(format!("{} trailing bytes after checkpoint", bytes.len() - at));
        }
        Ok(Checkpoint { pc, regs, result, pages, warm_lines, warm_branches })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ckpt() -> Checkpoint {
        let mut page = Box::new([0u8; PAGE_BYTES]);
        page[0] = 0xAB;
        page[PAGE_BYTES - 1] = 0xCD;
        let mut regs = [0u32; Reg::NUM_ARCH];
        regs[1] = 42;
        regs[31] = 7;
        Checkpoint {
            pc: 17,
            regs,
            result: RunResult { retired: 1000, loads: 10, stores: 5, branches: 3 },
            pages: vec![(16, page)],
            warm_lines: vec![1024, 7, 1025],
            warm_branches: vec![(3, 9), (12, 13)],
        }
    }

    #[test]
    fn bytes_round_trip() {
        let c = sample_ckpt();
        let bytes = c.to_bytes();
        assert_eq!(bytes.len(), c.byte_len());
        let d = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(c, d);
        assert_eq!(c.digest(), d.digest());
    }

    #[test]
    fn truncation_and_garbage_rejected() {
        let bytes = sample_ckpt().to_bytes();
        for cut in [0, 4, 8, 20, bytes.len() - 1] {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(Checkpoint::from_bytes(&bad).is_err());
        let mut long = bytes;
        long.push(0);
        assert!(Checkpoint::from_bytes(&long).is_err());
    }

    #[test]
    fn digest_tracks_content() {
        let a = sample_ckpt();
        let mut b = sample_ckpt();
        assert_eq!(a.digest(), b.digest());
        b.regs[2] = 1;
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn dep_buckets_classify_distances() {
        assert_eq!(dep_bucket(0, 100), BUCKET_NEVER_WRITTEN);
        assert_eq!(dep_bucket(100, 100), 0); // distance 0
        assert_eq!(dep_bucket(99, 100), 1); // distance 1
        assert_eq!(dep_bucket(97, 100), 2); // distance 3
        assert_eq!(dep_bucket(1, 2_000_000), DEP_BUCKETS - 2); // clamped
    }
}
