//! A two-pass assembler for the DMDP ISA.
//!
//! The syntax is a practical MIPS-like subset:
//!
//! ```text
//!         .data
//! table:  .word 1, 2, 3
//! buf:    .space 64
//!         .text
//! start:  lui  $8, %hi(table)
//!         ori  $8, $8, %lo(table)
//! loop:   lw   $9, 0($8)
//!         addi $8, $8, 4
//!         bne  $9, $0, loop
//!         halt
//! ```
//!
//! * Comments run from `#` or `;` to end of line.
//! * Labels are `name:`; text labels denote instruction indices, data
//!   labels denote byte addresses.
//! * `%hi(expr)` / `%lo(expr)` split a 32-bit value for `lui`/`ori`.
//! * Immediate expressions are `label`, integers (decimal or `0x` hex),
//!   or `label+offset` / `label-offset`.
//! * Registers are written `$0`–`$31` or by the aliases `$zero`, `$sp`,
//!   `$ra`.
//!
//! The top-level entry point is [`assemble`]; use [`assemble_named`] to
//! give the program a name.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::insn::Insn;
use crate::op::MemWidth;
use crate::program::{Program, DATA_BASE};
use crate::reg::Reg;
use crate::{Addr, Pc};

/// An assembly error, carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError { line, message: message.into() }
    }

    /// 1-based line number of the offending source line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// Assembles `source` into a [`Program`] named `"asm"`.
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first syntax error, unknown
/// mnemonic, undefined label, or out-of-range operand.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_named("asm", source)
}

/// Assembles `source` into a [`Program`] with the given name.
///
/// # Errors
///
/// See [`assemble`].
pub fn assemble_named(name: &str, source: &str) -> Result<Program, AsmError> {
    Assembler::default().run(name, source)
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

#[derive(Default)]
struct Assembler {
    labels: HashMap<String, u32>,
}

/// A parsed, label-free line: mnemonic + raw operand string, plus its
/// source line for diagnostics.
struct Stmt<'a> {
    line: usize,
    mnemonic: &'a str,
    operands: &'a str,
}

impl Assembler {
    fn run(mut self, name: &str, source: &str) -> Result<Program, AsmError> {
        let stmts = self.first_pass(source)?;
        let mut text = Vec::new();
        let mut data = Vec::new();
        let mut segment = Segment::Text;
        for stmt in &stmts {
            if stmt.mnemonic.starts_with('.') {
                self.directive(stmt, &mut segment, &mut data, /*layout_only=*/ false)?;
            } else if segment == Segment::Text {
                text.push(self.encode(stmt)?);
            } else {
                return Err(AsmError::new(stmt.line, "instruction in .data segment"));
            }
        }
        let entry = self.labels.get("start").copied().unwrap_or(0);
        if text.is_empty() {
            return Err(AsmError::new(0, "program has no instructions"));
        }
        Ok(Program::new(name, text, DATA_BASE, data, entry as Pc))
    }

    /// Pass 1: strip comments, record labels, compute data layout.
    fn first_pass<'a>(&mut self, source: &'a str) -> Result<Vec<Stmt<'a>>, AsmError> {
        let mut stmts = Vec::new();
        let mut segment = Segment::Text;
        let mut text_len: u32 = 0;
        let mut data = Vec::new();
        for (idx, raw) in source.lines().enumerate() {
            let line_no = idx + 1;
            let mut line = raw;
            if let Some(p) = line.find(['#', ';']) {
                line = &line[..p];
            }
            let mut rest = line.trim();
            // Peel off any number of labels.
            while let Some(colon) = rest.find(':') {
                let (label, after) = rest.split_at(colon);
                let label = label.trim();
                if !is_ident(label) {
                    break;
                }
                let value = match segment {
                    Segment::Text => text_len,
                    Segment::Data => DATA_BASE + data.len() as u32,
                };
                if self.labels.insert(label.to_string(), value).is_some() {
                    return Err(AsmError::new(line_no, format!("duplicate label `{label}`")));
                }
                rest = after[1..].trim();
            }
            if rest.is_empty() {
                continue;
            }
            let (mnemonic, operands) = match rest.find(char::is_whitespace) {
                Some(p) => (&rest[..p], rest[p..].trim()),
                None => (rest, ""),
            };
            let stmt = Stmt { line: line_no, mnemonic, operands };
            if mnemonic.starts_with('.') {
                // Re-simulate layout so data labels resolve; labels recorded
                // above already point at the pre-directive offset.
                self.directive(&stmt, &mut segment, &mut data, /*layout_only=*/ true)?;
            } else {
                if segment == Segment::Data {
                    return Err(AsmError::new(line_no, "instruction in .data segment"));
                }
                text_len += 1;
            }
            stmts.push(stmt);
        }
        Ok(stmts)
    }

    fn directive(
        &mut self,
        stmt: &Stmt<'_>,
        segment: &mut Segment,
        data: &mut Vec<u8>,
        layout_only: bool,
    ) -> Result<(), AsmError> {
        let line = stmt.line;
        match stmt.mnemonic {
            ".text" => *segment = Segment::Text,
            ".data" => *segment = Segment::Data,
            ".word" => {
                align(data, 4);
                for field in split_operands(stmt.operands) {
                    let v = if layout_only { 0 } else { self.expr(line, field)? };
                    data.extend_from_slice(&v.to_le_bytes());
                }
            }
            ".half" => {
                align(data, 2);
                for field in split_operands(stmt.operands) {
                    let v = if layout_only { 0 } else { self.expr(line, field)? };
                    data.extend_from_slice(&(v as u16).to_le_bytes());
                }
            }
            ".byte" => {
                for field in split_operands(stmt.operands) {
                    let v = if layout_only { 0 } else { self.expr(line, field)? };
                    data.push(v as u8);
                }
            }
            ".space" => {
                let n = parse_int(stmt.operands)
                    .ok_or_else(|| AsmError::new(line, "bad .space size"))?;
                data.resize(data.len() + n as usize, 0);
            }
            ".align" => {
                let n = parse_int(stmt.operands)
                    .ok_or_else(|| AsmError::new(line, "bad .align value"))?;
                if n == 0 || !(n as u32).is_power_of_two() {
                    return Err(AsmError::new(line, ".align requires a power of two"));
                }
                align(data, n as usize);
            }
            other => return Err(AsmError::new(line, format!("unknown directive `{other}`"))),
        }
        Ok(())
    }

    /// Pass 2: encode one instruction.
    fn encode(&self, stmt: &Stmt<'_>) -> Result<Insn, AsmError> {
        let line = stmt.line;
        let ops: Vec<&str> = split_operands(stmt.operands);
        let argc = ops.len();
        let err = |m: &str| AsmError::new(line, m.to_string());
        let need = |n: usize| -> Result<(), AsmError> {
            if argc == n {
                Ok(())
            } else {
                Err(AsmError::new(
                    line,
                    format!("`{}` expects {n} operands, found {argc}", stmt.mnemonic),
                ))
            }
        };
        let reg = |s: &str| parse_reg(s).ok_or_else(|| AsmError::new(line, format!("bad register `{s}`")));
        let imm = |s: &str| self.expr(line, s).map(|v| v as i32);

        macro_rules! rrr {
            ($ctor:path) => {{
                need(3)?;
                Ok($ctor(reg(ops[0])?, reg(ops[1])?, reg(ops[2])?))
            }};
        }
        macro_rules! rri {
            ($ctor:path) => {{
                need(3)?;
                Ok($ctor(reg(ops[0])?, reg(ops[1])?, imm(ops[2])?))
            }};
        }
        macro_rules! mem {
            ($ctor:path) => {{
                need(2)?;
                let (off, base) = parse_mem_operand(ops[1])
                    .ok_or_else(|| AsmError::new(line, format!("bad memory operand `{}`", ops[1])))?;
                let off = self.expr(line, off)? as i32;
                let base = reg(base)?;
                Ok($ctor(reg(ops[0])?, base, off))
            }};
        }
        macro_rules! br2 {
            ($ctor:path) => {{
                need(3)?;
                Ok($ctor(reg(ops[0])?, reg(ops[1])?, self.expr(line, ops[2])? as Pc))
            }};
        }
        macro_rules! br1 {
            ($ctor:path) => {{
                need(2)?;
                Ok($ctor(reg(ops[0])?, self.expr(line, ops[1])? as Pc))
            }};
        }

        match stmt.mnemonic {
            "add" => rrr!(Insn::add),
            "sub" => rrr!(Insn::sub),
            "and" => rrr!(Insn::and),
            "or" => rrr!(Insn::or),
            "xor" => rrr!(Insn::xor),
            "nor" => rrr!(Insn::nor),
            "slt" => rrr!(Insn::slt),
            "sltu" => rrr!(Insn::sltu),
            "sllv" => rrr!(Insn::sllv),
            "srlv" => rrr!(Insn::srlv),
            "srav" => rrr!(Insn::srav),
            "mul" => rrr!(Insn::mul),
            "div" => rrr!(Insn::div),
            "rem" => rrr!(Insn::rem),
            "addi" => rri!(Insn::addi),
            "andi" => rri!(Insn::andi),
            "ori" => rri!(Insn::ori),
            "xori" => rri!(Insn::xori),
            "slti" => rri!(Insn::slti),
            "sltiu" => rri!(Insn::sltiu),
            "sll" => rri!(Insn::sll),
            "srl" => rri!(Insn::srl),
            "sra" => rri!(Insn::sra),
            "muli" => rri!(Insn::muli),
            "lui" => {
                need(2)?;
                Ok(Insn::lui(reg(ops[0])?, imm(ops[1])?))
            }
            "li" => {
                need(2)?;
                let v = imm(ops[1])?;
                if (-32768..=32767).contains(&v) {
                    Ok(Insn::li(reg(ops[0])?, v))
                } else {
                    Err(err("`li` immediate out of 16-bit range; use lui/ori"))
                }
            }
            "move" | "mv" => {
                need(2)?;
                Ok(Insn::mv(reg(ops[0])?, reg(ops[1])?))
            }
            "lw" => mem!(Insn::lw),
            "lh" => mem!(Insn::lh),
            "lhu" => mem!(Insn::lhu),
            "lb" => mem!(Insn::lb),
            "lbu" => mem!(Insn::lbu),
            "sw" => mem!(Insn::sw),
            "sh" => mem!(Insn::sh),
            "sb" => mem!(Insn::sb),
            "beq" => br2!(Insn::beq),
            "bne" => br2!(Insn::bne),
            "blez" => br1!(Insn::blez),
            "bgtz" => br1!(Insn::bgtz),
            "bltz" => br1!(Insn::bltz),
            "bgez" => br1!(Insn::bgez),
            "j" => {
                need(1)?;
                Ok(Insn::j(self.expr(line, ops[0])? as Pc))
            }
            "jal" => {
                need(1)?;
                Ok(Insn::jal(self.expr(line, ops[0])? as Pc))
            }
            "jr" => {
                need(1)?;
                Ok(Insn::jr(reg(ops[0])?))
            }
            "jalr" => {
                need(2)?;
                Ok(Insn::jalr(reg(ops[0])?, reg(ops[1])?))
            }
            "nop" => {
                need(0)?;
                Ok(Insn::nop())
            }
            "halt" => {
                need(0)?;
                Ok(Insn::halt())
            }
            other => Err(AsmError::new(line, format!("unknown mnemonic `{other}`"))),
        }
    }

    /// Evaluates `label`, `int`, `label+int`, `label-int`, `%hi(e)`,
    /// `%lo(e)`.
    fn expr(&self, line: usize, s: &str) -> Result<u32, AsmError> {
        let s = s.trim();
        if let Some(inner) = s.strip_prefix("%hi(").and_then(|r| r.strip_suffix(')')) {
            return Ok(self.expr(line, inner)? >> 16);
        }
        if let Some(inner) = s.strip_prefix("%lo(").and_then(|r| r.strip_suffix(')')) {
            return Ok(self.expr(line, inner)? & 0xFFFF);
        }
        if let Some(v) = parse_int(s) {
            return Ok(v as u32);
        }
        // label, label+off, label-off
        let (base, offset) = match s[1..].find(['+', '-']) {
            Some(p) => {
                let p = p + 1;
                let off = parse_int(&s[p..])
                    .ok_or_else(|| AsmError::new(line, format!("bad offset in `{s}`")))?;
                (&s[..p], off)
            }
            None => (s, 0),
        };
        let base = base.trim();
        match self.labels.get(base) {
            Some(v) => Ok(v.wrapping_add(offset as u32)),
            None => Err(AsmError::new(line, format!("undefined label `{base}`"))),
        }
    }
}

fn align(data: &mut Vec<u8>, to: usize) {
    while !(DATA_BASE as usize + data.len()).is_multiple_of(to) {
        data.push(0);
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn split_operands(s: &str) -> Vec<&str> {
    if s.trim().is_empty() {
        return Vec::new();
    }
    s.split(',').map(str::trim).collect()
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_reg(s: &str) -> Option<Reg> {
    let body = s.trim().strip_prefix('$')?;
    match body {
        "zero" => Some(Reg::ZERO),
        "sp" => Some(Reg::SP),
        "ra" => Some(Reg::RA),
        _ => {
            let n: u8 = body.parse().ok()?;
            ((n as usize) < Reg::NUM_ARCH).then(|| Reg::new(n))
        }
    }
}

/// Splits `off(base)` into (`off`, `base`). `off` may be any expression.
fn parse_mem_operand(s: &str) -> Option<(&str, &str)> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    if close < open {
        return None;
    }
    let off = s[..open].trim();
    let base = s[open + 1..close].trim();
    Some((if off.is_empty() { "0" } else { off }, base))
}

/// Checks that a width/offset combination is naturally aligned; used by
/// callers that build programs dynamically. Exposed for workload
/// generators.
pub fn check_alignment(addr: Addr, width: MemWidth) -> bool {
    width.is_aligned(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Emulator;

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            r#"
            # a comment
            li   $1, 3      ; another comment
            li   $2, 4
            add  $3, $1, $2
            halt
        "#,
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.fetch(2), Some(Insn::add(Reg::new(3), Reg::new(1), Reg::new(2))));
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble(
            r#"
        top:    addi $1, $1, 1
                beq  $1, $2, done
                j    top
        done:   halt
        "#,
        )
        .unwrap();
        assert_eq!(p.fetch(1), Some(Insn::beq(Reg::new(1), Reg::new(2), 3)));
        assert_eq!(p.fetch(2), Some(Insn::j(0)));
    }

    #[test]
    fn data_segment_and_hi_lo() {
        let p = assemble(
            r#"
                .data
        a:      .word 10, 20
        b:      .byte 1, 2
                .align 4
        c:      .word 0xDEADBEEF
                .text
                lui $8, %hi(c)
                ori $8, $8, %lo(c)
                lw  $9, 0($8)
                halt
        "#,
        )
        .unwrap();
        let m = p.initial_memory();
        assert_eq!(m.read_word(DATA_BASE), 10);
        assert_eq!(m.read_word(DATA_BASE + 4), 20);
        assert_eq!(m.read_byte(DATA_BASE + 8), 1);
        assert_eq!(m.read_word(DATA_BASE + 12), 0xDEAD_BEEF);
        // And the program actually loads it.
        let mut emu = Emulator::new(&p);
        emu.run(100).unwrap();
        assert_eq!(emu.reg(Reg::new(9)), 0xDEAD_BEEF);
    }

    #[test]
    fn mem_operand_forms() {
        let p = assemble(
            r#"
            lw $9, 4($3)
            sw $7, ($8)
            halt
        "#,
        )
        .unwrap();
        assert_eq!(p.fetch(0), Some(Insn::lw(Reg::new(9), Reg::new(3), 4)));
        assert_eq!(p.fetch(1), Some(Insn::sw(Reg::new(7), Reg::new(8), 0)));
    }

    #[test]
    fn label_plus_offset_in_mem_operand() {
        let p = assemble(
            r#"
                .data
        arr:    .word 1, 2, 3
                .text
                lw $9, arr+8($0)
                halt
        "#,
        )
        .unwrap();
        assert_eq!(p.fetch(0), Some(Insn::lw(Reg::new(9), Reg::ZERO, (DATA_BASE + 8) as i32)));
    }

    #[test]
    fn register_aliases() {
        let p = assemble("move $sp, $ra\nhalt").unwrap();
        assert_eq!(p.fetch(0), Some(Insn::mv(Reg::SP, Reg::RA)));
    }

    #[test]
    fn start_label_sets_entry() {
        let p = assemble(
            r#"
                nop
        start:  halt
        "#,
        )
        .unwrap();
        assert_eq!(p.entry(), 1);
    }

    #[test]
    fn error_reports_line() {
        let e = assemble("nop\nbogus $1, $2\nhalt").unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let e = assemble("j nowhere\nhalt").unwrap_err();
        assert!(e.to_string().contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = assemble("x: nop\nx: halt").unwrap_err();
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn operand_count_mismatch() {
        let e = assemble("add $1, $2\nhalt").unwrap_err();
        assert!(e.to_string().contains("expects 3"));
    }

    #[test]
    fn empty_program_is_an_error() {
        assert!(assemble("# nothing\n").is_err());
    }

    #[test]
    fn instructions_in_data_segment_rejected() {
        let e = assemble(".data\nnop\n").unwrap_err();
        assert!(e.to_string().contains(".data"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("addi $1, $0, -4\nori $2, $0, 0xFF\nhalt").unwrap();
        assert_eq!(p.fetch(0), Some(Insn::addi(Reg::new(1), Reg::ZERO, -4)));
        assert_eq!(p.fetch(1), Some(Insn::ori(Reg::new(2), Reg::ZERO, 0xFF)));
    }
}
