use std::fmt;

use crate::insn::Insn;
use crate::sparse::SparseMem;
use crate::{Addr, Pc, Word};

/// Default base address of the data segment. Instruction "addresses" are
/// instruction indices, so text and data can never alias.
pub const DATA_BASE: Addr = 0x0001_0000;

/// An executable program: a text segment (one [`Insn`] per slot), an
/// initialized data segment, and an entry point.
///
/// Programs are produced by the [`crate::asm`] assembler or a
/// [`ProgramBuilder`], and consumed by the functional [`crate::Emulator`]
/// and by the timed pipeline models in `dmdp-core`.
#[derive(Clone, Debug)]
pub struct Program {
    name: String,
    text: Vec<Insn>,
    data_base: Addr,
    data: Vec<u8>,
    entry: Pc,
}

impl Program {
    /// Assembles the parts into a program.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is outside the text segment.
    pub fn new(name: impl Into<String>, text: Vec<Insn>, data_base: Addr, data: Vec<u8>, entry: Pc) -> Program {
        assert!((entry as usize) < text.len().max(1), "entry point outside text segment");
        Program { name: name.into(), text, data_base, data, entry }
    }

    /// Human-readable program name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The text segment.
    pub fn text(&self) -> &[Insn] {
        &self.text
    }

    /// Fetches the instruction at `pc`, or `None` past the end of text.
    #[inline]
    pub fn fetch(&self, pc: Pc) -> Option<Insn> {
        self.text.get(pc as usize).copied()
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the text segment is empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Base address of the initialized data segment.
    pub fn data_base(&self) -> Addr {
        self.data_base
    }

    /// The initialized data bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Entry-point PC.
    pub fn entry(&self) -> Pc {
        self.entry
    }

    /// Materializes the initial memory image (data segment loaded).
    pub fn initial_memory(&self) -> SparseMem {
        let mut m = SparseMem::new();
        m.write_bytes(self.data_base, &self.data);
        m
    }

    /// Renders a disassembly listing, one instruction per line with its PC.
    pub fn listing(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        for (pc, insn) in self.text.iter().enumerate() {
            let _ = writeln!(s, "{pc:5}: {insn}");
        }
        s
    }
}

/// Incremental, programmatic construction of a [`Program`].
///
/// The builder keeps a cursor into the text segment and a data-segment
/// allocator; control flow uses explicit PCs obtained from
/// [`ProgramBuilder::here`] (for backward targets) or
/// [`ProgramBuilder::reserve`] + [`ProgramBuilder::patch`] (for forward
/// targets).
///
/// # Example
///
/// ```
/// use dmdp_isa::{Insn, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new("count-down");
/// let r1 = Reg::new(1);
/// b.push(Insn::li(r1, 10));
/// let top = b.here();
/// b.push(Insn::addi(r1, r1, -1));
/// b.push(Insn::bgtz(r1, top));
/// b.push(Insn::halt());
/// let p = b.build();
/// assert_eq!(p.len(), 4);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    text: Vec<Insn>,
    data_base: Addr,
    data: Vec<u8>,
}

impl ProgramBuilder {
    /// Starts an empty program with the default data base.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder { name: name.into(), text: Vec::new(), data_base: DATA_BASE, data: Vec::new() }
    }

    /// Appends an instruction, returning its PC.
    pub fn push(&mut self, insn: Insn) -> Pc {
        self.text.push(insn);
        (self.text.len() - 1) as Pc
    }

    /// Appends every instruction in the slice.
    pub fn push_all(&mut self, insns: &[Insn]) -> &mut Self {
        self.text.extend_from_slice(insns);
        self
    }

    /// The PC the next pushed instruction will occupy.
    pub fn here(&self) -> Pc {
        self.text.len() as Pc
    }

    /// Reserves a slot (filled with `nop`) to be patched later, e.g. for a
    /// forward branch.
    pub fn reserve(&mut self) -> Pc {
        self.push(Insn::nop())
    }

    /// Replaces the instruction at a previously [`reserve`](Self::reserve)d
    /// slot.
    ///
    /// # Panics
    ///
    /// Panics if `at` is out of range.
    pub fn patch(&mut self, at: Pc, insn: Insn) {
        self.text[at as usize] = insn;
    }

    /// Appends `words` to the data segment (word-aligned), returning the
    /// address of the first one.
    pub fn data_words(&mut self, words: &[Word]) -> Addr {
        self.align(4);
        let addr = self.data_base + self.data.len() as u32;
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        addr
    }

    /// Appends raw bytes to the data segment, returning their address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> Addr {
        let addr = self.data_base + self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Reserves `n` zeroed bytes in the data segment, returning their
    /// address.
    pub fn data_space(&mut self, n: usize) -> Addr {
        let addr = self.data_base + self.data.len() as u32;
        self.data.resize(self.data.len() + n, 0);
        addr
    }

    /// Pads the data segment to the given power-of-two alignment.
    pub fn align(&mut self, to: usize) {
        debug_assert!(to.is_power_of_two());
        while !(self.data_base as usize + self.data.len()).is_multiple_of(to) {
            self.data.push(0);
        }
    }

    /// Emits the canonical two-instruction sequence that materializes a
    /// 32-bit address constant into `rd` (`lui` + `ori`).
    pub fn load_addr(&mut self, rd: crate::Reg, addr: Addr) -> &mut Self {
        self.push(Insn::lui(rd, (addr >> 16) as i32));
        self.push(Insn::ori(rd, rd, (addr & 0xFFFF) as i32));
        self
    }

    /// Finishes construction.
    pub fn build(self) -> Program {
        Program::new(self.name, self.text, self.data_base, self.data, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn build_and_fetch() {
        let mut b = ProgramBuilder::new("t");
        b.push(Insn::li(Reg::new(1), 5));
        b.push(Insn::halt());
        let p = b.build();
        assert_eq!(p.name(), "t");
        assert_eq!(p.len(), 2);
        assert_eq!(p.fetch(1), Some(Insn::halt()));
        assert_eq!(p.fetch(2), None);
    }

    #[test]
    fn data_allocation_and_alignment() {
        let mut b = ProgramBuilder::new("t");
        let a = b.data_bytes(&[1, 2, 3]);
        let w = b.data_words(&[0xAABB_CCDD]);
        assert_eq!(a, DATA_BASE);
        assert_eq!(w, DATA_BASE + 4); // aligned past the 3 bytes
        b.push(Insn::halt());
        let p = b.build();
        let m = p.initial_memory();
        assert_eq!(m.read_byte(DATA_BASE), 1);
        assert_eq!(m.read_word(DATA_BASE + 4), 0xAABB_CCDD);
    }

    #[test]
    fn reserve_and_patch_forward_branch() {
        let mut b = ProgramBuilder::new("t");
        let slot = b.reserve();
        b.push(Insn::nop());
        let target = b.here();
        b.push(Insn::halt());
        b.patch(slot, Insn::j(target));
        let p = b.build();
        assert_eq!(p.fetch(0), Some(Insn::j(2)));
    }

    #[test]
    fn load_addr_sequence() {
        let mut b = ProgramBuilder::new("t");
        b.load_addr(Reg::new(8), 0x0001_2345);
        b.push(Insn::halt());
        let p = b.build();
        assert_eq!(p.fetch(0), Some(Insn::lui(Reg::new(8), 1)));
        assert_eq!(p.fetch(1), Some(Insn::ori(Reg::new(8), Reg::new(8), 0x2345)));
    }

    #[test]
    fn listing_contains_every_pc() {
        let mut b = ProgramBuilder::new("t");
        b.push(Insn::nop());
        b.push(Insn::halt());
        let listing = b.build().listing();
        assert!(listing.contains("0: nop"));
        assert!(listing.contains("1: halt"));
    }
}
