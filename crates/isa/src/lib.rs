#![warn(missing_docs)]
//! # dmdp-isa
//!
//! Instruction set architecture for the DMDP (Dynamic Memory Dependence
//! Predication, ISCA 2018) reproduction.
//!
//! This crate defines a MIPS-I-like 32-bit RISC ISA — registers, opcodes,
//! instructions — together with everything a micro-architectural simulator
//! needs to run programs written in it:
//!
//! * [`Insn`] / [`Op`]: the architectural instruction set,
//! * [`uop`]: the micro-op (µop) layer the out-of-order core executes,
//!   including the `AGI`, `CMP` and `CMOV` µops the paper introduces,
//! * [`asm`]: a small assembler (labels, `.data` directives) used by the
//!   workload kernels and examples,
//! * [`Emulator`]: a functional (architecturally exact) emulator that serves
//!   as the golden reference for every pipeline model and produces the
//!   oracle dependence trace used by the paper's *Perfect* model,
//! * [`bab`]: Byte-Access-Bits helpers implementing the paper's
//!   partial-word forwarding rules (§IV-D).
//!
//! # Example
//!
//! ```
//! use dmdp_isa::{asm, Emulator};
//!
//! let program = asm::assemble(
//!     r#"
//!         .data
//!     value: .word 41
//!         .text
//!         lui  $8, %hi(value)
//!         ori  $8, $8, %lo(value)
//!         lw   $9, 0($8)
//!         addi $9, $9, 1
//!         sw   $9, 0($8)
//!         halt
//!     "#,
//! )?;
//! let mut emu = Emulator::new(&program);
//! let result = emu.run(1_000)?;
//! assert_eq!(result.retired, 6);
//! assert_eq!(emu.load_word(program.data_base()), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod asm;
pub mod bab;
pub mod checkpoint;
mod emu;
pub mod encode;
mod insn;
mod op;
mod program;
mod reg;
mod sparse;
pub mod uop;

pub use checkpoint::{Checkpoint, IntervalFeatures, IntervalProfile};
pub use emu::{EmuError, Emulator, OracleTrace, RunResult, StepOutcome, StopReason};
pub use insn::Insn;
pub use op::{AluOp, BranchCond, MemWidth, Op};
pub use program::{Program, ProgramBuilder};
pub use reg::Reg;
pub use sparse::{SparseMem, PAGE_BYTES};

/// A 32-bit byte address in the simulated machine.
pub type Addr = u32;

/// A 32-bit machine word.
pub type Word = u32;

/// Program counter measured in *instruction index* units.
///
/// The assembler lays instructions out densely, one slot per instruction;
/// sequential execution increments the PC by one. This keeps the
/// instruction and data address spaces disjoint by construction.
pub type Pc = u32;
