//! Binary encoding of instructions and whole program images.
//!
//! Each instruction packs into one 64-bit word (the 32-bit immediate
//! rules out a MIPS-style 32-bit encoding: data labels produce full
//! addresses):
//!
//! ```text
//!  63      56 55    50 49    44 43    38 37     32 31            0
//! +----------+--------+--------+--------+---------+---------------+
//! |  opcode  |   rd   |   rs   |   rt   | (unused)|   immediate   |
//! +----------+--------+--------+--------+---------+---------------+
//! ```
//!
//! [`Program::to_image`] / [`Program::from_image`] serialize a whole
//! program (magic, entry point, text, data base, data bytes) so that
//! assembled kernels can be cached on disk or shipped between tools.

use std::error::Error;
use std::fmt;

use crate::insn::Insn;
use crate::op::{AluOp, BranchCond, MemWidth, Op};
use crate::program::Program;
use crate::reg::Reg;

/// Decoding error: the word does not denote a valid instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    word: u64,
    reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#018x}: {}", self.word, self.reason)
    }
}

impl Error for DecodeError {}

fn err(word: u64, reason: &'static str) -> DecodeError {
    DecodeError { word, reason }
}

const OP_ALU: u8 = 0x01;
const OP_ALU_IMM: u8 = 0x02;
const OP_LOAD: u8 = 0x10; // +width*2 +signed
const OP_STORE: u8 = 0x18; // +width
const OP_BRANCH: u8 = 0x20; // +cond
const OP_JUMP: u8 = 0x30;
const OP_JAL: u8 = 0x31;
const OP_JR: u8 = 0x32;
const OP_JALR: u8 = 0x33;
const OP_NOP: u8 = 0x3E;
const OP_HALT: u8 = 0x3F;

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Nor => 5,
        AluOp::Slt => 6,
        AluOp::Sltu => 7,
        AluOp::Sll => 8,
        AluOp::Srl => 9,
        AluOp::Sra => 10,
        AluOp::Lui => 11,
        AluOp::Mul => 12,
        AluOp::Div => 13,
        AluOp::Rem => 14,
    }
}

fn alu_from(code: u8) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Nor,
        6 => AluOp::Slt,
        7 => AluOp::Sltu,
        8 => AluOp::Sll,
        9 => AluOp::Srl,
        10 => AluOp::Sra,
        11 => AluOp::Lui,
        12 => AluOp::Mul,
        13 => AluOp::Div,
        14 => AluOp::Rem,
        _ => return None,
    })
}

fn cond_code(c: BranchCond) -> u8 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lez => 2,
        BranchCond::Gtz => 3,
        BranchCond::Ltz => 4,
        BranchCond::Gez => 5,
    }
}

fn cond_from(code: u8) -> Option<BranchCond> {
    Some(match code {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lez,
        3 => BranchCond::Gtz,
        4 => BranchCond::Ltz,
        5 => BranchCond::Gez,
        _ => return None,
    })
}

fn width_code(w: MemWidth) -> u8 {
    match w {
        MemWidth::Byte => 0,
        MemWidth::Half => 1,
        MemWidth::Word => 2,
    }
}

fn width_from(code: u8) -> Option<MemWidth> {
    Some(match code {
        0 => MemWidth::Byte,
        1 => MemWidth::Half,
        2 => MemWidth::Word,
        _ => return None,
    })
}

/// Encodes an instruction into its 64-bit word.
pub fn encode(insn: Insn) -> u64 {
    let (opcode, sub): (u8, u8) = match insn.op {
        Op::Alu(a) => (OP_ALU, alu_code(a)),
        Op::AluImm(a) => (OP_ALU_IMM, alu_code(a)),
        Op::Load { width, signed } => (OP_LOAD + width_code(width) * 2 + signed as u8, 0),
        Op::Store { width } => (OP_STORE + width_code(width), 0),
        Op::Branch(c) => (OP_BRANCH + cond_code(c), 0),
        Op::Jump => (OP_JUMP, 0),
        Op::JumpAndLink => (OP_JAL, 0),
        Op::JumpReg => (OP_JR, 0),
        Op::JumpAndLinkReg => (OP_JALR, 0),
        Op::Nop => (OP_NOP, 0),
        Op::Halt => (OP_HALT, 0),
    };
    ((opcode as u64) << 56)
        | ((insn.rd.index() as u64) << 50)
        | ((insn.rs.index() as u64) << 44)
        | ((insn.rt.index() as u64) << 38)
        | ((sub as u64) << 32)
        | (insn.imm as u32 as u64)
}

/// Decodes a 64-bit word back into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] for unknown opcodes, ALU/branch sub-codes, or
/// out-of-range register fields.
pub fn decode(word: u64) -> Result<Insn, DecodeError> {
    let opcode = (word >> 56) as u8;
    let rd_i = ((word >> 50) & 0x3F) as u8;
    let rs_i = ((word >> 44) & 0x3F) as u8;
    let rt_i = ((word >> 38) & 0x3F) as u8;
    let sub = ((word >> 32) & 0x3F) as u8;
    let imm = word as u32 as i32;
    if rd_i as usize >= Reg::NUM_LOGICAL
        || rs_i as usize >= Reg::NUM_LOGICAL
        || rt_i as usize >= Reg::NUM_LOGICAL
    {
        return Err(err(word, "register field out of range"));
    }
    let (rd, rs, rt) = (Reg::new(rd_i), Reg::new(rs_i), Reg::new(rt_i));
    let op = match opcode {
        OP_ALU => Op::Alu(alu_from(sub).ok_or_else(|| err(word, "bad ALU sub-code"))?),
        OP_ALU_IMM => Op::AluImm(alu_from(sub).ok_or_else(|| err(word, "bad ALU sub-code"))?),
        o if (OP_LOAD..OP_LOAD + 6).contains(&o) => {
            let rel = o - OP_LOAD;
            Op::Load {
                width: width_from(rel / 2).ok_or_else(|| err(word, "bad load width"))?,
                signed: rel % 2 == 1,
            }
        }
        o if (OP_STORE..OP_STORE + 3).contains(&o) => Op::Store {
            width: width_from(o - OP_STORE).ok_or_else(|| err(word, "bad store width"))?,
        },
        o if (OP_BRANCH..OP_BRANCH + 6).contains(&o) => Op::Branch(
            cond_from(o - OP_BRANCH).ok_or_else(|| err(word, "bad branch condition"))?,
        ),
        OP_JUMP => Op::Jump,
        OP_JAL => Op::JumpAndLink,
        OP_JR => Op::JumpReg,
        OP_JALR => Op::JumpAndLinkReg,
        OP_NOP => Op::Nop,
        OP_HALT => Op::Halt,
        _ => return Err(err(word, "unknown opcode")),
    };
    Ok(Insn { op, rd, rs, rt, imm })
}

const IMAGE_MAGIC: u32 = 0x444D_4450; // "DMDP"
const IMAGE_VERSION: u32 = 1;

/// Program image (de)serialization.
impl Program {
    /// Serializes the program into a self-describing byte image.
    pub fn to_image(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let name = self.name().as_bytes();
        out.extend_from_slice(&IMAGE_MAGIC.to_le_bytes());
        out.extend_from_slice(&IMAGE_VERSION.to_le_bytes());
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&self.entry().to_le_bytes());
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for i in self.text() {
            out.extend_from_slice(&encode(*i).to_le_bytes());
        }
        out.extend_from_slice(&self.data_base().to_le_bytes());
        out.extend_from_slice(&(self.data().len() as u32).to_le_bytes());
        out.extend_from_slice(self.data());
        out
    }

    /// Deserializes a program image produced by [`Program::to_image`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on a bad magic/version, a truncated
    /// image, or an undecodable instruction word.
    pub fn from_image(bytes: &[u8]) -> Result<Program, DecodeError> {
        struct Cursor<'a>(&'a [u8]);
        impl<'a> Cursor<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
                if self.0.len() < n {
                    return Err(err(0, "truncated image"));
                }
                let (head, rest) = self.0.split_at(n);
                self.0 = rest;
                Ok(head)
            }
            fn u32(&mut self) -> Result<u32, DecodeError> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
            }
            fn u64(&mut self) -> Result<u64, DecodeError> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
            }
        }
        let mut c = Cursor(bytes);
        if c.u32()? != IMAGE_MAGIC {
            return Err(err(0, "bad magic"));
        }
        if c.u32()? != IMAGE_VERSION {
            return Err(err(0, "unsupported image version"));
        }
        let name_len = c.u32()? as usize;
        let name = String::from_utf8(c.take(name_len)?.to_vec())
            .map_err(|_| err(0, "program name is not UTF-8"))?;
        let entry = c.u32()?;
        let text_len = c.u32()? as usize;
        let mut text = Vec::with_capacity(text_len);
        for _ in 0..text_len {
            text.push(decode(c.u64()?)?);
        }
        let data_base = c.u32()?;
        let data_len = c.u32()? as usize;
        let data = c.take(data_len)?.to_vec();
        if entry as usize >= text.len().max(1) {
            return Err(err(0, "entry point outside text"));
        }
        Ok(Program::new(name, text, data_base, data, entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn encode_decode_representative_instructions() {
        let cases = [
            Insn::add(r(3), r(1), r(2)),
            Insn::addi(r(3), r(1), -12345),
            Insn::lui(r(8), 0xFFFF),
            Insn::lw(r(9), r(3), 0x1_0004),
            Insn::lb(r(9), r(3), -3),
            Insn::lhu(r(9), r(3), 6),
            Insn::sw(r(7), r(8), 8),
            Insn::sb(r(7), r(8), 1),
            Insn::beq(r(1), r(2), 42),
            Insn::bltz(r(1), 7),
            Insn::j(99),
            Insn::jal(5),
            Insn::jr(Reg::RA),
            Insn::jalr(r(4), r(5)),
            Insn::muli(r(6), r(7), 257),
            Insn::nop(),
            Insn::halt(),
        ];
        for i in cases {
            assert_eq!(decode(encode(i)).unwrap(), i, "{i}");
        }
    }

    #[test]
    fn bad_words_are_rejected() {
        assert!(decode(0xFF << 56).is_err()); // unknown opcode
        assert!(decode((OP_ALU as u64) << 56 | (63 << 32)).is_err()); // bad sub
        let bad_reg = ((OP_ALU as u64) << 56) | (40u64 << 50);
        assert!(decode(bad_reg).is_err());
    }

    #[test]
    fn image_round_trip() {
        let p = crate::asm::assemble_named(
            "img",
            r#"
                .data
        x:      .word 7, 9
                .text
        start:  lw $1, x($0)
                addi $1, $1, 1
                halt
            "#,
        )
        .unwrap();
        let image = p.to_image();
        let q = Program::from_image(&image).unwrap();
        assert_eq!(q.name(), "img");
        assert_eq!(q.text(), p.text());
        assert_eq!(q.data(), p.data());
        assert_eq!(q.entry(), p.entry());
        assert_eq!(q.data_base(), p.data_base());
    }

    #[test]
    fn truncated_image_fails_cleanly() {
        let p = crate::asm::assemble("nop\nhalt").unwrap();
        let image = p.to_image();
        for cut in [0, 3, 7, image.len() - 1] {
            assert!(Program::from_image(&image[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_magic_fails() {
        let p = crate::asm::assemble("halt").unwrap();
        let mut image = p.to_image();
        image[0] ^= 0xFF;
        assert!(Program::from_image(&image).is_err());
    }
}
