use std::fmt;

use crate::op::{AluOp, BranchCond, MemWidth, Op};
use crate::reg::Reg;
use crate::Pc;

/// One architectural instruction.
///
/// Instructions use a uniform three-register + immediate format; which
/// fields are meaningful depends on [`Op`]. Constructors (e.g.
/// [`Insn::add`], [`Insn::lw`], [`Insn::beq`]) build well-formed
/// instructions; the field accessors [`Insn::dest`] and [`Insn::sources`]
/// expose the dataflow a renamer needs.
///
/// # Example
///
/// ```
/// use dmdp_isa::{Insn, Reg};
/// let i = Insn::addi(Reg::new(9), Reg::new(8), 4);
/// assert_eq!(i.dest(), Some(Reg::new(9)));
/// assert_eq!(i.sources(), [Some(Reg::new(8)), None]);
/// assert_eq!(i.to_string(), "addi $9, $8, 4");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Insn {
    /// Opcode.
    pub op: Op,
    /// Destination register (meaning depends on `op`).
    pub rd: Reg,
    /// First source register.
    pub rs: Reg,
    /// Second source register.
    pub rt: Reg,
    /// Immediate: ALU constant, load/store byte offset, or branch/jump
    /// target in instruction-index units.
    pub imm: i32,
}

macro_rules! alu3 {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(rd: Reg, rs: Reg, rt: Reg) -> Insn {
                Insn { op: Op::Alu(AluOp::$op), rd, rs, rt, imm: 0 }
            }
        )*
    };
}

macro_rules! alui {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(rd: Reg, rs: Reg, imm: i32) -> Insn {
                Insn { op: Op::AluImm(AluOp::$op), rd, rs, rt: Reg::ZERO, imm }
            }
        )*
    };
}

impl Insn {
    alu3! {
        /// `add rd, rs, rt`
        add => Add,
        /// `sub rd, rs, rt`
        sub => Sub,
        /// `and rd, rs, rt`
        and => And,
        /// `or rd, rs, rt`
        or => Or,
        /// `xor rd, rs, rt`
        xor => Xor,
        /// `nor rd, rs, rt`
        nor => Nor,
        /// `slt rd, rs, rt`
        slt => Slt,
        /// `sltu rd, rs, rt`
        sltu => Sltu,
        /// `sllv rd, rs, rt` (shift amount in `rt`)
        sllv => Sll,
        /// `srlv rd, rs, rt`
        srlv => Srl,
        /// `srav rd, rs, rt`
        srav => Sra,
        /// `mul rd, rs, rt`
        mul => Mul,
        /// `div rd, rs, rt` (quotient)
        div => Div,
        /// `rem rd, rs, rt`
        rem => Rem,
    }

    alui! {
        /// `addi rd, rs, imm`
        addi => Add,
        /// `andi rd, rs, imm`
        andi => And,
        /// `ori rd, rs, imm`
        ori => Or,
        /// `xori rd, rs, imm`
        xori => Xor,
        /// `slti rd, rs, imm`
        slti => Slt,
        /// `sltiu rd, rs, imm`
        sltiu => Sltu,
        /// `sll rd, rs, sh` (immediate shift)
        sll => Sll,
        /// `srl rd, rs, sh`
        srl => Srl,
        /// `sra rd, rs, sh`
        sra => Sra,
        /// `muli rd, rs, imm` (immediate multiply; ISA extension for
        /// compact kernels)
        muli => Mul,
    }

    /// `lui rd, imm`: `rd = imm << 16`.
    pub fn lui(rd: Reg, imm: i32) -> Insn {
        Insn { op: Op::AluImm(AluOp::Lui), rd, rs: Reg::ZERO, rt: Reg::ZERO, imm }
    }

    /// `li rd, imm` pseudo-instruction for small constants, encoded as
    /// `addi rd, $0, imm`.
    pub fn li(rd: Reg, imm: i32) -> Insn {
        Insn::addi(rd, Reg::ZERO, imm)
    }

    /// `move rd, rs` pseudo-instruction, encoded as `or rd, rs, $0`.
    pub fn mv(rd: Reg, rs: Reg) -> Insn {
        Insn::or(rd, rs, Reg::ZERO)
    }

    /// A generic load; see also [`Insn::lw`], [`Insn::lh`], etc.
    pub fn load(rd: Reg, base: Reg, offset: i32, width: MemWidth, signed: bool) -> Insn {
        Insn { op: Op::Load { width, signed }, rd, rs: base, rt: Reg::ZERO, imm: offset }
    }

    /// A generic store; see also [`Insn::sw`], [`Insn::sh`], [`Insn::sb`].
    pub fn store(rt: Reg, base: Reg, offset: i32, width: MemWidth) -> Insn {
        Insn { op: Op::Store { width }, rd: Reg::ZERO, rs: base, rt, imm: offset }
    }

    /// `lw rd, offset(base)`
    pub fn lw(rd: Reg, base: Reg, offset: i32) -> Insn {
        Insn::load(rd, base, offset, MemWidth::Word, false)
    }

    /// `lh rd, offset(base)` (sign-extending half-word load)
    pub fn lh(rd: Reg, base: Reg, offset: i32) -> Insn {
        Insn::load(rd, base, offset, MemWidth::Half, true)
    }

    /// `lhu rd, offset(base)`
    pub fn lhu(rd: Reg, base: Reg, offset: i32) -> Insn {
        Insn::load(rd, base, offset, MemWidth::Half, false)
    }

    /// `lb rd, offset(base)` (sign-extending byte load)
    pub fn lb(rd: Reg, base: Reg, offset: i32) -> Insn {
        Insn::load(rd, base, offset, MemWidth::Byte, true)
    }

    /// `lbu rd, offset(base)`
    pub fn lbu(rd: Reg, base: Reg, offset: i32) -> Insn {
        Insn::load(rd, base, offset, MemWidth::Byte, false)
    }

    /// `sw rt, offset(base)`
    pub fn sw(rt: Reg, base: Reg, offset: i32) -> Insn {
        Insn::store(rt, base, offset, MemWidth::Word)
    }

    /// `sh rt, offset(base)`
    pub fn sh(rt: Reg, base: Reg, offset: i32) -> Insn {
        Insn::store(rt, base, offset, MemWidth::Half)
    }

    /// `sb rt, offset(base)`
    pub fn sb(rt: Reg, base: Reg, offset: i32) -> Insn {
        Insn::store(rt, base, offset, MemWidth::Byte)
    }

    /// `beq rs, rt, target`
    pub fn beq(rs: Reg, rt: Reg, target: Pc) -> Insn {
        Insn { op: Op::Branch(BranchCond::Eq), rd: Reg::ZERO, rs, rt, imm: target as i32 }
    }

    /// `bne rs, rt, target`
    pub fn bne(rs: Reg, rt: Reg, target: Pc) -> Insn {
        Insn { op: Op::Branch(BranchCond::Ne), rd: Reg::ZERO, rs, rt, imm: target as i32 }
    }

    /// `blez rs, target`
    pub fn blez(rs: Reg, target: Pc) -> Insn {
        Insn { op: Op::Branch(BranchCond::Lez), rd: Reg::ZERO, rs, rt: Reg::ZERO, imm: target as i32 }
    }

    /// `bgtz rs, target`
    pub fn bgtz(rs: Reg, target: Pc) -> Insn {
        Insn { op: Op::Branch(BranchCond::Gtz), rd: Reg::ZERO, rs, rt: Reg::ZERO, imm: target as i32 }
    }

    /// `bltz rs, target`
    pub fn bltz(rs: Reg, target: Pc) -> Insn {
        Insn { op: Op::Branch(BranchCond::Ltz), rd: Reg::ZERO, rs, rt: Reg::ZERO, imm: target as i32 }
    }

    /// `bgez rs, target`
    pub fn bgez(rs: Reg, target: Pc) -> Insn {
        Insn { op: Op::Branch(BranchCond::Gez), rd: Reg::ZERO, rs, rt: Reg::ZERO, imm: target as i32 }
    }

    /// `j target`
    pub fn j(target: Pc) -> Insn {
        Insn { op: Op::Jump, rd: Reg::ZERO, rs: Reg::ZERO, rt: Reg::ZERO, imm: target as i32 }
    }

    /// `jal target` (links into `$31`)
    pub fn jal(target: Pc) -> Insn {
        Insn { op: Op::JumpAndLink, rd: Reg::RA, rs: Reg::ZERO, rt: Reg::ZERO, imm: target as i32 }
    }

    /// `jr rs`
    pub fn jr(rs: Reg) -> Insn {
        Insn { op: Op::JumpReg, rd: Reg::ZERO, rs, rt: Reg::ZERO, imm: 0 }
    }

    /// `jalr rd, rs`
    pub fn jalr(rd: Reg, rs: Reg) -> Insn {
        Insn { op: Op::JumpAndLinkReg, rd, rs, rt: Reg::ZERO, imm: 0 }
    }

    /// `nop`
    pub fn nop() -> Insn {
        Insn { op: Op::Nop, rd: Reg::ZERO, rs: Reg::ZERO, rt: Reg::ZERO, imm: 0 }
    }

    /// `halt`
    pub fn halt() -> Insn {
        Insn { op: Op::Halt, rd: Reg::ZERO, rs: Reg::ZERO, rt: Reg::ZERO, imm: 0 }
    }

    /// The architectural register this instruction writes, if any.
    /// Writes to `$0` are reported as `None` (they are architectural
    /// no-ops and must not allocate a physical register).
    pub fn dest(&self) -> Option<Reg> {
        let d = match self.op {
            Op::Alu(_) | Op::AluImm(_) | Op::Load { .. } => Some(self.rd),
            Op::JumpAndLink | Op::JumpAndLinkReg => Some(self.rd),
            _ => None,
        };
        d.filter(|r| !r.is_zero())
    }

    /// The up-to-two architectural registers this instruction reads.
    /// Reads of `$0` are reported as `None`.
    pub fn sources(&self) -> [Option<Reg>; 2] {
        let f = |r: Reg| if r.is_zero() { None } else { Some(r) };
        match self.op {
            Op::Alu(_) => [f(self.rs), f(self.rt)],
            Op::AluImm(AluOp::Lui) => [None, None],
            Op::AluImm(_) => [f(self.rs), None],
            Op::Load { .. } => [f(self.rs), None],
            Op::Store { .. } => [f(self.rs), f(self.rt)],
            Op::Branch(c) => {
                if c.uses_rt() {
                    [f(self.rs), f(self.rt)]
                } else {
                    [f(self.rs), None]
                }
            }
            Op::JumpReg | Op::JumpAndLinkReg => [f(self.rs), None],
            Op::Jump | Op::JumpAndLink | Op::Nop | Op::Halt => [None, None],
        }
    }

    /// Memory access width for loads and stores.
    pub fn mem_width(&self) -> Option<MemWidth> {
        match self.op {
            Op::Load { width, .. } | Op::Store { width } => Some(width),
            _ => None,
        }
    }

    /// The statically-known control-flow target (branches and direct
    /// jumps); `None` for indirect jumps and non-control instructions.
    pub fn static_target(&self) -> Option<Pc> {
        match self.op {
            Op::Branch(_) | Op::Jump | Op::JumpAndLink => Some(self.imm as Pc),
            _ => None,
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Op::Alu(op) => {
                let name = alu_name(op, false);
                write!(f, "{name} {}, {}, {}", self.rd, self.rs, self.rt)
            }
            Op::AluImm(AluOp::Lui) => write!(f, "lui {}, {}", self.rd, self.imm),
            Op::AluImm(op) => {
                let name = alu_name(op, true);
                write!(f, "{name} {}, {}, {}", self.rd, self.rs, self.imm)
            }
            Op::Load { width, signed } => {
                let name = match (width, signed) {
                    (MemWidth::Word, _) => "lw",
                    (MemWidth::Half, true) => "lh",
                    (MemWidth::Half, false) => "lhu",
                    (MemWidth::Byte, true) => "lb",
                    (MemWidth::Byte, false) => "lbu",
                };
                write!(f, "{name} {}, {}({})", self.rd, self.imm, self.rs)
            }
            Op::Store { width } => {
                let name = match width {
                    MemWidth::Word => "sw",
                    MemWidth::Half => "sh",
                    MemWidth::Byte => "sb",
                };
                write!(f, "{name} {}, {}({})", self.rt, self.imm, self.rs)
            }
            Op::Branch(c) => {
                let name = match c {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lez => "blez",
                    BranchCond::Gtz => "bgtz",
                    BranchCond::Ltz => "bltz",
                    BranchCond::Gez => "bgez",
                };
                if c.uses_rt() {
                    write!(f, "{name} {}, {}, {}", self.rs, self.rt, self.imm)
                } else {
                    write!(f, "{name} {}, {}", self.rs, self.imm)
                }
            }
            Op::Jump => write!(f, "j {}", self.imm),
            Op::JumpAndLink => write!(f, "jal {}", self.imm),
            Op::JumpReg => write!(f, "jr {}", self.rs),
            Op::JumpAndLinkReg => write!(f, "jalr {}, {}", self.rd, self.rs),
            Op::Nop => f.write_str("nop"),
            Op::Halt => f.write_str("halt"),
        }
    }
}

fn alu_name(op: AluOp, imm: bool) -> &'static str {
    match (op, imm) {
        (AluOp::Add, false) => "add",
        (AluOp::Add, true) => "addi",
        (AluOp::Sub, _) => "sub",
        (AluOp::And, false) => "and",
        (AluOp::And, true) => "andi",
        (AluOp::Or, false) => "or",
        (AluOp::Or, true) => "ori",
        (AluOp::Xor, false) => "xor",
        (AluOp::Xor, true) => "xori",
        (AluOp::Nor, _) => "nor",
        (AluOp::Slt, false) => "slt",
        (AluOp::Slt, true) => "slti",
        (AluOp::Sltu, false) => "sltu",
        (AluOp::Sltu, true) => "sltiu",
        (AluOp::Sll, false) => "sllv",
        (AluOp::Sll, true) => "sll",
        (AluOp::Srl, false) => "srlv",
        (AluOp::Srl, true) => "srl",
        (AluOp::Sra, false) => "srav",
        (AluOp::Sra, true) => "sra",
        (AluOp::Lui, _) => "lui",
        (AluOp::Mul, false) => "mul",
        (AluOp::Mul, true) => "muli",
        (AluOp::Div, _) => "div",
        (AluOp::Rem, _) => "rem",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn dataflow_of_alu() {
        let i = Insn::add(r(3), r(1), r(2));
        assert_eq!(i.dest(), Some(r(3)));
        assert_eq!(i.sources(), [Some(r(1)), Some(r(2))]);
    }

    #[test]
    fn zero_register_is_filtered() {
        let i = Insn::add(Reg::ZERO, Reg::ZERO, r(2));
        assert_eq!(i.dest(), None);
        assert_eq!(i.sources(), [None, Some(r(2))]);
    }

    #[test]
    fn store_reads_base_and_data() {
        let i = Insn::sw(r(7), r(8), 8);
        assert_eq!(i.dest(), None);
        assert_eq!(i.sources(), [Some(r(8)), Some(r(7))]);
        assert_eq!(i.mem_width(), Some(MemWidth::Word));
    }

    #[test]
    fn load_writes_rd_reads_base() {
        let i = Insn::lhu(r(9), r(3), 4);
        assert_eq!(i.dest(), Some(r(9)));
        assert_eq!(i.sources(), [Some(r(3)), None]);
        assert_eq!(i.mem_width(), Some(MemWidth::Half));
    }

    #[test]
    fn branch_sources_depend_on_condition() {
        assert_eq!(Insn::beq(r(1), r(2), 10).sources(), [Some(r(1)), Some(r(2))]);
        assert_eq!(Insn::bltz(r(1), 10).sources(), [Some(r(1)), None]);
    }

    #[test]
    fn jal_links_ra() {
        let i = Insn::jal(5);
        assert_eq!(i.dest(), Some(Reg::RA));
        assert_eq!(i.static_target(), Some(5));
    }

    #[test]
    fn jr_is_indirect() {
        let i = Insn::jr(r(31));
        assert_eq!(i.static_target(), None);
        assert!(i.op.is_control());
    }

    #[test]
    fn lui_has_no_sources() {
        assert_eq!(Insn::lui(r(8), 0x1000).sources(), [None, None]);
    }

    #[test]
    fn display_round_trips_key_forms() {
        assert_eq!(Insn::add(r(3), r(1), r(2)).to_string(), "add $3, $1, $2");
        assert_eq!(Insn::lw(r(9), r(3), 4).to_string(), "lw $9, 4($3)");
        assert_eq!(Insn::sw(r(7), r(8), 8).to_string(), "sw $7, 8($8)");
        assert_eq!(Insn::beq(r(1), r(2), 7).to_string(), "beq $1, $2, 7");
        assert_eq!(Insn::halt().to_string(), "halt");
    }

    #[test]
    fn pseudo_instructions() {
        assert_eq!(Insn::li(r(4), 9), Insn::addi(r(4), Reg::ZERO, 9));
        assert_eq!(Insn::mv(r(4), r(5)), Insn::or(r(4), r(5), Reg::ZERO));
    }
}
