//! Checkpoint-seeded simulation equivalence.
//!
//! A pipeline seeded from the interval-0 checkpoint (captured before any
//! instruction executed) measured to completion must reproduce the plain
//! run's cycles and retired-instruction counts bit-identically, for every
//! communication model — this is the timing half of the
//! checkpoint-determinism guarantee (the architectural half lives in
//! `dmdp-workloads/tests/checkpoint_determinism.rs`).

use std::sync::Arc;

use dmdp_core::{CommModel, CoreConfig, PlanCache, Simulator};
use dmdp_isa::Emulator;
use dmdp_workloads::{all, Scale};

#[test]
fn checkpoint_at_entry_reproduces_full_run_timing() {
    for w in all(Scale::Test).into_iter().take(4) {
        let program = Arc::new(w.program);
        let plans = PlanCache::shared(&program);
        let ckpt = Emulator::new(&program).checkpoint();
        for &model in &CommModel::ALL {
            let sim = Simulator::with_config(CoreConfig::new(model));
            let full = sim.run_planned(&program, &plans).expect("full run");
            let iv = sim
                .run_from_checkpoint(&program, &plans, &ckpt, 0, u64::MAX)
                .expect("checkpoint run");
            assert_eq!(iv.warmup_cycles, 0, "{} {model:?}", w.name);
            assert_eq!(iv.warmup_insns, 0, "{} {model:?}", w.name);
            assert_eq!(iv.cycles, full.stats.cycles, "{} {model:?}", w.name);
            assert_eq!(iv.insns, full.stats.retired_insns, "{} {model:?}", w.name);
        }
    }
}

#[test]
fn mid_run_checkpoint_measures_the_requested_window() {
    let w = all(Scale::Test).into_iter().next().expect("a workload");
    let program = Arc::new(w.program);
    let plans = PlanCache::shared(&program);

    // Capture a checkpoint a third of the way through the run.
    let total = Emulator::new(&program).run(u64::MAX).expect("full emulation").retired;
    let mut emu = Emulator::new(&program);
    emu.run_insns(total / 3).expect("fast-forward");
    let ckpt = emu.checkpoint();

    let warmup = 64;
    let measure = 256;
    for &model in &CommModel::ALL {
        let sim = Simulator::with_config(CoreConfig::new(model));
        let iv = sim
            .run_from_checkpoint(&program, &plans, &ckpt, warmup, measure)
            .expect("interval run");
        // Far from halt, both windows land exactly (modulo retire-width
        // overshoot on the warmup boundary).
        assert!(iv.warmup_insns >= warmup, "{model:?}: warmup {}", iv.warmup_insns);
        assert!(iv.warmup_cycles > 0, "{model:?}");
        assert!(iv.insns >= measure, "{model:?}: measured {}", iv.insns);
        assert!(iv.insns < measure + 64, "{model:?}: measured {}", iv.insns);
        assert!(iv.cycles > 0, "{model:?}");
    }
}

#[test]
fn window_past_halt_measures_only_what_remains() {
    let w = all(Scale::Test).into_iter().next().expect("a workload");
    let program = Arc::new(w.program);
    let plans = PlanCache::shared(&program);

    let total = Emulator::new(&program).run(u64::MAX).expect("full emulation").retired;
    let mut emu = Emulator::new(&program);
    emu.run_insns(total - 32).expect("fast-forward");
    let ckpt = emu.checkpoint();

    let sim = Simulator::with_config(CoreConfig::new(CommModel::Dmdp));
    let iv = sim
        .run_from_checkpoint(&program, &plans, &ckpt, 0, 1_000_000)
        .expect("interval run");
    assert_eq!(iv.insns, 32, "only the remaining instructions are measured");
}
