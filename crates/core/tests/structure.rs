//! Microscopic behavioural checks of the paper's mechanisms, driven
//! through the public API with purpose-built programs.

use dmdp_core::{CommModel, CoreConfig, Simulator};
use dmdp_isa::asm;
use dmdp_stats::LoadSource;

/// A loop whose load always collides with a store at the same distance:
/// the canonical memory-cloaking case (paper Fig. 7).
const AC_LOOP: &str = r#"
        .data
cell:   .space 8
        .text
        lui  $8, %hi(cell)
        ori  $8, $8, %lo(cell)
        li   $4, 0
        li   $5, 500
loop:
        sw   $4, 0($8)
        lw   $6, 0($8)      # always collides, distance 0
        add  $7, $7, $6
        addi $4, $4, 1
        bne  $4, $5, loop
        halt
"#;

/// A loop whose load collides only when the drifting pointer repeats:
/// the occasionally-colliding case that triggers predication (Fig. 8).
const OC_LOOP: &str = r#"
        .data
ptrs:   .word 0, 4, 4, 8, 0, 12, 8, 8
x:      .space 16
        .text
        lui  $8, %hi(ptrs)
        ori  $8, $8, %lo(ptrs)
        lui  $9, %hi(x)
        ori  $9, $9, %lo(x)
        li   $4, 0
        li   $5, 600
loop:
        andi $6, $4, 7
        sll  $6, $6, 2
        add  $6, $6, $8
        lw   $7, 0($6)
        add  $7, $7, $9
        lw   $10, 0($7)
        addi $10, $10, 1
        sw   $10, 0($7)
        addi $4, $4, 1
        bne  $4, $5, loop
        halt
"#;

#[test]
fn cloaking_dominates_the_always_colliding_loop() {
    let p = asm::assemble_named("ac", AC_LOOP).unwrap();
    for model in [CommModel::NoSq, CommModel::Dmdp] {
        let r = Simulator::new(model).run_checked(&p).unwrap();
        let ll = &r.stats.load_latency;
        let frac = ll.fraction(LoadSource::Bypassed);
        assert!(frac > 0.9, "{model:?}: bypassed fraction {frac}");
        // Cloaked loads inherit the store data's readiness: with a
        // one-cycle producer the mean execution time collapses.
        assert!(
            ll.mean_latency(LoadSource::Bypassed) < 3.0,
            "{model:?}: cloaked latency {}",
            ll.mean_latency(LoadSource::Bypassed)
        );
        // Cloaking allocates no µops: retired µops equal the baseline's.
        assert_eq!(r.stats.predication_uops, 0);
    }
}

#[test]
fn predication_groups_cost_exactly_three_uops() {
    let p = asm::assemble_named("oc", OC_LOOP).unwrap();
    let r = Simulator::new(CommModel::Dmdp).run_checked(&p).unwrap();
    let predicated = r.stats.load_latency.count(LoadSource::Predicated);
    assert!(predicated > 0, "the OC loop must predicate some loads");
    // CMP + 2×CMOV per surviving predicated load; squashed groups can
    // only add to the inserted count, never subtract.
    assert!(
        r.stats.predication_uops >= 3 * predicated,
        "{} inserted vs {} retired groups",
        r.stats.predication_uops,
        predicated
    );
    // Each retired instruction's µop count: predicated loads are 5 (AGI,
    // LOAD, CMP, CMOV, CMOV); everything else at most 2.
    assert!(r.stats.retired_uops >= r.stats.retired_insns + 3 * predicated);
}

#[test]
fn nosq_never_pays_predication_dmdp_never_delays() {
    let p = asm::assemble_named("oc", OC_LOOP).unwrap();
    let nosq = Simulator::new(CommModel::NoSq).run_checked(&p).unwrap();
    let dmdp = Simulator::new(CommModel::Dmdp).run_checked(&p).unwrap();
    assert_eq!(nosq.stats.predication_uops, 0);
    assert_eq!(nosq.stats.load_latency.count(LoadSource::Predicated), 0);
    assert_eq!(dmdp.stats.load_latency.count(LoadSource::Delayed), 0);
}

#[test]
fn silent_store_policy_collapses_reexecutions() {
    // Rewrites of an unchanged value (paper Fig. 10): without the
    // silent-store-aware update the same load re-executes forever.
    let src = r#"
            .data
    cell:   .word 7
            .text
            lui  $8, %hi(cell)
            ori  $8, $8, %lo(cell)
            li   $4, 0
            li   $5, 400
            li   $6, 7
    loop:
            sw   $6, 0($8)
            lw   $7, 0($8)
            add  $9, $9, $7
            addi $4, $4, 1
            bne  $4, $5, loop
            halt
    "#;
    let p = asm::assemble_named("silent", src).unwrap();
    let aware = Simulator::new(CommModel::Dmdp).run_checked(&p).unwrap();
    let naive = Simulator::with_config(CoreConfig {
        silent_store_update: false,
        ..CoreConfig::new(CommModel::Dmdp)
    })
    .run_checked(&p)
    .unwrap();
    assert!(
        naive.stats.reexecutions > 4 * aware.stats.reexecutions.max(1),
        "aware {} vs naive {}",
        aware.stats.reexecutions,
        naive.stats.reexecutions
    );
}

#[test]
fn biased_confidence_recovers_slower_than_balanced() {
    // After a burst of mispredictions the biased policy needs ~32 correct
    // outcomes to re-confident; the balanced policy needs one. The OC
    // loop therefore predicates a larger share under the biased policy.
    use dmdp_predict::ConfidencePolicy;
    let p = asm::assemble_named("oc", OC_LOOP).unwrap();
    let biased = Simulator::new(CommModel::Dmdp).run(&p).unwrap();
    let balanced = Simulator::with_config({
        let mut c = CoreConfig::new(CommModel::Dmdp);
        c.distance.policy = ConfidencePolicy::Balanced;
        c
    })
    .run(&p)
    .unwrap();
    assert!(
        biased.stats.predication_uops >= balanced.stats.predication_uops,
        "biased {} vs balanced {}",
        biased.stats.predication_uops,
        balanced.stats.predication_uops
    );
}

#[test]
fn perfect_retires_zero_overhead() {
    let p = asm::assemble_named("oc", OC_LOOP).unwrap();
    let r = Simulator::new(CommModel::Perfect).run_checked(&p).unwrap();
    assert_eq!(r.stats.mem_dep_mispredicts, 0);
    assert_eq!(r.stats.reexecutions, 0);
    assert_eq!(r.stats.reexec_stall_cycles, 0);
    assert_eq!(r.stats.predication_uops, 0);
    assert_eq!(r.stats.load_latency.count(LoadSource::Delayed), 0);
}

#[test]
fn store_of_zero_register_cloaks_as_direct() {
    // `sw $0, ...` has no data register; cloaking/predication must fall
    // back gracefully.
    let src = r#"
            .data
    cell:   .space 8
            .text
            lui  $8, %hi(cell)
            ori  $8, $8, %lo(cell)
            li   $4, 0
            li   $5, 200
    loop:
            sw   $0, 0($8)
            lw   $6, 0($8)
            add  $7, $7, $6
            addi $4, $4, 1
            bne  $4, $5, loop
            halt
    "#;
    let p = asm::assemble_named("zero-store", src).unwrap();
    for model in CommModel::ALL {
        Simulator::new(model).run_checked(&p).unwrap();
    }
}

#[test]
fn load_to_zero_register_is_harmless() {
    let src = r#"
            .data
    cell:   .word 9
            .text
            lui  $8, %hi(cell)
            ori  $8, $8, %lo(cell)
            li   $4, 0
            li   $5, 100
    loop:
            sw   $4, 0($8)
            lw   $0, 0($8)      # architectural no-op destination
            addi $4, $4, 1
            bne  $4, $5, loop
            halt
    "#;
    let p = asm::assemble_named("zero-load", src).unwrap();
    for model in CommModel::ALL {
        Simulator::new(model).run_checked(&p).unwrap();
    }
}
