//! §IV-F: external cache-line invalidations (the multi-core stand-in).
//! Invalidations must force conservative re-execution of in-flight loads
//! without ever changing architectural results.

use dmdp_core::{CommModel, CoreConfig, Simulator};
use dmdp_workloads::{by_name, Scale};

#[test]
fn invalidations_preserve_architectural_state() {
    for name in ["gcc", "hmmer", "lbm"] {
        let w = by_name(name, Scale::Test).unwrap();
        for model in [CommModel::NoSq, CommModel::Dmdp] {
            let cfg = CoreConfig {
                coherence_invalidate_every: Some(40),
                ..CoreConfig::new(model)
            };
            let r = Simulator::with_config(cfg)
                .run_checked(&w.program)
                .unwrap_or_else(|e| panic!("{name} under {model:?}: {e}"));
            assert!(
                r.stats.coherence_invalidations > 0,
                "{name}: the stand-in must actually fire"
            );
        }
    }
}

#[test]
fn invalidations_increase_reexecutions() {
    let w = by_name("gcc", Scale::Test).unwrap();
    let quiet = Simulator::new(CommModel::Dmdp).run(&w.program).unwrap();
    let cfg = CoreConfig {
        coherence_invalidate_every: Some(25),
        ..CoreConfig::new(CommModel::Dmdp)
    };
    let noisy = Simulator::with_config(cfg).run(&w.program).unwrap();
    assert!(
        noisy.stats.reexecutions > quiet.stats.reexecutions,
        "invalidations must widen the vulnerability window: {} vs {}",
        noisy.stats.reexecutions,
        quiet.stats.reexecutions
    );
    // Conservative slowdown, never a wrong answer (run_checked above).
    assert!(noisy.stats.cycles >= quiet.stats.cycles);
}
