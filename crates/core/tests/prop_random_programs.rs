//! The heaviest correctness hammer in the repository: generate random
//! structured programs — counted loops, data-dependent hammocks, loads
//! and stores of every width into a shared arena — and run each one under
//! all four communication models with lock-step functional checking.
//! Any renaming, forwarding, predication, verification or recovery bug
//! shows up as an architectural divergence here.
//!
//! Program shapes are drawn from the deterministic
//! [`dmdp_prng::Prng`] stream, so a failing case reproduces exactly
//! from its printed listing.

use dmdp_core::{CommModel, CoreConfig, Simulator};
use dmdp_isa::{Insn, MemWidth, Program, ProgramBuilder, Reg};
use dmdp_prng::Prng;

const ARENA: u32 = 0x0001_0000;
const ARENA_WORDS: u32 = 32;

/// One random body operation. Offsets are expressed in arena slots so
/// every access is naturally aligned.
#[derive(Debug, Clone)]
enum OpG {
    Alu { rd: u8, rs: u8, rt: u8, kind: u8 },
    AluImm { rd: u8, rs: u8, imm: i16, kind: u8 },
    Load { rd: u8, slot: u8, width: u8, signed: bool },
    Store { rs: u8, slot: u8, width: u8 },
    /// A data-dependent forward skip over the next instruction.
    Hammock { rs: u8 },
}

fn arb_op(r: &mut Prng) -> OpG {
    let reg = |r: &mut Prng| 1 + r.below(11) as u8;
    // Weights 3:3:3:3:1, matching the original generator's distribution.
    match r.below(13) {
        0..=2 => OpG::Alu { rd: reg(r), rs: reg(r), rt: reg(r), kind: r.below(6) as u8 },
        3..=5 => OpG::AluImm {
            rd: reg(r),
            rs: reg(r),
            imm: r.range_i32(i16::MIN as i32, i16::MAX as i32) as i16,
            kind: r.below(4) as u8,
        },
        6..=8 => OpG::Load {
            rd: reg(r),
            slot: r.below(ARENA_WORDS) as u8,
            width: r.below(3) as u8,
            signed: r.flip(),
        },
        9..=11 => OpG::Store {
            rs: reg(r),
            slot: r.below(ARENA_WORDS) as u8,
            width: r.below(3) as u8,
        },
        _ => OpG::Hammock { rs: reg(r) },
    }
}

fn emit(b: &mut ProgramBuilder, op: &OpG) {
    let r = |i: u8| Reg::new(i);
    match *op {
        OpG::Alu { rd, rs, rt, kind } => {
            let i = match kind {
                0 => Insn::add(r(rd), r(rs), r(rt)),
                1 => Insn::sub(r(rd), r(rs), r(rt)),
                2 => Insn::xor(r(rd), r(rs), r(rt)),
                3 => Insn::and(r(rd), r(rs), r(rt)),
                4 => Insn::slt(r(rd), r(rs), r(rt)),
                _ => Insn::mul(r(rd), r(rs), r(rt)),
            };
            b.push(i);
        }
        OpG::AluImm { rd, rs, imm, kind } => {
            let i = match kind {
                0 => Insn::addi(r(rd), r(rs), imm as i32),
                1 => Insn::xori(r(rd), r(rs), (imm as u16) as i32),
                2 => Insn::andi(r(rd), r(rs), (imm as u16) as i32),
                _ => Insn::sll(r(rd), r(rs), (imm as i32).rem_euclid(31)),
            };
            b.push(i);
        }
        OpG::Load { rd, slot, width, signed } => {
            let addr = (ARENA + (slot as u32 % ARENA_WORDS) * 4) as i32;
            let i = match width {
                0 => Insn::load(r(rd), Reg::ZERO, addr, MemWidth::Byte, signed),
                1 => Insn::load(r(rd), Reg::ZERO, addr, MemWidth::Half, signed),
                _ => Insn::lw(r(rd), Reg::ZERO, addr),
            };
            b.push(i);
        }
        OpG::Store { rs, slot, width } => {
            let addr = (ARENA + (slot as u32 % ARENA_WORDS) * 4) as i32;
            let i = match width {
                0 => Insn::sb(r(rs), Reg::ZERO, addr),
                1 => Insn::sh(r(rs), Reg::ZERO, addr),
                _ => Insn::sw(r(rs), Reg::ZERO, addr),
            };
            b.push(i);
        }
        OpG::Hammock { rs } => {
            let skip = b.reserve();
            b.push(Insn::addi(Reg::new(13), Reg::new(13), 1));
            let target = b.here();
            b.patch(skip, Insn::bgtz(r(rs), target));
        }
    }
}

/// Builds a program: initialize registers, then run the body in a
/// counted loop, then checksum the arena.
fn build_program(body: &[OpG], trips: u8) -> Program {
    let mut b = ProgramBuilder::new("random");
    b.data_space((ARENA_WORDS * 4) as usize);
    for i in 1..14u8 {
        b.push(Insn::li(Reg::new(i), i as i32 * 7 - 40));
    }
    let counter = Reg::new(20);
    b.push(Insn::li(counter, trips as i32));
    let top = b.here();
    for op in body {
        emit(&mut b, op);
    }
    b.push(Insn::addi(counter, counter, -1));
    b.push(Insn::bgtz(counter, top));
    // Checksum sweep so every stored byte feeds the final state.
    let acc = Reg::new(21);
    let idx = Reg::new(22);
    b.push(Insn::li(idx, 0));
    let sweep = b.here();
    b.push(Insn::lw(Reg::new(23), idx, ARENA as i32));
    b.push(Insn::add(acc, acc, Reg::new(23)));
    b.push(Insn::addi(idx, idx, 4));
    b.push(Insn::slti(Reg::new(24), idx, (ARENA_WORDS * 4) as i32));
    b.push(Insn::bgtz(Reg::new(24), sweep));
    b.push(Insn::sw(acc, Reg::ZERO, ARENA as i32));
    b.push(Insn::halt());
    b.build()
}

fn arb_body(r: &mut Prng, min: usize, max: usize) -> Vec<OpG> {
    let n = min + r.index(max - min);
    (0..n).map(|_| arb_op(r)).collect()
}

#[test]
fn random_programs_are_architecturally_exact_under_every_model() {
    let mut r = Prng::new(0xC0DE_0001);
    for _ in 0..24 {
        let body = arb_body(&mut r, 4, 40);
        let trips = 3 + r.below(21) as u8;
        let program = build_program(&body, trips);
        for model in CommModel::ALL {
            let mut cfg = CoreConfig::new(model);
            cfg.max_cycles = 3_000_000;
            Simulator::with_config(cfg)
                .run_checked(&program)
                .unwrap_or_else(|e| panic!("{model:?}: {e}\n{}", program.listing()));
        }
    }
}

#[test]
fn random_programs_survive_stressed_geometries() {
    let mut r = Prng::new(0xC0DE_0002);
    for _ in 0..24 {
        let body = arb_body(&mut r, 4, 24);
        let trips = 3 + r.below(13) as u8;
        // Tiny structures force every backpressure path: ROB/PRF/IQ
        // stalls, store-buffer-full retire stalls, predication width
        // overflow handling.
        let program = build_program(&body, trips);
        for model in CommModel::ALL {
            let mut cfg = CoreConfig::new(model);
            cfg.rob_entries = 24;
            cfg.phys_regs = Reg::NUM_LOGICAL + 5 * cfg.width + 8;
            cfg.iq_entries = 12;
            cfg.store_buffer_entries = 2;
            cfg.max_cycles = 3_000_000;
            Simulator::with_config(cfg)
                .run_checked(&program)
                .unwrap_or_else(|e| panic!("{model:?} stressed: {e}\n{}", program.listing()));
        }
    }
}
