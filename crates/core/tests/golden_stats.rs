//! Golden-stats regression gate for the scheduler.
//!
//! Records a 64-bit FNV-1a digest of every timing-relevant [`SimStats`]
//! field for each (kernel × model) pair at test scale. The digests were
//! captured from the original scan-based scheduler; the event-driven
//! scheduler (PR 2) must reproduce them bit-for-bit — which µops issue in
//! a given cycle is an invariant of the refactor, so every derived
//! statistic (IPC, MPKI, energy, cache behaviour) is too.
//!
//! To re-record after an *intentional* timing change (bump `SIM_VERSION`
//! alongside!):
//!
//! ```text
//! GOLDEN_RECORD=1 cargo test -p dmdp-core --test golden_stats -- --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN`.

use std::sync::Arc;

use dmdp_core::{BatchSimulator, CommModel, CoreConfig, PlanCache, Probe, SimStats, Simulator};
use dmdp_energy::Event;
use dmdp_workloads::Scale;

/// FNV-1a 64-bit, matching the harness digest primitive (no dependency on
/// dmdp-harness to keep the dev-graph acyclic).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn str(&mut self, s: &str) -> &mut Fnv {
        self.write(s.as_bytes());
        self
    }
}

/// Digest over the *timing* statistics only. Fields are enumerated
/// explicitly so that adding new observability counters (e.g. the PR 2
/// scheduler-occupancy stats) does not invalidate the goldens: those
/// describe the scheduler implementation, not the simulated machine.
fn stats_digest(s: &SimStats) -> u64 {
    let mut f = Fnv::new();
    f.str(&format!(
        "cyc={} insns={} uops={} loads={} stores={} pred={}",
        s.cycles, s.retired_insns, s.retired_uops, s.retired_loads, s.retired_stores,
        s.predication_uops
    ));
    f.str(&format!(
        " bmiss={} mmiss={} reexec={} restall={} sbstall={} recov={} squash={}",
        s.branch_mispredicts,
        s.mem_dep_mispredicts,
        s.reexecutions,
        s.reexec_stall_cycles,
        s.sb_full_stall_cycles,
        s.recoveries,
        s.squashed_uops
    ));
    f.str(&format!(
        " lowconf={:?} coalesced={} minfree={} inval={}",
        s.lowconf, s.coalesced_stores, s.min_free_pregs, s.coherence_invalidations
    ));
    f.str(&format!(" lat={:?} lclat={:?} mem={:?}", s.load_latency, s.lowconf_latency, s.mem));
    for ev in Event::ALL {
        f.str(&format!(" e{}={}", ev.label(), s.energy.count(ev)));
    }
    f.0
}

/// (kernel, per-model digests in `CommModel::ALL` order) — captured from
/// the pre-event-driven scheduler at `Scale::Test`.
const GOLDEN: &[(&str, [u64; 4])] = &[
    ("perl", [0x958012628a46bfdd, 0x0860b48355381f48, 0xcb64848008072053, 0x5902a050c3d1581b]),
    ("bzip2", [0x71b757ef96cce226, 0x01330bfeda279347, 0x027d7fc065a054ca, 0xf357c54cd2a9b528]),
    ("gcc", [0x0de1d409dc7247b0, 0x893ab9968c6913b9, 0x4049d01d1e1f0ba9, 0xb5394e73948fb526]),
    ("mcf", [0x494b2ded081c9617, 0x580ad6bab02f405f, 0x5647dc8e143495a6, 0x93777ac6746369ac]),
    ("gobmk", [0x3ab7a0eaa8f43567, 0x49ef9fd5a36f9b49, 0xb052f600ae581ab6, 0xeb4b3ea782508213]),
    ("hmmer", [0x93b5074e469b0ae6, 0x2dad2cd56cd45a9a, 0xa21eb6c46b997e93, 0x024ec9d59a589a03]),
    ("sjeng", [0x4ec2a4b618b6e707, 0xd91ab56b11544886, 0xd91ab56b11544886, 0x8fc05b93dafc1976]),
    ("lib", [0x1c9d778638e91d39, 0x51d8c1a231d1f107, 0x51d8c1a231d1f107, 0x51b6688e7a5b0d8e]),
    ("h264ref", [0x584e8dc81ce60e1c, 0xb27b56f30825b54e, 0xf70b523806650159, 0xd6ab348d851f2b74]),
    ("astar", [0x24923b15d02e499e, 0x3ecaa7fedcef196d, 0x7e339c1e3de03475, 0x716a5fdb8062192a]),
    ("bwaves", [0xccdfb1e04dc40620, 0xf7e0e1be72d00b8b, 0xf7e0e1be72d00b8b, 0x5770ae1eb6b2d998]),
    ("milc", [0xeb0dceb28c85ee89, 0x649f507e332d2666, 0x649f507e332d2666, 0xf9df83a3e2f598ad]),
    ("zeusmp", [0xd37c13a77c5740be, 0x0a1eed27159aacca, 0x0a1eed27159aacca, 0x8946b945a3babd94]),
    ("gromacs", [0x1b091d4f0606ee92, 0x017b02a6dbf7ffe8, 0x9c7c8189cc969443, 0x6dc533e0ea39170b]),
    ("leslie3d", [0x7f9cd61ec7e96904, 0x0f7de20333d72e76, 0x0f7de20333d72e76, 0x77b8884b37ac5f8c]),
    ("namd", [0x432824cc58c0b8e4, 0xc2c2f768d6f0dbb4, 0xc2c2f768d6f0dbb4, 0x24f9e85ec5d142d4]),
    ("Gems", [0xf35a634869a17b48, 0x4a83accddb786346, 0x4a83accddb786346, 0xe24ea8d84f3d9392]),
    ("tonto", [0x3eb63b69f6deaaab, 0x037327193fa8c419, 0x037327193fa8c419, 0xf5956a7f0d03548a]),
    ("lbm", [0x74d128363aa3432b, 0xaf8f114feaa70bc4, 0xaf8f114feaa70bc4, 0xd6feebf645222b6a]),
    ("wrf", [0x13491c2d5c106b3b, 0xcf6b45b6b7596e5e, 0x065db9249a51ac67, 0x9c3cf0be6f2f952d]),
    ("sphinx3", [0x3f080371ad6d35ae, 0xe9e66d2650b058b8, 0xe9e66d2650b058b8, 0x0389685cccf1f6a2]),
];

fn run_one(kernel: &str, model: CommModel) -> u64 {
    let w = dmdp_workloads::by_name(kernel, Scale::Test).expect("known kernel");
    let report = Simulator::new(model).run(&w.program).expect("kernel halts");
    stats_digest(&report.stats)
}

#[test]
fn scheduler_reproduces_golden_timing() {
    let record = std::env::var("GOLDEN_RECORD").is_ok();
    let mut failures = Vec::new();
    if record {
        println!("const GOLDEN: &[(&str, [u64; 4])] = &[");
        for w in dmdp_workloads::all(Scale::Test) {
            let d: Vec<String> = CommModel::ALL
                .iter()
                .map(|&m| format!("{:#018x}", run_one(w.name, m)))
                .collect();
            println!("    (\"{}\", [{}]),", w.name, d.join(", "));
        }
        println!("];");
        return;
    }
    assert_eq!(GOLDEN.len(), 21, "golden table must cover all 21 kernels");
    for (kernel, digests) in GOLDEN {
        for (i, &model) in CommModel::ALL.iter().enumerate() {
            let got = run_one(kernel, model);
            if got != digests[i] {
                failures.push(format!(
                    "{kernel} × {}: got {got:#018x}, golden {:#018x}",
                    model.name(),
                    digests[i]
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "scheduler timing diverged from golden stats:\n{}",
        failures.join("\n")
    );
}

/// Non-default configuration variants covered by the variant golden
/// table. Both shrink a structural resource, so they exercise the
/// back-pressure paths (ROB-full rename stalls, SB-full retire stalls)
/// that the default configuration rarely hits at test scale.
const VARIANTS: &[&str] = &["rob32", "sb2"];

/// Kernel subset for the variant table: a mix of Int and FP kernels with
/// high and low store pressure, kept small so the sweep (kernels ×
/// variants × models, solo *and* batched) stays fast.
const VARIANT_KERNELS: &[&str] = &["perl", "mcf", "lib", "astar", "milc", "sphinx3"];

fn variant_config(model: CommModel, variant: &str) -> CoreConfig {
    let mut cfg = CoreConfig::new(model);
    match variant {
        "rob32" => cfg.rob_entries = 32,
        "sb2" => cfg.store_buffer_entries = 2,
        other => panic!("unknown variant `{other}`"),
    }
    cfg
}

/// (kernel, variant, per-model digests in `CommModel::ALL` order) —
/// captured from the solo reference path (`Simulator::with_config`).
const VARIANT_GOLDEN: &[(&str, &str, [u64; 4])] = &[
    ("perl", "rob32", [0x37fc3603e5fadaac, 0xc2cbdb432efcd63b, 0x1fd015ddfbf752c5, 0x27cc21bd1ebe3c75]),
    ("perl", "sb2", [0xa6dde7cafae6affb, 0x807dfd82a29beec7, 0xfdeb303eae384fa0, 0xbcd8936f115ca429]),
    ("mcf", "rob32", [0xf68847b461c8bc0c, 0xa508a7fce1eeee33, 0xdbbd0c8913da3dcf, 0x4d35f84101e9939c]),
    ("mcf", "sb2", [0x13fa7263493f93c8, 0x45662ff2ab58555c, 0x59ec7d72100848e9, 0x9339c493c5adf129]),
    ("lib", "rob32", [0x858fd8ecd2d22913, 0x39517b39a0982512, 0x39517b39a0982512, 0x9b6c79902a9b8993]),
    ("lib", "sb2", [0xc17b341b16ce7b77, 0xb0111eca7ca8b9ed, 0xb0111eca7ca8b9ed, 0x5e844387866cb43e]),
    ("astar", "rob32", [0xb57d3274734c927a, 0x47fc9138d5ea2694, 0x8f7e6c595371ed98, 0xada596ad7b43a477]),
    ("astar", "sb2", [0x24923b15d02e499e, 0x35e19f9d7ca25a6c, 0x077cf780d8cfa5cb, 0xaac80b756316101c]),
    ("milc", "rob32", [0x2beef83bcc95a4b4, 0xf6f5e23b57ee978b, 0xf6f5e23b57ee978b, 0x195ee611698c657b]),
    ("milc", "sb2", [0x13abece2eb454024, 0x42ce9f6bac52225f, 0x42ce9f6bac52225f, 0x5fd08da359686997]),
    ("sphinx3", "rob32", [0xd5da6d41b4f11d01, 0x5295b34d58961485, 0x5295b34d58961485, 0x796a59ce819725ea]),
    ("sphinx3", "sb2", [0x3f080371ad6d35ae, 0xe9e66d2650b058b8, 0xe9e66d2650b058b8, 0x0389685cccf1f6a2]),
];

/// Pins the timing of non-default configuration variants under every
/// model, and demands that [`BatchSimulator`] — which steps all lanes of
/// a kernel through one shared front-end and fast-forwards confirmed dead
/// cycles — reproduces the *same* digests bit-for-bit as the solo path.
#[test]
fn variant_timing_is_pinned_for_solo_and_batched_paths() {
    if std::env::var("GOLDEN_RECORD").is_ok() {
        println!("const VARIANT_GOLDEN: &[(&str, &str, [u64; 4])] = &[");
        for kernel in VARIANT_KERNELS {
            let w = dmdp_workloads::by_name(kernel, Scale::Test).expect("known kernel");
            for variant in VARIANTS {
                let d: Vec<String> = CommModel::ALL
                    .iter()
                    .map(|&m| {
                        let cfg = variant_config(m, variant);
                        let report =
                            Simulator::with_config(cfg).run(&w.program).expect("kernel halts");
                        format!("{:#018x}", stats_digest(&report.stats))
                    })
                    .collect();
                println!("    (\"{kernel}\", \"{variant}\", [{}]),", d.join(", "));
            }
        }
        println!("];");
        return;
    }
    assert_eq!(
        VARIANT_GOLDEN.len(),
        VARIANT_KERNELS.len() * VARIANTS.len(),
        "variant golden table must cover the full kernel × variant cross-product"
    );
    let mut failures = Vec::new();
    for kernel in VARIANT_KERNELS {
        let w = dmdp_workloads::by_name(kernel, Scale::Test).expect("known kernel");
        let program = Arc::new(w.program);
        let plans = PlanCache::shared(&program);

        // One batch per kernel: every (variant × model) lane shares the
        // front-end, exactly as a harness sweep groups them.
        let mut batch = BatchSimulator::new(Arc::clone(&program), Arc::clone(&plans));
        let mut lanes = Vec::new();
        for &(golden_kernel, variant, digests) in VARIANT_GOLDEN {
            if golden_kernel != *kernel {
                continue;
            }
            for (i, &model) in CommModel::ALL.iter().enumerate() {
                batch.push(variant_config(model, variant));
                lanes.push((variant, model, digests[i]));
            }
        }
        let batched = batch.run();
        assert_eq!(batched.len(), lanes.len());

        for ((variant, model, golden), result) in lanes.into_iter().zip(batched) {
            let stats = result.expect("kernel halts");
            let got = stats_digest(&stats);
            if got != golden {
                failures.push(format!(
                    "{kernel} × {} [{variant}] (batched): got {got:#018x}, golden {golden:#018x}",
                    model.name()
                ));
            }
            let solo = Simulator::with_config(variant_config(model, variant))
                .run(&program)
                .expect("kernel halts");
            let solo_got = stats_digest(&solo.stats);
            if solo_got != golden {
                failures.push(format!(
                    "{kernel} × {} [{variant}] (solo): got {solo_got:#018x}, golden {golden:#018x}",
                    model.name()
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "variant timing diverged from golden stats:\n{}",
        failures.join("\n")
    );
}

/// The probe layer (PR 3) observes the pipeline; it must never perturb
/// it. Re-runs the entire golden table with a tracer *and* a sampler
/// attached and demands the same digests — `--trace`/`--sample-every`
/// change nothing about simulated timing, so `SIM_VERSION` stays fixed.
#[test]
fn probed_runs_reproduce_golden_timing() {
    if std::env::var("GOLDEN_RECORD").is_ok() {
        return; // the recording pass belongs to the un-probed test
    }
    let dir = std::env::temp_dir();
    let mut failures = Vec::new();
    for (kernel, digests) in GOLDEN {
        let w = dmdp_workloads::by_name(kernel, Scale::Test).expect("known kernel");
        for (i, &model) in CommModel::ALL.iter().enumerate() {
            let path = dir.join(format!("dmdp-golden-{}-{kernel}-{i}.jsonl", std::process::id()));
            let probe = Probe::default()
                .with_trace(&path, 0, None)
                .expect("trace file creatable")
                .with_samples(100);
            let (report, probes) =
                Simulator::new(model).run_probed(&w.program, probe).expect("kernel halts");
            std::fs::remove_file(&path).ok();
            assert!(probes.trace_error.is_none(), "{:?}", probes.trace_error);
            let got = stats_digest(&report.stats);
            if got != digests[i] {
                failures.push(format!(
                    "{kernel} × {}: probed run drifted to {got:#018x} (golden {:#018x})",
                    model.name(),
                    digests[i]
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "enabling probes changed simulated timing:\n{}",
        failures.join("\n")
    );
}
