//! Cross-model architectural correctness: every communication model must
//! retire exactly the architectural instruction stream, verified in
//! lock-step against the functional emulator.

use dmdp_core::{CommModel, CoreConfig, SimReport, Simulator};
use dmdp_isa::{asm, Program};

fn assemble(name: &str, src: &str) -> Program {
    asm::assemble_named(name, src).expect("kernel assembles")
}

fn run_all_models(p: &Program) -> Vec<SimReport> {
    CommModel::ALL
        .iter()
        .map(|&m| {
            Simulator::new(m)
                .run_checked(p)
                .unwrap_or_else(|e| panic!("{} under {:?}: {e}", p.name(), m))
        })
        .collect()
}

/// The paper's Figure 1 occasionally-colliding pattern: a pointer array
/// indexes a histogram; repeated pointers collide, distinct ones do not.
fn oc_kernel() -> Program {
    assemble(
        "oc-pointer",
        r#"
            .data
    ptrs:   .word 0, 4, 4, 8, 12, 12, 12, 16, 0, 20, 24, 4, 8, 8, 28, 0
    hist:   .space 64
            .text
            lui  $8, %hi(ptrs)
            ori  $8, $8, %lo(ptrs)
            lui  $9, %hi(hist)
            ori  $9, $9, %lo(hist)
            li   $4, 0          # i
            li   $5, 96         # iterations
    loop:
            andi $6, $4, 15     # i % 16
            sll  $6, $6, 2
            add  $6, $6, $8
            lw   $7, 0($6)      # ptr = ptrs[i%16]
            add  $7, $7, $9
            lw   $10, 0($7)     # x[ptr]
            addi $10, $10, 1
            sw   $10, 0($7)     # x[ptr]++   <-- OC store
            addi $4, $4, 1
            bne  $4, $5, loop
            # checksum
            li   $4, 0
            li   $11, 0
    sum:
            sll  $6, $4, 2
            add  $6, $6, $9
            lw   $7, 0($6)
            add  $11, $11, $7
            addi $4, $4, 1
            slti $6, $4, 16
            bgtz $6, sum
            halt
        "#,
    )
}

/// Always-colliding: register-spill style, a hot stack slot rewritten and
/// reread every iteration.
fn ac_kernel() -> Program {
    assemble(
        "ac-spill",
        r#"
            .data
    slot:   .space 16
            .text
            lui  $29, %hi(slot)
            ori  $29, $29, %lo(slot)
            li   $4, 0
            li   $5, 200
    loop:
            sw   $4, 0($29)     # spill
            addi $6, $4, 3
            mul  $6, $6, $6
            lw   $7, 0($29)     # reload: always collides
            add  $8, $7, $6
            sw   $8, 4($29)
            lw   $9, 4($29)
            add  $10, $10, $9
            addi $4, $4, 1
            bne  $4, $5, loop
            halt
        "#,
    )
}

/// Never-colliding: streaming sum over an array (loads only).
fn nc_kernel() -> Program {
    assemble(
        "nc-sweep",
        r#"
            .data
    arr:    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
            .text
            lui  $8, %hi(arr)
            ori  $8, $8, %lo(arr)
            li   $4, 0
            li   $5, 16
            li   $6, 0
    loop:
            lw   $7, 0($8)
            add  $6, $6, $7
            addi $8, $8, 4
            addi $4, $4, 1
            bne  $4, $5, loop
            halt
        "#,
    )
}

/// Partial-word traffic: byte/half stores forwarded into word and
/// sub-word loads, with sign extension.
fn partial_kernel() -> Program {
    assemble(
        "partial-word",
        r#"
            .data
    buf:    .space 64
            .text
            lui  $8, %hi(buf)
            ori  $8, $8, %lo(buf)
            li   $4, 0
            li   $5, 40
    loop:
            andi $6, $4, 7
            sll  $6, $6, 2
            add  $6, $6, $8
            li   $7, -3
            sb   $7, 1($6)      # byte store
            lbu  $9, 1($6)      # zero-extended reload
            lb   $10, 1($6)     # sign-extended reload
            add  $11, $11, $9
            add  $11, $11, $10
            li   $7, 0x1234
            sh   $7, 2($6)      # half store
            lhu  $12, 2($6)
            lw   $13, 0($6)     # word load over byte+half stores
            add  $11, $11, $12
            add  $11, $11, $13
            sw   $11, 32($8)
            lw   $14, 32($8)
            addi $4, $4, 1
            bne  $4, $5, loop
            halt
        "#,
    )
}

/// Silent stores: the same value rewritten repeatedly (paper Fig. 10).
fn silent_kernel() -> Program {
    assemble(
        "silent-store",
        r#"
            .data
    cell:   .word 7
    out:    .space 8
            .text
            lui  $8, %hi(cell)
            ori  $8, $8, %lo(cell)
            li   $4, 0
            li   $5, 120
            li   $6, 7
    loop:
            sw   $6, 0($8)      # silent store: always writes 7
            lw   $7, 0($8)
            add  $9, $9, $7
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $9, 4($8)
            halt
        "#,
    )
}

/// Calls, returns, and data-dependent branches.
fn control_kernel() -> Program {
    assemble(
        "control",
        r#"
            .data
    vals:   .word 3, -1, 4, -1, 5, -9, 2, 6
    acc:    .space 8
            .text
            lui  $8, %hi(vals)
            ori  $8, $8, %lo(vals)
            li   $4, 0
            li   $5, 8
    loop:
            sll  $6, $4, 2
            add  $6, $6, $8
            lw   $2, 0($6)
            jal  absval
            add  $9, $9, $2
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $9, acc($0)
            halt
    absval:
            bgez $2, done
            sub  $2, $0, $2
    done:
            jr   $31
        "#,
    )
}

fn all_kernels() -> Vec<Program> {
    vec![
        oc_kernel(),
        ac_kernel(),
        nc_kernel(),
        partial_kernel(),
        silent_kernel(),
        control_kernel(),
    ]
}

#[test]
fn all_models_retire_the_architectural_stream() {
    for p in all_kernels() {
        let reports = run_all_models(&p);
        let baseline_insns = reports[0].stats.retired_insns;
        for r in &reports {
            assert_eq!(
                r.stats.retired_insns, baseline_insns,
                "{} under {:?} retired a different instruction count",
                p.name(),
                r.model
            );
            assert!(r.stats.cycles > 0);
            assert!(r.ipc() > 0.0);
        }
    }
}

#[test]
fn perfect_never_mispredicts_memory() {
    for p in all_kernels() {
        let r = Simulator::new(CommModel::Perfect).run_checked(&p).unwrap();
        assert_eq!(r.stats.mem_dep_mispredicts, 0, "{}", p.name());
        assert_eq!(r.stats.reexecutions, 0, "{}", p.name());
    }
}

#[test]
fn ac_kernel_gets_cloaked_under_nosq_and_dmdp() {
    use dmdp_stats::LoadSource;
    let p = ac_kernel();
    for m in [CommModel::NoSq, CommModel::Dmdp] {
        let r = Simulator::new(m).run_checked(&p).unwrap();
        assert!(
            r.stats.load_latency.count(LoadSource::Bypassed) > 50,
            "{:?} should cloak the spill reloads, got {:?}",
            m,
            r.stats.load_latency
        );
    }
}

#[test]
fn dmdp_predicates_instead_of_delaying() {
    use dmdp_stats::LoadSource;
    let p = oc_kernel();
    let nosq = Simulator::new(CommModel::NoSq).run_checked(&p).unwrap();
    let dmdp = Simulator::new(CommModel::Dmdp).run_checked(&p).unwrap();
    assert_eq!(
        dmdp.stats.load_latency.count(LoadSource::Delayed),
        0,
        "DMDP never delays loads"
    );
    assert_eq!(
        nosq.stats.load_latency.count(LoadSource::Predicated),
        0,
        "NoSQ never predicates"
    );
    assert!(dmdp.stats.predication_uops > 0, "the OC kernel must trigger predication");
}

#[test]
fn partial_word_loads_never_cloak() {
    use dmdp_stats::LoadSource;
    let p = partial_kernel();
    let r = Simulator::new(CommModel::Dmdp).run_checked(&p).unwrap();
    // Sub-word loads must use predication or direct access; word loads
    // over mixed stores re-execute rather than forward wrongly.
    assert!(r.stats.load_latency.count(LoadSource::Predicated) > 0);
}

#[test]
fn rmo_matches_tso_architecturally() {
    use dmdp_mem::Consistency;
    for p in all_kernels() {
        for model in [CommModel::NoSq, CommModel::Dmdp] {
            let cfg = CoreConfig { consistency: Consistency::Rmo, ..CoreConfig::new(model) };
            Simulator::with_config(cfg).run_checked(&p).unwrap();
        }
    }
}

#[test]
fn alternative_geometries_stay_correct() {
    let p = oc_kernel();
    for model in CommModel::ALL {
        for (width, rob, prf, sb) in
            [(4, 256, 320, 16), (8, 512, 320, 16), (8, 256, 160, 16), (8, 256, 320, 64)]
        {
            let cfg = CoreConfig {
                width,
                rob_entries: rob,
                phys_regs: prf,
                store_buffer_entries: sb,
                ..CoreConfig::new(model)
            };
            Simulator::with_config(cfg)
                .run_checked(&p)
                .unwrap_or_else(|e| panic!("{model:?} w{width} rob{rob} prf{prf} sb{sb}: {e}"));
        }
    }
}
