//! Exhaustive plan-cache equivalence: for every static instruction in
//! every `dmdp_workloads` kernel, the cached [`InsnPlan`] must agree
//! with the legacy decode paths it replaced — `uop::expand` (which
//! rename used to re-run per dynamic instance) for the expansion, and
//! the `Op`-matching fetch classification for control flow.

use dmdp_core::{FetchClass, InsnPlan, PlanCache, PlanKind};
use dmdp_isa::uop::{self, UopKind};
use dmdp_isa::{Insn, Op, Pc};
use dmdp_workloads::Scale;

/// The fetch classification exactly as the pre-cache fetch stage derived
/// it from the instruction word (test-only oracle).
fn legacy_fetch_class(insn: Insn) -> FetchClass {
    match insn.op {
        Op::Branch(_) => FetchClass::CondBranch { target: insn.imm as Pc },
        Op::Jump => FetchClass::Jump { target: insn.imm as Pc },
        Op::JumpAndLink => FetchClass::JumpLink { target: insn.imm as Pc },
        Op::JumpReg => FetchClass::JumpInd { link: false },
        Op::JumpAndLinkReg => FetchClass::JumpInd { link: true },
        Op::Halt => FetchClass::Halt,
        _ => FetchClass::Seq,
    }
}

/// Checks one plan against the legacy decode of the same instruction.
fn check_plan(kernel: &str, pc: usize, insn: Insn, plan: &InsnPlan) {
    let ctx = format!("{kernel} pc={pc} {insn:?}");

    assert_eq!(plan.fetch, legacy_fetch_class(insn), "fetch class: {ctx}");
    assert_eq!(plan.is_halt(), insn.op == Op::Halt, "halt class: {ctx}");

    // The µop expansion rename used to re-run on every dynamic instance.
    let legacy = uop::expand(insn);
    let legacy = legacy.as_slice();
    assert_eq!(plan.min_width(), legacy.len(), "static width: {ctx}");

    match plan.kind {
        PlanKind::Simple(u) => {
            assert_eq!(legacy.len(), 1, "simple plan for multi-µop insn: {ctx}");
            let want = legacy[0];
            assert_eq!(u.kind, want.kind, "µop kind: {ctx}");
            assert_eq!(u.rd, want.rd, "µop rd: {ctx}");
            assert_eq!(u.rs, want.rs, "µop rs: {ctx}");
            assert_eq!(u.rt, want.rt, "µop rt: {ctx}");
            assert_eq!(u.imm, want.imm, "µop imm: {ctx}");
        }
        PlanKind::Load { width, signed, rd, base, imm } => {
            let Op::Load { width: w, signed: s } = insn.op else {
                panic!("load plan for non-load: {ctx}");
            };
            assert_eq!((width, signed), (w, s), "load access: {ctx}");
            // Legacy rename derived these from the AGI/access µop pair.
            let (agi, access) = (legacy[0], legacy[1]);
            assert_eq!(agi.kind, UopKind::Agi, "{ctx}");
            assert_eq!(base, agi.rs, "load base: {ctx}");
            assert_eq!(imm, agi.imm, "load displacement: {ctx}");
            // `rd: None` encodes the legacy `insn.rd.is_zero()` check.
            assert_eq!(rd.is_none(), access.rd.is_zero(), "load dest presence: {ctx}");
            if let Some(l) = rd {
                assert_eq!(l, access.rd, "load dest: {ctx}");
            }
        }
        PlanKind::Store { width, data, base, imm } => {
            let Op::Store { width: w } = insn.op else {
                panic!("store plan for non-store: {ctx}");
            };
            assert_eq!(width, w, "store access: {ctx}");
            let (agi, access) = (legacy[0], legacy[1]);
            assert_eq!(agi.kind, UopKind::Agi, "{ctx}");
            assert_eq!(base, agi.rs, "store base: {ctx}");
            assert_eq!(imm, agi.imm, "store displacement: {ctx}");
            assert_eq!(data, access.rt, "store data reg: {ctx}");
        }
    }
}

#[test]
fn every_kernel_insn_plans_like_the_legacy_decode() {
    let mut checked = 0usize;
    for scale in [Scale::Test, Scale::Small] {
        for w in dmdp_workloads::all(scale) {
            let cache = PlanCache::build(&w.program);
            assert_eq!(cache.len(), w.program.len(), "{}: full coverage", w.name);
            assert!(cache.get(w.program.len() as Pc).is_none(), "{}: bounded", w.name);
            for (pc, &insn) in w.program.text().iter().enumerate() {
                let plan = cache.plan(pc as Pc);
                check_plan(w.name, pc, insn, plan);
                checked += 1;
            }
        }
    }
    assert!(checked > 100, "suite should exercise a real instruction mix, got {checked}");
}
