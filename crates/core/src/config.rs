use dmdp_mem::{Consistency, MemConfig};
use dmdp_predict::{BranchConfig, ConfidencePolicy, DistanceConfig, StoreSetsConfig, TssbfConfig};

/// Which store-load communication mechanism the core uses (paper §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommModel {
    /// Conventional store queue + load queue with Store Sets dependence
    /// prediction; 4-cycle constant-latency SQ/SB/cache access; store
    /// coalescing.
    Baseline,
    /// Store-queue-free with memory cloaking; low-confidence loads are
    /// *delayed* until the predicted store commits; balanced confidence
    /// update.
    NoSq,
    /// The paper's contribution: like NoSQ, but low-confidence loads are
    /// *predicated* (CMP + 2×CMOV) and the confidence update is biased
    /// (÷2 on a misprediction).
    Dmdp,
    /// Oracle memory dependence prediction driven by a functional
    /// pre-pass: no delays, no re-executions, no mispredictions.
    Perfect,
}

impl CommModel {
    /// All models, in the paper's reporting order.
    pub const ALL: [CommModel; 4] =
        [CommModel::Baseline, CommModel::NoSq, CommModel::Dmdp, CommModel::Perfect];

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CommModel::Baseline => "baseline",
            CommModel::NoSq => "nosq",
            CommModel::Dmdp => "dmdp",
            CommModel::Perfect => "perfect",
        }
    }

    /// Inverse of [`CommModel::name`].
    pub fn from_name(name: &str) -> Option<CommModel> {
        CommModel::ALL.into_iter().find(|m| m.name() == name)
    }

    /// The confidence policy the model's distance predictor uses (§V:
    /// "the only difference is that NoSQ decreases the confidence counter
    /// by one ... DMDP divides the counter by two").
    pub fn confidence_policy(self) -> ConfidencePolicy {
        match self {
            CommModel::Dmdp => ConfidencePolicy::Biased,
            _ => ConfidencePolicy::Balanced,
        }
    }
}

/// Full configuration of one simulated core.
///
/// Defaults reproduce the paper's main configuration (8-wide, 256-entry
/// ROB, 320 physical registers, 16-entry TSO store buffer); the §VI-g
/// alternative configurations are obtained by overriding single fields.
///
/// # Example
///
/// ```
/// use dmdp_core::{CommModel, CoreConfig};
/// let cfg = CoreConfig::new(CommModel::Dmdp);
/// assert_eq!(cfg.width, 8);
/// let narrow = CoreConfig { width: 4, ..CoreConfig::new(CommModel::Dmdp) };
/// assert_eq!(narrow.width, 4);
/// ```
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Communication model under test.
    pub comm: CommModel,
    /// Fetch/decode/rename/issue/retire width in µops per cycle.
    pub width: usize,
    /// Reorder buffer capacity in µops.
    pub rob_entries: usize,
    /// Physical register file size.
    pub phys_regs: usize,
    /// Issue queue capacity.
    pub iq_entries: usize,
    /// Load-execution ports per cycle.
    pub load_ports: usize,
    /// Retired-store buffer capacity.
    pub store_buffer_entries: usize,
    /// Store-buffer consistency model.
    pub consistency: Consistency,
    /// Front-end refill penalty after any pipeline recovery, in cycles.
    pub redirect_penalty: u64,
    /// Coalesce consecutive same-word stores in the store buffer.
    pub coalesce_stores: bool,
    /// Silent-store-aware predictor update: train the distance predictor
    /// on *every* load re-execution rather than only on value mismatches
    /// (paper §IV-C a; on by default for NoSQ and DMDP per §V).
    pub silent_store_update: bool,
    /// Memory system parameters.
    pub mem: MemConfig,
    /// Branch predictor parameters.
    pub branch: BranchConfig,
    /// Store distance predictor parameters (policy is set from `comm`).
    pub distance: DistanceConfig,
    /// T-SSBF parameters.
    pub tssbf: TssbfConfig,
    /// Store Sets parameters (baseline only).
    pub store_sets: StoreSetsConfig,
    /// Multi-core coherence stand-in (§IV-F): every `N` cycles the line
    /// holding the most recently committed store is invalidated, as if
    /// another core wrote it. Exercises the T-SSBF invalidation path
    /// (all words of the line are marked `SSN_commit + 1`, forcing
    /// in-flight loads of that line to re-execute). `None` disables it.
    pub coherence_invalidate_every: Option<u64>,
    /// Safety valve: abort the simulation after this many cycles.
    pub max_cycles: u64,
}

/// Version tag of the simulator's *timing semantics*. Bump whenever a
/// change alters simulated cycle counts or statistics for an unchanged
/// (config, workload) pair — campaign digest caches key on it, so a bump
/// invalidates every cached experiment result.
pub const SIM_VERSION: &str = concat!(env!("CARGO_PKG_VERSION"), "+timing1");

impl CoreConfig {
    /// The paper's main configuration for the given model.
    pub fn new(comm: CommModel) -> CoreConfig {
        CoreConfig {
            comm,
            width: 8,
            rob_entries: 256,
            phys_regs: 320,
            iq_entries: 96,
            load_ports: 2,
            store_buffer_entries: 16,
            consistency: Consistency::Tso,
            redirect_penalty: 8,
            coalesce_stores: true,
            silent_store_update: true,
            mem: MemConfig::default(),
            branch: BranchConfig::default(),
            distance: DistanceConfig {
                policy: comm.confidence_policy(),
                ..DistanceConfig::default()
            },
            tssbf: TssbfConfig::default(),
            store_sets: StoreSetsConfig::default(),
            coherence_invalidate_every: None,
            max_cycles: 2_000_000_000,
        }
    }

    /// A stable identity string covering *every* configuration field,
    /// including the nested memory/predictor sub-configs. Two configs
    /// with equal identities run identical simulations; the campaign
    /// harness hashes this (together with the workload image and
    /// [`SIM_VERSION`]) to decide whether a cached result is reusable.
    pub fn identity(&self) -> String {
        // The derived Debug representation enumerates all fields by name
        // and recurses into the sub-configs, so it changes whenever any
        // knob (or a field's meaning, via renames) changes.
        format!("{self:?}")
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on an impossible configuration (e.g. too few physical
    /// registers to rename a single instruction group).
    pub fn validate(&self) {
        assert!(self.width > 0, "width must be nonzero");
        assert!(self.rob_entries >= self.width * 2, "ROB too small for the width");
        assert!(
            self.phys_regs >= dmdp_isa::Reg::NUM_LOGICAL + 5 * self.width,
            "physical register file too small"
        );
        assert!(self.iq_entries >= self.width, "issue queue too small");
        assert!(self.load_ports > 0, "need at least one load port");
        assert!(self.store_buffer_entries > 0, "store buffer needs entries");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CoreConfig::new(CommModel::NoSq);
        assert_eq!(c.rob_entries, 256);
        assert_eq!(c.phys_regs, 320);
        assert_eq!(c.store_buffer_entries, 16);
        assert_eq!(c.consistency, Consistency::Tso);
        c.validate();
    }

    #[test]
    fn dmdp_gets_biased_policy() {
        assert_eq!(CoreConfig::new(CommModel::Dmdp).distance.policy, ConfidencePolicy::Biased);
        assert_eq!(CoreConfig::new(CommModel::NoSq).distance.policy, ConfidencePolicy::Balanced);
    }

    #[test]
    fn model_names() {
        assert_eq!(CommModel::Dmdp.name(), "dmdp");
        assert_eq!(CommModel::ALL.len(), 4);
    }

    #[test]
    fn identity_distinguishes_configs() {
        let a = CoreConfig::new(CommModel::Dmdp);
        let b = CoreConfig::new(CommModel::Dmdp);
        assert_eq!(a.identity(), b.identity());
        let narrow = CoreConfig { width: 4, ..CoreConfig::new(CommModel::Dmdp) };
        assert_ne!(a.identity(), narrow.identity());
        assert_ne!(a.identity(), CoreConfig::new(CommModel::NoSq).identity());
    }

    #[test]
    #[should_panic(expected = "physical register file")]
    fn tiny_prf_rejected() {
        let mut c = CoreConfig::new(CommModel::Dmdp);
        c.phys_regs = 30;
        c.validate();
    }
}
