use dmdp_isa::uop::UopKind;
use dmdp_isa::{Addr, MemWidth, Pc, Reg, Word};

use crate::regfile::PregId;

/// Sequence number identifying an in-flight µop; monotonically increasing
/// in rename order, so comparing tags compares age.
pub type SeqNum = u64;

/// Execution state of a µop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopState {
    /// In the issue queue (or, for a delayed load, parked) waiting for
    /// operands.
    Waiting,
    /// Issued; result arrives at the contained cycle.
    Executing(u64),
    /// Completed (or needs no execution: cloaked loads, store-queue-free
    /// stores, `nop`/`halt`).
    Done,
}

/// How a load obtains its value — fixed at rename time by the
/// communication model (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadKind {
    /// Reads the cache when its address is ready.
    Direct,
    /// Memory cloaking: reuses the predicted store's data register.
    Cloaked,
    /// NoSQ low-confidence: waits for the predicted store to commit, then
    /// reads the cache.
    Delayed,
    /// DMDP low-confidence: CMP/CMOV predication selects between the
    /// store's data and the cache value.
    Predicated,
    /// Perfect-model oracle forward from the actual last-writer store.
    Oracle,
}

/// Per-load bookkeeping, attached to the µop whose retirement triggers
/// verification (the load µop itself, or the closing `CMOV` of a
/// predication group).
#[derive(Debug, Clone, Copy)]
pub struct LoadInfo {
    /// Access width.
    pub width: MemWidth,
    /// Sign extension for sub-word loads.
    pub signed: bool,
    /// Mechanism chosen at rename.
    pub kind: LoadKind,
    /// Predicted colliding store (`SSN_byp`), when predicted dependent.
    pub ssn_byp: Option<u32>,
    /// `SSN_rename` captured at rename — the reference point store
    /// distances are measured from.
    pub ssn_ref: u32,
    /// `SSN_commit` captured when the cache was read (`SSN_nvul`).
    pub ssn_nvul: u32,
    /// Effective address (filled at execute from the address register).
    pub addr: Addr,
    /// The value delivered to the destination register.
    pub value: Word,
    /// Predicate outcome for a predicated load (set by `CMP`).
    pub pred_matches: Option<bool>,
    /// Whether the prediction was low-confidence (Figure 5's population).
    pub low_conf: bool,
    /// Physical register holding the architectural load result.
    pub result_preg: Option<PregId>,
    /// Branch history at rename (for predictor training).
    pub history: u32,
    /// Baseline: SSN of the store-queue/store-buffer entry the load
    /// forwarded from (`None` = value came from the cache).
    pub forwarded_from: Option<u32>,
    /// NoSQ shift-and-mask forwarding: the predicted (store BAB, load
    /// low-address-bits) pair, verified against the actual collision at
    /// retire (§IV-D).
    pub shift_pred: Option<(u8, u8)>,
    /// Physical register holding the load's effective address (read at
    /// verification for loads that never access the cache).
    pub addr_preg: Option<PregId>,
    /// Whether the cache (or forward) read happened.
    pub executed: bool,
}

impl LoadInfo {
    /// A fresh record for a load of `width`/`signed` renamed when
    /// `SSN_rename == ssn_ref`.
    pub fn new(width: MemWidth, signed: bool, kind: LoadKind, ssn_ref: u32) -> LoadInfo {
        LoadInfo {
            width,
            signed,
            kind,
            ssn_byp: None,
            ssn_ref,
            ssn_nvul: 0,
            addr: 0,
            value: 0,
            pred_matches: None,
            low_conf: false,
            result_preg: None,
            history: 0,
            forwarded_from: None,
            shift_pred: None,
            addr_preg: None,
            executed: false,
        }
    }
}

/// Per-store bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct StoreInfo {
    /// The store's sequence number (assigned at rename).
    pub ssn: u32,
    /// Access width.
    pub width: MemWidth,
    /// Physical register holding the (translated) address.
    pub addr_preg: PregId,
    /// Physical register holding the data, or `None` for a store of `$0`.
    pub data_preg: Option<PregId>,
}

/// Branch/jump bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct BranchInfo {
    /// Fetch-time predicted direction (true for unconditional).
    pub predicted_taken: bool,
    /// Fetch-time predicted target.
    pub predicted_target: Option<Pc>,
    /// Global history before the prediction (for repair/training).
    pub history_before: u32,

}

/// One in-flight µop: the unit the ROB, issue queue and execution lists
/// operate on.
#[derive(Debug, Clone)]
pub struct UopEntry {
    /// Age tag.
    pub seq: SeqNum,
    /// PC of the parent architectural instruction.
    pub pc: Pc,
    /// Operation.
    pub kind: UopKind,
    /// First µop of its architectural instruction.
    pub first_of_insn: bool,
    /// Last µop of its architectural instruction (retirement of this µop
    /// retires the instruction).
    pub last_of_insn: bool,
    /// Logical destination (None for `$0`/no dest).
    pub dest_logical: Option<Reg>,
    /// Physical destination.
    pub dest: Option<PregId>,
    /// RAT mapping of `dest_logical` before this µop renamed (for virtual
    /// release at retire and rollback at squash).
    pub prev_mapping: Option<PregId>,
    /// Physical sources.
    pub src: [Option<PregId>; 2],
    /// Immediate operand.
    pub imm: i32,
    /// Execution state.
    pub state: UopState,
    /// Outstanding wake conditions (unready sources, Store-Sets ordering,
    /// delayed-load SSN commit). The event-driven scheduler moves the µop
    /// to a ready list when this reaches zero.
    pub not_ready: u8,
    /// Whether the µop currently occupies an issue-queue slot (drives the
    /// rename stage's structural backpressure and squash accounting).
    pub in_iq: bool,
    /// Whether this µop's consumer references have been dropped (at
    /// issue, at commit for stores, or at squash).
    pub consumed: bool,
    /// Whether this µop requires the destination register to be ready
    /// before it can retire without executing (cloaked loads).
    pub retire_needs_dest_ready: bool,
    /// Result value (for writeback and co-simulation).
    pub value: Word,
    /// Whether this µop actually writes its destination (losing `CMOV`s
    /// do not).
    pub writes_dest: bool,
    /// Rename cycle (load execution-time statistics measure from here).
    pub rename_cycle: u64,
    /// Branch bookkeeping.
    pub branch: Option<BranchInfo>,
    /// Load bookkeeping (on the verifying µop of the group).
    pub load: Option<LoadInfo>,
    /// Store bookkeeping.
    pub store: Option<StoreInfo>,
    /// For µops of a predication group: the seq of the µop carrying the
    /// group's [`LoadInfo`] (the closing `CMOV`), so execute can record
    /// facts there.
    pub group_sink: Option<SeqNum>,
    /// Baseline Store-Sets ordering: this µop may not issue until the µop
    /// with this seq has executed (or vanished).
    pub wait_for_seq: Option<SeqNum>,
    /// Global branch history captured when the parent instruction was
    /// fetched (path-sensitive prediction and history repair).
    pub fetch_history: u32,
}

impl UopEntry {
    /// Whether every state needed to retire is reached.
    pub fn is_done(&self) -> bool {
        self.state == UopState::Done
    }
}

/// The reorder buffer: a bounded FIFO of µops in rename order.
///
/// Entries are addressed by their [`SeqNum`]; slot reuse is handled by the
/// ring mapping, and stale lookups (squashed µops) return `None`.
#[derive(Debug)]
pub struct Rob {
    slots: Vec<Option<UopEntry>>,
    capacity: usize,
    /// `capacity - 1` when the capacity is a power of two (the common
    /// configurations), letting the ring index be a mask instead of a
    /// 64-bit modulo on every ROB access; zero otherwise.
    mask: u64,
    head: SeqNum,
    tail: SeqNum,
}

impl Rob {
    /// Creates an empty ROB.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Rob {
        assert!(capacity > 0, "ROB needs capacity");
        let mask = if capacity.is_power_of_two() { capacity as u64 - 1 } else { 0 };
        Rob { slots: (0..capacity).map(|_| None).collect(), capacity, mask, head: 0, tail: 0 }
    }

    /// Ring slot of a sequence number.
    #[inline]
    fn slot(&self, seq: SeqNum) -> usize {
        if self.mask != 0 {
            (seq & self.mask) as usize
        } else {
            (seq % self.capacity as u64) as usize
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Whether the ROB is empty.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.len()
    }

    /// The next sequence number `push` will assign.
    pub fn next_seq(&self) -> SeqNum {
        self.tail
    }

    /// Sequence number of the head (oldest) entry, if any.
    pub fn head_seq(&self) -> Option<SeqNum> {
        (!self.is_empty()).then_some(self.head)
    }

    /// Appends an entry (its `seq` must equal [`Rob::next_seq`]).
    ///
    /// # Panics
    ///
    /// Panics when full or on a seq mismatch.
    pub fn push(&mut self, entry: UopEntry) -> SeqNum {
        assert!(self.free() > 0, "ROB overflow");
        assert_eq!(entry.seq, self.tail, "seq must be allocated in order");
        let slot = self.slot(self.tail);
        debug_assert!(self.slots[slot].is_none());
        self.slots[slot] = Some(entry);
        self.tail += 1;
        self.tail - 1
    }

    /// Looks up a live entry.
    pub fn get(&self, seq: SeqNum) -> Option<&UopEntry> {
        if seq < self.head || seq >= self.tail {
            return None;
        }
        self.slots[self.slot(seq)].as_ref()
    }

    /// Mutable lookup of a live entry.
    pub fn get_mut(&mut self, seq: SeqNum) -> Option<&mut UopEntry> {
        if seq < self.head || seq >= self.tail {
            return None;
        }
        let slot = self.slot(seq);
        self.slots[slot].as_mut()
    }

    /// Removes and returns the head entry.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn pop_head(&mut self) -> UopEntry {
        assert!(!self.is_empty(), "pop from empty ROB");
        let slot = self.slot(self.head);
        let e = self.slots[slot].take().expect("head entry present");
        self.head += 1;
        e
    }

    /// Removes every entry with `seq >= from`, youngest first, draining
    /// them into `out` for rollback processing. `out` is cleared first;
    /// recovery passes a scratch buffer it owns, so squashing — which can
    /// happen many times per thousand cycles on branchy code — never
    /// allocates.
    pub fn squash_from_into(&mut self, from: SeqNum, out: &mut Vec<UopEntry>) {
        out.clear();
        let from = from.max(self.head);
        while self.tail > from {
            self.tail -= 1;
            let slot = self.slot(self.tail);
            out.push(self.slots[slot].take().expect("tail entry present"));
        }
    }

    /// [`Rob::squash_from_into`] returning a fresh `Vec` (test
    /// convenience; the pipeline uses the scratch-buffer form).
    #[cfg(test)]
    pub fn squash_from(&mut self, from: SeqNum) -> Vec<UopEntry> {
        let mut out = Vec::new();
        self.squash_from_into(from, &mut out);
        out
    }

    /// Iterates over live entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &UopEntry> {
        (self.head..self.tail).filter_map(move |s| self.slots[self.slot(s)].as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: SeqNum) -> UopEntry {
        UopEntry {
            seq,
            pc: 0,
            kind: UopKind::Nop,
            first_of_insn: true,
            last_of_insn: true,
            dest_logical: None,
            dest: None,
            prev_mapping: None,
            src: [None, None],
            imm: 0,
            state: UopState::Done,
            not_ready: 0,
            in_iq: false,
            consumed: true,
            retire_needs_dest_ready: false,
            value: 0,
            writes_dest: false,
            rename_cycle: 0,
            branch: None,
            load: None,
            store: None,
            group_sink: None,
            wait_for_seq: None,
            fetch_history: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut rob = Rob::new(4);
        for s in 0..3 {
            rob.push(entry(s));
        }
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.pop_head().seq, 0);
        assert_eq!(rob.pop_head().seq, 1);
        rob.push(entry(3));
        rob.push(entry(4)); // wraps the ring
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.pop_head().seq, 2);
    }

    #[test]
    fn non_power_of_two_capacity_wraps() {
        // Exercises the modulo fallback of the ring indexing (power-of-two
        // capacities take the mask path).
        let mut rob = Rob::new(3);
        for s in 0..3 {
            rob.push(entry(s));
        }
        assert_eq!(rob.pop_head().seq, 0);
        rob.push(entry(3)); // wraps
        assert_eq!(rob.get(3).unwrap().seq, 3);
        assert_eq!(rob.pop_head().seq, 1);
        assert_eq!(rob.pop_head().seq, 2);
        assert_eq!(rob.pop_head().seq, 3);
        assert!(rob.is_empty());
    }

    #[test]
    fn get_rejects_stale_seqs() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.push(entry(1));
        rob.pop_head();
        assert!(rob.get(0).is_none());
        assert!(rob.get(1).is_some());
        assert!(rob.get(2).is_none());
    }

    #[test]
    fn squash_from_removes_youngest_first() {
        let mut rob = Rob::new(8);
        for s in 0..5 {
            rob.push(entry(s));
        }
        let squashed = rob.squash_from(2);
        assert_eq!(squashed.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 3, 2]);
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.next_seq(), 2);
        // Reuse the freed seqs.
        rob.push(entry(2));
        assert!(rob.get(2).is_some());
    }

    #[test]
    fn squash_everything() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.push(entry(1));
        let squashed = rob.squash_from(0);
        assert_eq!(squashed.len(), 2);
        assert!(rob.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(0));
        rob.push(entry(1));
    }

    #[test]
    fn iter_oldest_first() {
        let mut rob = Rob::new(4);
        for s in 0..3 {
            rob.push(entry(s));
        }
        let seqs: Vec<SeqNum> = rob.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }
}
