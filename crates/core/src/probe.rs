//! The pipeline probe layer: per-µop lifecycle observation that is
//! zero-cost when off.
//!
//! Every pipeline stage reports lifecycle events — fetched, renamed,
//! dispatched, issued, written back, retired, squashed, plus the
//! retire-time load-class resolution — through a [`Probe`] owned by the
//! pipeline. The default probe has no sinks attached: each hook is a
//! single `Option` discriminant test that the optimiser folds into the
//! caller, so the event-driven hot path (PR 2) is untouched
//! (`scripts/bench.sh` records the overhead in `BENCH_PR3.json`, and
//! `tests/golden_stats.rs` proves enabled probes do not perturb
//! *simulated* timing either — probes observe, never perturb).
//!
//! Two sinks live here:
//!
//! * [`Tracer`] — a stage-timeline tracer writing one JSONL record per
//!   µop (all stage cycles, the final load class, re-execution and
//!   squash markers). A µop is traced iff its *rename* cycle falls in
//!   the `[from, from + cycles)` window, so full-scale runs stay
//!   bounded.
//! * [`Sampler`] — a windowed time-series sampler recording IPC and
//!   structure occupancies every N cycles for plotting divergences over
//!   time.
//!
//! The third sink of the observability layer — the campaign job
//! reporter — lives in `dmdp-harness`, fed by pool lifecycle events
//! rather than µop events.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use dmdp_isa::uop::UopKind;
use dmdp_isa::Pc;
use dmdp_stats::LoadSource;

use crate::rob::SeqNum;
use crate::stats::SimStats;

/// Short stable label for a µop kind, used in trace records.
fn kind_label(kind: UopKind) -> &'static str {
    match kind {
        UopKind::Alu(_) => "alu",
        UopKind::Agi => "agi",
        UopKind::Load { .. } => "load",
        UopKind::Store { .. } => "store",
        UopKind::Branch(_) => "branch",
        UopKind::Jump { .. } => "jump",
        UopKind::Cmp { .. } => "cmp",
        UopKind::Cmov { .. } => "cmov",
        UopKind::ShiftMask { .. } => "shiftmask",
        UopKind::Halt => "halt",
        UopKind::Nop => "nop",
    }
}

/// Short stable label for a retired load's communication class.
fn class_label(class: LoadSource) -> &'static str {
    match class {
        LoadSource::Direct => "direct",
        LoadSource::Bypassed => "bypassed",
        LoadSource::Delayed => "delayed",
        LoadSource::Predicated => "predicated",
    }
}

/// One in-flight stage-timeline record. Stage cycles that have not
/// happened (yet, or ever — e.g. a store µop in the SQ-free models is
/// never issued) stay `None` and serialise as JSON `null`.
#[derive(Debug, Clone)]
struct TraceRec {
    pc: Pc,
    kind: &'static str,
    fetch: u64,
    rename: u64,
    dispatch: Option<u64>,
    issue: Option<u64>,
    wb: Option<u64>,
    load_class: Option<&'static str>,
    reexec: bool,
}

/// The stage-timeline tracer: accumulates per-µop records keyed by
/// sequence number and flushes one JSONL line when the µop leaves the
/// machine (retire or squash), so sequence-number reuse after a recovery
/// can never alias two µops into one record.
#[derive(Debug)]
struct Tracer {
    out: BufWriter<File>,
    /// Trace µops renamed in `[from, until)`.
    from: u64,
    until: u64,
    live: BTreeMap<SeqNum, TraceRec>,
    records: u64,
    /// First write error, if any; reported by [`Probe::finish`] instead
    /// of panicking mid-simulation.
    error: Option<String>,
    line: String,
}

impl Tracer {
    fn flush_rec(
        &mut self,
        seq: SeqNum,
        rec: &TraceRec,
        retire: Option<u64>,
        squash: Option<u64>,
    ) {
        self.line.clear();
        let _ = write!(
            self.line,
            "{{\"seq\":{seq},\"pc\":{},\"kind\":\"{}\",\"fetch\":{},\"rename\":{}",
            rec.pc, rec.kind, rec.fetch, rec.rename
        );
        for (key, v) in [
            ("dispatch", rec.dispatch),
            ("issue", rec.issue),
            ("wb", rec.wb),
            ("retire", retire),
            ("squash", squash),
        ] {
            match v {
                Some(c) => {
                    let _ = write!(self.line, ",\"{key}\":{c}");
                }
                None => {
                    let _ = write!(self.line, ",\"{key}\":null");
                }
            }
        }
        match rec.load_class {
            Some(c) => {
                let _ = write!(self.line, ",\"load_class\":\"{c}\"");
            }
            None => self.line.push_str(",\"load_class\":null"),
        }
        let _ = write!(self.line, ",\"reexec\":{}}}", rec.reexec);
        self.line.push('\n');
        if self.error.is_none() {
            if let Err(e) = self.out.write_all(self.line.as_bytes()) {
                self.error = Some(e.to_string());
            } else {
                self.records += 1;
            }
        }
    }
}

/// One time-series window emitted by the sampler. All event counts are
/// deltas over the window ending at `cycle`; occupancies are end-of-window
/// snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Cycle the window ends at (inclusive).
    pub cycle: u64,
    /// Instructions retired in the window.
    pub insns: u64,
    /// Windowed IPC (`insns / window length`).
    pub ipc: f64,
    /// Instructions fetched in the window (includes wrong-path fetch).
    pub fetched: u64,
    /// ROB occupancy at the end of the window.
    pub rob: usize,
    /// Issue-queue occupancy at the end of the window.
    pub iq: usize,
    /// Ready-list length (IQ-ready + delayed-ready) at the end of the
    /// window.
    pub ready: usize,
    /// Store-buffer occupancy at the end of the window.
    pub sb: usize,
    /// Branch mispredictions in the window.
    pub branch_mispredicts: u64,
    /// Memory dependence mispredictions in the window.
    pub mem_dep_mispredicts: u64,
    /// Pipeline recoveries in the window.
    pub recoveries: u64,
    /// µops squashed in the window.
    pub squashed_uops: u64,
}

/// End-of-window occupancy snapshot, read by the pipeline (which owns
/// the structures) and handed to [`Probe::take_sample`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Occupancy {
    /// Live ROB entries.
    pub rob: usize,
    /// Issue-queue occupancy.
    pub iq: usize,
    /// Ready-list length (including delayed-ready loads).
    pub ready: usize,
    /// Store-buffer occupancy.
    pub sb: usize,
}

/// The windowed time-series sampler.
#[derive(Debug)]
struct Sampler {
    every: u64,
    last_cycle: u64,
    fetched: u64,
    prev_insns: u64,
    prev_bmiss: u64,
    prev_mmiss: u64,
    prev_recov: u64,
    prev_squash: u64,
    samples: Vec<Sample>,
}

/// Everything the probe collected, returned by [`Probe::finish`] (via
/// [`crate::Simulator::run_probed`]).
#[derive(Debug, Default)]
pub struct ProbeReport {
    /// JSONL records written by the tracer.
    pub trace_records: u64,
    /// First trace I/O error, if any (the run itself still completes).
    pub trace_error: Option<String>,
    /// Time-series windows collected by the sampler.
    pub samples: Vec<Sample>,
}

/// The per-pipeline probe: a set of optional sinks receiving µop
/// lifecycle events from every stage. [`Probe::default`] has no sinks
/// and makes every hook a single branch.
#[derive(Debug, Default)]
pub struct Probe {
    tracer: Option<Box<Tracer>>,
    sampler: Option<Box<Sampler>>,
}

impl Probe {
    /// Attaches a stage-timeline tracer writing JSONL to `path`. Only
    /// µops *renamed* in `[from, from + cycles)` are traced (`cycles =
    /// None` leaves the window open-ended).
    ///
    /// # Errors
    ///
    /// Returns the error from creating `path`. Write errors during the
    /// run are captured in [`ProbeReport::trace_error`] instead.
    pub fn with_trace(
        mut self,
        path: &Path,
        from: u64,
        cycles: Option<u64>,
    ) -> io::Result<Probe> {
        let file = File::create(path)?;
        self.tracer = Some(Box::new(Tracer {
            out: BufWriter::new(file),
            from,
            until: cycles.map_or(u64::MAX, |c| from.saturating_add(c)),
            live: BTreeMap::new(),
            records: 0,
            error: None,
            line: String::with_capacity(256),
        }));
        Ok(self)
    }

    /// Attaches a time-series sampler emitting one [`Sample`] every
    /// `every` cycles (plus a final partial window at halt).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_samples(mut self, every: u64) -> Probe {
        assert!(every > 0, "sample interval must be positive");
        self.sampler = Some(Box::new(Sampler {
            every,
            last_cycle: 0,
            fetched: 0,
            prev_insns: 0,
            prev_bmiss: 0,
            prev_mmiss: 0,
            prev_recov: 0,
            prev_squash: 0,
            samples: Vec::new(),
        }));
        self
    }

    /// Whether no sink is attached (every hook is a no-op).
    #[inline]
    pub fn is_off(&self) -> bool {
        self.tracer.is_none() && self.sampler.is_none()
    }

    /// Consumes the probe, flushing the tracer and returning everything
    /// collected.
    pub fn finish(self) -> ProbeReport {
        let mut report = ProbeReport::default();
        if let Some(mut t) = self.tracer {
            // µops still in flight at halt (wrong-path leftovers past the
            // halt µop) flush with neither retire nor squash.
            let live = std::mem::take(&mut t.live);
            for (seq, rec) in &live {
                t.flush_rec(*seq, rec, None, None);
            }
            if t.error.is_none() {
                if let Err(e) = t.out.flush() {
                    t.error = Some(e.to_string());
                }
            }
            report.trace_records = t.records;
            report.trace_error = t.error;
        }
        if let Some(s) = self.sampler {
            report.samples = s.samples;
        }
        report
    }

    // --- Per-µop hooks, called from the pipeline stages. Each starts
    // --- with a single cheap sink test so the off path costs one branch.

    /// An instruction entered the decode queue (sampler only; the
    /// per-µop fetch cycle reaches the tracer through `on_renamed`).
    #[inline]
    pub(crate) fn on_fetch(&mut self) {
        if let Some(s) = &mut self.sampler {
            s.fetched += 1;
        }
    }

    /// A µop was created at rename; opens its trace record when the
    /// rename cycle falls inside the trace window.
    #[inline]
    pub(crate) fn on_renamed(
        &mut self,
        cycle: u64,
        seq: SeqNum,
        pc: Pc,
        kind: UopKind,
        fetch_cycle: u64,
    ) {
        let Some(t) = &mut self.tracer else { return };
        if cycle < t.from || cycle >= t.until {
            return;
        }
        // Defensive: a stale record here would mean a squash failed to
        // flush; never alias two µops.
        if let Some(old) = t.live.remove(&seq) {
            debug_assert!(false, "trace record for seq {seq} not flushed before reuse");
            t.flush_rec(seq, &old, None, None);
        }
        t.live.insert(
            seq,
            TraceRec {
                pc,
                kind: kind_label(kind),
                fetch: fetch_cycle,
                rename: cycle,
                dispatch: None,
                issue: None,
                wb: None,
                load_class: None,
                reexec: false,
            },
        );
    }

    /// The µop entered the window (issue queue or the delayed-load
    /// parking area).
    #[inline]
    pub(crate) fn on_dispatched(&mut self, cycle: u64, seq: SeqNum) {
        if let Some(t) = &mut self.tracer {
            if let Some(r) = t.live.get_mut(&seq) {
                r.dispatch = Some(cycle);
            }
        }
    }

    /// The µop was selected and began executing. A baseline load that
    /// parks on the retry list re-issues later; the final attempt wins.
    #[inline]
    pub(crate) fn on_issued(&mut self, cycle: u64, seq: SeqNum) {
        if let Some(t) = &mut self.tracer {
            if let Some(r) = t.live.get_mut(&seq) {
                r.issue = Some(cycle);
            }
        }
    }

    /// The µop completed and wrote back (completion-calendar pop).
    #[inline]
    pub(crate) fn on_writeback(&mut self, cycle: u64, seq: SeqNum) {
        if let Some(t) = &mut self.tracer {
            if let Some(r) = t.live.get_mut(&seq) {
                r.wb = Some(cycle);
            }
        }
    }

    /// The load at `seq` entered retire-time re-execution.
    #[inline]
    pub(crate) fn on_reexec(&mut self, seq: SeqNum) {
        if let Some(t) = &mut self.tracer {
            if let Some(r) = t.live.get_mut(&seq) {
                r.reexec = true;
            }
        }
    }

    /// The µop retired; for a load, `class` is its resolved
    /// communication class. Flushes the trace record.
    #[inline]
    pub(crate) fn on_retired(&mut self, cycle: u64, seq: SeqNum, class: Option<LoadSource>) {
        let Some(t) = &mut self.tracer else { return };
        if let Some(mut rec) = t.live.remove(&seq) {
            rec.load_class = class.map(class_label);
            t.flush_rec(seq, &rec, Some(cycle), None);
        }
    }

    /// The µop was squashed by a recovery. Flushes the trace record
    /// (squashed µops never report a retire).
    #[inline]
    pub(crate) fn on_squashed(&mut self, cycle: u64, seq: SeqNum) {
        let Some(t) = &mut self.tracer else { return };
        if let Some(rec) = t.live.remove(&seq) {
            t.flush_rec(seq, &rec, None, Some(cycle));
        }
    }

    // --- Sampler driver, called once per cycle from `step_cycle`.

    /// Whether a sample window ends at `cycle`.
    #[inline]
    pub(crate) fn sample_due(&self, cycle: u64) -> bool {
        matches!(&self.sampler, Some(s) if cycle > s.last_cycle
            && cycle.is_multiple_of(s.every))
    }

    /// Whether a final partial window remains at end of run.
    #[inline]
    pub(crate) fn sample_pending(&self, cycle: u64) -> bool {
        matches!(&self.sampler, Some(s) if cycle > s.last_cycle)
    }

    /// Closes the window ending at `cycle` from the cumulative stats and
    /// the end-of-window occupancy snapshot.
    pub(crate) fn take_sample(&mut self, cycle: u64, stats: &SimStats, occ: Occupancy) {
        let Some(s) = &mut self.sampler else { return };
        let window = cycle - s.last_cycle;
        debug_assert!(window > 0);
        let insns = stats.retired_insns - s.prev_insns;
        s.samples.push(Sample {
            cycle,
            insns,
            ipc: insns as f64 / window as f64,
            fetched: s.fetched,
            rob: occ.rob,
            iq: occ.iq,
            ready: occ.ready,
            sb: occ.sb,
            branch_mispredicts: stats.branch_mispredicts - s.prev_bmiss,
            mem_dep_mispredicts: stats.mem_dep_mispredicts - s.prev_mmiss,
            recoveries: stats.recoveries - s.prev_recov,
            squashed_uops: stats.squashed_uops - s.prev_squash,
        });
        s.last_cycle = cycle;
        s.fetched = 0;
        s.prev_insns = stats.retired_insns;
        s.prev_bmiss = stats.branch_mispredicts;
        s.prev_mmiss = stats.mem_dep_mispredicts;
        s.prev_recov = stats.recoveries;
        s.prev_squash = stats.squashed_uops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_probe_is_off() {
        let p = Probe::default();
        assert!(p.is_off());
        assert!(!p.sample_due(64));
        let r = p.finish();
        assert_eq!(r.trace_records, 0);
        assert!(r.trace_error.is_none());
        assert!(r.samples.is_empty());
    }

    #[test]
    fn sampler_windows_and_final_partial() {
        let mut p = Probe::default().with_samples(10);
        assert!(!p.sample_due(5));
        assert!(p.sample_due(10));
        let mut stats = SimStats { retired_insns: 25, ..SimStats::default() };
        p.take_sample(10, &stats, Occupancy { rob: 3, iq: 2, ready: 1, sb: 0 });
        assert!(!p.sample_due(10), "window already closed");
        // Final partial window at halt.
        stats.retired_insns = 30;
        assert!(p.sample_pending(14));
        p.take_sample(14, &stats, Occupancy::default());
        let r = p.finish();
        assert_eq!(r.samples.len(), 2);
        assert_eq!(r.samples[0].insns, 25);
        assert_eq!(r.samples[0].ipc, 2.5);
        assert_eq!(r.samples[0].rob, 3);
        assert_eq!(r.samples[1].cycle, 14);
        assert_eq!(r.samples[1].insns, 5);
        assert_eq!(r.samples[1].ipc, 1.25);
    }

    #[test]
    fn tracer_windows_on_rename_cycle() {
        let dir = std::env::temp_dir().join(format!("dmdp-probe-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("window.jsonl");
        let mut p = Probe::default().with_trace(&path, 10, Some(5)).unwrap();
        p.on_renamed(9, 1, 0, UopKind::Nop, 8); // before window
        p.on_renamed(10, 2, 1, UopKind::Nop, 9); // in window
        p.on_renamed(14, 3, 2, UopKind::Halt, 13); // in window
        p.on_renamed(15, 4, 3, UopKind::Nop, 14); // past window
        p.on_retired(11, 1, None);
        p.on_retired(12, 2, None);
        p.on_squashed(16, 3);
        p.on_retired(17, 4, None);
        let r = p.finish();
        assert!(r.trace_error.is_none());
        assert_eq!(r.trace_records, 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\":2") && lines[0].contains("\"retire\":12"));
        assert!(lines[1].contains("\"seq\":3") && lines[1].contains("\"squash\":16"));
        assert!(lines[1].contains("\"retire\":null"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
