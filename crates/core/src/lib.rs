#![warn(missing_docs)]
//! # dmdp-core
//!
//! The out-of-order core and store-load communication models of the DMDP
//! reproduction (Jin & Önder, *Dynamic Memory Dependence Predication*,
//! ISCA 2018).
//!
//! One cycle-level 8-wide pipeline — fetch, decode/µop-expansion, rename,
//! issue, execute, writeback, retire, commit — hosts four interchangeable
//! store-load communication mechanisms ([`CommModel`]):
//!
//! * **Baseline**: a conventional associatively-searched store queue with
//!   Store-Sets dependence prediction,
//! * **NoSQ**: store-queue-free memory cloaking with *delayed* execution
//!   of low-confidence loads,
//! * **DMDP** *(the paper's contribution)*: store-queue-free with dynamic
//!   **memory dependence predication** — low-confidence loads are
//!   expanded at rename into a cache access, a `CMP` of the predicted
//!   store's address register against the load's, and a pair of `CMOV`s
//!   selecting the correct value,
//! * **Perfect**: an oracle dependence predictor (limit study).
//!
//! The paper's supporting mechanisms are all here: address-generation
//! µops with dedicated address registers (no load queue), SSN tracking,
//! T-SSBF + Store Vulnerability Window verification at retire, load
//! re-execution gated on store-buffer drain, physical-register reference
//! counting with producer/consumer counters, biased confidence updates,
//! silent-store-aware predictor training, and partial-word forwarding
//! through the predicate.
//!
//! Entry point: [`Simulator`].
//!
//! ```
//! use dmdp_core::{CommModel, Simulator};
//! use dmdp_isa::asm;
//! let p = asm::assemble("li $1, 41\naddi $1, $1, 1\nhalt")?;
//! let r = Simulator::new(CommModel::Baseline).run(&p)?;
//! assert_eq!(r.stats.retired_insns, 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod batch;
mod config;
mod pipeline;
/// The static µop plan cache: per-PC decode plans built once per program
/// and shared across every pipeline running it (host-side speed only —
/// simulated timing is bit-identical with the cache on).
pub mod plan;
/// The pipeline probe layer: per-µop stage tracing and windowed
/// time-series sampling, zero-cost when no sink is attached.
pub mod probe;
/// The physical register file with the paper's producer/consumer
/// reference-counting release protocol (§IV-B a).
pub mod regfile;
mod rob;
mod sim;
/// The Store Register Buffer: SSN → (address, data) physical registers of
/// every in-flight store (paper Fig. 6).
pub mod srb;
mod stats;

pub use batch::{BatchRun, BatchSimulator};
pub use config::{CommModel, CoreConfig, SIM_VERSION};
pub use pipeline::{Pipeline, SimError};
pub use plan::{FetchClass, InsnPlan, PlanCache, PlanKind};
pub use probe::{Probe, ProbeReport, Sample};
pub use sim::{IntervalRun, SimReport, Simulator};
pub use stats::{LowConfBreakdown, PlanStats, SchedStats, SimStats};
