use std::sync::Arc;

use dmdp_isa::{Checkpoint, Program};

use crate::config::{CommModel, CoreConfig};
use crate::pipeline::{Pipeline, SimError};
use crate::plan::PlanCache;
use crate::probe::{Probe, ProbeReport};
use crate::stats::SimStats;

/// A complete simulation report: the configuration echo plus everything
/// measured.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Program name.
    pub program: String,
    /// Communication model simulated.
    pub model: CommModel,
    /// Collected statistics.
    pub stats: SimStats,
}

impl SimReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Cycles and instructions measured for one representative interval by
/// [`Simulator::run_from_checkpoint`], with the warmup window it
/// excluded reported alongside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalRun {
    /// Cycles spent warming microarchitectural state (excluded from the
    /// measurement).
    pub warmup_cycles: u64,
    /// Instructions retired during warmup.
    pub warmup_insns: u64,
    /// Cycles in the measurement window.
    pub cycles: u64,
    /// Instructions retired in the measurement window (may undershoot
    /// the requested length if the program halts inside the window, and
    /// overshoot by at most the retire width minus one).
    pub insns: u64,
}

/// The top-level simulator: configure once, run programs.
///
/// # Example
///
/// ```
/// use dmdp_core::{CommModel, Simulator};
/// use dmdp_isa::asm;
///
/// let program = asm::assemble_named(
///     "incr",
///     r#"
///         .data
///     x:  .word 5
///         .text
///         lui  $8, %hi(x)
///         ori  $8, $8, %lo(x)
///         lw   $9, 0($8)
///         addi $9, $9, 1
///         sw   $9, 0($8)
///         halt
///     "#,
/// )?;
/// let report = Simulator::new(CommModel::Dmdp).run(&program)?;
/// assert_eq!(report.stats.retired_insns, 6);
/// assert!(report.ipc() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: CoreConfig,
}

impl Simulator {
    /// A simulator with the paper's main configuration for `model`.
    pub fn new(model: CommModel) -> Simulator {
        Simulator { cfg: CoreConfig::new(model) }
    }

    /// A simulator with a custom configuration (alternative ROB sizes,
    /// widths, store buffers, consistency models — §VI-e/f/g).
    pub fn with_config(cfg: CoreConfig) -> Simulator {
        Simulator { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Runs `program` to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] if the program does not halt in
    /// `config().max_cycles` cycles.
    pub fn run(&self, program: &Program) -> Result<SimReport, SimError> {
        let pipeline = Pipeline::new(self.cfg.clone(), program);
        let stats = pipeline.run()?;
        Ok(SimReport { program: program.name().to_string(), model: self.cfg.comm, stats })
    }

    /// Runs a shared program image without deep-copying it into the
    /// pipeline — campaign runners fan one `Arc<Program>` out across
    /// every (model × variant) job of a workload.
    ///
    /// # Errors
    ///
    /// See [`Simulator::run`].
    pub fn run_shared(&self, program: &Arc<Program>) -> Result<SimReport, SimError> {
        let pipeline = Pipeline::new_shared(self.cfg.clone(), Arc::clone(program));
        let stats = pipeline.run()?;
        Ok(SimReport { program: program.name().to_string(), model: self.cfg.comm, stats })
    }

    /// Runs a shared program image with a prebuilt [`PlanCache`] —
    /// campaign runners build the cache once per workload and share it
    /// across every (model × variant) job, so `stats.plan.builds` stays
    /// zero on these runs (the build cost was paid elsewhere).
    ///
    /// # Errors
    ///
    /// See [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if `plans` was built for a different program image.
    pub fn run_planned(
        &self,
        program: &Arc<Program>,
        plans: &Arc<PlanCache>,
    ) -> Result<SimReport, SimError> {
        let pipeline =
            Pipeline::new_planned(self.cfg.clone(), Arc::clone(program), Arc::clone(plans));
        let stats = pipeline.run()?;
        Ok(SimReport { program: program.name().to_string(), model: self.cfg.comm, stats })
    }

    /// Fast-forwards to `ckpt` (architectural state restored directly,
    /// no cycles simulated), runs `warmup_insns` instructions to warm
    /// the cold microarchitectural state, then measures the next
    /// `measure_insns` instructions. Fewer may be measured if the
    /// program halts inside the window — the returned
    /// [`IntervalRun::insns`] is the count actually measured, so
    /// CPI-weighted recombination stays exact.
    ///
    /// For the Perfect model the functional oracle replays from the
    /// checkpoint and is bounded to the window (plus in-flight slack)
    /// instead of tracing the whole remaining run — the point of
    /// sampled simulation.
    ///
    /// # Errors
    ///
    /// See [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if `plans` was built for a different program image.
    pub fn run_from_checkpoint(
        &self,
        program: &Arc<Program>,
        plans: &Arc<PlanCache>,
        ckpt: &Checkpoint,
        warmup_insns: u64,
        measure_insns: u64,
    ) -> Result<IntervalRun, SimError> {
        // In-flight slack past the measurement end: younger loads can be
        // fetched (and oracle-predicated) before the last measured
        // instruction retires. One ROB of instructions would be enough;
        // a generous fixed margin costs only emulated instructions.
        const ORACLE_SLACK: u64 = 65_536;
        let budget = warmup_insns.saturating_add(measure_insns).saturating_add(ORACLE_SLACK);
        let oracle = Pipeline::build_oracle_from_checkpoint(&self.cfg, program, ckpt, budget);
        let mut pipeline = Pipeline::new_planned_with_oracle(
            self.cfg.clone(),
            Arc::clone(program),
            Arc::clone(plans),
            oracle,
        );
        pipeline.seed_checkpoint(ckpt);
        pipeline.run_to_retired(warmup_insns)?;
        let warmup_cycles = pipeline.cycles_so_far();
        let warmup_done = pipeline.retired_so_far();
        pipeline.run_to_retired(warmup_done.saturating_add(measure_insns))?;
        Ok(IntervalRun {
            warmup_cycles,
            warmup_insns: warmup_done,
            cycles: pipeline.cycles_so_far() - warmup_cycles,
            insns: pipeline.retired_so_far() - warmup_done,
        })
    }

    /// Runs `program` with probe sinks attached (stage-timeline tracer
    /// and/or time-series sampler), returning their collected artifacts
    /// alongside the report. The report's statistics are bit-identical
    /// to an unprobed [`Simulator::run`] — probes observe, never
    /// perturb.
    ///
    /// # Errors
    ///
    /// See [`Simulator::run`].
    pub fn run_probed(
        &self,
        program: &Program,
        probe: Probe,
    ) -> Result<(SimReport, ProbeReport), SimError> {
        let mut pipeline = Pipeline::new(self.cfg.clone(), program);
        pipeline.set_probe(probe);
        let (stats, probe_report) = pipeline.run_probed()?;
        let report =
            SimReport { program: program.name().to_string(), model: self.cfg.comm, stats };
        Ok((report, probe_report))
    }

    /// Runs with lock-step functional checking: every retired
    /// instruction is compared against the architectural emulator.
    ///
    /// # Errors
    ///
    /// See [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics on any architectural divergence (this is the test harness's
    /// primary correctness oracle).
    pub fn run_checked(&self, program: &Program) -> Result<SimReport, SimError> {
        let mut pipeline = Pipeline::new(self.cfg.clone(), program);
        pipeline.enable_cosim();
        let stats = pipeline.run()?;
        Ok(SimReport { program: program.name().to_string(), model: self.cfg.comm, stats })
    }
}
