//! The batched lockstep sweep engine.
//!
//! A configuration sweep runs N variants of the same (workload, model)
//! pair. Job-per-variant execution re-pays everything the variants share
//! — image decode, plan building, the Perfect model's functional oracle
//! pre-pass — N times, and walks every cycle of every variant one
//! `step_cycle` at a time. [`BatchSimulator`] instead drives the variant
//! lanes through one shared front-end:
//!
//! * the `Arc<Program>` image, the static [`PlanCache`] decode plans and
//!   the Perfect-model [`OracleTrace`] are built once and shared by every
//!   lane (fetch-class decode and plan lookup happen once per *static*
//!   instruction, not once per variant);
//! * per-variant timing state lives in per-lane [`Pipeline`]s advanced in
//!   chunked lockstep (structure-of-arrays driver bookkeeping: the
//!   per-lane cycle/completion vectors are packed separately from the
//!   boxed lane state, so the scheduling loop touches only hot scalars);
//! * each lane carries an **event-horizon fast-forward**: when a lane is
//!   quiescent — nothing ready to issue, fetch stalled or blocked, no
//!   probe/cosim attached — the driver computes the earliest future cycle
//!   at which *anything* can happen, steps **one** candidate cycle,
//!   confirms it was dead, and applies the remaining span by
//!   multiplication (see [`Pipeline::step_or_skip`]);
//! * **never-bound variant deduplication**: sizing variants (ROB, PRF,
//!   issue queue, store buffer) only diverge when a capacity guard
//!   actually fires. Every guard the four limits feed is monotone —
//!   rename admission (`rob.free() < worst`, `free_count() < 4`,
//!   `iq_free < worst`) and retire-store admission (`sb.is_full()`) — so
//!   a run that records its *demand* high-water (occupancy plus request
//!   at each guard evaluation) proves that any same-shaped variant
//!   agreeing on every guard — equal limit, or demand clearing both
//!   limits — performs the bit-identical execution. The
//!   batch runs the roomiest lane of each sizing group first and derives
//!   every covered variant's statistics without simulating it; only
//!   lanes below the binding knee run for real. (The lone limit-valued
//!   statistic, `min_free_pregs`, is shifted by the PRF-size delta.)
//!
//! Timing stays bit-identical to the unbatched path per variant
//! (`tests/golden_stats.rs` pins both). The solo [`crate::Simulator`]
//! path deliberately keeps the plain per-cycle loop: it is the reference
//! the golden digests were recorded against and the honest baseline for
//! the batched-vs-job-per-variant benchmark A/B.

use std::cmp::Reverse;
use std::sync::Arc;

use dmdp_isa::{OracleTrace, Program};

use crate::config::{CommModel, CoreConfig};
use crate::pipeline::{Pipeline, SimError, VerifyPhase};
use crate::plan::PlanCache;
use crate::stats::SimStats;

/// Cycles a lane advances per lockstep turn. Small enough that the
/// lanes' working sets rotate through the cache together, large enough
/// that the round-robin bookkeeping is noise.
const LOCKSTEP_CHUNK: u64 = 4096;

/// Minimum dead-span length (beyond the confirm step itself) worth the
/// stats snapshot a skip attempt costs.
const MIN_SKIP_SPAN: u64 = 2;

/// Resource-demand high-water marks, recorded at the exact program
/// points where the four sizing limits are consulted. A limit at least
/// as large as the recorded demand provably never fires its guard in
/// this execution, so the execution — and every statistic except
/// `min_free_pregs` — is independent of the limit's exact value.
#[derive(Debug, Default, Clone)]
pub(crate) struct HwDemand {
    /// `max(rob.len() + worst)` over rename admission checks: the ROB
    /// guard fires iff `rob_entries < len + worst`.
    rob: usize,
    /// `max(iq_len + worst)` over rename admission checks.
    iq: usize,
    /// `max(used_pregs + 4)` over rename admission checks: the PRF
    /// guard fires iff `free_count() < 4`, i.e. `phys_regs < used + 4`.
    prf: usize,
    /// `max(occupancy + 1)` over retire-store admission checks: the
    /// store buffer guard fires iff `occupancy >= capacity`.
    sb: usize,
}

impl HwDemand {
    /// Records one rename admission check.
    #[inline]
    pub(crate) fn note_rename(
        &mut self,
        rob_len: usize,
        iq_len: usize,
        used_pregs: usize,
        worst: usize,
    ) {
        self.rob = self.rob.max(rob_len + worst);
        self.iq = self.iq.max(iq_len + worst);
        self.prf = self.prf.max(used_pregs + 4);
    }

    /// Records one retire-store admission check.
    #[inline]
    pub(crate) fn note_store_retire(&mut self, sb_occupancy: usize) {
        self.sb = self.sb.max(sb_occupancy + 1);
    }

    /// Whether an execution with this demand profile behaves identically
    /// under `a`'s and `b`'s limits. Per dimension: equal limits make
    /// every guard evaluation agree trivially (same trajectory, same
    /// inputs); differing limits agree iff the demand clears both, so
    /// the guard never fires in either. Induction over cycles extends
    /// per-check agreement to whole-execution bit-identity.
    fn transfers(&self, a: &CoreConfig, b: &CoreConfig) -> bool {
        let dim = |dem: usize, a: usize, b: usize| a == b || (dem <= a && dem <= b);
        dim(self.rob, a.rob_entries, b.rob_entries)
            && dim(self.iq, a.iq_entries, b.iq_entries)
            && dim(self.prf, a.phys_regs, b.phys_regs)
            && dim(self.sb, a.store_buffer_entries, b.store_buffer_entries)
    }
}

/// Group key for never-bound deduplication: the full configuration
/// identity with the four sizing limits normalised away. Two lanes in
/// the same group differ *only* in capacities whose guards are monotone.
fn sizing_group_key(cfg: &CoreConfig) -> String {
    let normalized = CoreConfig {
        rob_entries: 0,
        phys_regs: 0,
        iq_entries: 0,
        store_buffer_entries: 0,
        ..cfg.clone()
    };
    normalized.identity()
}

/// Total sizing headroom — the wave scheduler runs the roomiest lane of
/// each group first, since its execution has the best chance of never
/// binding and thereby covering the rest of the group.
fn sizing_room(cfg: &CoreConfig) -> usize {
    cfg.rob_entries + cfg.phys_regs + cfg.iq_entries + cfg.store_buffer_entries
}

/// If `dem` (recorded by a completed run under `ref_cfg`) proves the
/// execution transfers to `cfg`'s limits, returns the variant's
/// bit-identical statistics: a copy of the reference stats with
/// `min_free_pregs` shifted by the PRF-size delta (the free count is
/// `phys_regs - used`, and the used high-water is shared).
fn derive_stats(
    dem: &HwDemand,
    ref_stats: &SimStats,
    ref_cfg: &CoreConfig,
    cfg: &CoreConfig,
) -> Option<SimStats> {
    if !dem.transfers(ref_cfg, cfg) {
        return None;
    }
    let mut stats = ref_stats.clone();
    stats.min_free_pregs = (stats.min_free_pregs + cfg.phys_regs)
        .checked_sub(ref_cfg.phys_regs)
        .expect("never-bound run keeps at least 4 registers free");
    Some(stats)
}

/// Steps many configuration variants of one planned program in lockstep
/// over a shared instruction stream.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use dmdp_core::{BatchSimulator, CommModel, CoreConfig, PlanCache, Simulator};
/// use dmdp_isa::asm;
///
/// let program = Arc::new(asm::assemble("li $1, 41\naddi $1, $1, 1\nhalt")?);
/// let plans = PlanCache::shared(&program);
/// let mut batch = BatchSimulator::new(Arc::clone(&program), Arc::clone(&plans));
/// batch.push(CoreConfig::new(CommModel::Dmdp));
/// batch.push(CoreConfig { rob_entries: 32, ..CoreConfig::new(CommModel::Dmdp) });
/// let results = batch.run();
/// assert_eq!(results.len(), 2);
/// // Bit-identical to the job-per-variant path.
/// let solo = Simulator::new(CommModel::Dmdp).run_planned(&program, &plans)?;
/// assert_eq!(results[0].as_ref().unwrap(), &solo.stats);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct BatchSimulator {
    program: Arc<Program>,
    plans: Arc<PlanCache>,
    cfgs: Vec<CoreConfig>,
}

impl BatchSimulator {
    /// An empty batch over one planned program image.
    ///
    /// # Panics
    ///
    /// Panics (on [`BatchSimulator::run`]) if `plans` was built for a
    /// different program.
    pub fn new(program: Arc<Program>, plans: Arc<PlanCache>) -> BatchSimulator {
        BatchSimulator { program, plans, cfgs: Vec::new() }
    }

    /// Adds one variant lane.
    pub fn push(&mut self, cfg: CoreConfig) {
        self.cfgs.push(cfg);
    }

    /// Number of variant lanes.
    pub fn len(&self) -> usize {
        self.cfgs.len()
    }

    /// Whether the batch has no lanes.
    pub fn is_empty(&self) -> bool {
        self.cfgs.is_empty()
    }

    /// Runs every lane to completion, returning per-lane results in push
    /// order. Each lane's [`SimStats`] are bit-identical to a solo
    /// [`crate::Simulator::run_planned`] of the same configuration.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or a failing oracle pre-pass,
    /// as [`Pipeline::new_planned`].
    pub fn run(self) -> Vec<Result<SimStats, SimError>> {
        self.run_detailed().results
    }

    /// [`BatchSimulator::run`] plus the batch-machinery tallies: how many
    /// lanes were derived without simulation and how much work the
    /// event-horizon fast-forward skipped. Service observability reads
    /// these; per-variant timing is identical either way.
    pub fn run_detailed(self) -> BatchRun {
        let BatchSimulator { program, plans, cfgs } = self;
        let keys: Vec<String> = cfgs.iter().map(sizing_group_key).collect();
        // Perfect-model lanes share one functional pre-pass per distinct
        // emulation bound (the trace depends on nothing else).
        let mut oracles: Vec<(u64, Arc<OracleTrace>)> = Vec::new();
        let mut results: Vec<Option<Result<SimStats, SimError>>> =
            (0..cfgs.len()).map(|_| None).collect();
        // Completed live runs usable as derivation references.
        let mut refs: Vec<(usize, HwDemand, SimStats)> = Vec::new();
        let mut derived = 0usize;
        let mut ff_spans = 0u64;
        let mut ff_cycles = 0u64;
        let mut remaining: Vec<usize> = (0..cfgs.len()).collect();
        while !remaining.is_empty() {
            // Derive every lane some completed reference already covers.
            remaining.retain(|&i| {
                for (r, dem, stats) in &refs {
                    if keys[*r] == keys[i] {
                        if let Some(s) = derive_stats(dem, stats, &cfgs[*r], &cfgs[i]) {
                            results[i] = Some(Ok(s));
                            derived += 1;
                            return false;
                        }
                    }
                }
                true
            });
            // Wave: the roomiest remaining lane of each sizing group.
            let mut wave: Vec<usize> = Vec::new();
            for &i in &remaining {
                match wave.iter().position(|&w| keys[w] == keys[i]) {
                    Some(p) if sizing_room(&cfgs[i]) > sizing_room(&cfgs[wave[p]]) => wave[p] = i,
                    Some(_) => {}
                    None => wave.push(i),
                }
            }
            if wave.is_empty() {
                break;
            }
            remaining.retain(|i| !wave.contains(i));
            let mut lanes: Vec<(usize, Box<Pipeline>)> = Vec::with_capacity(wave.len());
            for &i in &wave {
                let cfg = cfgs[i].clone();
                let oracle = match cfg.comm {
                    CommModel::Perfect => {
                        match oracles.iter().find(|(bound, _)| *bound == cfg.max_cycles) {
                            Some((_, trace)) => Some(Arc::clone(trace)),
                            None => {
                                let trace = Pipeline::build_oracle(&cfg, &program)
                                    .expect("perfect model builds a trace");
                                oracles.push((cfg.max_cycles, Arc::clone(&trace)));
                                Some(trace)
                            }
                        }
                    }
                    _ => None,
                };
                lanes.push((
                    i,
                    Box::new(Pipeline::new_planned_with_oracle(
                        cfg,
                        Arc::clone(&program),
                        Arc::clone(&plans),
                        oracle,
                    )),
                ));
            }
            // Structure-of-arrays driver state: the lockstep loop reads
            // and writes the flat index vector; the boxed lane state is
            // touched only inside its own turn.
            let mut live: Vec<usize> = (0..lanes.len()).collect();
            while !live.is_empty() {
                for &l in &live {
                    let (idx, pipeline) = &mut lanes[l];
                    if let Some(outcome) = advance_lane(pipeline, LOCKSTEP_CHUNK) {
                        if let Ok(stats) = &outcome {
                            refs.push((*idx, pipeline.hw.clone(), stats.clone()));
                        }
                        ff_spans += pipeline.ff_spans;
                        ff_cycles += pipeline.ff_cycles;
                        results[*idx] = Some(outcome);
                    }
                }
                live.retain(|&l| results[lanes[l].0].is_none());
            }
        }
        BatchRun {
            results: results.into_iter().map(|r| r.expect("every lane finished")).collect(),
            derived,
            ff_spans,
            ff_cycles,
        }
    }
}

/// The outcome of [`BatchSimulator::run_detailed`]: per-lane results in
/// push order plus tallies of what the batch machinery saved.
#[derive(Debug)]
pub struct BatchRun {
    /// Per-lane results, in the order the lanes were pushed.
    pub results: Vec<Result<SimStats, SimError>>,
    /// Lanes whose statistics were derived from a never-bound reference
    /// run instead of being simulated.
    pub derived: usize,
    /// Confirmed-dead spans applied by the event-horizon fast-forward.
    pub ff_spans: u64,
    /// Simulated cycles covered by those spans without stepping them.
    pub ff_cycles: u64,
}

/// Advances one lane by up to `chunk` simulated cycles (fast-forwarded
/// spans count). Returns the lane's final result when it completes,
/// mirroring `Pipeline::run_loop` exactly: the cycle-limit check
/// precedes every step, and finalization happens once at halt.
fn advance_lane(p: &mut Pipeline, chunk: u64) -> Option<Result<SimStats, SimError>> {
    let turn_end = p.cycle.saturating_add(chunk);
    while !p.halted {
        if p.cycle >= p.cfg.max_cycles {
            return Some(Err(SimError::CycleLimit { limit: p.cfg.max_cycles }));
        }
        if p.cycle >= turn_end {
            return None;
        }
        p.step_or_skip();
    }
    p.finalize();
    Some(Ok(std::mem::take(&mut p.stats)))
}

/// A structural fingerprint of everything the dead-cycle confirm step
/// must prove unchanged and that [`SimStats`] equality cannot see (the
/// store buffer's queued/in-flight split, the front-end cursor, the SSN
/// cursors, the scheduler's registration counts).
#[derive(Debug, PartialEq, Eq)]
struct QuiescenceFp {
    rob_len: usize,
    rob_next: u64,
    decode_len: usize,
    iq_len: usize,
    ready: usize,
    delayed_ready: usize,
    retry: usize,
    calendar: usize,
    seq_waiters: usize,
    ssn_waiters: usize,
    sb_occupancy: usize,
    sb_queued: usize,
    ssns: (u32, u32, u32),
    fetch_pc: dmdp_isa::Pc,
    fetch_stopped: bool,
    verify: Option<VerifyPhase>,
    next_load_idx: u64,
    last_commit_addr: Option<dmdp_isa::Addr>,
}

impl Pipeline {
    /// Whether this lane is even a candidate for fast-forwarding: no
    /// observer that sees individual cycles (probe sinks, cosim), no
    /// cycle-periodic coherence injection, and nothing ready to issue.
    fn quiescence_candidate(&self) -> bool {
        self.probe.is_off()
            && self.cosim.is_none()
            && self.cfg.coherence_invalidate_every.is_none()
            && self.sched.ready.is_empty()
            && self.sched.delayed_ready.is_empty()
            && self.retry.is_empty()
    }

    /// The earliest future cycle at which any stage can do something new,
    /// assuming the machine is dead now: the completion calendar's head,
    /// the store buffer's next issue/completion, an in-flight verify
    /// read finishing, or the fetch redirect penalty expiring. Returns
    /// `self.cycle` (no skippable span) when fetch could act this cycle.
    /// Capped at `max_cycles`: a truly event-free livelocked lane
    /// fast-forwards straight to its cycle-limit abort.
    fn quiescence_horizon(&self) -> u64 {
        let mut horizon = u64::MAX;
        if let Some(&Reverse((done, _, _))) = self.sched.calendar.peek() {
            horizon = horizon.min(done);
        }
        if let Some(event) = self.sb.next_event_cycle(self.cycle) {
            horizon = horizon.min(event);
        }
        if let Some(v) = &self.verify {
            if let VerifyPhase::Reading(done) = v.phase {
                horizon = horizon.min(done);
            }
        }
        if !self.fetch_stopped && self.decode_q.len() < 3 * self.cfg.width {
            if self.cycle < self.fetch_stall_until {
                horizon = horizon.min(self.fetch_stall_until);
            } else {
                return self.cycle; // fetch is active right now
            }
        }
        horizon.min(self.cfg.max_cycles)
    }

    /// Cheap sufficient test that the rename stage cannot make progress
    /// this cycle (its gates also depend on the per-instruction µop
    /// count, so this under-approximates; the confirm step catches the
    /// rest).
    fn rename_blocked(&self) -> bool {
        self.decode_q.is_empty()
            || self.rob.free() == 0
            || self.rf.free_count() < 4
            || self.sched.iq_free(self.cfg.iq_entries) == 0
    }

    fn quiescence_fp(&self) -> QuiescenceFp {
        QuiescenceFp {
            rob_len: self.rob.len(),
            rob_next: self.rob.next_seq(),
            decode_len: self.decode_q.len(),
            iq_len: self.sched.iq_len,
            ready: self.sched.ready.len(),
            delayed_ready: self.sched.delayed_ready.len(),
            retry: self.retry.len(),
            calendar: self.sched.calendar.len(),
            seq_waiters: self.sched.seq_waiters.len(),
            ssn_waiters: self.sched.ssn_waiters.len(),
            sb_occupancy: self.sb.occupancy(),
            sb_queued: self.sb.queued_len(),
            ssns: (self.ssn_rename, self.ssn_retire, self.ssn_commit),
            fetch_pc: self.fetch_pc,
            fetch_stopped: self.fetch_stopped,
            verify: self.verify.as_ref().map(|v| v.phase),
            next_load_idx: self.next_load_idx,
            last_commit_addr: self.last_commit_addr,
        }
    }

    /// One simulated cycle, with the event-horizon fast-forward: when the
    /// lane looks quiescent and the next event is far enough away, step
    /// one candidate cycle, confirm it was dead (full-stats equality
    /// modulo the two retire-stall counters, structural fingerprint
    /// unchanged), and apply the remaining dead span by multiplication —
    /// bit-exact, because a confirmed-dead cycle's behaviour is
    /// cycle-independent until the horizon by construction of
    /// [`Pipeline::quiescence_horizon`].
    pub(crate) fn step_or_skip(&mut self) {
        if self.quiescence_candidate() && self.rename_blocked() {
            let horizon = self.quiescence_horizon();
            if horizon > self.cycle + MIN_SKIP_SPAN {
                return self.step_confirming_skip(horizon);
            }
        }
        self.step_cycle();
    }

    fn step_confirming_skip(&mut self, horizon: u64) {
        let stats_before = self.stats.clone();
        let fp_before = self.quiescence_fp();
        self.step_cycle();
        if self.halted {
            return;
        }
        // The only statistics a dead cycle may move are the two
        // retire-stall counters, by exactly the same amount every cycle
        // of the span (their paths read no cycle number).
        let d_sb = self.stats.sb_full_stall_cycles - stats_before.sb_full_stall_cycles;
        let d_reexec = self.stats.reexec_stall_cycles - stats_before.reexec_stall_cycles;
        let mut stats_after = self.stats.clone();
        stats_after.sb_full_stall_cycles = stats_before.sb_full_stall_cycles;
        stats_after.reexec_stall_cycles = stats_before.reexec_stall_cycles;
        if stats_after == stats_before && self.quiescence_fp() == fp_before {
            let span = horizon.saturating_sub(self.cycle);
            self.cycle += span;
            self.stats.sb_full_stall_cycles += span * d_sb;
            self.stats.reexec_stall_cycles += span * d_reexec;
            self.ff_spans += 1;
            self.ff_cycles += span;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn planned(src: &str) -> (Arc<Program>, Arc<PlanCache>) {
        let program = Arc::new(dmdp_isa::asm::assemble(src).unwrap());
        let plans = PlanCache::shared(&program);
        (program, plans)
    }

    /// A store-heavy loop with a cache-missing stride: plenty of
    /// ROB-full and SB-drain dead cycles for the fast-forward to chew.
    const STRIDER: &str = r#"
            .data
    buf:    .space 8192
            .text
            lui  $8, %hi(buf)
            ori  $8, $8, %lo(buf)
            li   $4, 0
            li   $5, 60
    loop:
            andi $6, $4, 31
            sll  $6, $6, 6
            add  $6, $6, $8
            lw   $9, 0($6)
            add  $9, $9, $4
            sw   $9, 0($6)
            sw   $4, 4($6)
            addi $4, $4, 1
            bne  $4, $5, loop
            halt
        "#;

    #[test]
    fn batch_matches_solo_for_every_model_and_patchy_variants() {
        let (program, plans) = planned(STRIDER);
        for model in CommModel::ALL {
            let variants = [
                CoreConfig::new(model),
                CoreConfig { rob_entries: 32, ..CoreConfig::new(model) },
                CoreConfig { store_buffer_entries: 2, ..CoreConfig::new(model) },
                CoreConfig {
                    consistency: dmdp_mem::Consistency::Rmo,
                    ..CoreConfig::new(model)
                },
                CoreConfig { width: 4, phys_regs: 96, ..CoreConfig::new(model) },
            ];
            let mut batch = BatchSimulator::new(Arc::clone(&program), Arc::clone(&plans));
            for cfg in &variants {
                batch.push(cfg.clone());
            }
            let results = batch.run();
            assert_eq!(results.len(), variants.len());
            for (cfg, got) in variants.iter().zip(&results) {
                let solo = Simulator::with_config(cfg.clone())
                    .run_planned(&program, &plans)
                    .expect("solo run halts");
                assert_eq!(
                    got.as_ref().expect("batch lane halts"),
                    &solo.stats,
                    "batched lane diverged from solo ({} rob={} sb={} {:?})",
                    model.name(),
                    cfg.rob_entries,
                    cfg.store_buffer_entries,
                    cfg.consistency
                );
            }
        }
    }

    /// Upsized sizing variants whose limits never bind must be derived
    /// from the reference run — and still match their solo runs bit for
    /// bit, including the PRF-shifted `min_free_pregs`.
    #[test]
    fn never_bound_variants_are_derived_and_match_solo() {
        // Straight-line code: a sustained loop fills any ROB during a
        // miss, but a short block leaves every default-sized resource
        // far below its limit.
        let (program, plans) = planned(
            "li $1, 7\nli $2, 35\nadd $3, $1, $2\nsw $3, 0($0)\nlw $4, 0($0)\nadd $5, $4, $1\nsw $5, 4($0)\nhalt",
        );
        let variants = [
            CoreConfig::new(CommModel::Dmdp),
            CoreConfig { rob_entries: 512, ..CoreConfig::new(CommModel::Dmdp) },
            CoreConfig { phys_regs: 512, ..CoreConfig::new(CommModel::Dmdp) },
            CoreConfig {
                rob_entries: 384,
                phys_regs: 448,
                store_buffer_entries: 64,
                iq_entries: 128,
                ..CoreConfig::new(CommModel::Dmdp)
            },
        ];
        let mut batch = BatchSimulator::new(Arc::clone(&program), Arc::clone(&plans));
        for cfg in &variants {
            batch.push(cfg.clone());
        }
        let run = batch.run_detailed();
        let results = run.results;
        // The block never fills any default-sized resource, so the
        // roomiest lane's single live run covers every other lane.
        assert_eq!(run.derived, 3, "expected all other lanes to be derived");
        for (cfg, got) in variants.iter().zip(&results) {
            let solo = Simulator::with_config(cfg.clone())
                .run_planned(&program, &plans)
                .expect("solo run halts");
            assert_eq!(
                got.as_ref().expect("batch lane halts"),
                &solo.stats,
                "derived lane diverged from solo (rob={} prf={})",
                cfg.rob_entries,
                cfg.phys_regs,
            );
        }
    }

    /// Downsized variants that do bind must run live and diverge.
    #[test]
    fn binding_variants_run_live() {
        let (program, plans) = planned(STRIDER);
        let mut batch = BatchSimulator::new(Arc::clone(&program), Arc::clone(&plans));
        batch.push(CoreConfig::new(CommModel::Dmdp));
        batch.push(CoreConfig { store_buffer_entries: 1, ..CoreConfig::new(CommModel::Dmdp) });
        let run = batch.run_detailed();
        let results = run.results;
        assert_eq!(run.derived, 0, "a binding variant must not be derived");
        assert!(
            run.ff_spans > 0 && run.ff_cycles >= run.ff_spans,
            "the store-heavy strider must exercise the fast-forward ({} spans)",
            run.ff_spans
        );
        assert_ne!(
            results[0].as_ref().unwrap().cycles,
            results[1].as_ref().unwrap().cycles,
            "sb=1 must time differently from sb=16"
        );
    }

    #[test]
    fn cycle_limit_lane_reports_the_error_others_finish() {
        let (program, plans) = planned(STRIDER);
        let mut batch = BatchSimulator::new(Arc::clone(&program), Arc::clone(&plans));
        batch.push(CoreConfig::new(CommModel::Dmdp));
        batch.push(CoreConfig { max_cycles: 10, ..CoreConfig::new(CommModel::Dmdp) });
        let results = batch.run();
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(SimError::CycleLimit { limit: 10 }));
    }

    #[test]
    fn perfect_lanes_share_one_oracle_pass() {
        let (program, plans) = planned(STRIDER);
        let mut batch = BatchSimulator::new(Arc::clone(&program), Arc::clone(&plans));
        for rob in [256, 128, 64] {
            batch.push(CoreConfig { rob_entries: rob, ..CoreConfig::new(CommModel::Perfect) });
        }
        let results = batch.run();
        for (i, r) in results.iter().enumerate() {
            let stats = r.as_ref().expect("halts");
            assert!(stats.retired_insns > 0, "lane {i} retired nothing");
        }
        // Distinct ROB sizes must still time differently.
        assert_ne!(
            results[0].as_ref().unwrap().cycles,
            results[2].as_ref().unwrap().cycles
        );
    }

    #[test]
    fn empty_batch_runs_to_nothing() {
        let (program, plans) = planned("halt");
        let batch = BatchSimulator::new(program, plans);
        assert!(batch.is_empty());
        assert_eq!(batch.run().len(), 0);
    }
}

