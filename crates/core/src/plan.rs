//! The static µop plan cache (host-performance layer).
//!
//! Every dynamic instruction used to re-pay decode work fixed at program
//! load: `fetch_stage` re-matched `Op` variants to classify branches, and
//! rename re-cracked the same static instruction into its AGI/access µop
//! templates on every dynamic instance. The plan cache amortises that the
//! way a real decoded-µop cache does: one immutable [`InsnPlan`] per
//! static PC, built once per [`Program`] and shared (`Arc`) by every
//! pipeline running that image — campaign runners fan a single
//! [`PlanCache`] out across all (model × variant) jobs of a workload.
//!
//! The cache is a pure host-side optimisation: it precomputes exactly
//! what the `Op`-matching paths computed, so simulated timing is
//! bit-identical with it on (`tests/golden_stats.rs` gates this; the
//! exhaustive plan-vs-legacy equivalence lives in `tests/plan_cache.rs`).

use std::sync::Arc;

use dmdp_isa::uop::{self, Uop};
use dmdp_isa::{Insn, MemWidth, Op, Pc, Program, Reg};

/// Fetch-time classification of a static instruction: everything the
/// fetch stage needs to follow predicted control flow without touching
/// the `Op` enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchClass {
    /// Falls through to `pc + 1`.
    Seq,
    /// Conditional branch with its static target.
    CondBranch {
        /// Taken-path target.
        target: Pc,
    },
    /// Direct jump (`j`) — resolves at fetch, never mispredicts.
    Jump {
        /// Jump target.
        target: Pc,
    },
    /// Direct call (`jal`): pushes `pc + 1` on the RAS, then jumps.
    JumpLink {
        /// Call target.
        target: Pc,
    },
    /// Indirect jump (`jr`/`jalr`), predicted through the RAS/BTB.
    JumpInd {
        /// `jalr`: pushes the return address before predicting.
        link: bool,
    },
    /// Stops fetch.
    Halt,
}

/// Rename-time classification with the operands rename reads, so
/// `rename_insn`/`plan_width` never re-match `Op` variants or re-run the
/// µop expansion.
#[derive(Debug, Clone, Copy)]
pub enum PlanKind {
    /// Single-µop instruction, its decoded µop precomputed.
    Simple(Uop),
    /// Load: expands to `AGI` + access µop (+ a predication group under
    /// DMDP, decided dynamically at rename).
    Load {
        /// Access width.
        width: MemWidth,
        /// Sub-word sign extension.
        signed: bool,
        /// Destination register, `None` for a load to `$0`.
        rd: Option<Reg>,
        /// Address base register.
        base: Reg,
        /// Address displacement.
        imm: i32,
    },
    /// Store: expands to `AGI` + store placeholder µop.
    Store {
        /// Access width.
        width: MemWidth,
        /// Data register (may be `$0`).
        data: Reg,
        /// Address base register.
        base: Reg,
        /// Address displacement.
        imm: i32,
    },
}

/// The immutable decode plan of one static instruction.
#[derive(Debug, Clone, Copy)]
pub struct InsnPlan {
    /// Fetch-stage control-flow class.
    pub fetch: FetchClass,
    /// Rename-stage expansion class.
    pub kind: PlanKind,
}

impl InsnPlan {
    /// Builds the plan for one instruction (the one-time cost the cache
    /// amortises over every dynamic instance).
    pub fn build(insn: Insn) -> InsnPlan {
        let fetch = match insn.op {
            Op::Branch(_) => FetchClass::CondBranch { target: insn.imm as Pc },
            Op::Jump => FetchClass::Jump { target: insn.imm as Pc },
            Op::JumpAndLink => FetchClass::JumpLink { target: insn.imm as Pc },
            Op::JumpReg => FetchClass::JumpInd { link: false },
            Op::JumpAndLinkReg => FetchClass::JumpInd { link: true },
            Op::Halt => FetchClass::Halt,
            _ => FetchClass::Seq,
        };
        let kind = match insn.op {
            Op::Load { width, signed } => PlanKind::Load {
                width,
                signed,
                rd: (!insn.rd.is_zero()).then_some(insn.rd),
                base: insn.rs,
                imm: insn.imm,
            },
            Op::Store { width } => {
                PlanKind::Store { width, data: insn.rt, base: insn.rs, imm: insn.imm }
            }
            _ => PlanKind::Simple(uop::expand(insn).as_slice()[0]),
        };
        InsnPlan { fetch, kind }
    }

    /// Whether fetch must stop at this instruction.
    #[inline]
    pub fn is_halt(&self) -> bool {
        matches!(self.fetch, FetchClass::Halt)
    }

    /// The static µop count of the expansion (DMDP predication may widen
    /// a load to 5 dynamically; that decision stays in rename).
    #[inline]
    pub fn min_width(&self) -> usize {
        match self.kind {
            PlanKind::Simple(_) => 1,
            PlanKind::Load { .. } | PlanKind::Store { .. } => 2,
        }
    }
}

/// Per-[`Program`] plan table: one [`InsnPlan`] per static PC, addressed
/// exactly like [`Program::fetch`] (instruction "addresses" are text
/// indices).
#[derive(Debug)]
pub struct PlanCache {
    plans: Box<[InsnPlan]>,
}

impl PlanCache {
    /// Builds the full table eagerly (plans are tiny; every PC of a
    /// halting program is decoded at least once anyway).
    pub fn build(program: &Program) -> PlanCache {
        PlanCache { plans: program.text().iter().map(|&i| InsnPlan::build(i)).collect() }
    }

    /// [`PlanCache::build`] wrapped for sharing across pipelines.
    pub fn shared(program: &Program) -> Arc<PlanCache> {
        Arc::new(PlanCache::build(program))
    }

    /// The plan at `pc`, or `None` past the end of text (wrong-path
    /// fetch).
    #[inline]
    pub fn get(&self, pc: Pc) -> Option<&InsnPlan> {
        self.plans.get(pc as usize)
    }

    /// The plan at a PC known to be inside the text segment (anything
    /// the fetch stage enqueued).
    ///
    /// # Panics
    ///
    /// Panics if `pc` is outside the text segment.
    #[inline]
    pub fn plan(&self, pc: Pc) -> &InsnPlan {
        &self.plans[pc as usize]
    }

    /// Number of static plans (== program length).
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the program had no text.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdp_isa::uop::UopKind;

    #[test]
    fn plans_cover_every_pc_and_classify_memory_ops() {
        let p = dmdp_isa::asm::assemble(
            r#"
                .data
            x:  .word 7
                .text
                lui  $8, %hi(x)
                ori  $8, $8, %lo(x)
                lw   $9, 0($8)
                sb   $9, 2($8)
                beq  $9, $0, 6
                j    6
                halt
            "#,
        )
        .unwrap();
        let cache = PlanCache::build(&p);
        assert_eq!(cache.len(), p.len());
        assert!(!cache.is_empty());
        assert!(cache.get(p.len() as Pc).is_none());

        let lw = cache.plan(2);
        assert_eq!(lw.fetch, FetchClass::Seq);
        assert_eq!(lw.min_width(), 2);
        match lw.kind {
            PlanKind::Load { width, rd, base, imm, .. } => {
                assert_eq!(width, MemWidth::Word);
                assert_eq!(rd, Some(Reg::new(9)));
                assert_eq!(base, Reg::new(8));
                assert_eq!(imm, 0);
            }
            other => panic!("lw plan is {other:?}"),
        }
        match cache.plan(3).kind {
            PlanKind::Store { width, data, base, imm } => {
                assert_eq!(width, MemWidth::Byte);
                assert_eq!(data, Reg::new(9));
                assert_eq!(base, Reg::new(8));
                assert_eq!(imm, 2);
            }
            other => panic!("sb plan is {other:?}"),
        }
        assert_eq!(cache.plan(4).fetch, FetchClass::CondBranch { target: 6 });
        assert_eq!(cache.plan(5).fetch, FetchClass::Jump { target: 6 });
        assert!(cache.plan(6).is_halt());
        match cache.plan(0).kind {
            PlanKind::Simple(u) => assert!(matches!(u.kind, UopKind::Alu(_))),
            other => panic!("lui plan is {other:?}"),
        }
    }

    #[test]
    fn load_to_zero_register_has_no_dest() {
        let p = dmdp_isa::asm::assemble("lw $0, 0($1)\nhalt").unwrap();
        match PlanCache::build(&p).plan(0).kind {
            PlanKind::Load { rd, .. } => assert_eq!(rd, None),
            other => panic!("{other:?}"),
        }
    }
}
