//! The baseline machine's store queue: an age-ordered list of in-flight
//! stores supporting associative search (the structure the
//! store-queue-free designs eliminate) and memory-ordering violation
//! detection.

use dmdp_isa::bab::{bab, extract_from_word, overlaps, place_in_word, word_addr};
use dmdp_isa::{Addr, MemWidth, Word};
use dmdp_mem::StoreBuffer;

use crate::rob::SeqNum;

use super::Pipeline;

/// Result of a load's store-queue (and store-buffer) search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SearchResult {
    /// Forward from the matching store.
    Forward {
        /// The store's SSN (for violation bookkeeping).
        ssn: u32,
        /// The extracted, extended load value.
        value: Word,
    },
    /// An overlapping store does not cover the load (or hasn't produced
    /// its data yet): retry until it leaves the window.
    Retry,
    /// No overlapping store: read the cache.
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct SqEntry {
    seq: SeqNum,
    ssn: u32,
    /// Filled when the store µop executes.
    addr: Option<Addr>,
    bab: u8,
    word_value: Word,
}

/// The baseline store queue (unbounded, per paper §V).
#[derive(Debug, Default)]
pub(crate) struct StoreQueue {
    entries: Vec<SqEntry>,
}

impl StoreQueue {
    pub(crate) fn new() -> StoreQueue {
        StoreQueue::default()
    }

    /// Allocates an entry at store rename (address unknown).
    pub(crate) fn allocate(&mut self, seq: SeqNum, ssn: u32) {
        self.entries.push(SqEntry { seq, ssn, addr: None, bab: 0, word_value: 0 });
    }

    /// Fills address and data when the store µop executes.
    pub(crate) fn fill(&mut self, seq: SeqNum, addr: Addr, width: MemWidth, value: Word) {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.seq == seq)
            .expect("filling a live SQ entry");
        e.addr = Some(word_addr(addr));
        e.bab = bab(addr, width);
        e.word_value = place_in_word(addr, width, value);
    }

    /// Removes the entry when the store retires (moves to the store
    /// buffer) or is squashed.
    pub(crate) fn remove(&mut self, seq: SeqNum) {
        self.entries.retain(|e| e.seq != seq);
    }

    /// Searches for the youngest store older than `load_seq` overlapping
    /// the access; falls back to the (already retired) store buffer.
    pub(crate) fn search(
        &self,
        load_seq: SeqNum,
        addr: Addr,
        width: MemWidth,
        signed: bool,
        sb: &StoreBuffer,
    ) -> SearchResult {
        let w = word_addr(addr);
        let lb = bab(addr, width);
        // Youngest older overlapping SQ entry with a known address.
        let hit = self
            .entries
            .iter()
            .filter(|e| e.seq < load_seq)
            .filter(|e| e.addr == Some(w) && overlaps(e.bab, lb))
            .max_by_key(|e| e.seq);
        if let Some(e) = hit {
            if e.bab & lb == lb {
                return SearchResult::Forward {
                    ssn: e.ssn,
                    value: extract_from_word(e.word_value, addr, width, signed),
                };
            }
            return SearchResult::Retry;
        }
        // Retired-but-uncommitted stores.
        let sb_hit = sb
            .queued()
            .filter(|e| e.word_addr == w && overlaps(e.bab, lb))
            .max_by_key(|e| e.ssn);
        if let Some(e) = sb_hit {
            if e.bab & lb == lb {
                return SearchResult::Forward {
                    ssn: e.ssn,
                    value: extract_from_word(e.word_value, addr, width, signed),
                };
            }
            return SearchResult::Retry;
        }
        SearchResult::Miss
    }
}

impl Pipeline {
    /// Memory-ordering violation check run when a baseline store µop
    /// executes: any younger, already-executed load overlapping the store
    /// that did not forward from this store (or a younger one) read a
    /// stale value. Returns a recovery from the oldest violating load.
    pub(crate) fn check_violation(
        &mut self,
        store_seq: SeqNum,
    ) -> Option<super::exec::RecoveryReq> {
        let (store_ssn, store_w, store_bab, store_pc) = {
            let e = self.rob.get(store_seq)?;
            let info = e.store?;
            let sq = self.sq.entries.iter().find(|s| s.seq == store_seq)?;
            (info.ssn, sq.addr?, sq.bab, e.pc)
        };
        let mut victim: Option<(SeqNum, u32, dmdp_isa::Pc)> = None;
        for e in self.rob.iter() {
            if e.seq <= store_seq {
                continue;
            }
            let Some(l) = e.load else { continue };
            if !l.executed {
                continue;
            }
            if word_addr(l.addr) != store_w {
                continue;
            }
            let lb = bab(l.addr & !(l.width.bytes() - 1), l.width);
            if !overlaps(store_bab, lb) {
                continue;
            }
            if l.forwarded_from.is_some_and(|f| f >= store_ssn) {
                continue; // got the value from this store or a younger one
            }
            if victim.is_none_or(|(s, _, _)| e.seq < s) {
                victim = Some((e.seq, e.pc, e.pc));
            }
        }
        let (load_seq, load_pc, _) = victim?;
        self.ss.violation(load_pc, store_pc);
        // Squash from the start of the load's instruction group.
        let mut from = load_seq;
        while from > 0 {
            match self.rob.get(from) {
                Some(e) if e.first_of_insn => break,
                _ => from -= 1,
            }
        }
        Some(super::exec::RecoveryReq {
            from,
            refetch: load_pc,
            is_branch: false,
            history_fix: None,
        })
    }
}
