//! Rename/dispatch: µop expansion, register renaming, and the
//! model-specific load treatment — cloaking, delaying, or predication
//! insertion (paper Figs. 7 and 8).

use std::sync::Arc;

use dmdp_energy::Event;
use dmdp_isa::uop::{Uop, UopKind};
use dmdp_isa::{MemWidth, Reg};

use crate::config::CommModel;
use crate::plan::{InsnPlan, PlanKind};
use crate::regfile::PregId;
use crate::rob::{LoadInfo, LoadKind, StoreInfo, UopEntry, UopState};
use crate::srb::SrbEntry;

use super::{Fetched, Pipeline};

/// How a load will obtain its value, decided at rename.
enum LoadPlan {
    Direct,
    Cloak { ssn: u32 },
    /// NoSQ partial-word bypassing through a predicted shift-and-mask µop.
    ShiftCloak { ssn: u32, store_bab: u8, load_lo2: u8 },
    Delayed { ssn: u32, low_conf: bool },
    Predicate { ssn: u32, low_conf: bool },
    Oracle { ssn: u32, value: u32 },
}

impl Pipeline {
    /// Renames up to `width` µops from the decode queue, stopping at any
    /// resource shortage (ROB, physical registers, issue queue).
    pub(crate) fn rename_stage(&mut self) {
        let plans = Arc::clone(&self.plans);
        let mut budget = self.cfg.width;
        while budget > 0 {
            let Some(front) = self.decode_q.front() else { break };
            let plan = *plans.plan(front.pc);
            let worst = self.plan_width(front, &plan);
            if worst > budget && budget < self.cfg.width {
                break; // let the group start on a fresh cycle
            }
            self.hw.note_rename(
                self.rob.len(),
                self.sched.iq_len,
                self.cfg.phys_regs - self.rf.free_count(),
                worst,
            );
            if self.rob.free() < worst
                || self.rf.free_count() < 4
                || self.sched.iq_free(self.cfg.iq_entries) < worst
            {
                break;
            }
            let f = self.decode_q.pop_front().expect("peeked entry");
            let used = self.rename_insn(&f, &plan);
            budget = budget.saturating_sub(used);
            if plan.is_halt() {
                break;
            }
        }
    }

    fn rename_insn(&mut self, f: &Fetched, plan: &InsnPlan) -> usize {
        match plan.kind {
            PlanKind::Load { width, signed, rd, base, imm } => {
                self.rename_load(f, width, signed, rd, base, imm)
            }
            PlanKind::Store { width, data, base, imm } => {
                self.rename_store(f, width, data, base, imm)
            }
            PlanKind::Simple(u) => self.rename_simple(f, u),
        }
    }

    /// Blank entry with per-µop bookkeeping filled in.
    fn make_entry(&mut self, f: &Fetched, kind: UopKind) -> UopEntry {
        self.stats.energy.record(Event::Rename, 1);
        self.stats.energy.record(Event::Rob, 1);
        self.probe.on_renamed(self.cycle, self.rob.next_seq(), f.pc, kind, f.fetch_cycle);
        UopEntry {
            seq: self.rob.next_seq(),
            pc: f.pc,
            kind,
            first_of_insn: false,
            last_of_insn: false,
            dest_logical: None,
            dest: None,
            prev_mapping: None,
            src: [None, None],
            imm: 0,
            state: UopState::Waiting,
            not_ready: 0,
            in_iq: false,
            consumed: false,
            retire_needs_dest_ready: false,
            value: 0,
            writes_dest: true,
            rename_cycle: self.cycle,
            branch: None,
            load: None,
            store: None,
            group_sink: None,
            wait_for_seq: None,
            fetch_history: f.fetch_history,
        }
    }

    /// Maps a logical source to its physical register, taking a consumer
    /// reference. `$0` maps to `None`.
    fn map_src(&mut self, l: Reg) -> Option<PregId> {
        if l.is_zero() {
            return None;
        }
        let p = self.rf.rat(l);
        self.rf.add_consumer(p);
        Some(p)
    }

    /// Allocates a fresh destination register for `l`, returning
    /// `(preg, previous mapping)`.
    fn alloc_dest(&mut self, l: Reg) -> (PregId, PregId) {
        let prev = self.rf.rat(l);
        let p = self.rf.allocate(l).expect("free-list checked by rename_stage");
        (p, prev)
    }

    fn dispatch(&mut self, mut entry: UopEntry) {
        let seq = entry.seq;
        self.probe.on_dispatched(self.cycle, seq);
        let to_iq = entry.state == UopState::Waiting && !entry.retire_needs_dest_ready;
        if to_iq {
            self.stats.energy.record(Event::IqWrite, 1);
            // Register on every wake condition still outstanding; the µop
            // becomes ready the moment the count hits zero.
            let pending = self.sched_register_iq(seq, entry.src, entry.wait_for_seq);
            entry.not_ready = pending;
            entry.in_iq = true;
            self.sched.iq_len += 1;
            self.rob.push(entry);
            if pending == 0 {
                self.sched.ready.push(seq);
            }
        } else {
            self.rob.push(entry);
        }
    }

    /// Renames a single-µop instruction (ALU, branch, jump, nop, halt);
    /// `u` is the plan's precomputed µop.
    fn rename_simple(&mut self, f: &Fetched, u: Uop) -> usize {
        let mut e = self.make_entry(f, u.kind);
        e.first_of_insn = true;
        e.last_of_insn = true;
        e.imm = u.imm;
        let srcs = u.sources();
        e.src = [srcs[0].and_then(|l| self.map_src(l)), srcs[1].and_then(|l| self.map_src(l))];
        if let Some(l) = u.dest() {
            let (p, prev) = self.alloc_dest(l);
            e.dest = Some(p);
            e.dest_logical = Some(l);
            e.prev_mapping = Some(prev);
        }
        match u.kind {
            UopKind::Branch(_) => {
                e.branch = f.branch;
            }
            UopKind::Jump { indirect, link } => {
                e.branch = f.branch;
                if !indirect {
                    // Direct jumps resolve at fetch; only the link value
                    // needs producing.
                    if link {
                        let dest = e.dest.expect("jal links");
                        self.rf.write(dest, f.pc + 1, self.cycle);
                        e.value = f.pc + 1;
                    }
                    e.state = UopState::Done;
                    e.consumed = true;
                }
            }
            UopKind::Nop | UopKind::Halt => {
                e.state = UopState::Done;
                e.consumed = true;
            }
            _ => {}
        }
        self.dispatch(e);
        1
    }

    /// Renames a store: `AGI` + a store µop that is never dispatched in
    /// the store-queue-free models (paper Fig. 7).
    fn rename_store(
        &mut self,
        f: &Fetched,
        width: MemWidth,
        data: Reg,
        base: Reg,
        imm: i32,
    ) -> usize {
        let addr_preg = self.rename_agi(f, base, imm);
        let ssn = self.ssn_rename + 1;
        self.ssn_rename = ssn;

        let mut e = self.make_entry(f, UopKind::Store { width });
        e.last_of_insn = true;
        // The store reads its address and data registers (at commit in
        // the SQ-free machines, at SQ write in the baseline).
        self.rf.add_consumer(addr_preg);
        let data_preg = self.map_src(data);
        e.src = [Some(addr_preg), data_preg];
        e.store = Some(StoreInfo { ssn, width, addr_preg, data_preg });

        match self.cfg.comm {
            CommModel::Baseline => {
                e.wait_for_seq = self.ss.store_dispatched(f.pc, e.seq);
                self.sq.allocate(e.seq, ssn);
                self.stats.energy.record(Event::SqWrite, 1);
            }
            _ => {
                // Never issued: it executes when it commits (paper §I).
                e.state = UopState::Done;
                self.srb.insert(
                    ssn,
                    SrbEntry { addr_preg, data_preg, width, pc: f.pc },
                );
            }
        }
        self.dispatch(e);
        2
    }

    /// Renames the address-generation µop shared by loads and stores,
    /// returning the address register.
    fn rename_agi(&mut self, f: &Fetched, base: Reg, imm: i32) -> PregId {
        let mut e = self.make_entry(f, UopKind::Agi);
        e.first_of_insn = true;
        e.imm = imm;
        e.src = [self.map_src(base), None];
        let (p, prev) = self.alloc_dest(Reg::ADDR_TMP);
        e.dest = Some(p);
        e.dest_logical = Some(Reg::ADDR_TMP);
        e.prev_mapping = Some(prev);
        self.dispatch(e);
        p
    }

    /// Renames a load according to the communication model (paper
    /// Table I): direct access, memory cloaking, delayed execution,
    /// predication insertion, or oracle forwarding.
    fn rename_load(
        &mut self,
        f: &Fetched,
        width: MemWidth,
        signed: bool,
        rd: Option<Reg>,
        base: Reg,
        imm: i32,
    ) -> usize {
        let addr_preg = self.rename_agi(f, base, imm);
        let ssn_ref = self.ssn_rename;
        let dyn_idx = self.next_load_idx;
        self.next_load_idx += 1;

        let plan = self.plan_load(f, width, rd, ssn_ref, dyn_idx);
        let mut info = LoadInfo::new(width, signed, LoadKind::Direct, ssn_ref);
        info.history = f.fetch_history;
        info.addr_preg = Some(addr_preg);

        match plan {
            LoadPlan::Direct | LoadPlan::Delayed { .. } | LoadPlan::Oracle { .. } => {
                let mut e = self.make_entry(f, UopKind::Load { width, signed });
                e.last_of_insn = true;
                match plan {
                    LoadPlan::Oracle { ssn, value } => {
                        info.kind = LoadKind::Oracle;
                        info.ssn_byp = Some(ssn);
                        let srb_e = *self.srb.get(ssn).expect("oracle store in flight");
                        e.src = [srb_e.data_preg.inspect(|&p| self.rf.add_consumer(p)), None];
                        e.value = value;
                    }
                    LoadPlan::Delayed { ssn, low_conf } => {
                        info.kind = LoadKind::Delayed;
                        info.ssn_byp = Some(ssn);
                        info.low_conf = low_conf;
                        self.rf.add_consumer(addr_preg);
                        e.src = [Some(addr_preg), None];
                    }
                    _ => {
                        self.rf.add_consumer(addr_preg);
                        e.src = [Some(addr_preg), None];
                    }
                }
                if let Some(l) = rd {
                    let (p, prev) = self.alloc_dest(l);
                    e.dest = Some(p);
                    e.dest_logical = Some(l);
                    e.prev_mapping = Some(prev);
                    info.result_preg = Some(p);
                }
                if self.cfg.comm == CommModel::Baseline {
                    e.wait_for_seq = self.ss.load_dispatched(f.pc);
                }
                e.load = Some(info);
                let delayed = matches!(plan, LoadPlan::Delayed { .. });
                let seq = e.seq;
                if delayed {
                    // Parked outside the IQ: wakes on its address
                    // register's write and on `SSN_commit` reaching the
                    // predicted store.
                    self.probe.on_dispatched(self.cycle, seq);
                    e.state = UopState::Waiting;
                    let ssn =
                        e.load.and_then(|l| l.ssn_byp).expect("delayed load has a prediction");
                    let pending = self.sched_register_delayed(seq, addr_preg, ssn);
                    e.not_ready = pending;
                    self.rob.push(e);
                    if pending == 0 {
                        self.sched.delayed_ready.push(seq);
                    }
                } else {
                    self.dispatch(e);
                }
                2
            }
            LoadPlan::ShiftCloak { ssn, store_bab, load_lo2 } => {
                let l = rd.expect("shift-cloak requires a destination");
                let srb_e = *self.srb.get(ssn).expect("shifted store in flight");
                let data_preg = srb_e.data_preg.expect("shift-cloak requires store data");
                let store_width = width_of_bab(store_bab);
                let store_lo2 = store_bab.trailing_zeros() as u8;
                let mut e = self.make_entry(
                    f,
                    UopKind::ShiftMask {
                        store_width,
                        store_lo2,
                        load_lo2,
                        load_width: width,
                        load_signed: signed,
                    },
                );
                e.last_of_insn = true;
                self.rf.add_consumer(data_preg);
                e.src = [Some(data_preg), None];
                let (p, prev) = self.alloc_dest(l);
                e.dest = Some(p);
                e.dest_logical = Some(l);
                e.prev_mapping = Some(prev);
                info.kind = LoadKind::Cloaked;
                info.ssn_byp = Some(ssn);
                info.result_preg = Some(p);
                info.shift_pred = Some((store_bab, load_lo2));
                e.load = Some(info);
                self.dispatch(e);
                2
            }
            LoadPlan::Cloak { ssn } => {
                let l = rd.expect("cloak requires a destination");
                let srb_e = *self.srb.get(ssn).expect("cloaked store in flight");
                let data_preg = srb_e.data_preg.expect("cloak requires store data register");
                let mut e = self.make_entry(f, UopKind::Load { width, signed });
                e.last_of_insn = true;
                let prev = self.rf.rat(l);
                self.rf.redefine(data_preg, Some(l));
                e.dest = Some(data_preg);
                e.dest_logical = Some(l);
                e.prev_mapping = Some(prev);
                // The address register is read only at verification; no
                // consumer reference is needed because the next AGI's
                // retirement (younger than this group) releases it.
                e.src = [Some(addr_preg), None];
                e.consumed = true;
                e.retire_needs_dest_ready = true;
                info.kind = LoadKind::Cloaked;
                info.ssn_byp = Some(ssn);
                info.result_preg = Some(data_preg);
                e.load = Some(info);
                self.dispatch(e);
                2
            }
            LoadPlan::Predicate { ssn, low_conf } => {
                let l = rd.expect("predication requires a destination");
                let srb_e = *self.srb.get(ssn).expect("predicated store in flight");
                self.stats.predication_uops += 3;
                // Seq layout: AGI(seq-1) LOAD CMP CMOVt CMOVf.
                let sink = self.rob.next_seq() + 3;

                // Cache-access half: LOAD $33, (addr).
                let mut ld = self.make_entry(f, UopKind::Load { width, signed });
                self.rf.add_consumer(addr_preg);
                ld.src = [Some(addr_preg), None];
                let (pl, pl_prev) = self.alloc_dest(Reg::LOAD_TMP);
                ld.dest = Some(pl);
                ld.dest_logical = Some(Reg::LOAD_TMP);
                ld.prev_mapping = Some(pl_prev);
                ld.group_sink = Some(sink);
                self.dispatch(ld);

                // CMP $34, load_addr, store_addr.
                let mut cmp = self.make_entry(
                    f,
                    UopKind::Cmp { store_width: srb_e.width, load_width: width },
                );
                self.rf.add_consumer(addr_preg);
                self.rf.add_consumer(srb_e.addr_preg);
                cmp.src = [Some(addr_preg), Some(srb_e.addr_preg)];
                let (pp, pp_prev) = self.alloc_dest(Reg::PRED_TMP);
                cmp.dest = Some(pp);
                cmp.dest_logical = Some(Reg::PRED_TMP);
                cmp.prev_mapping = Some(pp_prev);
                cmp.group_sink = Some(sink);
                self.dispatch(cmp);

                // CMOV rd, $34, store_data (predicate-true path).
                let mut ct = self.make_entry(
                    f,
                    UopKind::Cmov {
                        on_true: true,
                        store_width: srb_e.width,
                        load_width: width,
                        load_signed: signed,
                    },
                );
                self.rf.add_consumer(pp);
                ct.src = [Some(pp), srb_e.data_preg.inspect(|&p| self.rf.add_consumer(p))];
                let (pd, pd_prev) = self.alloc_dest(l);
                ct.dest = Some(pd);
                ct.dest_logical = Some(l);
                ct.prev_mapping = Some(pd_prev);
                ct.group_sink = Some(sink);
                self.dispatch(ct);

                // CMOV rd, !$34, $33 (predicate-false path) — shares pd.
                let mut cf = self.make_entry(
                    f,
                    UopKind::Cmov {
                        on_true: false,
                        store_width: srb_e.width,
                        load_width: width,
                        load_signed: signed,
                    },
                );
                cf.last_of_insn = true;
                self.rf.add_consumer(pp);
                self.rf.add_consumer(pl);
                cf.src = [Some(pp), Some(pl)];
                self.rf.redefine(pd, Some(l));
                cf.dest = Some(pd);
                cf.dest_logical = Some(l);
                cf.prev_mapping = Some(pd);
                info.kind = LoadKind::Predicated;
                info.ssn_byp = Some(ssn);
                info.low_conf = low_conf;
                info.result_preg = Some(pd);
                cf.load = Some(info);
                debug_assert_eq!(cf.seq, sink);
                self.dispatch(cf);
                5
            }
        }
    }

    /// The model-specific rename-time decision for a load.
    fn plan_load(
        &mut self,
        f: &Fetched,
        width: MemWidth,
        rd: Option<Reg>,
        ssn_ref: u32,
        dyn_idx: u64,
    ) -> LoadPlan {
        match self.cfg.comm {
            CommModel::Baseline => LoadPlan::Direct,
            CommModel::Perfect => {
                let trace = self.oracle.as_ref().expect("perfect model has a trace");
                let Some(&ssn) = trace.last_writer_ssn.get(dyn_idx as usize) else {
                    return LoadPlan::Direct; // wrong-path overrun
                };
                if ssn == 0 || ssn <= self.ssn_commit || rd.is_none() {
                    return LoadPlan::Direct;
                }
                let Some(srb_e) = self.srb.get(ssn) else {
                    return LoadPlan::Direct;
                };
                // A word-word in-flight collision is exactly the cloaking
                // case: give Perfect the same zero-µop bypass DMDP gets.
                if width == MemWidth::Word
                    && srb_e.width == MemWidth::Word
                    && srb_e.data_preg.is_some()
                {
                    return LoadPlan::Cloak { ssn };
                }
                LoadPlan::Oracle { ssn, value: trace.load_values[dyn_idx as usize] }
            }
            CommModel::NoSq | CommModel::Dmdp => {
                self.stats.energy.record(Event::PredictorRead, 1);
                let Some(p) = self.dp.predict(f.pc, f.fetch_history) else {
                    return LoadPlan::Direct;
                };
                if p.distance >= ssn_ref && ssn_ref == 0 {
                    return LoadPlan::Direct;
                }
                let ssn = ssn_ref.saturating_sub(p.distance);
                if ssn == 0 || ssn <= self.ssn_commit {
                    return LoadPlan::Direct;
                }
                let Some(srb_e) = self.srb.get(ssn) else {
                    return LoadPlan::Direct;
                };
                let can_cloak = p.confident
                    && rd.is_some()
                    && width == MemWidth::Word
                    && srb_e.width == MemWidth::Word
                    && srb_e.data_preg.is_some();
                if can_cloak {
                    return LoadPlan::Cloak { ssn };
                }
                match self.cfg.comm {
                    CommModel::NoSq => {
                        // Confident partial-word collisions use the
                        // predicted shift-and-mask bypass (paper §IV-D's
                        // description of NoSQ); everything else delays.
                        let load_bab_ok = width.is_aligned(p.load_lo2 as u32);
                        let covered = load_bab_ok
                            && dmdp_isa::bab::covers(
                                p.store_bab,
                                dmdp_isa::bab::bab(p.load_lo2 as u32, width),
                            );
                        if p.confident
                            && covered
                            && rd.is_some()
                            && srb_e.data_preg.is_some()
                            && p.store_bab.count_ones().is_power_of_two()
                        {
                            LoadPlan::ShiftCloak {
                                ssn,
                                store_bab: p.store_bab,
                                load_lo2: p.load_lo2,
                            }
                        } else {
                            LoadPlan::Delayed { ssn, low_conf: !p.confident }
                        }
                    }
                    CommModel::Dmdp => {
                        if rd.is_none() {
                            LoadPlan::Delayed { ssn, low_conf: !p.confident }
                        } else {
                            LoadPlan::Predicate { ssn, low_conf: !p.confident }
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}

impl Pipeline {
    /// Upper bound on the µops the front instruction expands to, using a
    /// side-effect-free predictor peek so a DMDP load that will not be
    /// predicated does not reserve predication width.
    fn plan_width(&self, f: &Fetched, plan: &InsnPlan) -> usize {
        match plan.kind {
            PlanKind::Load { width, rd, .. } => {
                if self.cfg.comm != CommModel::Dmdp {
                    return 2;
                }
                // Mirror `plan_load`'s Predicate conditions exactly: an
                // underestimate here could overflow the checked ROB/PRF
                // headroom.
                let Some(p) = self.dp.peek(f.pc, f.fetch_history) else {
                    return 2;
                };
                let ssn = self.ssn_rename.saturating_sub(p.distance);
                if ssn == 0 || ssn <= self.ssn_commit || rd.is_none() {
                    return 2;
                }
                let Some(srb_e) = self.srb.get(ssn) else {
                    return 2;
                };
                let can_cloak = p.confident
                    && width == MemWidth::Word
                    && srb_e.width == MemWidth::Word
                    && srb_e.data_preg.is_some();
                if can_cloak {
                    2
                } else {
                    5
                }
            }
            PlanKind::Store { .. } => 2,
            PlanKind::Simple(_) => 1,
        }
    }
}

/// The access width a contiguous BAB encodes.
fn width_of_bab(bab: u8) -> MemWidth {
    match bab.count_ones() {
        1 => MemWidth::Byte,
        2 => MemWidth::Half,
        _ => MemWidth::Word,
    }
}


