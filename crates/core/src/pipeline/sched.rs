//! The event-driven scheduler.
//!
//! The original issue/writeback stages re-sorted and rescanned the whole
//! issue queue and executing list every cycle, probing `rf.is_ready` for
//! every source of every waiting µop — O(window) work per cycle even when
//! nothing changed. This module replaces the scans with events, keeping
//! the simulated timing bit-identical (`tests/golden_stats.rs` is the
//! gate):
//!
//! * Each waiting µop carries a `not_ready` count of its unsatisfied wake
//!   conditions. A µop dispatched with unready sources registers on the
//!   **waiter list** of each missing physical register; the register
//!   write in writeback drains the list and decrements the counters.
//! * Baseline Store-Sets ordering (`wait_for_seq`) registers on
//!   [`Scheduler::seq_waiters`]; the waited-on store wakes them when it
//!   completes in writeback or retires.
//! * A NoSQ delayed load additionally waits for `SSN_commit` to reach its
//!   predicted store; commit drains [`Scheduler::ssn_waiters`] in SSN
//!   order.
//! * A µop whose counter hits zero moves to the **ready list**
//!   ([`Scheduler::ready`] or, for delayed loads,
//!   [`Scheduler::delayed_ready`]); issue sorts and pops only those —
//!   age order and the load-port/width limits reproduce the old select
//!   exactly.
//! * Writeback pops a **completion calendar** — a min-heap keyed by
//!   `(done_cycle, issue_order)` — so it touches only the µops that
//!   complete this cycle. Keying the tie-break on issue order (not seq)
//!   preserves the old executing-list processing order, which predictor
//!   update order (and therefore timing) depends on.
//!
//! Squash is handled eagerly: [`Pipeline::sched_purge`] removes every
//! registration of a squashed µop, so sequence-number reuse after a
//! recovery can never deliver a stale wake.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::regfile::PregId;
use crate::rob::{SeqNum, UopState};

use super::exec::RecoveryReq;
use super::Pipeline;

/// Event-driven scheduler state: ready lists, wake registrations and the
/// completion calendar, plus reusable scratch buffers so the hot loop
/// performs no per-cycle allocations.
#[derive(Debug, Default)]
pub(crate) struct Scheduler {
    /// Issue-queue µops whose wake conditions are all satisfied, popped
    /// in age order by `issue_stage`. Unsorted between cycles; sorted
    /// once per issue.
    pub(crate) ready: Vec<SeqNum>,
    /// Delayed loads (NoSQ low-confidence) whose address is ready and
    /// whose predicted store has committed.
    pub(crate) delayed_ready: Vec<SeqNum>,
    /// Issue-queue occupancy (ready + still-waiting µops) — drives the
    /// rename stage's structural backpressure exactly like the old
    /// `iq.len()`.
    pub(crate) iq_len: usize,
    /// `(waited_on, waiter)` pairs for Baseline Store-Sets ordering.
    pub(crate) seq_waiters: Vec<(SeqNum, SeqNum)>,
    /// Delayed loads waiting for `SSN_commit >= ssn`, min-first.
    pub(crate) ssn_waiters: BinaryHeap<Reverse<(u32, SeqNum)>>,
    /// Completion calendar: `(done_cycle, issue_order, seq)`, min-first.
    pub(crate) calendar: BinaryHeap<Reverse<(u64, u64, SeqNum)>>,
    /// Monotonic per-issue token ordering same-cycle completions.
    issue_order: u64,
    /// Scratch for draining register waiter lists.
    wake_buf: Vec<SeqNum>,
    /// Scratch for writeback's recovery requests.
    pub(crate) recoveries: Vec<RecoveryReq>,
}

impl Scheduler {
    /// Free issue-queue slots given the configured capacity.
    pub(crate) fn iq_free(&self, iq_entries: usize) -> usize {
        iq_entries.saturating_sub(self.iq_len)
    }

    /// µops currently ready to issue (issue-queue ready list plus
    /// delayed loads whose wake conditions all fired) — the occupancy
    /// figure both the per-cycle stat and the probe sampler report.
    pub(crate) fn ready_len(&self) -> usize {
        self.ready.len() + self.delayed_ready.len()
    }

    /// One-line occupancy summary for livelock dumps.
    #[cfg(test)]
    pub(crate) fn dump(&self) -> String {
        format!(
            "ready={:?} delayed_ready={:?} iq_len={} seq_waiters={:?} ssn_waiters={} calendar={}",
            self.ready,
            self.delayed_ready,
            self.iq_len,
            self.seq_waiters,
            self.ssn_waiters.len(),
            self.calendar.len()
        )
    }
}

impl Pipeline {
    /// Registers the wake conditions of a newly dispatched issue-queue
    /// µop (sources + Store-Sets ordering), returning the number still
    /// pending. Must run before the entry is pushed into the ROB.
    pub(crate) fn sched_register_iq(
        &mut self,
        seq: SeqNum,
        src: [Option<PregId>; 2],
        wait_for_seq: Option<SeqNum>,
    ) -> u8 {
        let mut pending = 0u8;
        for p in src.into_iter().flatten() {
            if !self.rf.is_ready(p) {
                self.rf.add_waiter(p, seq);
                pending += 1;
            }
        }
        if let Some(w) = wait_for_seq {
            if self.rob.get(w).is_some_and(|we| !we.is_done()) {
                self.sched.seq_waiters.push((w, seq));
                pending += 1;
            }
        }
        pending
    }

    /// Registers the wake conditions of a delayed load: address register
    /// readiness plus commit of the predicted store. Returns the number
    /// pending.
    pub(crate) fn sched_register_delayed(
        &mut self,
        seq: SeqNum,
        addr_preg: PregId,
        ssn_byp: u32,
    ) -> u8 {
        let mut pending = 0u8;
        if !self.rf.is_ready(addr_preg) {
            self.rf.add_waiter(addr_preg, seq);
            pending += 1;
        }
        if self.ssn_commit < ssn_byp {
            self.sched.ssn_waiters.push(Reverse((ssn_byp, seq)));
            pending += 1;
        }
        pending
    }

    /// Delivers one wake event to `seq`, moving it to the appropriate
    /// ready list when its last condition fires.
    fn sched_deliver(&mut self, seq: SeqNum) {
        let e = self.rob.get_mut(seq).expect("waker registrations are purged on squash");
        debug_assert_eq!(e.state, UopState::Waiting);
        debug_assert!(e.not_ready > 0, "wake underflow on seq {seq}");
        e.not_ready -= 1;
        self.stats.sched.wakeups += 1;
        if e.not_ready == 0 {
            if e.in_iq {
                self.sched.ready.push(seq);
            } else {
                self.sched.delayed_ready.push(seq);
            }
        }
    }

    /// Drains the waiter list of a just-written register.
    pub(crate) fn sched_wake_preg(&mut self, p: PregId) {
        if !self.rf.has_waiters(p) {
            return;
        }
        let mut buf = std::mem::take(&mut self.sched.wake_buf);
        self.rf.drain_waiters_into(p, &mut buf);
        for seq in buf.drain(..) {
            self.sched_deliver(seq);
        }
        self.sched.wake_buf = buf;
    }

    /// Wakes µops ordered after `done` by Store-Sets (`wait_for_seq`),
    /// called when `done` completes in writeback or retires.
    pub(crate) fn sched_wake_seq(&mut self, done: SeqNum) {
        if self.sched.seq_waiters.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.sched.seq_waiters.len() {
            if self.sched.seq_waiters[i].0 == done {
                let (_, waiter) = self.sched.seq_waiters.swap_remove(i);
                self.sched_deliver(waiter);
            } else {
                i += 1;
            }
        }
    }

    /// Wakes delayed loads whose predicted store has committed. Called
    /// after commit advances `SSN_commit`.
    pub(crate) fn sched_drain_ssn(&mut self) {
        while let Some(&Reverse((ssn, seq))) = self.sched.ssn_waiters.peek() {
            if ssn > self.ssn_commit {
                break;
            }
            self.sched.ssn_waiters.pop();
            self.sched_deliver(seq);
        }
    }

    /// Schedules a completion event for an issued µop.
    pub(crate) fn sched_schedule_completion(&mut self, seq: SeqNum, done: u64) {
        let order = self.sched.issue_order;
        self.sched.issue_order += 1;
        self.sched.calendar.push(Reverse((done, order, seq)));
    }

    /// Removes every scheduler registration of µops with `seq >= from`
    /// (recovery). Eager purging keeps wake delivery simple: a live
    /// registration always refers to a live µop, so sequence-number reuse
    /// after the squash cannot alias.
    pub(crate) fn sched_purge(&mut self, from: SeqNum) {
        self.sched.ready.retain(|&s| s < from);
        self.sched.delayed_ready.retain(|&s| s < from);
        // A waiter is always younger than what it waits on, so filtering
        // on the waiter alone is sufficient.
        self.sched.seq_waiters.retain(|&(_, s)| s < from);
        self.sched.ssn_waiters.retain(|&Reverse((_, s))| s < from);
        self.sched.calendar.retain(|&Reverse((_, _, s))| s < from);
        self.rf.purge_waiters_from(from);
        self.retry.retain(|&s| s < from);
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{CommModel, CoreConfig};
    use crate::pipeline::Pipeline;

    fn pipeline(src: &str, comm: CommModel) -> Pipeline {
        let p = dmdp_isa::asm::assemble(src).unwrap();
        Pipeline::new(CoreConfig::new(comm), &p)
    }

    fn run_to_halt(pl: &mut Pipeline, max: u64) {
        for _ in 0..max {
            if pl.halted {
                return;
            }
            pl.step_cycle();
        }
        panic!("did not halt: {}", pl.sched.dump());
    }

    #[test]
    fn dependent_chain_issues_through_wakeups() {
        let mut pl = pipeline(
            "li $1, 1\nadd $2, $1, $1\nadd $3, $2, $2\nadd $4, $3, $3\nhalt",
            CommModel::Baseline,
        );
        run_to_halt(&mut pl, 200);
        // Every µop entering the IQ with an unready source produces at
        // least one wake event when the producer writes back.
        assert!(pl.stats.sched.wakeups >= 3, "wakeups: {}", pl.stats.sched.wakeups);
        assert!(pl.stats.sched.calendar_pops >= 4);
        assert_eq!(pl.stats.retired_insns, 5);
    }

    #[test]
    fn ready_list_drains_to_empty_at_halt() {
        let mut pl = pipeline("li $1, 7\nadd $2, $1, $1\nhalt", CommModel::Dmdp);
        run_to_halt(&mut pl, 200);
        assert!(pl.sched.ready.is_empty());
        assert!(pl.sched.delayed_ready.is_empty());
        assert_eq!(pl.sched.iq_len, 0, "issue queue must drain");
        assert!(pl.sched.seq_waiters.is_empty());
        assert!(pl.sched.ssn_waiters.is_empty());
        assert!(pl.sched.calendar.is_empty());
    }

    #[test]
    fn recovery_purges_wrong_path_registrations() {
        // A data-dependent branch mispredicts at least once; wrong-path
        // µops registered on never-written registers must be purged
        // rather than leak.
        let src = r#"
            .data
        buf: .space 64
            .text
            lui  $8, %hi(buf)
            ori  $8, $8, %lo(buf)
            li   $4, 0
            li   $5, 12
    loop:
            andi $6, $4, 3
            sll  $7, $6, 2
            add  $7, $7, $8
            lw   $9, 0($7)
            add  $9, $9, $4
            sw   $9, 0($7)
            addi $4, $4, 1
            bne  $4, $5, loop
            halt
        "#;
        let mut pl = pipeline(src, CommModel::Baseline);
        run_to_halt(&mut pl, 20_000);
        assert!(pl.stats.recoveries > 0, "expected at least one recovery");
        // Quiesce invariants: nothing left registered anywhere.
        assert!(pl.sched.ready.is_empty());
        assert!(pl.sched.calendar.is_empty());
        assert_eq!(pl.sched.iq_len, 0);
        pl.rf.check_quiesced();
    }

    #[test]
    fn calendar_orders_same_cycle_completions_by_issue_order() {
        let mut pl = pipeline("li $1, 1\nhalt", CommModel::Baseline);
        pl.sched_schedule_completion(10, 5);
        pl.sched_schedule_completion(3, 5);
        pl.sched_schedule_completion(7, 4);
        let popped: Vec<(u64, u64, u64)> = std::iter::from_fn(|| {
            pl.sched.calendar.pop().map(|std::cmp::Reverse(t)| t)
        })
        .collect();
        // done=4 first; the two done=5 entries in issue order (10 before 3).
        assert_eq!(popped[0].0, 4);
        assert_eq!((popped[1].0, popped[1].2), (5, 10));
        assert_eq!((popped[2].0, popped[2].2), (5, 3));
    }

    #[test]
    fn delayed_load_wakes_on_store_commit() {
        // NoSQ: train the distance predictor with a tight store->load
        // pair; the delayed path (when taken) must still produce the
        // architecturally correct value and drain all ssn waiters.
        let src = r#"
            .data
        x:  .word 0
            .text
            lui  $8, %hi(x)
            ori  $8, $8, %lo(x)
            li   $4, 0
            li   $5, 24
    loop:
            sb   $4, 0($8)
            lb   $9, 0($8)
            add  $10, $10, $9
            addi $4, $4, 1
            bne  $4, $5, loop
            halt
        "#;
        let mut pl = pipeline(src, CommModel::NoSq);
        run_to_halt(&mut pl, 20_000);
        assert!(pl.sched.ssn_waiters.is_empty());
        assert!(pl.sched.delayed_ready.is_empty());
        assert_eq!(pl.stats.retired_insns, 4 + 5 * 24 + 1);
    }
}
