//! Issue, execute and writeback.

use dmdp_energy::Event;
use dmdp_isa::bab::{extract_from_word, place_in_word, Predicate};
use dmdp_isa::uop::UopKind;
use dmdp_isa::{AluOp, MemWidth};

use crate::config::CommModel;
use crate::rob::{SeqNum, UopState};

use super::baseline::SearchResult;
use super::Pipeline;

/// A recovery request raised during execution, applied oldest-first.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RecoveryReq {
    pub from: SeqNum,
    pub refetch: dmdp_isa::Pc,
    /// A branch misprediction (for stats) vs a memory-ordering violation.
    pub is_branch: bool,
    /// For branches: (history_before, actual_taken) to repair gshare.
    pub history_fix: Option<(u32, bool)>,
}

impl Pipeline {
    /// Issues up to `width` µops from the event-driven ready lists:
    /// delayed loads first, then issue-queue µops in age order. Only
    /// µops whose wake conditions all fired are examined — readiness
    /// itself was established by wake events (register writes, store
    /// completion/retire, SSN-commit advance), not by scanning.
    pub(crate) fn issue_stage(&mut self) {
        self.stats.sched.ready_occupancy += self.sched.ready_len() as u64;
        let mut budget = self.cfg.width;
        let mut load_ports = self.cfg.load_ports;

        // Delayed loads (NoSQ): address ready and predicted store
        // committed; only width and a load port can still hold them back.
        if !self.sched.delayed_ready.is_empty() {
            let mut delayed = std::mem::take(&mut self.sched.delayed_ready);
            delayed.sort_unstable();
            let mut kept = 0;
            for i in 0..delayed.len() {
                let seq = delayed[i];
                debug_assert!(self.rob.get(seq).is_some(), "squash must purge delayed_ready");
                if budget > 0 && load_ports > 0 {
                    budget -= 1;
                    load_ports -= 1;
                    self.execute_uop(seq);
                } else {
                    delayed[kept] = seq;
                    kept += 1;
                }
            }
            delayed.truncate(kept);
            self.sched.delayed_ready = delayed;
        }

        // Issue-queue µops, oldest first. Baseline loads that hit a
        // partial-overlap store park themselves on `retry` and are put
        // back at the end of the cycle, so older µops always get the
        // load ports first (no starvation).
        if !self.sched.ready.is_empty() {
            let mut ready = std::mem::take(&mut self.sched.ready);
            ready.sort_unstable();
            let mut kept = 0;
            for i in 0..ready.len() {
                let seq = ready[i];
                if budget == 0 {
                    ready[kept] = seq;
                    kept += 1;
                    continue;
                }
                let Some(e) = self.rob.get(seq) else {
                    debug_assert!(false, "squash must purge the ready list");
                    continue;
                };
                let is_load = e.kind.is_load();
                if is_load && load_ports == 0 {
                    ready[kept] = seq;
                    kept += 1;
                    continue;
                }
                // The budget and port are consumed even if a baseline
                // load then parks itself on `retry`.
                budget -= 1;
                if is_load {
                    load_ports -= 1;
                }
                self.rob.get_mut(seq).expect("live").in_iq = false;
                self.sched.iq_len -= 1;
                self.stats.energy.record(Event::IqWakeup, 1);
                self.execute_uop(seq);
            }
            ready.truncate(kept);
            self.sched.ready = ready;
        }

        // Replayed loads re-occupy an IQ slot and stay ready (their wake
        // conditions already fired; readiness never regresses while a
        // consumer reference pins the register).
        while let Some(seq) = self.retry.pop() {
            self.rob.get_mut(seq).expect("retried load is live").in_iq = true;
            self.sched.iq_len += 1;
            self.sched.ready.push(seq);
        }
    }

    /// Executes one µop: reads operands, computes the result, and
    /// schedules completion. Baseline loads may instead park themselves
    /// on the retry list.
    fn execute_uop(&mut self, seq: SeqNum) {
        // A baseline load parking on `retry` re-issues later and
        // overwrites this with its final issue cycle.
        self.probe.on_issued(self.cycle, seq);
        let e = self.rob.get(seq).expect("executing a live entry");
        let kind = e.kind;
        let pc = e.pc;
        let src0 = e.src[0];
        let src1 = e.src[1];
        let imm = e.imm;
        // Drop consumer references: the values are being read now.
        if !e.consumed {
            for p in [src0, src1].into_iter().flatten() {
                self.rf.drop_consumer(p);
            }
            self.rob.get_mut(seq).expect("live").consumed = true;
        }
        let src_count = [src0, src1].into_iter().flatten().count() as u64;
        self.stats.energy.record(Event::PrfRead, src_count);
        self.stats.energy.record(Event::AluOp, 1);

        let a = self.src_val(src0);
        let b = self.src_val(src1);
        let (value, latency) = match kind {
            UopKind::Alu(op) => {
                let rhs = if src1.is_some() {
                    b
                } else if op == AluOp::Lui {
                    imm as u32 & 0xFFFF
                } else {
                    imm as u32
                };
                (op.apply(a, rhs), op.latency() as u64)
            }
            UopKind::Agi => {
                let addr = a.wrapping_add(imm as u32);
                let walk = self.tlb.translate(addr);
                self.stats.energy.record(Event::TlbAccess, 1);
                (addr, 1 + walk)
            }
            UopKind::Load { width, signed } => {
                match self.execute_load(seq, width, signed, a) {
                    Some(vl) => vl,
                    None => return, // parked on the retry list
                }
            }
            UopKind::Store { width } => {
                // Baseline only: fill the store-queue entry.
                debug_assert_eq!(self.cfg.comm, CommModel::Baseline);
                let addr = align(a, width);
                self.sq.fill(seq, addr, width, b);
                self.stats.energy.record(Event::SqWrite, 1);
                self.ss.store_completed(pc, seq);
                (0, 1)
            }
            UopKind::Branch(c) => (c.taken(a, b) as u32, 1),
            UopKind::Jump { link, indirect } => {
                let _ = indirect;
                (if link { pc + 1 } else { 0 }, 1)
            }
            UopKind::ShiftMask { store_width, store_lo2, load_lo2, load_width, load_signed } => {
                // NoSQ's predicted shift-and-mask bypass: reposition the
                // store's data as the load would see it, using the
                // *predicted* address low bits (verified at retire).
                let word = place_in_word(store_lo2 as u32, store_width, a);
                let v = extract_from_word(word, load_lo2 as u32, load_width, load_signed);
                let sink = seq;
                if let Some(info) = self.rob.get_mut(sink).and_then(|s| s.load.as_mut()) {
                    info.value = v;
                }
                (v, 1)
            }
            UopKind::Cmp { store_width, load_width } => {
                let load_addr = align(a, load_width);
                let store_addr = align(b, store_width);
                let pred = Predicate::compare(store_addr, store_width, load_addr, load_width);
                if let Some(sink) = self.rob.get(seq).and_then(|e| e.group_sink) {
                    if let Some(info) =
                        self.rob.get_mut(sink).and_then(|s| s.load.as_mut())
                    {
                        info.pred_matches = Some(pred.matches);
                    }
                }
                (pred.encode(), 1)
            }
            UopKind::Cmov { on_true, store_width, load_width, load_signed } => {
                let pred = Predicate::decode(a);
                if pred.matches == on_true {
                    let v = if on_true {
                        pred.apply_forward(store_width, b, load_width, load_signed)
                    } else {
                        b // the cache value, already extended by the LOAD
                    };
                    // Record the chosen value for verification.
                    let sink = self.rob.get(seq).and_then(|e| e.group_sink).unwrap_or(seq);
                    if let Some(info) = self.rob.get_mut(sink).and_then(|s| s.load.as_mut()) {
                        info.value = v;
                    }
                    (v, 1)
                } else {
                    let e = self.rob.get_mut(seq).expect("live");
                    e.writes_dest = false;
                    (0, 1)
                }
            }
            UopKind::Halt | UopKind::Nop => (0, 1),
        };
        let done = self.cycle + latency.max(1);
        {
            let e = self.rob.get_mut(seq).expect("live");
            e.value = value;
            e.state = UopState::Executing(done);
        }
        self.sched_schedule_completion(seq, done);
    }

    /// Executes the cache-access half of a load. Returns `None` when a
    /// baseline load must retry later.
    fn execute_load(
        &mut self,
        seq: SeqNum,
        width: MemWidth,
        signed: bool,
        addr_raw: u32,
    ) -> Option<(u32, u64)> {
        use crate::rob::LoadKind;
        let e = self.rob.get(seq).expect("live");
        let kind = e.load.map(|l| l.kind);
        if kind == Some(LoadKind::Oracle) {
            // Oracle forward: the value was fixed at rename; it becomes
            // available one cycle after the store's data (bypass).
            let value = e.value;
            let sink = seq;
            if let Some(info) = self.rob.get_mut(sink).and_then(|s| s.load.as_mut()) {
                info.executed = true;
                info.value = value;
            }
            return Some((value, 1));
        }
        let addr = align(addr_raw, width);
        if self.cfg.comm == CommModel::Baseline {
            self.stats.energy.record(Event::SqSearch, 1);
            match self.sq.search(seq, addr, width, signed, &self.sb) {
                SearchResult::Forward { ssn, value } => {
                    self.finish_load(seq, seq, addr, value, Some(ssn));
                    return Some((value, 4));
                }
                SearchResult::Retry => {
                    self.retry.push(seq);
                    return None;
                }
                SearchResult::Miss => {}
            }
        }
        // Read the cache (committed state).
        let value = self.data.read(addr, width, signed);
        let latency = self.mem.read(addr, self.cycle);
        self.stats.energy.record(Event::CacheRead, 1);
        let sink = self.rob.get(seq).and_then(|e| e.group_sink).unwrap_or(seq);
        self.finish_load(seq, sink, addr, value, None);
        Some((value, latency))
    }

    /// Records load-execution facts on the verifying entry.
    fn finish_load(
        &mut self,
        seq: SeqNum,
        sink: SeqNum,
        addr: u32,
        value: u32,
        forwarded_from: Option<u32>,
    ) {
        let ssn_commit = self.ssn_commit;
        if let Some(info) = self.rob.get_mut(sink).and_then(|s| s.load.as_mut()) {
            info.addr = addr;
            info.ssn_nvul = ssn_commit;
            info.executed = true;
            info.forwarded_from = forwarded_from;
            // For a predicated load (sink != seq) the winning CMOV sets
            // the final value; for plain loads this read *is* the value.
            if sink == seq {
                info.value = value;
            }
        }
    }

    /// Writeback: pops the completion calendar for µops whose latency
    /// expired this cycle, writes the register file (delivering register
    /// wake events), resolves branches, and (baseline) runs store-queue
    /// violation checks.
    ///
    /// The calendar is keyed `(done_cycle, issue_order)`, so same-cycle
    /// completions are processed in issue order — exactly the order the
    /// old executing-list rescan produced. That order is
    /// timing-relevant: recovery selection tie-breaks, Store-Sets
    /// violation training and branch-predictor updates all happen as
    /// side effects of this loop.
    pub(crate) fn writeback_stage(&mut self) {
        let mut recoveries = std::mem::take(&mut self.sched.recoveries);
        debug_assert!(recoveries.is_empty());
        while let Some(&std::cmp::Reverse((done, _, _))) = self.sched.calendar.peek() {
            if done > self.cycle {
                break;
            }
            let std::cmp::Reverse((done, _, seq)) =
                self.sched.calendar.pop().expect("peeked entry");
            self.stats.sched.calendar_pops += 1;
            let Some(e) = self.rob.get(seq) else {
                debug_assert!(false, "squash must purge the calendar");
                continue;
            };
            let UopState::Executing(d) = e.state else { continue };
            debug_assert_eq!(d, done, "calendar entry must match the µop's completion cycle");
            // Complete.
            let kind = e.kind;
            let dest = e.dest;
            let writes = e.writes_dest;
            let value = e.value;
            let pc = e.pc;
            {
                let e = self.rob.get_mut(seq).expect("live");
                e.state = UopState::Done;
            }
            self.probe.on_writeback(self.cycle, seq);
            if let Some(d) = dest {
                if writes {
                    self.rf.write(d, value, self.cycle);
                    self.stats.energy.record(Event::PrfWrite, 1);
                    self.sched_wake_preg(d);
                }
            }
            match kind {
                UopKind::Branch(_) => {
                    if let Some(r) = self.resolve_branch(seq, pc, value != 0) {
                        recoveries.push(r);
                    }
                }
                UopKind::Jump { indirect: true, .. } => {
                    if let Some(r) = self.resolve_indirect(seq, pc) {
                        recoveries.push(r);
                    }
                }
                UopKind::Store { .. }
                    if self.cfg.comm == CommModel::Baseline => {
                        if let Some(r) = self.check_violation(seq) {
                            recoveries.push(r);
                        }
                    }
                _ => {}
            }
            // Baseline Store-Sets ordering: µops waiting on this store
            // may issue now.
            self.sched_wake_seq(seq);
        }
        if let Some(r) = recoveries.iter().min_by_key(|r| r.from).copied() {
            if r.is_branch {
                self.stats.branch_mispredicts += 1;
            } else {
                self.stats.mem_dep_mispredicts += 1;
            }
            let corrected = r.history_fix.map(|(hist, taken)| {
                self.bp.mispredicted(hist, taken);
                (hist << 1) | taken as u32
            });
            self.recover_with_history(r.from, r.refetch, corrected);
        }
        recoveries.clear();
        self.sched.recoveries = recoveries;
    }

    fn resolve_branch(&mut self, seq: SeqNum, pc: u32, taken: bool) -> Option<RecoveryReq> {
        let e = self.rob.get(seq).expect("live");
        let info = e.branch.expect("branch has prediction info");
        let target = e.imm as u32;
        self.stats.energy.record(Event::PredictorWrite, 1);
        self.bp.resolve(pc, taken, target, info.history_before);
        if taken == info.predicted_taken {
            return None;
        }
        let refetch = if taken { target } else { pc + 1 };
        Some(RecoveryReq {
            from: seq + 1,
            refetch,
            is_branch: true,
            history_fix: Some((info.history_before, taken)),
        })
    }

    fn resolve_indirect(&mut self, seq: SeqNum, pc: u32) -> Option<RecoveryReq> {
        let e = self.rob.get(seq).expect("live");
        let info = e.branch.expect("indirect jump has prediction info");
        let actual = self.src_val(e.src[0]);
        self.bp.btb_install(pc, actual);
        if info.predicted_target == Some(actual) {
            return None;
        }
        Some(RecoveryReq { from: seq + 1, refetch: actual, is_branch: true, history_fix: None })
    }
}

/// Aligns a (possibly wrong-path garbage) address to the access width so
/// the timing machinery never faults; correct-path code is always
/// naturally aligned (the functional emulator enforces it).
#[inline]
fn align(addr: u32, width: MemWidth) -> u32 {
    addr & !(width.bytes() - 1)
}
