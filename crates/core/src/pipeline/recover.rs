//! Pipeline recovery: squash, rename rollback (the paper's
//! counter-recovery walk), and front-end redirect.

use dmdp_energy::Event;
use dmdp_isa::Pc;

use crate::config::CommModel;
use crate::rob::SeqNum;

use super::Pipeline;

impl Pipeline {
    /// Squashes every µop with `seq >= from`, walking them youngest-first
    /// to undo renaming (RAT, producer/consumer counters, SSNs, SRB/SQ
    /// entries, oracle index), then redirects fetch to `refetch`.
    ///
    /// Branch history is restored to the squash point; for a branch
    /// misprediction the caller passes the *corrected* history (with the
    /// resolved outcome bit) via [`Pipeline::recover_with_history`] —
    /// restoring the pre-squash snapshot there would re-insert the wrong
    /// predicted bit and poison every later index.
    pub(crate) fn recover(&mut self, from: SeqNum, refetch: Pc) {
        self.recover_with_history(from, refetch, None);
    }

    /// [`Pipeline::recover`] with an explicit post-recovery branch
    /// history.
    pub(crate) fn recover_with_history(
        &mut self,
        from: SeqNum,
        refetch: Pc,
        history: Option<u32>,
    ) {
        self.stats.recoveries += 1;
        // Drain the squashed µops into the pipeline-owned scratch buffer
        // (returned, emptied, at the end): recoveries are frequent on
        // branchy code and must not allocate.
        let mut squashed = std::mem::take(&mut self.squash_buf);
        self.rob.squash_from_into(from, &mut squashed);
        self.stats.squashed_uops += squashed.len() as u64;
        self.stats.energy.record(Event::SquashedUop, squashed.len() as u64);
        if !self.probe.is_off() {
            // Flush trace records now: the sequence numbers are reused
            // by the refetched path.
            for e in &squashed {
                self.probe.on_squashed(self.cycle, e.seq);
            }
        }
        let oldest_history = squashed.last().map(|e| e.fetch_history);
        for e in &squashed {
            // Give the issue-queue slot back.
            if e.in_iq {
                self.sched.iq_len -= 1;
            }
            // Undo the rename: restore the RAT and release the definition
            // (paper: "walking through squashed instructions to recover
            // the counters").
            if let (Some(l), Some(d)) = (e.dest_logical, e.dest) {
                let prev = e.prev_mapping.expect("renamed dest has a previous mapping");
                self.rf.set_rat(l, prev);
                self.rf.virtual_release(d);
            }
            // Unread operands give their consumer references back.
            if !e.consumed {
                for p in e.src.into_iter().flatten() {
                    self.rf.drop_consumer(p);
                }
            }
            if let Some(s) = e.store {
                debug_assert_eq!(s.ssn, self.ssn_rename, "stores unwind in LIFO order");
                self.ssn_rename -= 1;
                if self.cfg.comm == CommModel::Baseline {
                    self.sq.remove(e.seq);
                    self.ss.store_squashed(e.pc, e.seq);
                } else {
                    self.srb.remove(s.ssn);
                }
            }
            if e.kind.is_load() {
                self.next_load_idx -= 1;
            }
        }
        squashed.clear();
        self.squash_buf = squashed;
        // Drop every scheduler registration of the squashed µops (ready
        // lists, waiter lists, calendar, retry) so reused sequence
        // numbers cannot receive stale wakes.
        self.sched_purge(from);
        self.decode_q.clear();
        // Repair speculative branch history: the corrected value for a
        // branch misprediction, else the squash point's snapshot.
        if let Some(h) = history.or(oldest_history) {
            self.bp.set_history(h);
        }
        self.verify = None;
        self.fetch_pc = refetch;
        self.fetch_stall_until = self.cycle + self.cfg.redirect_penalty;
        self.fetch_stopped = false;
    }
}
