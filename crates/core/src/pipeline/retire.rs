//! In-order retirement with SVW-filtered load verification (paper
//! §IV-A c, §IV-C) and store movement into the store buffer.

use dmdp_energy::Event;
use dmdp_isa::bab::bab;
use dmdp_isa::uop::UopKind;
use dmdp_isa::StepOutcome;
use dmdp_mem::SbEntry;
use dmdp_predict::svw::{needs_reexecution, DataSource};
use dmdp_predict::TssbfHit;
use dmdp_stats::LoadSource;

use crate::config::CommModel;
use crate::rob::{LoadKind, SeqNum};

use super::{Pipeline, VerifyPhase, VerifyState};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VerifyOutcome {
    Ok,
    Stall,
    Recover,
}

/// Figure 5's outcome classes for a dependence prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PredOutcome {
    Correct,
    DiffStore,
    IndepStore,
}

impl Pipeline {
    /// Retires up to `width` µops, instruction groups atomically.
    pub(crate) fn retire_stage(&mut self) {
        let mut budget = self.cfg.width;
        while budget > 0 && !self.rob.is_empty() && !self.halted {
            let head = self.rob.head_seq().expect("nonempty");
            let Some(group_end) = self.find_group_end(head) else { return };
            let group_len = (group_end - head + 1) as usize;
            if group_len > budget && budget < self.cfg.width {
                return;
            }
            // Every µop of the group must be complete.
            for seq in head..=group_end {
                let e = self.rob.get(seq).expect("group entry live");
                if e.retire_needs_dest_ready && !e.is_done() {
                    let dest = e.dest.expect("cloaked load has a destination");
                    if self.rf.is_ready(dest) {
                        let v = self.rf.read(dest);
                        let e = self.rob.get_mut(seq).expect("live");
                        e.state = crate::rob::UopState::Done;
                        e.value = v;
                    } else {
                        return;
                    }
                } else if !e.is_done() {
                    return;
                }
            }
            // A retiring store needs a store-buffer slot.
            let has_store = (head..=group_end)
                .any(|s| self.rob.get(s).is_some_and(|e| e.store.is_some()));
            if has_store {
                self.hw.note_store_retire(self.sb.occupancy());
            }
            if has_store && self.sb.is_full() {
                self.stats.sb_full_stall_cycles += 1;
                return;
            }
            // Retire-time load verification (store-queue-free models).
            if matches!(self.cfg.comm, CommModel::NoSq | CommModel::Dmdp) {
                let vseq = (head..=group_end)
                    .find(|&s| self.rob.get(s).is_some_and(|e| e.load.is_some()));
                if let Some(vseq) = vseq {
                    match self.run_verify(vseq) {
                        VerifyOutcome::Ok => {}
                        VerifyOutcome::Stall => {
                            self.stats.reexec_stall_cycles += 1;
                            return;
                        }
                        VerifyOutcome::Recover => {
                            self.stats.mem_dep_mispredicts += 1;
                            let pc = self.rob.get(head).expect("live").pc;
                            self.recover(head, pc);
                            return;
                        }
                    }
                }
            }
            for _ in 0..group_len {
                self.retire_one();
                if self.halted {
                    return;
                }
            }
            budget = budget.saturating_sub(group_len);
        }
    }

    /// Seq of the group's closing µop, or `None` if the group is not yet
    /// fully renamed.
    fn find_group_end(&self, head: SeqNum) -> Option<SeqNum> {
        debug_assert!(self.rob.get(head).is_some_and(|e| e.first_of_insn));
        let mut seq = head;
        loop {
            let e = self.rob.get(seq)?;
            if e.last_of_insn {
                return Some(seq);
            }
            seq += 1;
        }
    }

    /// Retires the head µop, applying its architectural effects.
    fn retire_one(&mut self) {
        let e = self.rob.pop_head();
        // Baseline Store-Sets ordering treats a target that left the ROB
        // as satisfied; in practice the completion wake in writeback
        // already fired (retirement requires `Done`), so this is a
        // no-op backstop kept for the event-completeness invariant.
        self.sched_wake_seq(e.seq);
        self.stats.retired_uops += 1;
        // Virtual release of the previous definition (paper Fig. 9).
        if e.dest_logical.is_some() {
            if let Some(prev) = e.prev_mapping {
                self.rf.virtual_release(prev);
            }
        }
        let mut store_effect = None;
        if let Some(s) = e.store {
            let addr = self.rf.read(s.addr_preg);
            let data = s.data_preg.map(|p| self.rf.read(p)).unwrap_or(0);
            self.ssn_retire = s.ssn;
            if self.cfg.comm != CommModel::Baseline {
                self.tssbf.store_retired(addr, bab(addr, s.width), s.ssn);
                self.stats.energy.record(Event::TssbfWrite, 1);
            } else {
                self.sq.remove(e.seq);
            }
            let pushed =
                self.sb.push(SbEntry::new(s.ssn, addr, s.width, data), self.cfg.coalesce_stores);
            assert!(pushed, "store buffer slot was checked before retiring");
            self.stats.energy.record(Event::StoreBufferOp, 1);
            self.stats.retired_stores += 1;
            self.last_commit_addr = Some(addr);
            store_effect = Some((addr, data));
        }
        let mut load_class = None;
        if let Some(info) = e.load {
            self.stats.retired_loads += 1;
            let class = match info.kind {
                LoadKind::Direct => LoadSource::Direct,
                LoadKind::Cloaked | LoadKind::Oracle => LoadSource::Bypassed,
                LoadKind::Delayed => LoadSource::Delayed,
                LoadKind::Predicated => LoadSource::Predicated,
            };
            load_class = Some(class);
            let ready = info
                .result_preg
                .map(|p| self.rf.ready_at(p))
                .unwrap_or(self.cycle);
            self.stats.load_latency.record(class, e.rename_cycle, ready);
            if info.low_conf {
                self.stats.lowconf_latency.record(class, e.rename_cycle, ready);
            }
        }
        self.probe.on_retired(self.cycle, e.seq, load_class);
        if e.kind == UopKind::Halt {
            self.halted = true;
        }
        if e.last_of_insn {
            self.stats.retired_insns += 1;
            self.cosim_check(&e, store_effect);
        }
    }

    /// Lock-step comparison against the functional emulator.
    fn cosim_check(&mut self, e: &crate::rob::UopEntry, store: Option<(u32, u32)>) {
        let Some(emu) = self.cosim.as_mut() else { return };
        let step = emu.step().expect("cosim emulator must not fault");
        match step {
            StepOutcome::Halted => {
                assert_eq!(e.kind, UopKind::Halt, "pipeline retired {:?} but emulator halted", e);
            }
            StepOutcome::Retired(ev) => {
                assert_eq!(
                    ev.pc, e.pc,
                    "control divergence: pipeline retired pc {} but emulator is at pc {}",
                    e.pc, ev.pc
                );
                // The architectural destination of the retiring
                // instruction is its sink µop's renamed dest pair.
                if let (Some(l), Some(p)) = (e.dest_logical, e.dest) {
                    let got = self.rf.read(p);
                    match ev.wrote {
                        Some((el, ev_val)) => {
                            assert_eq!(l, el, "dest register divergence at pc {}", e.pc);
                            assert_eq!(
                                got, ev_val,
                                "value divergence at pc {}: pipeline {got:#x} emu {ev_val:#x}",
                                e.pc
                            );
                        }
                        None => panic!("pipeline wrote {l} at pc {} but emulator did not", e.pc),
                    }
                }
                if let Some((addr, data)) = store {
                    let m = ev.mem.expect("emulator saw the store");
                    assert!(m.is_store);
                    assert_eq!(m.addr, addr, "store address divergence at pc {}", e.pc);
                    assert_eq!(m.value, data, "store data divergence at pc {}", e.pc);
                }
            }
        }
    }

    /// Drives the verification state machine for the load at `vseq`.
    fn run_verify(&mut self, vseq: SeqNum) -> VerifyOutcome {
        // Progress an in-flight re-execution first.
        if let Some(v) = self.verify {
            debug_assert_eq!(v.load_seq, vseq);
            match v.phase {
                VerifyPhase::WaitDrain => {
                    if self.sb.is_empty() {
                        let info =
                            self.rob.get(vseq).and_then(|e| e.load).expect("verify target");
                        let lat = self.mem.read(info.addr, self.cycle).max(1);
                        self.stats.energy.record(Event::CacheRead, 1);
                        self.verify = Some(VerifyState {
                            phase: VerifyPhase::Reading(self.cycle + lat),
                            ..v
                        });
                    }
                    VerifyOutcome::Stall
                }
                VerifyPhase::Reading(done) => {
                    if self.cycle < done {
                        return VerifyOutcome::Stall;
                    }
                    let info = self.rob.get(vseq).and_then(|e| e.load).expect("verify target");
                    let reload = self.data.read(info.addr, info.width, info.signed);
                    self.verify = None;
                    let exception = reload != info.value;
                    self.update_predictors(vseq, v.actual, true, exception);
                    if exception {
                        VerifyOutcome::Recover
                    } else {
                        VerifyOutcome::Ok
                    }
                }
            }
        } else {
            let e = self.rob.get(vseq).expect("verify target live");
            let mut info = e.load.expect("verify target has load info");
            if info.kind == LoadKind::Oracle {
                return VerifyOutcome::Ok; // the Perfect model never verifies
            }
            // A cloaked (or shift-masked) load executed no cache access:
            // pick up its address and delivered value from the register
            // file now.
            if !info.executed {
                debug_assert_eq!(info.kind, LoadKind::Cloaked);
                let addr_preg = info.addr_preg.expect("cloaked load keeps its address register");
                info.addr = self.rf.read(addr_preg);
                info.value =
                    self.rf.read(info.result_preg.expect("cloaked load has a result"));
                info.executed = true;
                *self.rob.get_mut(vseq).expect("live").load.as_mut().expect("load") = info;
            }
            let lb = bab(info.addr, info.width);
            self.stats.energy.record(Event::TssbfRead, 1);
            let actual = self.tssbf.lookup(info.addr, lb);
            let source = match (info.kind, info.pred_matches) {
                (LoadKind::Cloaked, _) => DataSource::Forwarded {
                    predicted_ssn: info.ssn_byp.expect("cloaked load has a prediction"),
                },
                (LoadKind::Predicated, Some(true)) => DataSource::Forwarded {
                    predicted_ssn: info.ssn_byp.expect("predicated load has a prediction"),
                },
                _ => DataSource::Cache { ssn_nvul: info.ssn_nvul },
            };
            // Shift-and-mask forwarding additionally requires the
            // *predicted* byte geometry to match the actual collision.
            let shift_ok = info.shift_pred.is_none_or(|(sb, lo2)| {
                actual.store_bab == Some(sb) && (info.addr & 3) as u8 == lo2
            });
            if !needs_reexecution(source, actual, lb) && shift_ok {
                self.update_predictors(vseq, actual, false, false);
                return VerifyOutcome::Ok;
            }
            self.stats.reexecutions += 1;
            self.probe.on_reexec(vseq);
            self.verify =
                Some(VerifyState { load_seq: vseq, actual, phase: VerifyPhase::WaitDrain });
            VerifyOutcome::Stall
        }
    }

    /// Applies predictor training and Figure 5 bookkeeping once the
    /// load's actual dependence is known.
    fn update_predictors(
        &mut self,
        vseq: SeqNum,
        actual: TssbfHit,
        was_reexec: bool,
        exception: bool,
    ) {
        let e = self.rob.get(vseq).expect("live");
        let info = e.load.expect("load info");
        let pc = e.pc;
        let hist = info.history;
        let outcome = info.ssn_byp.map(|p| match actual.store_bab {
            Some(_) if actual.ssn == p => PredOutcome::Correct,
            Some(_) => PredOutcome::DiffStore,
            None => PredOutcome::IndepStore,
        });
        if info.low_conf {
            match outcome {
                Some(PredOutcome::Correct) => self.stats.lowconf.correct += 1,
                Some(PredOutcome::DiffStore) => self.stats.lowconf.diff_store += 1,
                Some(PredOutcome::IndepStore) => self.stats.lowconf.indep_store += 1,
                None => {}
            }
        }
        // The original (non-silent-store-aware) policy only updates on an
        // exception (paper §IV-C a).
        if was_reexec && !exception && !self.cfg.silent_store_update {
            return;
        }
        self.stats.energy.record(Event::PredictorWrite, 1);
        match outcome {
            // A "correct" store prediction that still cost a full recovery
            // (e.g. the store does not cover the load's bytes, Fig. 11) is
            // a misprediction as far as confidence is concerned.
            Some(PredOutcome::Correct) if exception => self.dp.punish(pc, hist),
            Some(PredOutcome::Correct) => {
                // Same distance strengthens confidence; training (rather
                // than a bare reward) also refreshes the remembered byte
                // geometry that NoSQ's shift prediction replays.
                if actual.ssn <= info.ssn_ref {
                    self.dp.train_with_geometry(
                        pc,
                        hist,
                        info.ssn_ref - actual.ssn,
                        actual.store_bab.unwrap_or(0b1111),
                        (info.addr & 3) as u8,
                    );
                } else {
                    self.dp.reward(pc, hist);
                }
            }
            Some(PredOutcome::DiffStore) => {
                if actual.ssn <= info.ssn_ref {
                    self.dp.train_with_geometry(
                        pc,
                        hist,
                        info.ssn_ref - actual.ssn,
                        actual.store_bab.unwrap_or(0b1111),
                        (info.addr & 3) as u8,
                    );
                } else {
                    self.dp.punish(pc, hist);
                }
            }
            Some(PredOutcome::IndepStore) => self.dp.punish(pc, hist),
            None => {
                // Predicted independent: a re-execution reveals a missed
                // dependence — create it (the silent-store-aware rule
                // trains even without an exception).
                if was_reexec
                    && actual.store_bab.is_some()
                    && actual.ssn > 0
                    && actual.ssn <= info.ssn_ref
                {
                    self.dp.train_with_geometry(
                        pc,
                        hist,
                        info.ssn_ref - actual.ssn,
                        actual.store_bab.unwrap_or(0b1111),
                        (info.addr & 3) as u8,
                    );
                }
            }
        }
    }
}
