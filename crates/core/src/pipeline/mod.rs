//! The out-of-order pipeline shared by all four communication models.
//!
//! One cycle advances the machine through its stages in reverse pipeline
//! order (commit → retire → writeback → issue → rename → fetch), so a
//! value produced in writeback wakes its consumer in issue the same
//! cycle, giving back-to-back execution of dependent single-cycle µops.

mod baseline;
mod exec;
mod fetch;
mod recover;
mod rename;
mod retire;
mod sched;

use std::collections::VecDeque;
use std::sync::Arc;

use dmdp_energy::Event;
use dmdp_isa::{Checkpoint, Emulator, OracleTrace, Pc, Program, Reg, SparseMem, Word};
use dmdp_mem::{MemHierarchy, StoreBuffer, Tlb};
use dmdp_predict::{
    BranchPredictor, DistancePredictor, StoreSets, Tssbf, TssbfHit,
};

use crate::config::{CommModel, CoreConfig};
use crate::plan::PlanCache;
use crate::probe::{Occupancy, Probe, ProbeReport};
use crate::regfile::RegFile;
use crate::rob::{BranchInfo, Rob, SeqNum, UopEntry};
use crate::srb::StoreRegisterBuffer;
use crate::stats::SimStats;

pub(crate) use baseline::StoreQueue;

/// Error terminating a simulation abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle limit was reached before `halt` retired (livelock guard).
    CycleLimit {
        /// The limit that was exhausted.
        limit: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimit { limit } => {
                write!(f, "cycle limit {limit} reached before halt")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// An instruction sitting in the decode queue, with its fetch-time
/// prediction state. The instruction itself is not carried — rename
/// looks its static decode plan up by `pc` in the shared [`PlanCache`].
#[derive(Debug, Clone)]
pub(crate) struct Fetched {
    pub pc: Pc,
    pub branch: Option<BranchInfo>,
    /// Global branch history captured before this instruction's own
    /// prediction — the snapshot both the path-sensitive distance
    /// predictor and history repair use.
    pub fetch_history: u32,
    /// Cycle the instruction was fetched (probe bookkeeping only; no
    /// timing decision reads it).
    pub fetch_cycle: u64,
}

/// Retire-time load verification in progress (paper §IV-A c: the
/// re-execution is "not issued until the store buffer is drained").
#[derive(Debug, Clone, Copy)]
pub(crate) struct VerifyState {
    pub load_seq: SeqNum,
    pub actual: TssbfHit,
    pub phase: VerifyPhase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VerifyPhase {
    /// Waiting for the store buffer to drain.
    WaitDrain,
    /// Cache re-read in flight, completing at the cycle.
    Reading(u64),
}

/// The pipeline: one simulated core running one program under one
/// [`CommModel`].
pub struct Pipeline {
    pub(crate) cfg: CoreConfig,
    pub(crate) program: Arc<Program>,
    // Static decode plans, one per text PC (built here or shared in by a
    // campaign runner).
    pub(crate) plans: Arc<PlanCache>,
    pub(crate) cycle: u64,
    // Register state.
    pub(crate) rf: RegFile,
    pub(crate) rob: Rob,
    // Event-driven scheduler (ready lists, wake registrations, completion
    // calendar).
    pub(crate) sched: sched::Scheduler,
    pub(crate) retry: Vec<SeqNum>,
    // Front end.
    pub(crate) decode_q: VecDeque<Fetched>,
    pub(crate) fetch_pc: Pc,
    pub(crate) fetch_stall_until: u64,
    pub(crate) fetch_stopped: bool,
    pub(crate) halted: bool,
    // Memory.
    pub(crate) data: SparseMem,
    pub(crate) mem: MemHierarchy,
    pub(crate) sb: StoreBuffer,
    pub(crate) tlb: Tlb,
    // Predictors and SQ-free structures.
    pub(crate) bp: BranchPredictor,
    pub(crate) dp: DistancePredictor,
    pub(crate) tssbf: Tssbf,
    pub(crate) ss: StoreSets,
    pub(crate) srb: StoreRegisterBuffer,
    pub(crate) sq: StoreQueue,
    // Store sequence numbers (paper Fig. 6).
    pub(crate) ssn_rename: u32,
    pub(crate) ssn_retire: u32,
    pub(crate) ssn_commit: u32,
    // Oracle (Perfect model). Arc-shared so a batch of Perfect-model
    // variant lanes pays the functional pre-pass once.
    pub(crate) oracle: Option<Arc<OracleTrace>>,
    pub(crate) next_load_idx: u64,
    // Retire-time verification in progress.
    pub(crate) verify: Option<VerifyState>,
    // Address of the most recently retired store (coherence stand-in
    // target).
    pub(crate) last_commit_addr: Option<dmdp_isa::Addr>,
    // Reusable scratch buffers: recovery squash walk and store-buffer
    // commit drain, emptied after each use so the hot loop never
    // allocates.
    pub(crate) squash_buf: Vec<UopEntry>,
    pub(crate) commit_buf: Vec<u32>,
    // Measurements.
    pub(crate) stats: SimStats,
    // Resource-demand high-water marks for the batch engine's
    // never-bound variant deduplication (see `crate::batch`).
    pub(crate) hw: crate::batch::HwDemand,
    // Event-horizon fast-forward tally (batch engine only; not part of
    // SimStats — simulated timing is pinned independently of how many
    // dead spans were skipped).
    pub(crate) ff_spans: u64,
    pub(crate) ff_cycles: u64,
    // Observability sinks (no-op by default; see `crate::probe`).
    pub(crate) probe: Probe,
    // Co-simulation against the functional emulator (tests).
    pub(crate) cosim: Option<Emulator>,
}

impl Pipeline {
    /// Builds a pipeline for `program` under `cfg`. For the Perfect model
    /// this runs the functional oracle pre-pass (bounded by
    /// `cfg.max_cycles` emulated instructions).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the oracle pre-pass
    /// fails (the program must halt).
    pub fn new(cfg: CoreConfig, program: &Program) -> Pipeline {
        Pipeline::new_shared(cfg, Arc::new(program.clone()))
    }

    /// [`Pipeline::new`] without the program deep-copy: campaign runners
    /// share one assembled image across every job of a workload. Builds
    /// this pipeline's own [`PlanCache`] (counted in `stats.plan.builds`).
    ///
    /// # Panics
    ///
    /// As [`Pipeline::new`].
    pub fn new_shared(cfg: CoreConfig, program: Arc<Program>) -> Pipeline {
        let plans = PlanCache::shared(&program);
        let built = plans.len() as u64;
        let mut p = Pipeline::new_planned(cfg, program, plans);
        p.stats.plan.builds = built;
        p
    }

    /// [`Pipeline::new_shared`] with a prebuilt plan cache, so every job
    /// of a workload shares one decode-plan table alongside the program
    /// image (`stats.plan.builds` stays zero: nothing was built here).
    ///
    /// # Panics
    ///
    /// As [`Pipeline::new`]; additionally if `plans` was not built from
    /// `program`.
    pub fn new_planned(cfg: CoreConfig, program: Arc<Program>, plans: Arc<PlanCache>) -> Pipeline {
        let oracle = Pipeline::build_oracle(&cfg, &program);
        Pipeline::new_planned_with_oracle(cfg, program, plans, oracle)
    }

    /// The Perfect model's functional pre-pass for `program`, bounded by
    /// `cfg.max_cycles` emulated instructions; `None` for every other
    /// model. Exposed so batch drivers can run it once and share the
    /// trace across many variant lanes of the same `max_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if the pre-pass fails (the program must halt).
    pub fn build_oracle(cfg: &CoreConfig, program: &Program) -> Option<Arc<OracleTrace>> {
        match cfg.comm {
            CommModel::Perfect => {
                let mut emu = Emulator::new(program);
                let (_, trace) =
                    emu.run_with_trace(cfg.max_cycles).expect("oracle pre-pass must complete");
                Some(Arc::new(trace))
            }
            _ => None,
        }
    }

    /// The Perfect model's functional pre-pass resumed from `ckpt`
    /// instead of the program entry, bounded by `insns` further
    /// instructions; `None` for every other model. The trace's dynamic
    /// load indices and SSNs start at zero, matching a pipeline seeded
    /// from the same checkpoint (its `next_load_idx`/`ssn_*` counters
    /// also start at zero). The bound need only cover the measurement
    /// window plus in-flight slack — loads past the trace end degrade
    /// to unpredicated issue, exactly like wrong-path overruns.
    ///
    /// # Errors / Panics
    ///
    /// Panics if the functional replay faults (a valid checkpoint of a
    /// valid program cannot).
    pub fn build_oracle_from_checkpoint(
        cfg: &CoreConfig,
        program: &Program,
        ckpt: &Checkpoint,
        insns: u64,
    ) -> Option<Arc<OracleTrace>> {
        match cfg.comm {
            CommModel::Perfect => {
                let mut emu = Emulator::from_checkpoint(program, ckpt);
                let (trace, _) =
                    emu.run_with_trace_insns(insns).expect("oracle replay must not fault");
                Some(Arc::new(trace))
            }
            _ => None,
        }
    }

    /// [`Pipeline::new_planned`] with the oracle pre-pass (or `None`)
    /// supplied by the caller instead of computed here.
    ///
    /// # Panics
    ///
    /// As [`Pipeline::new_planned`].
    pub fn new_planned_with_oracle(
        cfg: CoreConfig,
        program: Arc<Program>,
        plans: Arc<PlanCache>,
        oracle: Option<Arc<OracleTrace>>,
    ) -> Pipeline {
        cfg.validate();
        assert_eq!(plans.len(), program.len(), "plan cache must match the program");
        Pipeline {
            rf: RegFile::new(cfg.phys_regs),
            rob: Rob::new(cfg.rob_entries),
            sched: sched::Scheduler::default(),
            retry: Vec::new(),
            decode_q: VecDeque::new(),
            fetch_pc: program.entry(),
            fetch_stall_until: 0,
            fetch_stopped: false,
            halted: false,
            data: program.initial_memory(),
            mem: MemHierarchy::new(cfg.mem),
            sb: StoreBuffer::new(cfg.store_buffer_entries, cfg.consistency),
            tlb: Tlb::new(cfg.mem.tlb),
            bp: BranchPredictor::new(cfg.branch),
            dp: DistancePredictor::new(cfg.distance),
            tssbf: Tssbf::new(cfg.tssbf),
            ss: StoreSets::new(cfg.store_sets),
            srb: StoreRegisterBuffer::new(),
            sq: StoreQueue::new(),
            ssn_rename: 0,
            ssn_retire: 0,
            ssn_commit: 0,
            oracle,
            next_load_idx: 0,
            verify: None,
            last_commit_addr: None,
            squash_buf: Vec::new(),
            commit_buf: Vec::new(),
            stats: SimStats::default(),
            hw: crate::batch::HwDemand::default(),
            ff_spans: 0,
            ff_cycles: 0,
            cycle: 0,
            program,
            plans,
            probe: Probe::default(),
            cosim: None,
            cfg,
        }
    }

    /// Attaches probe sinks (tracer/sampler). The probed run produces
    /// bit-identical [`SimStats`] to an unprobed one — probes observe,
    /// never perturb (`tests/golden_stats.rs` gates this).
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// Enables lock-step checking against the functional emulator: every
    /// retired instruction's PC, register result and memory effect are
    /// compared, panicking on divergence. Test-only (slows simulation).
    pub fn enable_cosim(&mut self) {
        self.cosim = Some(Emulator::new(&self.program));
    }

    /// Runs to `halt`, returning the collected statistics.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] if the program does not halt within
    /// `cfg.max_cycles` cycles.
    pub fn run(mut self) -> Result<SimStats, SimError> {
        self.run_loop()?;
        Ok(self.stats)
    }

    /// [`Pipeline::run`] returning the probe's collected artifacts
    /// alongside the statistics (attach sinks with
    /// [`Pipeline::set_probe`] first).
    ///
    /// # Errors
    ///
    /// As [`Pipeline::run`].
    pub fn run_probed(mut self) -> Result<(SimStats, ProbeReport), SimError> {
        self.run_loop()?;
        let report = std::mem::take(&mut self.probe).finish();
        Ok((self.stats, report))
    }

    /// Overwrites the architectural state (PC, register values, memory
    /// image) with a functional-emulator checkpoint, so the first
    /// fetched instruction is the one after the checkpoint boundary.
    /// The checkpoint's warming hint (`warm_lines`, the lines most
    /// recently touched before the boundary, LRU→MRU) is replayed into
    /// the cache hierarchy and TLB — without it, every sampled interval
    /// would start with a compulsory-miss storm the uncheckpointed run
    /// never had, and the detailed warmup would need to re-walk the
    /// workload's whole resident footprint to repair it. Predictors,
    /// ROB and store buffer stay cold — the sampling pipeline warms
    /// those by running a configurable number of warmup instructions
    /// before measuring (they train orders of magnitude faster than a
    /// cache fills).
    ///
    /// # Panics
    ///
    /// Panics if any cycle has already been simulated.
    pub fn seed_checkpoint(&mut self, ckpt: &Checkpoint) {
        assert_eq!(self.cycle, 0, "seed_checkpoint must precede the first cycle");
        self.fetch_pc = ckpt.pc;
        let mut data = SparseMem::new();
        for (index, bytes) in &ckpt.pages {
            data.install_page(*index, bytes);
        }
        self.data = data;
        // The fresh RAT maps logical i to preg i with value 0; overwrite
        // the programmer-visible registers in place ($0 stays 0 in any
        // valid checkpoint, the hidden assembler temporaries stay 0 as
        // on a cold start).
        for (i, &value) in ckpt.regs.iter().enumerate() {
            let p = self.rf.rat(Reg::new(i as u8));
            self.rf.write(p, value, 0);
        }
        for &line in &ckpt.warm_lines {
            let addr = line * dmdp_isa::checkpoint::LOC_LINE_BYTES;
            self.mem.warm(addr);
            self.tlb.warm(addr);
        }
        for &(pc, next_pc) in &ckpt.warm_branches {
            self.bp.warm(pc, next_pc != pc + 1, next_pc);
        }
    }

    /// Runs until at least `target` architectural instructions have
    /// retired (or the program halts), *without* the end-of-run finalize
    /// pass — interval measurement reads `(cycle, retired)` deltas
    /// between calls and never needs quiesced-register accounting.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] as [`Pipeline::run`].
    pub fn run_to_retired(&mut self, target: u64) -> Result<(), SimError> {
        while !self.halted && self.stats.retired_insns < target {
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::CycleLimit { limit: self.cfg.max_cycles });
            }
            self.step_cycle();
        }
        Ok(())
    }

    /// Cycles simulated so far (interval measurement bookkeeping).
    pub fn cycles_so_far(&self) -> u64 {
        self.cycle
    }

    /// Architectural instructions retired so far.
    pub fn retired_so_far(&self) -> u64 {
        self.stats.retired_insns
    }

    /// Whether `halt` has retired.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    fn run_loop(&mut self) -> Result<(), SimError> {
        while !self.halted {
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::CycleLimit { limit: self.cfg.max_cycles });
            }
            self.step_cycle();
        }
        self.finalize();
        Ok(())
    }

    /// Advances the machine one cycle.
    pub(crate) fn step_cycle(&mut self) {
        self.commit_stage();
        self.retire_stage();
        if self.halted {
            self.cycle += 1;
            self.stats.cycles = self.cycle;
            return;
        }
        self.writeback_stage();
        self.issue_stage();
        self.rename_stage();
        self.fetch_stage();
        self.cycle += 1;
        if self.probe.sample_due(self.cycle) {
            self.probe_take_sample();
        }
    }

    /// Closes the sample window ending now (end-of-cycle occupancy
    /// snapshot plus event deltas since the previous window).
    fn probe_take_sample(&mut self) {
        let occ = Occupancy {
            rob: self.rob.len(),
            iq: self.sched.iq_len,
            ready: self.sched.ready_len(),
            sb: self.sb.occupancy(),
        };
        self.probe.take_sample(self.cycle, &self.stats, occ);
    }

    /// Commit: drains the store buffer into the cache, advances
    /// `SSN_commit`, releases committed stores' registers, and (RMO)
    /// invalidates their Store Register Buffer entries. When the
    /// coherence stand-in is enabled, also injects an external line
    /// invalidation (§IV-F).
    fn commit_stage(&mut self) {
        if let Some(every) = self.cfg.coherence_invalidate_every {
            if self.cycle > 0 && self.cycle.is_multiple_of(every) {
                if let Some(addr) = self.last_commit_addr {
                    let line = self.cfg.mem.l1d.line_bytes;
                    self.mem.invalidate(addr);
                    // Invalidation messages carry only the line address:
                    // every word of the line re-arms the T-SSBF with
                    // SSN_commit + 1 so earlier-executed loads re-execute.
                    self.tssbf.invalidate_line(addr & !(line - 1), line, self.ssn_commit);
                    self.stats.coherence_invalidations += 1;
                }
            }
        }
        // Drain finished stores into the reusable scratch buffer — the
        // commit stage runs every cycle and must not allocate.
        let mut committed = std::mem::take(&mut self.commit_buf);
        self.sb.tick(self.cycle, &mut self.mem, &mut self.data, &mut committed);
        for &ssn in &committed {
            debug_assert!(ssn > self.ssn_commit, "SSN_commit must advance monotonically");
            // Coalescing can skip SSNs: release every store in the gap.
            for s in self.ssn_commit + 1..=ssn {
                if let Some(e) = self.srb.remove(s) {
                    // The store "executes when it is committed": its
                    // consumer references drop now, possibly freeing the
                    // registers (paper §IV-B a).
                    self.rf.drop_consumer(e.addr_preg);
                    if let Some(d) = e.data_preg {
                        self.rf.drop_consumer(d);
                    }
                }
            }
            self.ssn_commit = ssn;
            self.stats.energy.record(Event::CacheWrite, 1);
            self.stats.energy.record(Event::StoreBufferOp, 1);
        }
        committed.clear();
        self.commit_buf = committed;
        // Delayed loads gated on `SSN_commit >= ssn_byp` become eligible
        // the same cycle the store commits (issue runs later this cycle).
        self.sched_drain_ssn();
    }

    /// Reads a source register value, treating `None` (logical `$0`) as
    /// the constant zero.
    #[inline]
    pub(crate) fn src_val(&self, src: Option<crate::regfile::PregId>) -> Word {
        match src {
            Some(p) => self.rf.read(p),
            None => 0,
        }
    }

    pub(crate) fn finalize(&mut self) {
        // Close the sampler's final (possibly partial) window.
        if self.probe.sample_pending(self.cycle) {
            self.probe_take_sample();
        }
        // At halt nothing younger than the halt µop exists, so every
        // physical register must be accounted for by the RAT, by a
        // pending store-buffer entry's consumer references, or be free —
        // a leak or double-free in the producer/consumer protocol
        // (paper §IV-B a) panics here on every run.
        self.rf.check_quiesced();
        self.stats.cycles = self.cycle;
        self.stats.mem = self.mem.stats();
        self.stats.coalesced_stores = self.sb.coalesced();
        self.stats.min_free_pregs = self.rf.min_free_seen();
        let m = self.stats.mem;
        self.stats.energy.record(Event::L2Access, m.l2_accesses);
        self.stats.energy.record(Event::DramAccess, m.l2_misses);
    }
}

#[cfg(test)]
mod livelock_tests {
    use super::*;
    use crate::config::{CommModel, CoreConfig};
    use crate::rob::UopState;

    #[test]
    fn baseline_partial_word_makes_progress() {
        let src = r#"
            .data
    buf:    .space 64
            .text
            lui  $8, %hi(buf)
            ori  $8, $8, %lo(buf)
            li   $4, 0
            li   $5, 40
    loop:
            andi $6, $4, 7
            sll  $6, $6, 2
            add  $6, $6, $8
            li   $7, -3
            sb   $7, 1($6)
            lbu  $9, 1($6)
            lb   $10, 1($6)
            add  $11, $11, $9
            add  $11, $11, $10
            li   $7, 0x1234
            sh   $7, 2($6)
            lhu  $12, 2($6)
            lw   $13, 0($6)
            add  $11, $11, $12
            add  $11, $11, $13
            sw   $11, 32($8)
            lw   $14, 32($8)
            addi $4, $4, 1
            bne  $4, $5, loop
            halt
        "#;
        let p = dmdp_isa::asm::assemble(src).unwrap();
        let cfg = CoreConfig::new(CommModel::Baseline);
        let mut pl = Pipeline::new(cfg, &p);
        for _ in 0..20_000 {
            pl.step_cycle();
            if pl.halted {
                return;
            }
        }
        // Dump state on livelock.
        let mut dump = String::new();
        use std::fmt::Write;
        writeln!(dump, "cycle={} retired={}", pl.cycle, pl.stats.retired_insns).unwrap();
        writeln!(dump, "sb occ={} empty={}", pl.sb.occupancy(), pl.sb.is_empty()).unwrap();
        writeln!(dump, "retry={:?} {}", pl.retry, pl.sched.dump()).unwrap();
        for e in pl.rob.iter().take(12) {
            writeln!(
                dump,
                "  seq={} pc={} kind={:?} state={:?} first={} last={} srcs={:?}",
                e.seq, e.pc, e.kind, e.state, e.first_of_insn, e.last_of_insn, e.src
            )
            .unwrap();
            let _ = UopState::Done;
        }
        panic!("livelock:\n{dump}");
    }
}
