//! Fetch stage: follows predicted control flow, filling the decode queue.

use dmdp_energy::Event;
use dmdp_isa::Op;

use crate::rob::BranchInfo;

use super::{Fetched, Pipeline};

impl Pipeline {
    /// Fetches up to `width` instructions along the predicted path.
    /// Stops at `halt`, at a PC outside the text segment (wrong path —
    /// a recovery will redirect), or when the decode queue is full.
    pub(crate) fn fetch_stage(&mut self) {
        if self.fetch_stopped || self.cycle < self.fetch_stall_until {
            return;
        }
        let max_queue = 3 * self.cfg.width;
        for _ in 0..self.cfg.width {
            if self.decode_q.len() >= max_queue {
                break;
            }
            let pc = self.fetch_pc;
            let Some(insn) = self.program.fetch(pc) else {
                // Wrong-path fetch ran off the text segment; wait for the
                // inevitable redirect.
                self.fetch_stopped = true;
                break;
            };
            self.stats.energy.record(Event::Fetch, 1);
            self.stats.energy.record(Event::Decode, 1);
            let fetch_history = self.bp.history();
            let mut branch = None;
            let next_pc = match insn.op {
                Op::Branch(_) => {
                    self.stats.energy.record(Event::PredictorRead, 1);
                    let p = self.bp.predict_cond(pc);
                    let target = insn.imm as u32;
                    branch = Some(BranchInfo {
                        predicted_taken: p.taken,
                        predicted_target: Some(target),
                        history_before: p.history,
                    });
                    if p.taken {
                        target
                    } else {
                        pc + 1
                    }
                }
                Op::Jump => insn.imm as u32,
                Op::JumpAndLink => {
                    self.bp.ras_push(pc + 1);
                    insn.imm as u32
                }
                Op::JumpReg | Op::JumpAndLinkReg => {
                    if insn.op == Op::JumpAndLinkReg {
                        self.bp.ras_push(pc + 1);
                    }
                    // Predict through the RAS, then the BTB, else fall
                    // through (and take the misprediction).
                    let predicted = match insn.op {
                        Op::JumpReg => self.bp.ras_pop().or_else(|| self.bp.btb_lookup(pc)),
                        _ => self.bp.btb_lookup(pc),
                    }
                    .unwrap_or(pc + 1);
                    branch = Some(BranchInfo {
                        predicted_taken: true,
                        predicted_target: Some(predicted),
                        history_before: self.bp.history(),
                    });
                    predicted
                }
                Op::Halt => {
                    self.probe.on_fetch();
                    self.decode_q.push_back(Fetched {
                        pc,
                        insn,
                        branch: None,
                        fetch_history,
                        fetch_cycle: self.cycle,
                    });
                    self.fetch_stopped = true;
                    break;
                }
                _ => pc + 1,
            };
            // Direct jumps never mispredict; record their (trivially
            // correct) target so execute can skip resolution.
            if matches!(insn.op, Op::Jump | Op::JumpAndLink) {
                branch = Some(BranchInfo {
                    predicted_taken: true,
                    predicted_target: Some(insn.imm as u32),
                    history_before: self.bp.history(),
                });
            }
            self.probe.on_fetch();
            self.decode_q.push_back(Fetched {
                pc,
                insn,
                branch,
                fetch_history,
                fetch_cycle: self.cycle,
            });
            self.fetch_pc = next_pc;
        }
    }
}
