//! Fetch stage: follows predicted control flow, filling the decode queue.
//!
//! Control-flow classification comes from the static [`PlanCache`] — one
//! `FetchClass` lookup per instruction instead of re-matching `Op`
//! variants on every dynamic instance.

use std::sync::Arc;

use dmdp_energy::Event;

use crate::plan::FetchClass;
use crate::rob::BranchInfo;

use super::{Fetched, Pipeline};

impl Pipeline {
    /// Fetches up to `width` instructions along the predicted path.
    /// Stops at `halt`, at a PC outside the text segment (wrong path —
    /// a recovery will redirect), or when the decode queue is full.
    pub(crate) fn fetch_stage(&mut self) {
        if self.fetch_stopped || self.cycle < self.fetch_stall_until {
            return;
        }
        let plans = Arc::clone(&self.plans);
        let max_queue = 3 * self.cfg.width;
        for _ in 0..self.cfg.width {
            if self.decode_q.len() >= max_queue {
                break;
            }
            let pc = self.fetch_pc;
            let Some(plan) = plans.get(pc) else {
                // Wrong-path fetch ran off the text segment; wait for the
                // inevitable redirect.
                self.fetch_stopped = true;
                break;
            };
            self.stats.plan.hits += 1;
            self.stats.energy.record(Event::Fetch, 1);
            self.stats.energy.record(Event::Decode, 1);
            let fetch_history = self.bp.history();
            let mut branch = None;
            let next_pc = match plan.fetch {
                FetchClass::CondBranch { target } => {
                    self.stats.energy.record(Event::PredictorRead, 1);
                    let p = self.bp.predict_cond(pc);
                    branch = Some(BranchInfo {
                        predicted_taken: p.taken,
                        predicted_target: Some(target),
                        history_before: p.history,
                    });
                    if p.taken {
                        target
                    } else {
                        pc + 1
                    }
                }
                FetchClass::Jump { target } => target,
                FetchClass::JumpLink { target } => {
                    self.bp.ras_push(pc + 1);
                    target
                }
                FetchClass::JumpInd { link } => {
                    if link {
                        self.bp.ras_push(pc + 1);
                    }
                    // Predict through the RAS, then the BTB, else fall
                    // through (and take the misprediction).
                    let predicted = if link {
                        self.bp.btb_lookup(pc)
                    } else {
                        self.bp.ras_pop().or_else(|| self.bp.btb_lookup(pc))
                    }
                    .unwrap_or(pc + 1);
                    branch = Some(BranchInfo {
                        predicted_taken: true,
                        predicted_target: Some(predicted),
                        history_before: self.bp.history(),
                    });
                    predicted
                }
                FetchClass::Halt => {
                    self.probe.on_fetch();
                    self.decode_q.push_back(Fetched {
                        pc,
                        branch: None,
                        fetch_history,
                        fetch_cycle: self.cycle,
                    });
                    self.fetch_stopped = true;
                    break;
                }
                FetchClass::Seq => pc + 1,
            };
            // Direct jumps never mispredict; record their (trivially
            // correct) target so execute can skip resolution.
            if let FetchClass::Jump { target } | FetchClass::JumpLink { target } = plan.fetch {
                branch = Some(BranchInfo {
                    predicted_taken: true,
                    predicted_target: Some(target),
                    history_before: self.bp.history(),
                });
            }
            self.probe.on_fetch();
            self.decode_q.push_back(Fetched {
                pc,
                branch,
                fetch_history,
                fetch_cycle: self.cycle,
            });
            self.fetch_pc = next_pc;
        }
    }
}
