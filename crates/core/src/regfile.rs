use dmdp_isa::{Reg, Word};

use crate::rob::SeqNum;

/// Identifier of a physical register.
pub type PregId = u16;

#[derive(Clone, Copy, Debug, Default)]
struct Preg {
    value: Word,
    ready: bool,
    /// Cycle at which the value became ready (drives the paper's
    /// load-execution-time statistic, which clamps at the rename cycle).
    ready_at: u64,
    /// Definitions not yet virtually released (paper Fig. 9).
    producers: u16,
    /// Renamed-but-not-yet-executed consumers, including stores that read
    /// the register at commit (paper §IV-B a).
    consumers: u16,
    free: bool,
}

/// The unified physical register file with the paper's reference-counting
/// release scheme (§IV-B a).
///
/// A physical register may be **defined more than once** (memory cloaking
/// reuses the store's data register as the load's destination; the two
/// `CMOV`s of a predication pair share one destination) and may be **read
/// after its defining instruction retired** (a committed-but-undrained
/// store reads its data/address registers at commit; a `CMP`/`CMOV` reads
/// them even later). Two counters govern release:
///
/// * `producers` — incremented per definition, decremented per *virtual
///   release* (the retirement of the next definition of the same logical
///   register, or of the same shared register),
/// * `consumers` — incremented when an operand renames to the register,
///   decremented when that consumer executes (for stores: commits).
///
/// A register returns to the free list exactly when both counters are
/// zero.
///
/// # Example
///
/// ```
/// use dmdp_core::regfile::RegFile;
/// use dmdp_isa::Reg;
/// let mut rf = RegFile::new(64);
/// let r9 = Reg::new(9);
/// let old = rf.rat(r9);
/// let p = rf.allocate(r9).unwrap();
/// rf.write(p, 42, 100);
/// assert_eq!(rf.read(p), 42);
/// assert_eq!(rf.ready_at(p), 100);
/// // A later definition of $9 retires: the old mapping releases.
/// rf.virtual_release(old);
/// ```
#[derive(Debug, Clone)]
pub struct RegFile {
    pregs: Vec<Preg>,
    rat: [PregId; Reg::NUM_LOGICAL],
    free_list: Vec<PregId>,
    /// High-water mark of live registers (for reporting).
    min_free: usize,
    /// Per-register wake lists for the event-driven scheduler: µops that
    /// dispatched with this register unready and must be notified when it
    /// is written. Parallel to `pregs`.
    waiters: Vec<Vec<SeqNum>>,
}

impl RegFile {
    /// Creates a register file with `phys_regs` registers. The first
    /// `Reg::NUM_LOGICAL` are bound to the architectural registers with
    /// value 0 and one producer each (the initial machine state).
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs` cannot cover the logical registers.
    pub fn new(phys_regs: usize) -> RegFile {
        assert!(phys_regs > Reg::NUM_LOGICAL, "need more physical than logical registers");
        let mut pregs = vec![Preg::default(); phys_regs];
        let mut rat = [0 as PregId; Reg::NUM_LOGICAL];
        for (l, slot) in rat.iter_mut().enumerate() {
            *slot = l as PregId;
            pregs[l] =
                Preg { value: 0, ready: true, ready_at: 0, producers: 1, consumers: 0, free: false };
        }
        let free_list: Vec<PregId> =
            (Reg::NUM_LOGICAL as PregId..phys_regs as PregId).rev().collect();
        for &p in &free_list {
            pregs[p as usize].free = true;
        }
        let min_free = free_list.len();
        let waiters = vec![Vec::new(); phys_regs];
        RegFile { pregs, rat, free_list, min_free, waiters }
    }

    /// Number of free registers right now.
    pub fn free_count(&self) -> usize {
        self.free_list.len()
    }

    /// Minimum free count ever observed (register pressure high-water
    /// mark, §VI-f).
    pub fn min_free_seen(&self) -> usize {
        self.min_free
    }

    /// Current RAT mapping for a logical register.
    pub fn rat(&self, l: Reg) -> PregId {
        self.rat[l.index()]
    }

    /// Points the RAT at `p` (used by rename and by rollback).
    pub fn set_rat(&mut self, l: Reg, p: PregId) {
        self.rat[l.index()] = p;
    }

    /// Allocates a fresh register for a new definition of `l`, updating
    /// the RAT. Returns `None` when the free list is empty (rename must
    /// stall). The previous mapping is *not* released — the caller records
    /// it for virtual release at retirement.
    pub fn allocate(&mut self, l: Reg) -> Option<PregId> {
        let p = self.free_list.pop()?;
        self.min_free = self.min_free.min(self.free_list.len());
        // A register can only free after every waiter executed (which
        // drains the list) or was squashed (which purges it).
        debug_assert!(self.waiters[p as usize].is_empty(), "freed register p{p} kept waiters");
        let preg = &mut self.pregs[p as usize];
        debug_assert!(preg.free, "allocating a non-free register");
        *preg =
            Preg { value: 0, ready: false, ready_at: 0, producers: 1, consumers: 0, free: false };
        self.rat[l.index()] = p;
        Some(p)
    }

    /// Registers a *second (or later) definition* of an existing register
    /// — memory cloaking or the shared `CMOV` destination — optionally
    /// retargeting the RAT entry of `l`.
    ///
    /// Readiness is left untouched: a cloaked load's "definition" *is* the
    /// store's already-produced (or pending) value, which is exactly why
    /// cloaking forwards data "even without knowing the address".
    pub fn redefine(&mut self, p: PregId, l: Option<Reg>) {
        let preg = &mut self.pregs[p as usize];
        debug_assert!(!preg.free, "redefining a free register");
        preg.producers += 1;
        if let Some(l) = l {
            self.rat[l.index()] = p;
        }
    }

    /// Adds a consumer reference (operand renamed to `p`).
    pub fn add_consumer(&mut self, p: PregId) {
        debug_assert!(!self.pregs[p as usize].free, "consuming a free register");
        self.pregs[p as usize].consumers += 1;
    }

    /// Drops a consumer reference (the consumer executed, or a store
    /// committed / was squashed). May free the register.
    pub fn drop_consumer(&mut self, p: PregId) {
        let preg = &mut self.pregs[p as usize];
        debug_assert!(preg.consumers > 0, "consumer underflow on p{p}");
        preg.consumers -= 1;
        self.maybe_free(p);
    }

    /// Virtually releases one definition of `p` (paper Fig. 9): called at
    /// the retirement of the next definition of the same logical register
    /// (or of the sharing µop), and during rollback to undo an
    /// allocation. May free the register.
    pub fn virtual_release(&mut self, p: PregId) {
        let preg = &mut self.pregs[p as usize];
        debug_assert!(preg.producers > 0, "producer underflow on p{p}");
        preg.producers -= 1;
        self.maybe_free(p);
    }

    fn maybe_free(&mut self, p: PregId) {
        let preg = &mut self.pregs[p as usize];
        if preg.producers == 0 && preg.consumers == 0 && !preg.free {
            preg.free = true;
            self.free_list.push(p);
        }
    }

    /// Whether the register's current definition has produced its value.
    #[inline]
    pub fn is_ready(&self, p: PregId) -> bool {
        self.pregs[p as usize].ready
    }

    /// Registers `seq` to be woken when `p` is written. The caller must
    /// only register on not-ready registers; each registration produces
    /// exactly one wake (a µop naming the same register twice registers
    /// — and is decremented — twice).
    pub fn add_waiter(&mut self, p: PregId, seq: SeqNum) {
        debug_assert!(!self.pregs[p as usize].ready, "waiting on a ready register");
        debug_assert!(!self.pregs[p as usize].free, "waiting on a free register");
        self.waiters[p as usize].push(seq);
    }

    /// Whether any µop is registered on `p`.
    #[inline]
    pub fn has_waiters(&self, p: PregId) -> bool {
        !self.waiters[p as usize].is_empty()
    }

    /// Moves `p`'s waiters into `out` (which is cleared first), leaving
    /// the list's capacity in place for reuse.
    pub fn drain_waiters_into(&mut self, p: PregId, out: &mut Vec<SeqNum>) {
        out.clear();
        out.append(&mut self.waiters[p as usize]);
    }

    /// Drops every registration of µops with `seq >= from` (recovery), so
    /// sequence numbers reused after a squash cannot receive stale wakes.
    pub fn purge_waiters_from(&mut self, from: SeqNum) {
        for list in &mut self.waiters {
            if !list.is_empty() {
                list.retain(|&s| s < from);
            }
        }
    }

    /// Reads the register's value.
    ///
    /// The µarch guarantees readiness before any read; in debug builds
    /// reading a not-ready register panics.
    #[inline]
    pub fn read(&self, p: PregId) -> Word {
        debug_assert!(self.pregs[p as usize].ready, "reading not-ready p{p}");
        self.pregs[p as usize].value
    }

    /// Writes the register and marks it ready as of `cycle` (writeback).
    #[inline]
    pub fn write(&mut self, p: PregId, value: Word, cycle: u64) {
        let preg = &mut self.pregs[p as usize];
        preg.value = value;
        preg.ready = true;
        preg.ready_at = cycle;
    }

    /// The cycle the current value became ready (0 for machine-initial
    /// state).
    #[inline]
    pub fn ready_at(&self, p: PregId) -> u64 {
        debug_assert!(self.pregs[p as usize].ready);
        self.pregs[p as usize].ready_at
    }

    /// Producer count (tests / invariant checks).
    pub fn producers(&self, p: PregId) -> u16 {
        self.pregs[p as usize].producers
    }

    /// Consumer count (tests / invariant checks).
    pub fn consumers(&self, p: PregId) -> u16 {
        self.pregs[p as usize].consumers
    }

    /// Whether `p` is on the free list.
    pub fn is_free(&self, p: PregId) -> bool {
        self.pregs[p as usize].free
    }

    /// Invariant check: every register is either free, or reachable as a
    /// RAT mapping / has outstanding references. Call at quiesce points
    /// (e.g. after the ROB drains) to detect leaks.
    ///
    /// # Panics
    ///
    /// Panics if a non-free register has zero counts, or a RAT-mapped
    /// register has no producer.
    pub fn check_quiesced(&self) {
        for (i, preg) in self.pregs.iter().enumerate() {
            let p = i as PregId;
            assert!(
                self.waiters[i].is_empty(),
                "register p{p} still has scheduler waiters at quiesce"
            );
            let in_rat = self.rat.contains(&p);
            if preg.free {
                assert!(!in_rat, "free register p{p} is RAT-mapped");
            } else {
                assert!(
                    preg.producers > 0 || preg.consumers > 0,
                    "leaked register p{p}: not free but unreferenced"
                );
                if in_rat {
                    assert!(preg.producers > 0, "RAT-mapped p{p} has no producer");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rf() -> RegFile {
        RegFile::new(40)
    }

    #[test]
    fn initial_state_binds_logical_registers() {
        let rf = rf();
        for l in Reg::all() {
            let p = rf.rat(l);
            assert!(rf.is_ready(p));
            assert_eq!(rf.read(p), 0);
        }
        assert_eq!(rf.free_count(), 40 - Reg::NUM_LOGICAL);
    }

    #[test]
    fn allocate_write_release_cycle() {
        let mut rf = rf();
        let l = Reg::new(9);
        let old = rf.rat(l);
        let p = rf.allocate(l).unwrap();
        assert_ne!(p, old);
        assert_eq!(rf.rat(l), p);
        assert!(!rf.is_ready(p));
        rf.write(p, 7, 3);
        assert_eq!(rf.read(p), 7);
        assert_eq!(rf.ready_at(p), 3);
        // Retirement of this definition virtually releases the old one.
        rf.virtual_release(old);
        assert!(rf.is_free(old));
        assert!(!rf.is_free(p));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut rf = RegFile::new(Reg::NUM_LOGICAL + 1);
        assert!(rf.allocate(Reg::new(1)).is_some());
        assert!(rf.allocate(Reg::new(2)).is_none());
    }

    #[test]
    fn consumers_extend_lifetime() {
        let mut rf = rf();
        let l = Reg::new(7);
        let p = rf.allocate(l).unwrap();
        rf.write(p, 1, 0);
        rf.add_consumer(p); // e.g. an in-flight store's data operand
        rf.virtual_release(p); // the next definition of $7 retired
        assert!(!rf.is_free(p), "consumer must keep the register alive");
        rf.drop_consumer(p); // the store committed
        assert!(rf.is_free(p));
    }

    #[test]
    fn double_definition_needs_two_releases() {
        let mut rf = rf();
        let p = rf.allocate(Reg::new(9)).unwrap();
        rf.redefine(p, Some(Reg::new(10))); // cloaking: $10 also maps to p
        rf.virtual_release(p); // $9 redefined and retired
        assert!(!rf.is_free(p));
        rf.virtual_release(p); // $10 redefined and retired
        assert!(rf.is_free(p));
    }

    #[test]
    fn redefine_preserves_readiness() {
        // Memory cloaking aliases the store's value: if it is already
        // produced, the cloaked load's result is immediately ready.
        let mut rf = rf();
        let p = rf.allocate(Reg::new(9)).unwrap();
        rf.write(p, 5, 2);
        assert!(rf.is_ready(p));
        rf.redefine(p, Some(Reg::new(10)));
        assert!(rf.is_ready(p), "cloaking must not lose the produced value");
        assert_eq!(rf.read(p), 5);
        assert_eq!(rf.rat(Reg::new(10)), p);
    }

    #[test]
    fn rollback_pattern() {
        let mut rf = rf();
        let l = Reg::new(3);
        let old = rf.rat(l);
        let p = rf.allocate(l).unwrap();
        // Squash: undo the rename.
        rf.set_rat(l, old);
        rf.virtual_release(p);
        assert!(rf.is_free(p));
        assert_eq!(rf.rat(l), old);
        rf.check_quiesced();
    }

    #[test]
    fn quiesce_check_passes_on_fresh_file() {
        rf().check_quiesced();
    }

    #[test]
    fn waiters_drain_on_demand() {
        let mut rf = rf();
        let p = rf.allocate(Reg::new(5)).unwrap();
        assert!(!rf.has_waiters(p));
        rf.add_waiter(p, 7);
        rf.add_waiter(p, 7); // same µop, both sources on p: two wakes
        rf.add_waiter(p, 9);
        assert!(rf.has_waiters(p));
        let mut out = vec![99]; // stale scratch content must be cleared
        rf.drain_waiters_into(p, &mut out);
        assert_eq!(out, vec![7, 7, 9]);
        assert!(!rf.has_waiters(p));
    }

    #[test]
    fn purge_removes_only_squashed_waiters() {
        let mut rf = rf();
        let p = rf.allocate(Reg::new(5)).unwrap();
        rf.add_waiter(p, 3);
        rf.add_waiter(p, 8);
        rf.purge_waiters_from(5);
        let mut out = Vec::new();
        rf.drain_waiters_into(p, &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    #[should_panic(expected = "still has scheduler waiters")]
    fn quiesce_check_catches_leftover_waiters() {
        let mut rf = rf();
        let p = rf.allocate(Reg::new(5)).unwrap();
        rf.add_waiter(p, 1);
        rf.check_quiesced();
    }

    #[test]
    #[should_panic(expected = "leaked register")]
    fn quiesce_check_catches_leak() {
        let mut rf = rf();
        let p = rf.allocate(Reg::new(4)).unwrap();
        // Fabricate a leak: zero the counters without freeing.
        rf.virtual_release(p); // now free... so instead simulate by hand:
        rf.pregs[p as usize].free = false;
        rf.check_quiesced();
    }
}
