use dmdp_energy::EnergyModel;
use dmdp_mem::MemStats;
use dmdp_stats::{mpki, LoadLatencyStats};

/// Outcome classification for low-confidence dependence predictions
/// (paper Figure 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowConfBreakdown {
    /// Predicted dependent but independent of any in-flight store.
    pub indep_store: u64,
    /// Dependent on a *different* in-flight store than predicted.
    pub diff_store: u64,
    /// The prediction was correct.
    pub correct: u64,
}

impl LowConfBreakdown {
    /// Total low-confidence loads classified.
    pub fn total(&self) -> u64 {
        self.indep_store + self.diff_store + self.correct
    }
}

/// Occupancy counters of the event-driven scheduler (PR 2). These
/// describe the *simulator implementation* — how much work the wakeup
/// machinery did — not the simulated machine, so they are deliberately
/// excluded from the golden-stats timing digest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Sum over cycles of the ready-list length sampled at issue
    /// (divide by `cycles` for the mean).
    pub ready_occupancy: u64,
    /// Wake events delivered (register writes, store completions/retires,
    /// SSN-commit advances reaching a registered waiter).
    pub wakeups: u64,
    /// Completion-calendar pops (one per executed µop).
    pub calendar_pops: u64,
}

impl SchedStats {
    /// Mean ready-list length per cycle.
    pub fn mean_ready_len(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.ready_occupancy as f64 / cycles as f64
        }
    }

    /// Wake events per kilo-cycle.
    pub fn wakeups_per_kilocycle(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.wakeups as f64 * 1000.0 / cycles as f64
        }
    }

    /// Completion-calendar pops per kilo-cycle.
    pub fn calendar_pops_per_kilocycle(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.calendar_pops as f64 * 1000.0 / cycles as f64
        }
    }
}

/// Plan-cache counters (PR 4). Like [`SchedStats`] these describe the
/// *simulator implementation* — how much static decode work was built vs
/// amortised — not the simulated machine, so they are deliberately
/// excluded from the golden-stats timing digest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Static [`crate::plan::InsnPlan`]s built by this pipeline (zero
    /// when a prebuilt cache was shared in, e.g. by the campaign
    /// harness).
    pub builds: u64,
    /// Dynamic instructions fetched through the plan cache.
    pub hits: u64,
}

/// Everything one simulation run measures.
///
/// Implements `PartialEq`/`Eq` so the campaign harness can assert that
/// parallel and serial executions of the same job are bit-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cycles until `halt` retired.
    pub cycles: u64,
    /// Architectural instructions retired.
    pub retired_insns: u64,
    /// µops retired (includes AGI/CMP/CMOV).
    pub retired_uops: u64,
    /// Loads retired.
    pub retired_loads: u64,
    /// Stores retired.
    pub retired_stores: u64,
    /// Predication µops inserted (CMP + CMOVs; DMDP only).
    pub predication_uops: u64,
    /// Per-class load counts and execution times (paper Fig. 2/3,
    /// Tables IV/V).
    pub load_latency: LoadLatencyStats,
    /// Execution time tracker restricted to low-confidence loads
    /// (paper Table V).
    pub lowconf_latency: LoadLatencyStats,
    /// Branch direction/target mispredictions.
    pub branch_mispredicts: u64,
    /// Memory dependence mispredictions causing a full recovery
    /// (paper Table VI's MPKI numerator).
    pub mem_dep_mispredicts: u64,
    /// Load re-executions issued (paper §IV-C).
    pub reexecutions: u64,
    /// Retire-stall cycles attributable to load re-execution
    /// (paper Table VII).
    pub reexec_stall_cycles: u64,
    /// Retire-stall cycles due to a full store buffer (paper §VI-e).
    pub sb_full_stall_cycles: u64,
    /// Figure 5 classification of low-confidence loads.
    pub lowconf: LowConfBreakdown,
    /// All pipeline recoveries (branch + memory).
    pub recoveries: u64,
    /// µops squashed across all recoveries.
    pub squashed_uops: u64,
    /// Dynamic energy accounting.
    pub energy: EnergyModel,
    /// Memory hierarchy statistics (filled at the end of the run).
    pub mem: MemStats,
    /// Store-buffer coalesced stores.
    pub coalesced_stores: u64,
    /// Minimum free physical registers observed (pressure, §VI-f).
    pub min_free_pregs: usize,
    /// External cache-line invalidations injected (§IV-F stand-in).
    pub coherence_invalidations: u64,
    /// Event-driven scheduler occupancy (simulator-side observability;
    /// not part of the timing-digest).
    pub sched: SchedStats,
    /// Plan-cache build/hit counters (simulator-side observability; not
    /// part of the timing-digest).
    pub plan: PlanStats,
}

impl SimStats {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_insns as f64 / self.cycles as f64
        }
    }

    /// Memory dependence mispredictions per kilo-instruction (Table VI).
    pub fn mem_dep_mpki(&self) -> f64 {
        mpki(self.mem_dep_mispredicts, self.retired_insns)
    }

    /// Re-execution stall cycles per kilo-instruction (Table VII).
    pub fn reexec_stalls_per_ki(&self) -> f64 {
        mpki(self.reexec_stall_cycles, self.retired_insns)
    }

    /// Store-buffer-full stall cycles per kilo-instruction (§VI-e).
    pub fn sb_full_stalls_per_ki(&self) -> f64 {
        mpki(self.sb_full_stall_cycles, self.retired_insns)
    }

    /// Energy-delay product of the run (Figure 15, in ratios).
    pub fn edp(&self) -> f64 {
        self.energy.edp(self.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn derived_rates() {
        let s = SimStats {
            cycles: 1000,
            retired_insns: 2000,
            mem_dep_mispredicts: 4,
            reexec_stall_cycles: 10,
            ..SimStats::default()
        };
        assert_eq!(s.ipc(), 2.0);
        assert_eq!(s.mem_dep_mpki(), 2.0);
        assert_eq!(s.reexec_stalls_per_ki(), 5.0);
    }

    #[test]
    fn lowconf_total() {
        let b = LowConfBreakdown { indep_store: 3, diff_store: 1, correct: 2 };
        assert_eq!(b.total(), 6);
    }
}
