use std::collections::HashMap;

use dmdp_isa::{MemWidth, Pc};

use crate::regfile::PregId;

/// One in-flight store visible to the renamer (paper Fig. 6, "Store
/// Register Buffer").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrbEntry {
    /// Physical register holding the store's translated address.
    pub addr_preg: PregId,
    /// Physical register holding the store's data (`None`: stores `$0`,
    /// whose value is the constant zero).
    pub data_preg: Option<PregId>,
    /// Access width (needed to build `CMP`/`CMOV` µops and to decide
    /// cloaking legality).
    pub width: MemWidth,
    /// The store's PC (Store-Sets training on recoveries).
    pub pc: Pc,
}

/// The Store Register Buffer: maps the SSN of every in-flight store
/// (renamed but not yet committed) to the physical registers holding its
/// address and data.
///
/// Memory cloaking reads the data register identity here; predication
/// insertion reads both. Entries are created at rename, removed at
/// squash, and invalidated when the store commits and updates the cache
/// (after which forwarding is pointless — the value is in the cache).
///
/// # Example
///
/// ```
/// use dmdp_core::srb::{SrbEntry, StoreRegisterBuffer};
/// use dmdp_isa::MemWidth;
/// let mut srb = StoreRegisterBuffer::new();
/// srb.insert(1, SrbEntry { addr_preg: 40, data_preg: Some(41), width: MemWidth::Word, pc: 0 });
/// assert!(srb.get(1).is_some());
/// srb.remove(1); // the store committed
/// assert!(srb.get(1).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StoreRegisterBuffer {
    entries: HashMap<u32, SrbEntry>,
}

impl StoreRegisterBuffer {
    /// Creates an empty buffer.
    pub fn new() -> StoreRegisterBuffer {
        StoreRegisterBuffer::default()
    }

    /// Registers a renamed store.
    ///
    /// # Panics
    ///
    /// Panics if the SSN is already present (SSNs are unique while in
    /// flight).
    pub fn insert(&mut self, ssn: u32, entry: SrbEntry) {
        let prev = self.entries.insert(ssn, entry);
        assert!(prev.is_none(), "duplicate SSN {ssn} in SRB");
    }

    /// Looks up an in-flight store by SSN.
    pub fn get(&self, ssn: u32) -> Option<&SrbEntry> {
        self.entries.get(&ssn)
    }

    /// Removes a store (committed or squashed); returns its entry.
    pub fn remove(&mut self, ssn: u32) -> Option<SrbEntry> {
        self.entries.remove(&ssn)
    }

    /// Number of in-flight stores tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no stores are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(addr_preg: PregId) -> SrbEntry {
        SrbEntry { addr_preg, data_preg: Some(addr_preg + 1), width: MemWidth::Word, pc: 7 }
    }

    #[test]
    fn insert_get_remove() {
        let mut srb = StoreRegisterBuffer::new();
        srb.insert(3, e(50));
        assert_eq!(srb.get(3).unwrap().addr_preg, 50);
        assert_eq!(srb.len(), 1);
        assert_eq!(srb.remove(3).unwrap().data_preg, Some(51));
        assert!(srb.is_empty());
        assert!(srb.remove(3).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate SSN")]
    fn duplicate_ssn_panics() {
        let mut srb = StoreRegisterBuffer::new();
        srb.insert(1, e(10));
        srb.insert(1, e(11));
    }

    #[test]
    fn missing_ssn_is_none() {
        let srb = StoreRegisterBuffer::new();
        assert!(srb.get(42).is_none());
    }
}
